"""Paged bit-plane cache: pool accounting + dense/paged parity properties.

The paged cache is only sound if it is *indistinguishable* from the dense
cache through every consumer: byte-identical ``planes/k_int/values``
views, identical frozen scales, and identical retained sets through
``PadeEngine.attend`` under both kernel backends, for any interleaving of
prefill/append against any block size.  Hypothesis drives the schedules.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import PadeConfig
from repro.engine import (
    BitPlaneKVCache,
    PadeEngine,
    PagedBitPlaneKVCache,
    PlaneBlockPool,
    PoolExhausted,
)
from repro.engine.cache import quantize_heads
from repro.quant.integer import quantize_symmetric


def _kv(rng, num_heads, seq_len, head_dim, v_dim):
    return (
        rng.normal(size=(num_heads, seq_len, head_dim)),
        rng.normal(size=(num_heads, seq_len, v_dim)),
    )


def _fill_pair(rng, num_heads, head_dim, v_dim, prefill_len, appends, block_size):
    """Run the same prefill/append schedule through a dense and a paged cache."""
    total = prefill_len + appends
    k, v = _kv(rng, num_heads, total, head_dim, v_dim)
    dense = BitPlaneKVCache(num_heads, head_dim, v_dim)
    pool = PlaneBlockPool(
        num_heads, head_dim, v_dim, block_size=block_size,
        token_budget=max(block_size, total + block_size),
    )
    paged = PagedBitPlaneKVCache(pool)
    dense.prefill(k[:, :prefill_len], v[:, :prefill_len])
    paged.prefill(k[:, :prefill_len], v[:, :prefill_len])
    for t in range(prefill_len, total):
        dense.append(k[:, t], v[:, t])
        paged.append(k[:, t], v[:, t])
    return dense, paged, pool


class TestDensePagedParity:
    @given(
        num_heads=st.integers(1, 3),
        head_dim=st.integers(2, 6),
        prefill_len=st.integers(1, 12),
        appends=st.integers(0, 8),
        block_size=st.integers(1, 7),
        seed=st.integers(0, 2**16),
    )
    def test_views_byte_identical(
        self, num_heads, head_dim, prefill_len, appends, block_size, seed
    ):
        rng = np.random.default_rng(seed)
        dense, paged, _ = _fill_pair(
            rng, num_heads, head_dim, head_dim, prefill_len, appends, block_size
        )
        assert dense.length == paged.length
        assert dense.planes.planes.tobytes() == paged.planes.planes.tobytes()
        assert dense.k_int.tobytes() == paged.k_int.tobytes()
        assert dense.values.tobytes() == paged.values.tobytes()
        assert dense.scales.tobytes() == paged.scales.tobytes()
        assert dense.rows_decomposed == paged.rows_decomposed
        assert dense.appends == paged.appends

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    @given(
        prefill_len=st.integers(4, 24),
        appends=st.integers(0, 6),
        block_size=st.integers(1, 9),
        seed=st.integers(0, 2**16),
    )
    def test_attend_identical_through_engine(
        self, backend, prefill_len, appends, block_size, seed
    ):
        """Same retained sets, scores and outputs through PadeEngine.attend."""
        num_heads, head_dim = 2, 8
        rng = np.random.default_rng(seed)
        dense, paged, _ = _fill_pair(
            rng, num_heads, head_dim, head_dim, prefill_len, appends, block_size
        )
        engine = PadeEngine(PadeConfig.standard(), backend=backend)
        q = rng.normal(size=(num_heads, 2, head_dim))
        res_dense = engine.attend(dense, q)
        res_paged = engine.attend(paged, q)
        assert np.array_equal(res_dense.retained, res_paged.retained)
        assert np.array_equal(res_dense.scores, res_paged.scores)
        assert res_dense.output.tobytes() == res_paged.output.tobytes()
        assert res_dense.candidate_keys == res_paged.candidate_keys

    @given(
        schedule=st.lists(st.integers(0, 1), min_size=2, max_size=12),
        block_size=st.integers(1, 5),
        seed=st.integers(0, 2**16),
    )
    def test_interleaved_sequences_share_one_pool(self, schedule, block_size, seed):
        """Two sequences interleaving appends in one pool never cross-talk."""
        num_heads, head_dim = 2, 4
        rng = np.random.default_rng(seed)
        counts = [3 + schedule.count(0), 3 + schedule.count(1)]
        ks, vs = zip(*[_kv(rng, num_heads, c, head_dim, head_dim) for c in counts])
        pool = PlaneBlockPool(
            num_heads, head_dim, head_dim, block_size=block_size,
            token_budget=(sum(counts) + 2 * block_size),
        )
        dense = [BitPlaneKVCache(num_heads, head_dim, head_dim) for _ in range(2)]
        paged = [PagedBitPlaneKVCache(pool) for _ in range(2)]
        for i in range(2):
            dense[i].prefill(ks[i][:, :3], vs[i][:, :3])
            paged[i].prefill(ks[i][:, :3], vs[i][:, :3])
        cursor = [3, 3]
        for who in schedule:
            t = cursor[who]
            dense[who].append(ks[who][:, t], vs[who][:, t])
            paged[who].append(ks[who][:, t], vs[who][:, t])
            cursor[who] = t + 1
        for i in range(2):
            assert dense[i].planes.planes.tobytes() == paged[i].planes.planes.tobytes()
            assert dense[i].k_int.tobytes() == paged[i].k_int.tobytes()
            assert dense[i].values.tobytes() == paged[i].values.tobytes()

    def test_release_and_reuse_blocks(self, rng):
        """Freed blocks are recycled and the recycled contents are correct."""
        num_heads, head_dim = 2, 4
        pool = PlaneBlockPool(num_heads, head_dim, head_dim, block_size=4, token_budget=16)
        k, v = _kv(rng, num_heads, 12, head_dim, head_dim)
        first = PagedBitPlaneKVCache(pool)
        first.prefill(k, v)  # 3 blocks
        assert pool.used_block_count == 3
        second = PagedBitPlaneKVCache(pool)
        with pytest.raises(PoolExhausted):
            second.prefill(k, v)  # needs 3, only 1 free
        first.release()
        assert pool.used_block_count == 0
        assert first.length == 0
        second.prefill(k, v)
        reference = BitPlaneKVCache(num_heads, head_dim, head_dim)
        reference.prefill(k, v)
        assert reference.k_int.tobytes() == second.k_int.tobytes()
        assert reference.planes.planes.tobytes() == second.planes.planes.tobytes()

    def test_append_exhaustion_leaves_cache_intact(self, rng):
        """A failed append mutates nothing, so the retry after a victim
        frees its blocks (the preemption path) yields the exact rows."""
        num_heads, head_dim = 1, 4
        pool = PlaneBlockPool(num_heads, head_dim, head_dim, block_size=2, token_budget=6)
        cache = PagedBitPlaneKVCache(pool)
        victim = PagedBitPlaneKVCache(pool)
        k, v = _kv(rng, num_heads, 6, head_dim, head_dim)
        cache.prefill(k[:, :4], v[:, :4])  # 2 blocks
        victim.prefill(k[:, 4:], v[:, 4:])  # last block
        with pytest.raises(PoolExhausted):
            cache.append(k[:, 4], v[:, 4])
        assert cache.length == 4
        victim.release()
        cache.append(k[:, 4], v[:, 4])  # same call now succeeds
        dense = BitPlaneKVCache(num_heads, head_dim, head_dim)
        dense.prefill(k[:, :4], v[:, :4])
        dense.append(k[:, 4], v[:, 4])
        assert dense.k_int.tobytes() == cache.k_int.tobytes()
        assert dense.planes.planes.tobytes() == cache.planes.planes.tobytes()

    def test_pool_rejects_double_free_and_tracks_budget(self):
        pool = PlaneBlockPool(1, 4, 4, block_size=8, token_budget=35)
        assert pool.num_blocks == 4  # budget rounded down to whole blocks
        assert pool.token_budget == 32
        block = pool.allocate()
        pool.release([block])
        with pytest.raises(ValueError):
            pool.release([block])

    def test_empty_cache_guards(self):
        pool = PlaneBlockPool(1, 4, 4, block_size=4, token_budget=8)
        cache = PagedBitPlaneKVCache(pool)
        with pytest.raises(RuntimeError):
            _ = cache.planes
        with pytest.raises(RuntimeError):
            cache.append(np.zeros((1, 4)), np.zeros((1, 4)))


class TestVectorizedQuantizationRegression:
    """The vectorized per-head quantizer is pinned byte-identical to the
    original per-head ``quantize_symmetric`` loop (ISSUE 2 satellite)."""

    @given(
        num_heads=st.integers(1, 5),
        seq_len=st.integers(1, 20),
        head_dim=st.integers(1, 8),
        seed=st.integers(0, 2**16),
    )
    def test_prefill_quantization_matches_loop(self, num_heads, seq_len, head_dim, seed):
        rng = np.random.default_rng(seed)
        k = rng.normal(size=(num_heads, seq_len, head_dim)) * rng.uniform(0.1, 10)
        k_int, scales = quantize_heads(k, bits=8)
        looped = [quantize_symmetric(k[h], bits=8) for h in range(num_heads)]
        assert k_int.tobytes() == np.stack([q.data for q in looped]).tobytes()
        assert scales.tobytes() == np.array([float(q.scale) for q in looped]).tobytes()

    @given(
        num_heads=st.integers(1, 5),
        head_dim=st.integers(1, 8),
        seed=st.integers(0, 2**16),
    )
    def test_append_quantization_matches_loop(self, num_heads, head_dim, seed):
        """Frozen-scale (clipping) path: one step quantized per head."""
        rng = np.random.default_rng(seed)
        scales = rng.uniform(0.01, 0.5, size=num_heads)
        step = rng.normal(size=(num_heads, head_dim)) * 3.0  # clips sometimes
        k_int, out_scales = quantize_heads(step, bits=8, scales=scales)
        looped = np.stack(
            [quantize_symmetric(step[h], bits=8, scale=scales[h]).data for h in range(num_heads)]
        )
        assert k_int.tobytes() == looped.tobytes()
        assert np.array_equal(out_scales, scales)

    def test_zero_rows_quantize_with_unit_scale(self):
        """All-zero heads resolve to scale 1.0, exactly like the scalar path."""
        k = np.zeros((2, 3, 4))
        k_int, scales = quantize_heads(k, bits=8)
        assert np.array_equal(scales, np.ones(2))
        assert not k_int.any()

    def test_empty_sequence_quantizes_with_unit_scale(self):
        """S=0 calibrates to scale 1.0 (the scalar quantizer's empty-input
        fallback) instead of crashing on an empty reduction; an empty
        prefill then supports decode appends on both cache kinds."""
        k_int, scales = quantize_heads(np.zeros((2, 0, 4)), bits=8)
        assert k_int.shape == (2, 0, 4)
        assert np.array_equal(scales, np.ones(2))
        for cache in (
            BitPlaneKVCache(2, 4, 4),
            PagedBitPlaneKVCache(PlaneBlockPool(2, 4, 4, block_size=4, token_budget=16)),
        ):
            cache.prefill(np.zeros((2, 0, 4)), np.zeros((2, 0, 4)))
            assert cache.length == 0
            cache.append(np.ones((2, 4)), np.ones((2, 4)))
            assert cache.length == 1

    def test_cache_contents_match_looped_reference(self, rng):
        """End-to-end: cache state equals the pre-vectorization algorithm."""
        num_heads, head_dim = 3, 8
        k, v = _kv(rng, num_heads, 10, head_dim, head_dim)
        cache = BitPlaneKVCache(num_heads, head_dim, head_dim)
        cache.prefill(k[:, :7], v[:, :7])
        for t in range(7, 10):
            cache.append(k[:, t], v[:, t])
        looped_prefill = [quantize_symmetric(k[h, :7], bits=8) for h in range(num_heads)]
        frozen = np.array([float(q.scale) for q in looped_prefill])
        looped_all = np.stack(
            [
                np.concatenate(
                    [
                        looped_prefill[h].data,
                        quantize_symmetric(k[h, 7:], bits=8, scale=frozen[h]).data,
                    ]
                )
                for h in range(num_heads)
            ]
        )
        assert cache.scales.tobytes() == frozen.tobytes()
        assert cache.k_int.tobytes() == looped_all.tobytes()


class TestPoolLifecycleEdges:
    """ISSUE-5 hardening: lifecycle corners of the ref-counted pool."""

    def _prefilled_pair(self, rng, block_size=4, tokens=6, budget=8):
        """A cache + its fork sharing a pool with zero free blocks."""
        pool = PlaneBlockPool(2, 4, 4, block_size=block_size, token_budget=budget)
        cache = PagedBitPlaneKVCache(pool)
        k, v = _kv(rng, 2, tokens, 4, 4)
        cache.prefill(k, v)
        return pool, cache, cache.fork()

    def test_fork_at_pool_capacity_then_cow_exhaustion(self, rng):
        """Forking a full pool is free (pure sharing); the first divergent
        append needs a COW block, fails loudly, and mutates nothing."""
        pool, cache, clone = self._prefilled_pair(rng)
        assert pool.free_block_count == 0  # capacity: both blocks live
        assert clone.block_table == cache.block_table
        before = (clone.length, clone.block_table, pool.forks)
        with pytest.raises(PoolExhausted):
            clone.append(np.zeros((2, 4)), np.zeros((2, 4)))
        assert (clone.length, clone.block_table, pool.forks) == before
        assert cache.k_int.tobytes() == clone.k_int.tobytes()
        # Freeing the sibling turns the tail exclusive: the retry succeeds
        # in place, still without a single block to spare.
        cache.release()
        clone.append(np.zeros((2, 4)), np.zeros((2, 4)))
        assert clone.length == 7
        assert pool.free_block_count == 0

    def test_cow_skipped_when_refcount_drops_to_one(self, rng):
        """A tail whose last sharer just left is written in place — no
        fresh allocation, no copy, refcount stays 1."""
        pool, cache, clone = self._prefilled_pair(rng, budget=16)
        tail = cache.block_table[-1]
        assert pool.ref_count(tail) == 2
        clone.release()
        assert pool.ref_count(tail) == 1
        used_before, forks_before = pool.used_block_count, pool.forks
        cache.append(np.ones((2, 4)), np.ones((2, 4)))
        assert cache.block_table[-1] == tail  # same physical block
        assert pool.used_block_count == used_before
        assert pool.forks == forks_before

    def test_double_free_detection(self, rng):
        pool = PlaneBlockPool(2, 4, 4, block_size=4, token_budget=16)
        block = pool.allocate()
        pool.release([block])
        with pytest.raises(ValueError, match="not allocated"):
            pool.release([block])
        # Cache-level: a second release() is a harmless no-op (the block
        # list is already empty), not a hidden double free.
        cache = PagedBitPlaneKVCache(pool)
        k, v = _kv(rng, 2, 6, 4, 4)
        cache.prefill(k, v)
        cache.release()
        used = pool.used_block_count
        cache.release()
        assert pool.used_block_count == used == 0

    def test_abort_mid_prefill_releases_partial_prefix_refs(self, rng):
        """Releasing an unfinished chunked prefill drops the attached
        donor references and the freshly written blocks, leaving the
        donor's registrations intact for the next sharer."""
        pool = PlaneBlockPool(2, 4, 4, block_size=4, token_budget=64)
        donor = PagedBitPlaneKVCache(pool, prefix_sharing=True)
        k, v = _kv(rng, 2, 8, 4, 4)
        donor.prefill(k, v)
        assert pool.used_block_count == 2 and donor.prefix_miss_blocks == 2

        # Sharer: same 8-token prefix + a private suffix clipped to the
        # prefix's per-head max-abs so the frozen scales (and therefore
        # the chain keys) match the donor's.
        suffix_k, suffix_v = _kv(rng, 2, 4, 4, 4)
        caps = np.abs(k).reshape(2, -1).max(axis=1)
        suffix_k = np.clip(suffix_k, -caps[:, None, None], caps[:, None, None])
        k2 = np.concatenate([k, suffix_k], axis=1)
        v2 = np.concatenate([v, suffix_v], axis=1)
        sharer = PagedBitPlaneKVCache(pool, prefix_sharing=True)
        sharer.begin_prefill(k2, v2)
        assert sharer.prefix_hit_blocks == 2  # donor blocks attached by ref
        assert all(pool.ref_count(b) == 2 for b in donor.block_table)
        sharer.extend_prefill(2)  # one fresh partial block
        assert pool.used_block_count == 3 and sharer.prefill_remaining == 2

        sharer.release()  # the abort path: mid-prefill, partial refs live
        assert pool.used_block_count == 2
        assert all(pool.ref_count(b) == 1 for b in donor.block_table)
        assert all(pool.is_registered(b) for b in donor.block_table)
        # The index still serves future sharers.
        fresh = PagedBitPlaneKVCache(pool, prefix_sharing=True)
        fresh.prefill(k2, v2)
        assert fresh.prefix_hit_blocks == 2
