"""Tests for the KV-cache substrate, decode simulation, and lane tracing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.configs import get_model
from repro.sim.accelerator import AcceleratorConfig, PadeAccelerator
from repro.sim.kv_cache import KVCache
from repro.sim.pe import simulate_lane
from repro.sim.trace import render_gantt, trace_lane


class TestKVCache:
    def test_append_grows_footprint(self):
        cache = KVCache(head_dim=64, length=100)
        before = cache.footprint_bytes
        cache.append(10)
        assert cache.length == 110
        assert cache.footprint_bytes == before + 10 * 2 * 64

    def test_dense_step_reads_everything(self):
        cache = KVCache(head_dim=64, length=1000)
        t = cache.dense_step_traffic()
        assert t.k_bytes == 1000 * 64
        assert t.v_bytes == 1000 * 64

    def test_sparse_step_scales_with_filters(self):
        cache = KVCache(head_dim=64, length=1000)
        t = cache.step_traffic(mean_planes=4.0, keep_fraction=0.1)
        assert t.k_bytes == pytest.approx(1000 * 8 * 4.0)
        assert t.v_bytes == pytest.approx(1000 * 64 * 0.1)

    def test_resident_fraction_excluded(self):
        cache = KVCache(head_dim=64, length=1000)
        half = cache.step_traffic(4.0, 0.5, resident_fraction=0.5)
        full = cache.step_traffic(4.0, 0.5, resident_fraction=0.0)
        assert half.k_bytes == pytest.approx(full.k_bytes / 2)

    def test_keep_fraction_validated(self):
        with pytest.raises(ValueError):
            KVCache(length=10).step_traffic(4.0, 1.5)

    @given(st.floats(0, 8), st.floats(0, 1))
    def test_traffic_monotone(self, planes, keep):
        cache = KVCache(head_dim=64, length=512)
        t = cache.step_traffic(planes, keep)
        dense = cache.dense_step_traffic()
        assert t.k_bytes <= dense.k_bytes + 1e-9
        assert t.v_bytes <= dense.v_bytes + 1e-9


class TestDecodeSimulation:
    def test_pade_beats_dense_decode(self):
        model = get_model("llama2-7b")
        pade = PadeAccelerator(AcceleratorConfig()).run_decode(model, 4096, steps=8)
        dense = PadeAccelerator(AcceleratorConfig().dense_baseline()).run_decode(model, 4096, steps=8)
        assert pade.energy_pj < dense.energy_pj
        assert pade.latency_cycles < dense.latency_cycles
        assert pade.dram_bytes < dense.dram_bytes

    def test_decode_scales_with_context(self):
        model = get_model("llama2-7b")
        acc = PadeAccelerator(AcceleratorConfig())
        short = acc.run_decode(model, 2048, steps=8)
        long = acc.run_decode(model, 8192, steps=8)
        assert long.dram_bytes > short.dram_bytes
        assert long.energy_pj > short.energy_pj

    def test_resident_window_saves_traffic(self):
        model = get_model("llama2-7b")
        acc = PadeAccelerator(AcceleratorConfig())
        base = acc.run_decode(model, 4096, steps=8)
        pinned = acc.run_decode(model, 4096, steps=8, resident_fraction=0.25)
        assert pinned.dram_bytes < base.dram_bytes


class TestLaneTrace:
    def _work(self):
        rng = np.random.default_rng(5)
        return [(i, rng.integers(1, 3, size=rng.integers(1, 8))) for i in range(12)]

    @pytest.mark.parametrize("ooe", [True, False])
    @pytest.mark.parametrize("entries", [2, 8, 32])
    def test_trace_agrees_with_simulator(self, ooe, entries):
        work = self._work()
        trace = trace_lane(work, dram_latency=9, scoreboard_entries=entries, out_of_order=ooe)
        sim = simulate_lane(work, dram_latency=9, scoreboard_entries=entries, out_of_order=ooe)
        assert trace.finish == pytest.approx(sim.finish_cycle)
        assert trace.total("compute") == pytest.approx(sim.busy_cycles)

    def test_intervals_non_overlapping_and_ordered(self):
        trace = trace_lane(self._work(), dram_latency=5)
        for a, b in zip(trace.intervals, trace.intervals[1:]):
            assert b.start >= a.end - 1e-9

    def test_ooe_never_waits_with_ready_work(self):
        """The BS-OOE property (Fig. 8e): waits only occur when no in-flight
        token has data ready — with a deep scoreboard and many tokens the
        lane's wait share collapses vs the in-order schedule."""
        work = [(i, np.array([1, 1, 1, 1])) for i in range(32)]
        ooe = trace_lane(work, dram_latency=10, scoreboard_entries=32)
        in_order = trace_lane(work, dram_latency=10, out_of_order=False)
        assert ooe.total("wait") < 0.2 * in_order.total("wait")

    def test_render_gantt(self):
        out = render_gantt([trace_lane(self._work(), dram_latency=4)], width=40)
        assert "lane00" in out and "#" in out

    def test_empty(self):
        assert render_gantt([trace_lane([], 4)]) == "(empty trace)"
