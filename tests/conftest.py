"""Shared fixtures and hypothesis profiles for the test suite.

Two profiles, selected via the ``HYPOTHESIS_PROFILE`` environment
variable (default ``repro``):

* ``repro`` — local development: 40 examples, no deadline.
* ``ci`` — shared-runner CI: fewer examples and explicitly no per-test
  deadline, so property tests cannot flake on slow or noisy runners.

Property tests must NOT re-declare per-test ``@settings`` (deadlines,
example counts) — tune the profiles here instead, so one knob governs
the whole suite.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,  # no flaky example schedules on shared runners
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_qkv(rng):
    """A small structured attention problem (8 queries, 128 keys, dim 32)."""
    from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv

    return synthesize_qkv(8, 128, 32, PROFILE_PRESETS["nlp"], rng)


@pytest.fixture
def medium_qkv(rng):
    """A mid-size problem (8 queries, 512 keys, dim 64) for sim tests."""
    from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv

    return synthesize_qkv(8, 512, 64, PROFILE_PRESETS["nlp"], rng)
