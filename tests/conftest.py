"""Shared fixtures and hypothesis profiles for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_qkv(rng):
    """A small structured attention problem (8 queries, 128 keys, dim 32)."""
    from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv

    return synthesize_qkv(8, 128, 32, PROFILE_PRESETS["nlp"], rng)


@pytest.fixture
def medium_qkv(rng):
    """A mid-size problem (8 queries, 512 keys, dim 64) for sim tests."""
    from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv

    return synthesize_qkv(8, 512, 64, PROFILE_PRESETS["nlp"], rng)
