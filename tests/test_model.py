"""Tests for the model substrate: presets, synthetic QKV, tasks."""

import numpy as np
import pytest

from repro.attention.dense import attention_scores, softmax
from repro.core.config import PadeConfig
from repro.model.configs import MODEL_PRESETS, get_model
from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv, target_logits
from repro.model.tasks import SENSITIVITY, TASKS, evaluate_task, get_task, lost_attention_mass
from repro.model.transformer import MultiHeadAttention, generate_layer_qkv


class TestModelConfigs:
    def test_all_presets_present(self):
        assert set(MODEL_PRESETS) == {
            "llama2-7b", "llama3-8b", "opt-1b3", "bloom-1b7", "qwen-7b", "vit-l/16", "pvt",
        }

    def test_llama3_is_gqa(self):
        m = get_model("llama3-8b")
        assert m.is_gqa and m.gqa_group == 4

    def test_llama2_is_mha(self):
        assert not get_model("llama2-7b").is_gqa

    def test_lookup_case_insensitive(self):
        assert get_model("LLaMA2-7B").name == "llama2-7b"

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model("gpt-5")

    def test_attention_flops_prefill(self):
        m = get_model("opt-1b3")
        assert m.attention_flops(128) == 2 * 128 * 128 * 64 * 32 * 24

    def test_kv_bytes_gqa_smaller(self):
        mha = get_model("llama2-7b").kv_bytes(1024)
        gqa = get_model("llama3-8b").kv_bytes(1024)
        assert gqa == mha / 4


class TestSyntheticQKV:
    def test_logits_match_target_when_exact(self, rng):
        profile = PROFILE_PRESETS["nlp"]
        q, k, v = synthesize_qkv(8, 128, 32, profile, np.random.default_rng(3))
        logits = attention_scores(q, k)
        # same draw sequence: regenerate target
        rng2 = np.random.default_rng(3)
        rng2.normal(size=(8, 32))  # consume the Q draw
        target = target_logits(8, 128, profile, rng2)
        np.testing.assert_allclose(logits, target, atol=1e-6)

    def test_cluster_background_gap(self, rng):
        q, k, v = synthesize_qkv(8, 512, 64, PROFILE_PRESETS["nlp"], rng)
        logits = attention_scores(q, k)
        top = np.sort(logits, axis=1)[:, -8:].mean()
        median = np.median(logits)
        assert top - median > 6.0  # the separation the guard relies on

    def test_softmax_mass_concentated(self, rng):
        q, k, v = synthesize_qkv(4, 512, 64, PROFILE_PRESETS["nlp"], rng)
        probs = softmax(attention_scores(q, k), axis=-1)
        sorted_mass = np.sort(probs, axis=1)[:, ::-1]
        # the relevant cluster (~120 tokens) carries almost all mass
        assert sorted_mass[:, :128].sum(axis=1).min() > 0.9

    def test_cv_profile_less_sparse(self, rng):
        q, k, v = synthesize_qkv(4, 512, 64, PROFILE_PRESETS["cv"], rng)
        probs = softmax(attention_scores(q, k), axis=-1)
        top64 = np.sort(probs, axis=1)[:, ::-1][:, :64].sum(axis=1).mean()
        q2, k2, v2 = synthesize_qkv(4, 512, 64, PROFILE_PRESETS["nlp"], rng)
        probs2 = softmax(attention_scores(q2, k2), axis=-1)
        top64_nlp = np.sort(probs2, axis=1)[:, ::-1][:, :64].sum(axis=1).mean()
        assert top64 < top64_nlp

    def test_peakedness_scaling(self):
        p = PROFILE_PRESETS["nlp"].scaled(2.0)
        assert p.peakedness == 2.0

    def test_shapes(self, rng):
        q, k, v = synthesize_qkv(3, 64, 16, rng=rng)
        assert q.shape == (3, 16) and k.shape == (64, 16) and v.shape == (64, 16)


class TestTasks:
    def test_twenty_two_benchmarks(self):
        assert len(TASKS) == 22

    def test_lookup(self):
        t = get_task("mmlu", "llama2-7b")
        assert t.metric == "acc" and t.seq_len == 500

    def test_ppl_is_lower_better(self):
        assert not get_task("wikitext2", "llama2-7b").higher_is_better

    def test_lost_mass_increases_with_aggression(self):
        m = get_model("llama2-7b")
        std = lost_attention_mass(m, 1000, PadeConfig.standard())
        agg = lost_attention_mass(m, 1000, PadeConfig(alpha=0.3))
        assert 0 <= std < agg <= 1

    def test_evaluate_task_orderings(self):
        """PADE(S) must sit between INT8 and PADE(A) for every metric."""
        score = evaluate_task(get_task("mmlu", "llama2-7b"))
        assert score.pade_aggressive <= score.pade_standard <= score.task.int8

    def test_ppl_moves_up_under_pruning(self):
        score = evaluate_task(get_task("wikitext2", "llama2-7b"))
        assert score.task.int8 <= score.pade_standard <= score.pade_aggressive

    def test_sensitivities_cover_families(self):
        assert {t.family for t in TASKS} <= set(SENSITIVITY)


class TestTransformer:
    def test_gqa_layer_shapes(self):
        model = get_model("llama3-8b")
        triples = generate_layer_qkv(model, seq_len=64, num_queries=2)
        assert len(triples) == model.num_kv_heads
        q, k, v = triples[0]
        assert q.shape == (2 * model.gqa_group, model.head_dim)
        assert k.shape == (64, model.head_dim)

    def test_prefill_collects_sparsity(self):
        mha = MultiHeadAttention(get_model("opt-1b3"), PadeConfig.standard())
        mha.run_prefill(seq_len=128, num_layers=1)
        assert 0 <= mha.mean_sparsity <= 1

    def test_dense_mode_has_no_pade_stats(self):
        mha = MultiHeadAttention(get_model("opt-1b3"), use_pade=False)
        results = mha.run_prefill(seq_len=64, num_layers=1)
        assert all(r.pade is None for layer in results for r in layer)
        assert mha.mean_sparsity == 0.0
