"""End-to-end serving determinism: the golden regression net.

Two runs of ``PadeEngine.serve`` on the same seeded scenario workload —
same policy, same budget, prefix sharing on, chunked prefill on — must
produce *byte-identical* ``RequestResult``s (outputs, retained sets,
every timing field, abort statuses) and identical serving-metric
summaries, on both kernel backends.  Any hidden nondeterminism the new
scheduler policies might introduce (set/dict iteration order, unseeded
randomness, time-dependent tie-breaks) lands here first.

The retained sets must also agree *across* the two backends — the PR-1
invariant extended through the full SLO serving stack.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PadeConfig
from repro.core.backend import available_backends
from repro.engine import PadeEngine
from repro.eval.serving_metrics import summarize_serving
from repro.eval.workloads import TenantSpec, build_scenario_workload

BACKENDS = tuple(available_backends())

#: A contended multi-tenant mix: classes, deadlines tight enough to abort
#: some of the bulk tier, chunked prefill, preemption pressure.
SPECS = (
    TenantSpec("gold", rate=0.4, share=0.4, priority=2,
               context_len=24, decode_steps=4),
    TenantSpec("bulk", rate=0.6, share=0.6, priority=0,
               context_len=40, decode_steps=6, deadline_ms=18.0),
)
SERVE_KWARGS = dict(
    max_active=2,
    token_budget=192,
    block_size=8,
    policy="priority",
    prefix_sharing=True,
    round_token_budget=16,
    chunk_tokens=8,
)


def _workload():
    return build_scenario_workload(
        "multi_tenant", 8, 2, 8, tenant_specs=SPECS, seed=23
    )


def _run(backend):
    engine = PadeEngine(PadeConfig.standard(), backend=backend)
    results = engine.serve(_workload(), **SERVE_KWARGS)
    scheduler = engine.last_serve
    report = summarize_serving(
        results.values(),
        occupancy=scheduler.occupancy,
        token_budget=scheduler.pool.token_budget,
        scheduler=scheduler,
    )
    return results, report, scheduler


def _digest(result):
    """Everything observable about one request, bytes-exact."""
    return (
        result.request_id,
        result.status,
        result.abort_reason,
        result.tenant,
        result.priority,
        result.deadline_ms,
        result.arrival_time,
        result.admit_time,
        result.first_token_time,
        result.finish_time,
        result.prompt_tokens,
        result.preemptions,
        result.final_length,
        None if result.prefill_output is None else result.prefill_output.tobytes(),
        result.decode_outputs.tobytes(),
        result.retained_bytes(),
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_serve_twice_is_byte_identical(backend):
    results_a, report_a, sched_a = _run(backend)
    results_b, report_b, sched_b = _run(backend)
    assert sorted(results_a) == sorted(results_b)
    for rid in results_a:
        assert _digest(results_a[rid]) == _digest(results_b[rid]), rid
    assert report_a == report_b  # every metric, float-exact
    assert sched_a.trace == sched_b.trace
    assert sched_a.events == sched_b.events
    assert sched_a.occupancy == sched_b.occupancy
    assert sched_a.tenant_service == sched_b.tenant_service


def test_workload_is_contended_enough_to_matter():
    """The golden workload must actually exercise the interesting paths
    (aborts, prefix machinery, chunked prefill) or the determinism
    assertions above are vacuous."""
    results, report, sched = _run(BACKENDS[0])
    assert report["aborted_requests"] > 0
    assert report["completed_requests"] > 0
    assert sched.prefix_miss_blocks > 0  # sharing machinery engaged
    assert any(r.decode_outputs.shape[1] for r in results.values())
    assert sched.pool.used_block_count == 0


def test_retained_sets_agree_across_backends():
    if len(BACKENDS) < 2:
        pytest.skip("only one kernel backend available")
    runs = {backend: _run(backend) for backend in BACKENDS}
    reference_results, reference_report, _ = runs[BACKENDS[0]]
    for backend in BACKENDS[1:]:
        results, report, _ = runs[backend]
        for rid in reference_results:
            assert (
                results[rid].retained_bytes()
                == reference_results[rid].retained_bytes()
            ), f"{rid} retention differs between backends"
            np.testing.assert_array_equal(
                results[rid].decode_outputs, reference_results[rid].decode_outputs
            )
            assert results[rid].status == reference_results[rid].status
        assert report == reference_report
