"""Tests for the Fig. 22 address-mapping model."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.layout import Address, KBitPlaneLayout, RowMajorLayout, row_buffer_hit_rate


class TestBitPlaneLayout:
    def test_plane_to_bank(self):
        lay = KBitPlaneLayout()
        for plane in range(8):
            assert lay.locate(0, plane).bank == plane % lay.banks

    def test_consecutive_tokens_same_row(self):
        lay = KBitPlaneLayout(head_dim=64)  # 8 B per plane, 1024 B rows
        rows = {lay.locate(t, 0).row for t in range(128)}
        assert rows == {0}

    def test_streaming_one_plane_hits(self):
        lay = KBitPlaneLayout()
        addrs = lay.stream(range(2048), plane=3)
        assert row_buffer_hit_rate(addrs) > 0.98

    @given(st.integers(0, 10_000), st.integers(0, 7))
    def test_address_deterministic_and_in_range(self, token, plane):
        lay = KBitPlaneLayout()
        a = lay.locate(token, plane)
        assert 0 <= a.bank < lay.banks
        assert 0 <= a.column < lay.tech.hbm_row_bytes
        assert a == lay.locate(token, plane)


class TestRowMajorLayout:
    def test_sequential_reads_hit(self):
        lay = RowMajorLayout()
        addrs = [lay.locate(t) for t in range(512)]
        assert row_buffer_hit_rate(addrs) > 0.9

    def test_strided_gather_misses(self):
        """Fetching one bit plane per token without the custom layout
        strides across rows — the 'PADE w/o DL' pathology."""
        lay = RowMajorLayout()
        addrs = [lay.locate(t) for t in range(0, 4096, 61)]
        assert row_buffer_hit_rate(addrs) < 0.2


class TestHitRateReplay:
    def test_empty_stream(self):
        assert row_buffer_hit_rate([]) == 1.0

    def test_alternating_rows_thrash(self):
        addrs = [Address(bank=0, row=i % 2, column=0) for i in range(10)]
        assert row_buffer_hit_rate(addrs) == 0.0

    def test_distinct_banks_do_not_conflict(self):
        addrs = [Address(bank=i % 4, row=7, column=0) for i in range(8)]
        # after the 4 compulsory misses every access hits its bank's row
        assert row_buffer_hit_rate(addrs) == 0.5
