"""Additional accelerator-model tests: BitWave, GPU modes, workload edges."""

import pytest
from dataclasses import replace

from repro.accelerators import (
    AttentionWorkload, BitWaveModel, DenseAccelerator, GPUModel, PadeAnalyticModel,
    SangerModel, SofaModel, SpAttenModel,
)
from repro.accelerators.bitwave import simulate_bitwave_lanes
from repro.core.bsf import bsf_filter
from repro.core.bui_gf import guard_in_int_units
from repro.quant.bitplane import decompose_bitplanes
from repro.quant.integer import quantize_symmetric
from repro.sim.qkpu import simulate_qkpu


@pytest.fixture
def w():
    return AttentionWorkload(
        num_queries=1024, seq_len=1024, head_dim=64, num_heads=16, num_layers=24,
        oracle_keep=0.10, mean_planes=3.8,
    )


class TestBitWave:
    def test_cost_between_dense_and_pade(self, w):
        bw = BitWaveModel().cost(w)
        dense = DenseAccelerator().cost(w)
        pade = PadeAnalyticModel().cost(w)
        assert pade.total_energy_pj < bw.total_energy_pj <= dense.total_energy_pj * 1.2

    def test_no_token_sparsity(self, w):
        assert BitWaveModel().cost(w).keep_fraction == 1.0

    def test_lane_sim_lower_utilization_than_pade(self, medium_qkv):
        q, k, v = medium_qkv
        qi = quantize_symmetric(q)
        ki = quantize_symmetric(k)
        planes = decompose_bitplanes(ki.data)
        guard = guard_in_int_units(0.6, 5.0, float(qi.scale) * float(ki.scale) / 8.0)
        res = bsf_filter(qi.data, planes, guard)
        bw = simulate_bitwave_lanes(res.planes_processed, planes)
        pade = simulate_qkpu(res.planes_processed, planes)
        assert bw.useful_fraction < pade.useful_fraction
        assert bw.cycles > pade.cycles


class TestGPUModes:
    def test_fa3_without_bui_is_identity_on_energy_scale(self, w):
        # use_fa3 only modifies the BUI-GF path (paper measures FA3 on top
        # of the sparsity kernels); plain GPU ignores it
        plain = GPUModel().cost(w)
        fa3_only = GPUModel(use_fa3=True).cost(w)
        assert fa3_only.total_energy_pj == pytest.approx(plain.total_energy_pj)

    def test_bui_keep_fraction_reported(self, w):
        gf = GPUModel(use_bui_gf=True).cost(w)
        assert gf.keep_fraction == pytest.approx(w.oracle_keep)


class TestWorkloadEdges:
    def test_single_token_decode(self):
        w1 = AttentionWorkload(num_queries=1, seq_len=1024, decode=True)
        for cls in (DenseAccelerator, SangerModel, SofaModel, PadeAnalyticModel):
            r = cls().cost(w1)
            assert r.cycles > 0 and r.total_energy_pj > 0

    def test_keep_clamped_to_one(self):
        w_dense = AttentionWorkload(num_queries=64, seq_len=64, oracle_keep=0.9)
        assert SpAttenModel().keep_fraction(w_dense) == 1.0

    def test_mean_planes_clamped_to_bits(self):
        w_bad = AttentionWorkload(num_queries=64, seq_len=256, mean_planes=12.0)
        r = PadeAnalyticModel(exec_bits=8).cost(w_bad)
        assert r.cycles > 0  # clamped internally, no blow-up

    def test_gqa_kv_heads_default(self):
        w_mha = AttentionWorkload(num_queries=8, seq_len=128, num_heads=16)
        assert w_mha.kv_heads == 16

    def test_int4_halves_kv_traffic(self, w):
        r8 = PadeAnalyticModel(exec_bits=8).cost(w)
        r4 = PadeAnalyticModel(exec_bits=4).cost(replace(w, mean_planes=3.0))
        assert r4.dram_bytes < r8.dram_bytes


class TestResultReuseKnob:
    def test_no_reuse_triangular_refetch(self, w):
        reuse = PadeAnalyticModel(result_reuse=True).cost(w)
        no_reuse = PadeAnalyticModel(result_reuse=False).cost(w)
        assert no_reuse.dram_bytes > reuse.dram_bytes
        assert no_reuse.total_energy_pj > reuse.total_energy_pj
