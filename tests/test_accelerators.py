"""Tests for the analytic accelerator models (paper §VI comparisons)."""

import pytest

from repro.accelerators import (
    ALL_MODELS,
    AttentionWorkload,
    DenseAccelerator,
    DotaModel,
    EnergonModel,
    GPUModel,
    PadeAnalyticModel,
    SangerModel,
    SofaModel,
    SpAttenModel,
)


@pytest.fixture
def prefill_2k():
    return AttentionWorkload(
        num_queries=2048, seq_len=2048, head_dim=128, num_heads=32, num_layers=32,
        oracle_keep=0.11, mean_planes=3.9,
    )


@pytest.fixture
def decode_8k():
    return AttentionWorkload(
        num_queries=256, seq_len=8192, head_dim=128, num_heads=32, num_layers=32,
        oracle_keep=0.05, mean_planes=3.5, decode=True,
    )


ASIC_DESIGNS = [
    DenseAccelerator, SangerModel, SpAttenModel, EnergonModel, DotaModel, SofaModel,
    PadeAnalyticModel,
]


class TestSanity:
    @pytest.mark.parametrize("cls", ASIC_DESIGNS)
    def test_positive_costs(self, cls, prefill_2k):
        r = cls().cost(prefill_2k)
        assert r.cycles > 0 and r.total_energy_pj > 0 and r.dram_bytes > 0
        assert all(v >= 0 for v in r.energy_pj.values())

    @pytest.mark.parametrize("cls", ASIC_DESIGNS)
    def test_decode_scales_with_steps(self, cls, decode_8k):
        from dataclasses import replace

        short = cls().cost(replace(decode_8k, num_queries=64))
        long = cls().cost(decode_8k)
        assert long.total_energy_pj > short.total_energy_pj

    def test_features_table_complete(self):
        for name in ("sanger", "spatten", "energon", "dota", "sofa", "pade", "dense"):
            feats = ALL_MODELS[name].FEATURES
            assert {"computation", "memory", "predictor_free", "tiling"} <= set(feats)


class TestPaperOrderings:
    """The qualitative results of Figs. 14/18/21 that must hold."""

    def test_pade_most_energy_efficient(self, prefill_2k):
        pade = PadeAnalyticModel().cost(prefill_2k).total_energy_pj
        for cls in (DenseAccelerator, SangerModel, SpAttenModel, EnergonModel, DotaModel, SofaModel):
            assert cls().cost(prefill_2k).total_energy_pj > pade

    def test_pade_fastest(self, prefill_2k):
        pade = PadeAnalyticModel().cost(prefill_2k).cycles
        for cls in (DenseAccelerator, SangerModel, EnergonModel, SofaModel):
            assert cls().cost(prefill_2k).cycles >= pade * 0.99

    def test_pade_has_no_predictor_energy(self, prefill_2k):
        assert PadeAnalyticModel().cost(prefill_2k).predictor_energy_pj == 0.0

    def test_stage_splitters_pay_predictor(self, decode_8k):
        """In the generation phase (the paper's motivating regime) the
        predictor's full-K traffic is a first-order cost."""
        for cls in (SangerModel, EnergonModel, DotaModel, SofaModel):
            r = cls().cost(decode_8k)
            active = r.total_energy_pj - r.energy_pj.get("static", 0.0)
            assert r.predictor_energy_pj > 0.15 * (active - r.predictor_energy_pj)

    def test_sofa_best_of_predictor_designs(self, prefill_2k):
        sofa = SofaModel().cost(prefill_2k).total_energy_pj
        for cls in (SangerModel, SpAttenModel, EnergonModel, DotaModel):
            assert cls().cost(prefill_2k).total_energy_pj > sofa

    def test_spatten_finetune_recovers_sparsity(self, prefill_2k):
        raw = SpAttenModel().cost(prefill_2k)
        tuned = SpAttenModel(finetuned=True).cost(prefill_2k)
        assert tuned.keep_fraction < raw.keep_fraction
        assert tuned.total_energy_pj < raw.total_energy_pj

    def test_predictor_ratio_grows_with_seqlen(self):
        """Fig. 2(b): predictor/executor ratio increases with SL."""
        ratios = []
        for s in (1024, 4096, 16384):
            w = AttentionWorkload(num_queries=s, seq_len=s, head_dim=128,
                                  oracle_keep=0.11 * (1024 / s) ** 0.5, mean_planes=3.9)
            r = SangerModel().cost(w)
            ratios.append(r.predictor_energy_pj / r.executor_energy_pj)
        assert ratios[0] < ratios[-1]

    def test_gqa_reduces_pade_traffic(self, prefill_2k):
        from dataclasses import replace

        mha = PadeAnalyticModel().cost(prefill_2k)
        gqa = PadeAnalyticModel().cost(replace(prefill_2k, num_kv_heads=8))
        assert gqa.dram_bytes < mha.dram_bytes


class TestGPUAnchoring:
    def test_asic_anchors(self, prefill_2k):
        gpu = GPUModel().cost(prefill_2k)
        dense = DenseAccelerator().cost(prefill_2k)
        assert gpu.total_energy_pj == pytest.approx(4.0 * dense.total_energy_pj)
        assert gpu.cycles == pytest.approx(1.5 * dense.cycles)

    def test_software_modes_match_fig18(self, prefill_2k):
        gpu = GPUModel().cost(prefill_2k)
        gf = GPUModel(use_bui_gf=True).cost(prefill_2k)
        fa3 = GPUModel(use_bui_gf=True, use_fa3=True).cost(prefill_2k)
        assert gf.cycles / gpu.cycles == pytest.approx(0.92, abs=0.01)
        assert fa3.cycles / gpu.cycles == pytest.approx(0.86, abs=0.01)
        assert gpu.total_energy_pj / gf.total_energy_pj == pytest.approx(1.3, rel=0.01)
        assert gpu.total_energy_pj / fa3.total_energy_pj == pytest.approx(3.1, rel=0.01)

    def test_pade_vs_gpu_headline(self, prefill_2k):
        """Fig. 18/19 headline: several-fold speedup, tens-fold efficiency."""
        gpu = GPUModel().cost(prefill_2k)
        pade = PadeAnalyticModel().cost(prefill_2k)
        speedup = gpu.cycles / pade.cycles
        egain = gpu.total_energy_pj / pade.total_energy_pj
        assert 3.0 < speedup < 20.0
        assert 10.0 < egain < 60.0


class TestWorkloadProperties:
    def test_dense_ops_definition(self, prefill_2k):
        w = prefill_2k
        assert w.dense_macs == 2 * w.num_queries * w.seq_len * w.num_heads * w.num_layers * w.head_dim

    def test_kv_bytes_scale_with_bits(self, prefill_2k):
        assert prefill_2k.kv_bytes(4) == prefill_2k.kv_bytes(8) / 2

    def test_report_metrics(self, prefill_2k):
        r = PadeAnalyticModel().cost(prefill_2k)
        assert r.throughput_gops(prefill_2k) > 0
        assert r.gops_per_watt(prefill_2k) > 0
