"""Tests for the HBM2 and SRAM models."""

import pytest

from repro.sim.dram import DataLayout, HBMModel
from repro.sim.sram import SramBuffer
from repro.sim.tech import DEFAULT_TECH


@pytest.fixture
def hbm():
    return HBMModel()


class TestHitRates:
    def test_bit_plane_layout_mostly_hits(self, hbm):
        hr = hbm.hit_rate(DataLayout.BIT_PLANE_FIRST, access_bytes=8)
        assert hr > 0.99

    def test_strided_gather_always_misses(self, hbm):
        hr = hbm.hit_rate(DataLayout.ROW_MAJOR, access_bytes=8, stride_bytes=4096)
        assert hr == 0.0

    def test_sequential_rows_mostly_hit(self, hbm):
        assert hbm.hit_rate(DataLayout.ROW_MAJOR, access_bytes=64) == pytest.approx(1 - 64 / 1024)


class TestStreams:
    def test_energy_is_4pj_per_bit_plus_activations(self, hbm):
        s = hbm.stream(100, 32, hit_rate=1.0)
        assert s.energy_pj == pytest.approx(100 * 32 * 8 * 4.0)
        s2 = hbm.stream(100, 32, hit_rate=0.0)
        assert s2.energy_pj > s.energy_pj

    def test_bandwidth_bound_cycles(self, hbm):
        s = hbm.stream(10_000, 32, hit_rate=1.0)
        expected = 10_000 * 32 / DEFAULT_TECH.hbm_bytes_per_cycle
        assert s.cycles == pytest.approx(expected)

    def test_latency_bound_without_overlap(self, hbm):
        hit = hbm.stream(100, 8, hit_rate=0.0, overlap_latency=False)
        overlapped = hbm.stream(100, 8, hit_rate=0.0, overlap_latency=True)
        assert hit.cycles == pytest.approx(100 * DEFAULT_TECH.hbm_trc_cycles)
        assert overlapped.cycles < hit.cycles

    def test_merge_adds_fields(self, hbm):
        a = hbm.stream(10, 8, 1.0)
        b = hbm.stream(20, 8, 0.5)
        m = a.merge(b)
        assert m.bytes_transferred == a.bytes_transferred + b.bytes_transferred
        assert m.accesses == 30

    def test_custom_layout_cheaper_than_row_major_gather(self, hbm):
        custom = hbm.read_bit_planes(1000, head_dim=64, custom_layout=True)
        naive = hbm.read_bit_planes(1000, head_dim=64, custom_layout=False)
        assert custom.cycles < naive.cycles
        assert custom.activations < naive.activations
        assert custom.energy_pj < naive.energy_pj

    def test_write_rows(self, hbm):
        s = hbm.write_rows(16, 128)
        assert s.bytes_transferred == 2048


class TestSram:
    def test_allocation_and_spill(self):
        buf = SramBuffer("kv", capacity_bytes=100)
        assert buf.allocate(60) == 0
        assert buf.allocate(60) == 20  # 20 bytes spill
        assert buf.spilled_bytes == 20
        assert buf.utilization == 1.0

    def test_release(self):
        buf = SramBuffer("kv", capacity_bytes=100)
        buf.allocate(80)
        buf.release(50)
        assert buf.occupied_bytes == 30
        buf.release(100)
        assert buf.occupied_bytes == 0

    def test_energy_accounting(self):
        buf = SramBuffer("q", capacity_bytes=1024)
        buf.read(100)
        buf.write(50)
        expected = 100 * DEFAULT_TECH.sram_read_pj_per_byte + 50 * DEFAULT_TECH.sram_write_pj_per_byte
        assert buf.energy_pj == pytest.approx(expected)


class TestTechConfig:
    def test_peak_bandwidth(self):
        assert DEFAULT_TECH.hbm_total_gbps == 256.0

    def test_trc_cycles(self):
        assert DEFAULT_TECH.hbm_trc_cycles == 40  # 50 ns at 800 MHz

    def test_lane_count(self):
        assert DEFAULT_TECH.num_lanes == 128
