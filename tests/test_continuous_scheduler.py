"""Continuous scheduler: trace invariants, preemption, policy, timing.

The invariants ISSUE 2 pins down:

* no request decodes before its arrival time;
* the active set never exceeds ``max_active`` and pool usage never
  exceeds the token budget;
* preempted requests still finish, with retained sets byte-identical to
  an uncontended (ample-budget) run;
* with every arrival at 0, ``fcfs`` and an uncontended pool, the event
  trace reduces exactly to the old lockstep :class:`EngineScheduler`.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.engine import ContinuousScheduler, PadeEngine
from repro.eval.serving_metrics import summarize_serving, timing_from_result
from repro.eval.workloads import build_engine_request, build_serving_workload


def _timed_request(i, arrival, context=20, steps=8, num_heads=2, head_dim=8):
    return build_engine_request(
        f"q{i}", num_heads, context, steps, head_dim=head_dim,
        seed=100 + i, arrival_time=arrival,
    )


def _serve(requests, **kwargs):
    engine = PadeEngine()
    results = engine.serve(requests, **kwargs)
    return results, engine.last_serve


class TestArrivalSemantics:
    def test_no_decode_before_arrival(self):
        requests = [_timed_request(i, arrival=2.5 * i) for i in range(4)]
        _, sched = _serve(requests, token_budget=4096, block_size=8)
        arrivals = {r.request_id: r.arrival_time for r in requests}
        decoded = set()
        for time, event, ids in sched.events:
            if event in ("prefill", "decode_round"):
                for rid in ids:
                    assert arrivals[rid] <= time, (rid, event, time)
                    decoded.add(rid)
        assert decoded == set(arrivals)

    def test_admission_at_round_boundaries_not_drain(self):
        """A request arriving mid-batch is admitted as soon as a slot frees,
        not when the whole batch drains."""
        requests = [
            _timed_request(0, arrival=0.0, steps=4),
            _timed_request(1, arrival=0.0, steps=12),
            _timed_request(2, arrival=1.0, steps=4),
        ]
        res, _ = _serve(requests, max_active=2, token_budget=4096, block_size=8)
        # q0 finishes after 4 rounds; q2 must start right then, while q1
        # (12 steps) is still decoding.
        assert res["q2"].admit_time < res["q1"].finish_time

    def test_idle_clock_fast_forwards_to_next_arrival(self):
        res, _ = _serve([_timed_request(0, arrival=7.0)], token_budget=1024, block_size=8)
        assert res["q0"].admit_time == 7.0
        assert res["q0"].first_token_time == 8.0

    def test_arrival_time_validation(self):
        with pytest.raises(ValueError):
            dataclasses.replace(_timed_request(0, arrival=0.0), arrival_time=-1.0)


class TestBudgetInvariants:
    def test_active_and_pool_bounded(self):
        requests = [_timed_request(i, arrival=0.5 * i, steps=10) for i in range(6)]
        _, sched = _serve(
            requests, max_active=3, token_budget=96, block_size=4
        )
        budget = sched.pool.token_budget
        for _, used, active in sched.occupancy:
            assert active <= 3
            assert used <= budget

    def test_unserveable_request_rejected_up_front(self):
        big = _timed_request(0, arrival=0.0, context=200, steps=50)
        engine = PadeEngine()
        with pytest.raises(ValueError, match="never be served"):
            engine.serve([big], token_budget=64, block_size=8)

    def test_lone_request_completes_at_exact_budget(self):
        # The footprint guard admits a request whose peak usage equals the
        # budget exactly; running alone it must finish without preemption.
        req = _timed_request(0, arrival=0.0, context=30, steps=8)
        engine = PadeEngine()
        results = engine.serve([req], token_budget=40, block_size=4)
        assert results["q0"].final_length == 38
        assert results["q0"].preemptions == 0


class TestPreemption:
    def _contended(self):
        return [_timed_request(i, arrival=float(i), context=20, steps=12) for i in range(3)]

    def test_preempted_requests_finish_with_identical_retention(self):
        tight, tight_sched = _serve(
            self._contended(), max_active=4, token_budget=48, block_size=4
        )
        ample, _ = _serve(
            self._contended(), max_active=4, token_budget=4096, block_size=4
        )
        preempts = [ids for event, ids in tight_sched.trace if event == "preempt"]
        assert preempts, "workload was expected to trigger preemption"
        assert set(tight) == set(ample)
        for rid in ample:
            assert tight[rid].retained_bytes() == ample[rid].retained_bytes()
            np.testing.assert_array_equal(
                tight[rid].decode_outputs, ample[rid].decode_outputs
            )
        preempted_ids = {ids[0] for ids in preempts}
        assert any(tight[rid].preemptions > 0 for rid in preempted_ids)

    def test_preemption_evicts_youngest(self):
        _, sched = _serve(self._contended(), max_active=4, token_budget=48, block_size=4)
        admitted_before = []
        for event, ids in sched.trace:
            if event == "prefill":
                admitted_before.append(ids[0])
            elif event == "preempt":
                # The victim is always the most recently admitted live request.
                assert ids[0] == admitted_before[-1]

    def test_preempted_blocks_are_freed(self):
        _, sched = _serve(self._contended(), max_active=4, token_budget=48, block_size=4)
        assert sched.pool.used_block_count == 0  # everything released at the end


class TestPolicies:
    def test_fcfs_reduces_to_lockstep_trace_on_ample_pool(self):
        reqs = [build_engine_request(f"r{i}", 2, 24, 3, head_dim=8, seed=i) for i in range(3)]
        lock = PadeEngine(max_active=2)
        for r in reqs:
            lock.submit(r)
        lock_results = lock.run()
        cont = PadeEngine()
        cont_results = cont.serve(reqs, max_active=2, token_budget=4096, block_size=8)
        assert cont.last_serve.trace == lock.schedule_trace
        for rid in lock_results:
            assert (
                lock_results[rid].retained_bytes() == cont_results[rid].retained_bytes()
            )
            np.testing.assert_array_equal(
                lock_results[rid].decode_outputs, cont_results[rid].decode_outputs
            )

    def test_shortest_prompt_reorders_admission(self):
        engine = PadeEngine()
        long_req = build_engine_request("long", 2, 60, 2, head_dim=8, seed=1)
        short_req = build_engine_request("short", 2, 12, 2, head_dim=8, seed=2)
        results = engine.serve(
            [long_req, short_req], max_active=1, token_budget=1024,
            block_size=8, policy="shortest-prompt",
        )
        assert results["short"].admit_time < results["long"].admit_time

    def test_fcfs_respects_arrival_order_over_submission_order(self):
        late = _timed_request(0, arrival=3.0)
        early = _timed_request(1, arrival=0.0)
        results, _ = _serve([late, early], max_active=1, token_budget=1024, block_size=8)
        assert results["q1"].admit_time < results["q0"].admit_time

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            ContinuousScheduler(PadeEngine(), policy="round-robin")
        with pytest.raises(ValueError, match="admission"):
            ContinuousScheduler(PadeEngine(), admission="static")

    def test_duplicate_request_id_rejected(self):
        sched = ContinuousScheduler(PadeEngine())
        sched.submit(_timed_request(0, arrival=0.0))
        with pytest.raises(ValueError, match="q0"):
            sched.submit(_timed_request(0, arrival=0.0))

    def test_mixed_shapes_rejected(self):
        sched = ContinuousScheduler(PadeEngine(), token_budget=1024, block_size=8)
        sched.submit(_timed_request(0, arrival=0.0, num_heads=2))
        sched.submit(_timed_request(1, arrival=0.0, num_heads=3))
        with pytest.raises(ValueError, match="shape"):
            sched.run()


class TestAttentionPolicyInteractions:
    """Policy × engine-feature invariants (ISSUE 4).

    Preemption restart and charged-footprint admission must compose with
    non-PADE policies: a restarted request replays its deterministic
    tensors through a freshly rebuilt policy state, so retained sets are
    invariant; bounded-footprint policies admit more concurrency under
    the same budget without ever physically exhausting the pool.
    """

    def _contended(self):
        return [_timed_request(i, arrival=float(i), context=20, steps=12) for i in range(3)]

    @pytest.mark.parametrize("policy", ["quest", "topk-oracle", "double-sparsity"])
    def test_preemption_retained_invariance_non_pade(self, policy):
        def serve(budget):
            engine = PadeEngine(policy=policy)
            results = engine.serve(
                self._contended(), max_active=4, token_budget=budget, block_size=4
            )
            return results, engine.last_serve

        tight, tight_sched = serve(48)
        ample, _ = serve(4096)
        preempts = [ids for event, ids in tight_sched.trace if event == "preempt"]
        assert preempts, "workload was expected to trigger preemption"
        for rid in ample:
            assert tight[rid].retained_bytes() == ample[rid].retained_bytes()
            np.testing.assert_array_equal(
                tight[rid].decode_outputs, ample[rid].decode_outputs
            )

    def test_bounded_policy_admits_more_than_dense(self):
        def peak_active(policy):
            requests = [
                _timed_request(i, arrival=0.0, context=32, steps=8, head_dim=8)
                for i in range(6)
            ]
            engine = PadeEngine(policy=policy)
            engine.serve(requests, max_active=6, token_budget=128, block_size=8)
            return max(active for _, _, active in engine.last_serve.occupancy)

        assert peak_active("h2o") > peak_active("pade")

    def test_charged_occupancy_stays_within_budget(self):
        requests = [_timed_request(i, arrival=0.0, context=24, steps=6) for i in range(5)]
        engine = PadeEngine(policy="streaming-llm")
        engine.serve(requests, max_active=5, token_budget=96, block_size=8)
        sched = engine.last_serve
        for _, used, _ in sched.occupancy:
            assert used <= 96
        # The physical pool was oversized to keep every key resident for
        # exact replay; nothing leaks at the end either way.
        assert sched.pool.used_block_count == 0

    def test_unserveable_charge_rejected_up_front(self):
        # h2o's *charged* footprint fits budgets its dense context cannot.
        big = _timed_request(0, arrival=0.0, context=200, steps=50)
        dense_engine = PadeEngine()
        with pytest.raises(ValueError, match="never be served"):
            dense_engine.serve([big], token_budget=64, block_size=8)
        bounded = PadeEngine(policy="h2o")  # budget_fraction 0.25 -> ~63 tokens
        results = bounded.serve(
            [_timed_request(0, arrival=0.0, context=200, steps=50)],
            token_budget=64, block_size=8,
        )
        assert results["q0"].final_length == 250

    def test_policy_columns_in_serving_report(self):
        requests = [_timed_request(i, arrival=0.0, steps=4) for i in range(2)]
        engine = PadeEngine(policy="quest")
        results = engine.serve(requests, token_budget=1024, block_size=8)
        report = summarize_serving(results.values(), scheduler=engine.last_serve)
        assert 0.0 < report["policy_sparsity"] < 1.0
        assert report["policy_prediction_cost"] > 0.0
        assert report["policy_sparsity_level"] == pytest.approx(
            report["policy_prediction_cost"] + report["policy_execution_cost"]
        )


class TestTimingAndMetrics:
    def test_result_timing_fields(self):
        requests = [_timed_request(i, arrival=2.0 * i, steps=5) for i in range(3)]
        results, sched = _serve(requests, token_budget=2048, block_size=8)
        for res in results.values():
            assert res.admit_time >= res.arrival_time
            assert res.first_token_time is not None
            assert res.first_token_time > res.admit_time
            assert res.finish_time >= res.first_token_time
            timing = timing_from_result(res)
            assert timing.ttft >= 1.0
            assert timing.queueing_delay >= 0.0
            assert timing.decode_tokens == 5

    def test_prefill_only_request_gets_first_token_at_admission(self):
        req = build_engine_request(
            "p", 2, 16, 0, head_dim=8, prompt_queries=2, arrival_time=1.0
        )
        results, _ = _serve([req], token_budget=1024, block_size=8)
        res = results["p"]
        assert res.prefill_output is not None
        assert res.first_token_time == res.admit_time + 1.0
        assert res.decode_outputs.shape[1] == 0

    def test_summarize_serving_report(self):
        workload = build_serving_workload(
            5, 2, 24, 6, 8, rate=0.5, seed=3
        )
        results, sched = _serve(workload, token_budget=1024, block_size=8)
        report = summarize_serving(
            results.values(), occupancy=sched.occupancy,
            token_budget=sched.pool.token_budget,
        )
        assert report["requests"] == 5.0
        assert report["mean_ttft"] >= 1.0
        assert report["p99_ttft"] >= report["p50_ttft"]
        assert 0.0 < report["peak_pool_occupancy"] <= 1.0
        assert report["generated_tokens"] == 30.0
        assert report["throughput_tokens_per_round"] > 0.0


class TestIdleGapOccupancy:
    """Regression: occupancy means over a sparse-arrival trace.

    The scheduler fast-forwards its clock across idle gaps without
    executing rounds.  The gap must still show up in the occupancy
    timeline (an explicit zero-active sample at the next arrival) and
    the report's means must be time-weighted — otherwise a mostly-idle
    trace reports a mostly-busy pool.
    """

    def test_fast_forward_leaves_a_gap_sample(self):
        requests = [
            _timed_request(0, arrival=0.0, steps=4),
            _timed_request(1, arrival=100.0, steps=4),
        ]
        _, sched = _serve(requests, token_budget=1024, block_size=8)
        gap = [(t, u, a) for t, u, a in sched.occupancy if a == 0]
        assert any(t == 100.0 and u == 0 for t, u, _ in gap), sched.occupancy

    def test_sparse_arrivals_do_not_overweight_busy_periods(self):
        requests = [
            _timed_request(0, arrival=0.0, steps=4),
            _timed_request(1, arrival=100.0, steps=4),
        ]
        res, sched = _serve(requests, token_budget=1024, block_size=8)
        report = summarize_serving(
            res.values(), occupancy=sched.occupancy,
            token_budget=sched.pool.token_budget,
        )
        # ~12 busy rounds out of a ~110-round span: the trace is idle
        # more than 80% of the time and the means must say so.
        unweighted_active = float(
            np.mean([a for _, _, a in sched.occupancy])
        )
        assert unweighted_active > 0.5  # the naive per-sample mean lies
        assert report["mean_active_requests"] < 0.25
        assert report["peak_active_requests"] == 1.0
        assert report["mean_pool_occupancy"] < 0.25 * report["peak_pool_occupancy"]
