"""Tests for the MX-format BUI extension (paper Fig. 25)."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.mx import build_mx_bui_lut, mx_partial_score, mx_score_bounds
from repro.quant.bitplane import decompose_bitplanes
from repro.quant.mxint import quantize_mxint


def _mx_pair(rng, rows=3, keys=8, dim=64):
    q = rng.normal(size=(rows, dim)) * rng.uniform(0.5, 3.0, size=(rows, 1))
    k = rng.normal(size=(keys, dim)) * rng.uniform(0.5, 3.0, size=(keys, 1))
    return quantize_mxint(q), quantize_mxint(k)


class TestMXSoundness:
    @given(st.integers(0, 1 << 16), st.sampled_from([1, 2, 3, 5, 8]))
    def test_exact_float_score_within_bounds(self, seed, planes_known):
        rng = np.random.default_rng(seed)
        q_mx, k_mx = _mx_pair(rng)
        exact = q_mx.dequantize() @ k_mx.dequantize().T
        for qi in range(2):
            for kj in range(4):
                lo, hi = mx_score_bounds(q_mx, k_mx, qi, kj, planes_known)
                assert lo - 1e-9 <= exact[qi, kj] <= hi + 1e-9

    def test_bounds_tighten_to_exact_at_lsb(self, rng):
        q_mx, k_mx = _mx_pair(rng)
        exact = q_mx.dequantize() @ k_mx.dequantize().T
        lo, hi = mx_score_bounds(q_mx, k_mx, 0, 0, 8)
        assert lo == hi
        np.testing.assert_allclose(lo, exact[0, 0], rtol=1e-12)

    def test_interval_width_decreases(self, rng):
        q_mx, k_mx = _mx_pair(rng)
        widths = []
        for r in range(1, 9):
            lo, hi = mx_score_bounds(q_mx, k_mx, 0, 0, r)
            widths.append(hi - lo)
        assert all(a >= b for a, b in zip(widths, widths[1:]))


class TestGroupScaling:
    def test_lut_masses_per_group(self, rng):
        q_mx, _ = _mx_pair(rng)
        lut = build_mx_bui_lut(q_mx)
        assert lut.pos_mass.shape == (3, 2)
        assert np.all(lut.pos_mass >= 0)
        assert np.all(lut.neg_mass <= 0)

    def test_interval_is_sum_of_group_intervals(self, rng):
        """Fig. 25(b) step 2: the overall BUI adds the group BUIs."""
        q_mx, k_mx = _mx_pair(rng)
        lut = build_mx_bui_lut(q_mx)
        q_scales = np.atleast_2d(q_mx.scales)[0]
        k_scales = np.atleast_2d(k_mx.scales)[0]
        i_min, i_max = lut.interval(0, k_scales, q_scales, planes_known=2)
        # recompute group-by-group
        from repro.quant.bitplane import unknown_weight_sum

        w = unknown_weight_sum(8, 2)
        manual_min = manual_max = 0.0
        for g in range(2):
            coupling = q_scales[g] * k_scales[g]
            manual_min += w * coupling * lut.neg_mass[0, g]
            manual_max += w * coupling * lut.pos_mass[0, g]
        np.testing.assert_allclose(i_min, manual_min, rtol=1e-12)
        np.testing.assert_allclose(i_max, manual_max, rtol=1e-12)

    def test_partial_score_uses_group_coupling(self, rng):
        q_mx, k_mx = _mx_pair(rng)
        k_data = np.atleast_2d(k_mx.data)
        planes = decompose_bitplanes(k_data[0], bits=8)
        full = mx_partial_score(
            np.atleast_2d(q_mx.data)[0], planes,
            np.atleast_2d(q_mx.scales)[0], np.atleast_2d(k_mx.scales)[0],
            q_mx.group_size, planes_known=8,
        )
        exact = float(q_mx.dequantize()[0] @ k_mx.dequantize()[0])
        np.testing.assert_allclose(full, exact, rtol=1e-12)
