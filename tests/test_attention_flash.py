"""Tests for tiled online-softmax (FlashAttention-semantics) attention."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.attention.dense import dense_attention
from repro.attention.flash import flash_attention
from repro.attention.masks import causal_mask


class TestEquivalence:
    @given(st.integers(0, 2**16), st.sampled_from([1, 3, 16, 64, 100]))
    def test_matches_dense(self, seed, tile):
        rng = np.random.default_rng(seed)
        q = rng.normal(size=(4, 8))
        k = rng.normal(size=(20, 8))
        v = rng.normal(size=(20, 8))
        np.testing.assert_allclose(
            flash_attention(q, k, v, tile_size=tile), dense_attention(q, k, v), rtol=1e-9
        )

    def test_matches_dense_with_mask(self, rng):
        q = rng.normal(size=(6, 8))
        k = rng.normal(size=(24, 8))
        v = rng.normal(size=(24, 8))
        mask = causal_mask(6, 24, query_offset=18)
        np.testing.assert_allclose(
            flash_attention(q, k, v, tile_size=5, mask=mask),
            dense_attention(q, k, v, mask=mask),
            rtol=1e-9,
        )

    def test_fully_masked_tile_handled(self, rng):
        q = rng.normal(size=(2, 4))
        k = rng.normal(size=(8, 4))
        v = rng.normal(size=(8, 4))
        mask = np.zeros((2, 8), dtype=bool)
        mask[:, :4] = True  # second tile fully masked at tile_size=4
        np.testing.assert_allclose(
            flash_attention(q, k, v, tile_size=4, mask=mask),
            dense_attention(q, k, v, mask=mask),
            rtol=1e-9,
        )

    def test_fully_masked_row_is_zero(self, rng):
        q = rng.normal(size=(1, 4))
        k, v = rng.normal(size=(4, 4)), rng.normal(size=(4, 4))
        mask = np.zeros((1, 4), dtype=bool)
        out = flash_attention(q, k, v, tile_size=2, mask=mask)
        np.testing.assert_array_equal(out, np.zeros((1, 4)))


class TestStats:
    def test_tile_and_row_counters(self, rng):
        q = rng.normal(size=(2, 4))
        k, v = rng.normal(size=(10, 4)), rng.normal(size=(10, 4))
        out, stats = flash_attention(q, k, v, tile_size=4, return_stats=True)
        assert stats.tiles == 3
        assert stats.k_rows_loaded == 10
        assert stats.v_rows_loaded == 10
        assert out.shape == (2, 4)

    def test_ascending_scores_update_max_every_tile(self):
        """Left-to-right over ascending logits forces a max update per tile
        — the pathology head-tail interleaving avoids (Fig. 10)."""
        q = np.array([[1.0, 0, 0, 0]])
        keys = np.stack([np.array([x, 0, 0, 0]) for x in np.linspace(0.1, 8.0, 8)])
        v = np.ones((8, 4))
        _, stats = flash_attention(q, keys, v, tile_size=1, scale=1.0, return_stats=True)
        assert stats.max_updates == 7  # every tile after the first
