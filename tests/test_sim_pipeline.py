"""Tests for the staggered-pipeline model (§V-D / Fig. 24b)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.pipeline import staggered_tiles, system_interleave, two_stage_pipeline

durations = st.lists(st.floats(0.1, 100), min_size=1, max_size=20)


class TestTwoStagePipeline:
    def test_single_item_serializes(self):
        r = two_stage_pipeline([3.0], [5.0])
        assert r.makespan == 8.0
        assert r.throughput_gain == 1.0

    def test_balanced_stream_approaches_2x(self):
        r = two_stage_pipeline([1.0] * 100, [1.0] * 100)
        assert r.makespan == pytest.approx(101.0)
        assert r.throughput_gain > 1.9

    def test_bottleneck_stage_dominates(self):
        r = two_stage_pipeline([1.0] * 50, [4.0] * 50)
        assert r.makespan == pytest.approx(1.0 + 4.0 * 50)
        assert r.bubbles[0] > r.bubbles[1]

    @given(durations, st.data())
    def test_makespan_bounds(self, a, data):
        b = data.draw(st.lists(st.floats(0.1, 100), min_size=len(a), max_size=len(a)))
        r = two_stage_pipeline(a, b)
        # never better than the busier stage, never worse than full serial
        assert r.makespan >= max(sum(a), sum(b)) - 1e-9
        assert r.makespan <= sum(a) + sum(b) + 1e-9

    @given(durations, st.data())
    def test_item_finishes_monotone(self, a, data):
        b = data.draw(st.lists(st.floats(0.1, 100), min_size=len(a), max_size=len(a)))
        r = two_stage_pipeline(a, b)
        assert all(x < y for x, y in zip(r.item_finish, r.item_finish[1:])) or len(a) == 1

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            two_stage_pipeline([1.0], [1.0, 2.0])


class TestPaperInstances:
    def test_tile_staggering_hides_vpu(self):
        """With the 8:1 QK:V throughput ratio (Table III), the V-PU hides
        almost entirely behind the QK-PU at typical sparsity."""
        rng = np.random.default_rng(0)
        qk = list(rng.uniform(8, 12, size=64))
        vpu = list(rng.uniform(1, 2, size=64))
        r = staggered_tiles(qk, vpu)
        assert r.makespan < sum(qk) * 1.05  # V-PU nearly free

    def test_system_interleave_steady_state(self):
        """Fig. 24(b): two interleaved sequences approach max(GPU, PADE)
        per-sequence latency instead of the sum."""
        r = system_interleave(gpu_time_per_seq=10.0, pade_time_per_seq=8.0, num_sequences=50)
        per_seq = r.makespan / 50
        assert per_seq == pytest.approx(10.0, rel=0.05)
        serial = (10.0 + 8.0)
        assert serial / per_seq > 1.7
