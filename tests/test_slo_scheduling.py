"""SLO-aware multi-tenant scheduling: policies, deadlines, scenarios.

What ISSUE 5 pins down:

* the :class:`SchedulingPolicy` registry resolves names and instances,
  and each policy orders admission the way its contract says (fcfs
  arrival, priority strict-with-aging, edf earliest deadline, fair
  least-served tenant);
* preemption victim selection is priority-aware — lowest class first,
  never a deadline-endangered request while a safer pick exists;
* deadline / queue-timeout / cancellation aborts report
  ``status="aborted"`` with the right reason and free every pool block
  (including mid-chunked-prefill);
* all four scenario generators are seed-deterministic and serve cleanly
  end to end;
* the serving report carries the new SLO currency (per-class tails,
  abort counts, deadline-miss rate, Jain tenant fairness).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    SCHEDULER_POLICY_REGISTRY,
    SCHEDULING_POLICIES,
    ContinuousScheduler,
    EdfPolicy,
    EngineRequest,
    FcfsPolicy,
    PadeEngine,
    PriorityPolicy,
    resolve_scheduling_policy,
)
from repro.engine.scheduler import _RequestState
from repro.eval.serving_metrics import (
    jain_fairness_index,
    summarize_serving,
    timing_from_result,
)
from repro.eval.workloads import (
    SCENARIO_KINDS,
    TenantSpec,
    build_engine_request,
    build_scenario_workload,
    bursty_arrival_times,
    default_tenant_specs,
    diurnal_arrival_times,
)


def _req(rid, context=8, steps=2, arrival=0.0, seed=0, **slo):
    return build_engine_request(
        rid, 2, context, steps, head_dim=8, seed=seed, arrival_time=arrival, **slo
    )


def _serve(requests, **kwargs):
    engine = PadeEngine()
    results = engine.serve(requests, **kwargs)
    return results, engine.last_serve


def _admit_order(scheduler):
    return [ids[0] for ev, ids in scheduler.trace if ev in ("prefill", "admit")]


class TestPolicyRegistry:
    def test_names_and_resolution(self):
        assert set(SCHEDULING_POLICIES) == {
            "fcfs", "shortest-prompt", "priority", "edf", "fair",
        }
        for name, cls in SCHEDULER_POLICY_REGISTRY.items():
            resolved = resolve_scheduling_policy(name)
            assert isinstance(resolved, cls) and resolved.name == name
        custom = PriorityPolicy(aging_rounds=4)
        assert resolve_scheduling_policy(custom) is custom

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            ContinuousScheduler(PadeEngine(), policy="wfq2")
        with pytest.raises(ValueError, match=">= 0"):
            PriorityPolicy(aging_rounds=-1)

    def test_scheduler_reports_policy_name(self):
        sched = ContinuousScheduler(PadeEngine(), policy=EdfPolicy())
        assert sched.policy == "edf"

    def test_slo_field_validation(self):
        with pytest.raises(ValueError, match="priority"):
            _req("a", **{"priority": -1})
        with pytest.raises(ValueError, match="deadline_ms"):
            _req("b", **{"deadline_ms": 0.0})
        with pytest.raises(ValueError, match="max_queue_ms"):
            _req("c", **{"max_queue_ms": -1.0})
        assert _req("d", arrival=3.0, **{"deadline_ms": 5.0}).deadline_at == 8.0
        assert _req("e").deadline_at is None


class TestPriorityScheduling:
    def test_strict_classes_admit_high_first(self):
        reqs = [_req(f"p{p}", seed=p, priority=p) for p in (0, 2, 1)]
        _, sched = _serve(reqs, max_active=1, token_budget=256, policy="priority")
        assert _admit_order(sched) == ["p2", "p1", "p0"]
        # fcfs on the same workload keeps submission order.
        _, sched = _serve(reqs, max_active=1, token_budget=256, policy="fcfs")
        assert _admit_order(sched) == ["p0", "p2", "p1"]

    def test_aging_prevents_starvation(self):
        def run(policy):
            reqs = [_req("low", steps=2, priority=0)]
            reqs += [
                _req(f"high{i}", steps=2, arrival=float(i), seed=i + 1, priority=3)
                for i in range(6)
            ]
            results, sched = _serve(
                reqs, max_active=1, token_budget=256, policy=policy
            )
            return results["low"].admit_time, _admit_order(sched)

        strict_admit, strict_order = run(PriorityPolicy(aging_rounds=0))
        aged_admit, aged_order = run(PriorityPolicy(aging_rounds=1))
        assert strict_order[-1] == "low"  # pure strict: starved to the end
        assert aged_order[-1] != "low"  # aging promoted it past the stream
        assert aged_admit < strict_admit


class TestEdfScheduling:
    def test_earliest_deadline_first_then_fcfs(self):
        reqs = [
            _req("loose", seed=1, deadline_ms=500.0),
            _req("tight", seed=2, deadline_ms=100.0),
            _req("none", seed=3),
        ]
        _, sched = _serve(reqs, max_active=1, token_budget=256, policy="edf")
        assert _admit_order(sched) == ["tight", "loose", "none"]


class TestFairScheduling:
    def test_least_served_tenant_wins_admission(self):
        reqs = [
            _req(f"a{i}", steps=4, seed=i, tenant="A") for i in range(4)
        ] + [_req("b0", steps=4, seed=9, tenant="B")]
        _, fcfs_sched = _serve(reqs, max_active=1, token_budget=256, policy="fcfs")
        assert _admit_order(fcfs_sched).index("b0") == 4
        _, fair_sched = _serve(reqs, max_active=1, token_budget=256, policy="fair")
        # After A's first request is served, B (zero service) outranks A.
        assert _admit_order(fair_sched).index("b0") == 1
        assert set(fair_sched.tenant_service) == {"A", "B"}

    def test_tenant_weights_tilt_service(self):
        reqs = [
            _req(f"a{i}", steps=4, seed=i, tenant="A") for i in range(3)
        ] + [
            _req(f"b{i}", steps=4, seed=10 + i, tenant="B") for i in range(3)
        ]
        _, even_sched = _serve(
            reqs, max_active=1, token_budget=256, policy="fair"
        )
        # Equal weights: the two tenants alternate.
        assert _admit_order(even_sched) == ["a0", "b0", "a1", "b1", "a2", "b2"]
        _, sched = _serve(
            reqs, max_active=1, token_budget=256, policy="fair",
            tenant_weights={"A": 100.0, "B": 1.0},
        )
        # A's huge weight keeps its normalized service near zero: once
        # each tenant has been served once, every remaining A outranks
        # the remaining Bs instead of alternating.
        assert _admit_order(sched) == ["a0", "b0", "a1", "a2", "b1", "b2"]

    def test_bad_weight_rejected(self):
        sched = ContinuousScheduler(
            PadeEngine(), policy="fair", tenant_weights={"A": 0.0}
        )
        with pytest.raises(ValueError, match="weight"):
            sched.normalized_service("A")


class TestVictimSelection:
    def _state(self, rid, priority, admit_index, steps=4, deadline=None, next_step=0):
        req = _req(rid, steps=steps, priority=priority, deadline_ms=deadline)
        state = _RequestState(request=req, cache=None, admit_index=admit_index)
        state.next_step = next_step
        return state

    def test_base_policy_picks_youngest(self):
        sched = ContinuousScheduler(PadeEngine(), policy="fcfs")
        states = [self._state("old", 5, 0), self._state("young", 0, 1)]
        victim = FcfsPolicy().select_victim(sched, states)
        assert victim.request.request_id == "young"

    def test_priority_victim_lowest_class_first(self):
        sched = ContinuousScheduler(PadeEngine(), policy="priority")
        states = [self._state("low", 0, 0), self._state("high", 2, 1)]
        victim = sched.policy_obj.select_victim(sched, states)
        assert victim.request.request_id == "low"

    def test_priority_victim_spares_endangered_deadline(self):
        sched = ContinuousScheduler(PadeEngine(), policy="priority")
        sched.time = 10.0
        # Same class: "urgent" would miss its deadline if restarted now
        # (slack 3 < remaining 5), "calm" has no deadline — evict calm,
        # even though urgent is the younger admission.
        states = [
            self._state("calm", 1, 0),
            self._state("urgent", 1, 1, deadline=13.0),
        ]
        victim = sched.policy_obj.select_victim(sched, states)
        assert victim.request.request_id == "calm"
        # A restart redoes *all* decode steps: a nearly-finished deadlined
        # request (next_step=3 of 4) is just as endangered as a fresh one.
        states[1] = self._state("urgent", 1, 1, deadline=13.0, next_step=3)
        victim = sched.policy_obj.select_victim(sched, states)
        assert victim.request.request_id == "calm"
        # A strictly lower class is evicted before either.
        states.append(self._state("lowest", 0, 2))
        victim = sched.policy_obj.select_victim(sched, states)
        assert victim.request.request_id == "lowest"

    def test_priority_preemption_under_pressure_end_to_end(self):
        # Tight pool: the long low-priority request is the victim under
        # "priority" even though the premium one is the younger admission.
        reqs = [
            _req("bulk", context=24, steps=20, seed=1, priority=0),
            _req("premium", context=24, steps=20, arrival=2.0, seed=2, priority=2),
        ]
        results, sched = _serve(
            reqs, max_active=2, token_budget=64, block_size=8, policy="priority"
        )
        preempted = [ids[0] for ev, ids in sched.trace if ev == "preempt"]
        assert preempted and set(preempted) == {"bulk"}
        assert results["premium"].preemptions == 0
        # fcfs on the same squeeze evicts the youngest instead.
        _, fcfs_sched = _serve(
            reqs, max_active=2, token_budget=64, block_size=8, policy="fcfs"
        )
        fcfs_preempted = [ids[0] for ev, ids in fcfs_sched.trace if ev == "preempt"]
        assert fcfs_preempted and set(fcfs_preempted) == {"premium"}


class TestAborts:
    def test_deadline_abort_frees_pool_and_reports(self):
        reqs = [
            _req("doomed", context=16, steps=30, seed=1, deadline_ms=8.0),
            _req("fine", context=16, steps=4, seed=2),
        ]
        results, sched = _serve(reqs, max_active=2, token_budget=256)
        doomed = results["doomed"]
        assert doomed.aborted and doomed.abort_reason == "deadline"
        assert doomed.deadline_missed
        assert 0 < doomed.decode_outputs.shape[1] < 30  # partial stream kept
        assert doomed.finish_time == 8.0
        assert results["fine"].status == "ok"
        assert sched.pool.used_block_count == 0
        assert [ids[0] for ev, ids in sched.trace if ev == "abort"] == ["doomed"]

    def test_queue_timeout_aborts_unadmitted_request(self):
        reqs = [
            _req("hog", context=16, steps=12, seed=1),
            _req("impatient", context=16, steps=2, seed=2, max_queue_ms=3.0),
        ]
        results, sched = _serve(reqs, max_active=1, token_budget=256)
        impatient = results["impatient"]
        assert impatient.aborted and impatient.abort_reason == "queue-timeout"
        assert impatient.first_token_time is None
        assert impatient.admit_time is None  # never admitted — no sentinel 0.0
        assert timing_from_result(impatient).queueing_delay == (
            impatient.finish_time - impatient.arrival_time
        )
        assert impatient.decode_outputs.shape[1] == 0
        assert results["hog"].status == "ok"
        assert sched.pool.used_block_count == 0

    def test_cancellation_before_and_during_run(self):
        engine = PadeEngine()
        from repro.engine.scheduler import ContinuousScheduler as CS

        sched = CS(engine, max_active=1, token_budget=256)
        for r in (
            _req("keep", seed=1),
            _req("drop", seed=2, arrival=1.0, deadline_ms=500.0),
        ):
            sched.submit(r)
        sched.cancel("drop")
        results = sched.run()
        assert results["drop"].aborted and results["drop"].abort_reason == "cancelled"
        # A voluntary cancellation is not a scheduling SLO failure.
        assert not results["drop"].deadline_missed
        assert not timing_from_result(results["drop"]).deadline_missed
        assert results["keep"].status == "ok"
        assert sched.pool.used_block_count == 0

    def test_cancel_before_arrival_clamps_finish_time(self):
        from repro.engine.scheduler import ContinuousScheduler as CS

        sched = CS(PadeEngine(), max_active=1, token_budget=256)
        sched.submit(_req("now", seed=1))
        sched.submit(_req("later", seed=2, arrival=50.0))
        sched.cancel("later")
        results = sched.run()
        later = results["later"]
        assert later.aborted and later.abort_reason == "cancelled"
        assert later.finish_time >= later.arrival_time  # never negative latency

    def test_abort_mid_chunked_prefill_releases_blocks(self):
        # Prefill needs ceil(64/8)=8 rounds under the round budget but the
        # deadline expires at 4 — the abort lands mid-prefill with staged
        # buffers and partial blocks attached.
        reqs = [
            _req("doomed", context=64, steps=4, seed=1, deadline_ms=4.0),
            _req("fine", context=16, steps=4, arrival=1.0, seed=2),
        ]
        results, sched = _serve(
            reqs, max_active=2, token_budget=512, block_size=8,
            round_token_budget=8, chunk_tokens=8, prefix_sharing=True,
        )
        doomed = results["doomed"]
        assert doomed.aborted and doomed.abort_reason == "deadline"
        assert 0 < doomed.final_length < doomed.prompt_tokens  # mid-prefill
        assert results["fine"].status == "ok"
        assert sched.pool.used_block_count == 0

    def test_queue_timeout_clock_restarts_after_preemption(self):
        """max_queue_ms bounds the *current* wait for admission: a
        request admitted promptly, preempted later, is not aborted as
        "queue-timeout" the moment its total age passes the bound."""
        reqs = [
            _req("bulk", context=24, steps=20, seed=1, priority=0),
            _req(
                "premium", context=24, steps=20, arrival=2.0, seed=2,
                priority=0, max_queue_ms=12.0,
            ),
        ]
        # fcfs under this squeeze admits "premium" at t=2, preempts it at
        # t=8 and re-admits at t=20: a 12-round re-queue wait, within the
        # bound — but its total age passes arrival + 12 at t=14, so an
        # arrival-anchored clock would have aborted it while queued.
        results, sched = _serve(
            reqs, max_active=2, token_budget=64, block_size=8, policy="fcfs"
        )
        assert results["premium"].preemptions > 0
        assert results["premium"].status == "ok"  # requeued, re-served, finished
        assert results["premium"].finish_time - results["premium"].arrival_time > 12.0

    def test_fair_service_rolls_back_preempted_attempts(self):
        """tenant_service reflects delivered tokens only: a preempted
        attempt's charges are reversed, so the victim tenant is not
        penalized with phantom service."""
        reqs = [
            _req("a0", context=24, steps=20, seed=1, tenant="A"),
            _req("b0", context=24, steps=20, arrival=2.0, seed=2, tenant="B"),
        ]
        results, sched = _serve(
            reqs, max_active=2, token_budget=64, block_size=8, policy="fair"
        )
        assert sum(r.preemptions for r in results.values()) > 0
        delivered = {"A": 0.0, "B": 0.0}
        for r in results.values():
            delivered[r.tenant] += r.prompt_tokens + r.decode_outputs.shape[1]
        assert sched.tenant_service == delivered

    def test_cancellations_do_not_leak_across_runs(self):
        """A cancel consumed (or never matched) by one run must not
        abort an unrelated request reusing the id in the next run."""
        from repro.engine.scheduler import ContinuousScheduler as CS

        engine = PadeEngine()
        sched = CS(engine, max_active=1, token_budget=256)
        sched.submit(_req("x", seed=1))
        sched.cancel("x")
        sched.cancel("ghost")  # never submitted: dies with the run
        first = sched.run()
        assert first["x"].aborted and first["x"].abort_reason == "cancelled"
        sched.submit(_req("x", seed=2))
        second = sched.run()
        assert second["x"].status == "ok"

    def test_abort_does_not_perturb_survivors(self):
        fine = _req("fine", context=16, steps=6, seed=2)
        with_doomed = [
            _req("doomed", context=16, steps=30, seed=1, deadline_ms=6.0), fine,
        ]
        results, _ = _serve(with_doomed, max_active=2, token_budget=256)
        alone, _ = _serve([fine], max_active=2, token_budget=256)
        assert (
            results["fine"].retained_bytes() == alone["fine"].retained_bytes()
        )
        np.testing.assert_array_equal(
            results["fine"].decode_outputs, alone["fine"].decode_outputs
        )


class TestScenarioGenerators:
    @pytest.mark.parametrize("kind", SCENARIO_KINDS)
    def test_seed_determinism(self, kind):
        a = build_scenario_workload(kind, 10, 2, 8, rate=0.5, seed=11)
        b = build_scenario_workload(kind, 10, 2, 8, rate=0.5, seed=11)
        c = build_scenario_workload(kind, 10, 2, 8, rate=0.5, seed=12)
        assert [r.request_id for r in a] == [r.request_id for r in b]
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]
        assert [(r.tenant, r.priority, r.deadline_ms) for r in a] == [
            (r.tenant, r.priority, r.deadline_ms) for r in b
        ]
        for ra, rb in zip(a, b):
            assert ra.k.tobytes() == rb.k.tobytes()
        assert [r.arrival_time for r in a] != [r.arrival_time for r in c]

    @pytest.mark.parametrize("kind", SCENARIO_KINDS)
    def test_arrivals_sorted_and_sized(self, kind):
        reqs = build_scenario_workload(kind, 12, 2, 8, rate=0.5, seed=3)
        assert len(reqs) == 12
        times = [r.arrival_time for r in reqs]
        assert times == sorted(times)
        assert len({r.request_id for r in reqs}) == 12

    def test_bursty_is_burstier_than_poisson(self):
        times = bursty_arrival_times(200, rate=0.5, seed=5)
        gaps = np.diff(np.concatenate([[0.0], times]))
        cv = gaps.std() / gaps.mean()
        assert cv > 1.2  # Poisson has CV 1; MMPP clumps harder

    def test_diurnal_rate_swings(self):
        period = 100.0
        times = diurnal_arrival_times(300, rate=0.8, period=period, seed=5)
        phase = (times % period) / period
        peak = int(((phase > 0.0) & (phase < 0.5)).sum())  # sin > 0 half
        trough = len(times) - peak
        assert peak > 1.5 * trough

    def test_heavy_tail_lengths(self):
        reqs = build_scenario_workload(
            "heavy_tail", 40, 2, 8, context_len=16, decode_steps=4,
            rate=0.5, seed=7,
        )
        lengths = np.array([r.prompt_tokens for r in reqs])
        assert lengths.min() >= 16 and lengths.max() <= 8 * 16
        assert lengths.max() >= 4 * lengths.min()  # the tail actually reaches out
        assert np.median(lengths) <= 2 * 16  # ...while the median stays low

    def test_multi_tenant_specs_and_shares(self):
        specs = default_tenant_specs(3, rate=0.6)
        assert [s.priority for s in specs] == [2, 1, 0]
        assert specs[0].deadline_ms is not None
        reqs = build_scenario_workload(
            "multi_tenant", 12, 2, 8, tenants=3, rate=0.6, seed=9
        )
        by_tenant = {s.name: 0 for s in specs}
        for r in reqs:
            by_tenant[r.tenant] += 1
        assert sum(by_tenant.values()) == 12
        assert all(count == 4 for count in by_tenant.values())  # even shares
        premium = [r for r in reqs if r.tenant == "t0"]
        assert all(r.priority == 2 and r.deadline_ms == 200.0 for r in premium)

    def test_multi_tenant_respects_shape_knobs(self):
        reqs = build_scenario_workload(
            "multi_tenant", 6, 2, 8, context_len=20, decode_steps=5,
            tenants=2, rate=0.5, seed=4,
        )
        assert {r.prompt_tokens for r in reqs} == {20}
        assert {r.decode_steps for r in reqs} == {5}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario_workload("tidal", 4, 2, 8)

    @pytest.mark.parametrize("kind", SCENARIO_KINDS)
    def test_serves_end_to_end(self, kind):
        reqs = build_scenario_workload(
            kind, 5, 2, 8, context_len=12, decode_steps=3, rate=0.8, seed=21
        )
        results, sched = _serve(
            reqs, max_active=2, token_budget=2048, policy="edf"
        )
        assert set(results) == {r.request_id for r in reqs}
        assert sched.pool.used_block_count == 0


class TestServingReport:
    def test_jain_index(self):
        assert jain_fairness_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)
        assert jain_fairness_index([9.0, 0.0, 0.0]) == pytest.approx(1 / 3)
        assert jain_fairness_index([]) == 1.0
        assert jain_fairness_index([0.0, 0.0]) == 1.0
        with pytest.raises(ValueError):
            jain_fairness_index([-1.0, 2.0])

    def test_report_carries_slo_currency(self):
        specs = (
            TenantSpec("gold", rate=0.5, share=0.5, priority=1,
                       context_len=12, decode_steps=3, deadline_ms=4.0),
            TenantSpec("bulk", rate=0.5, share=0.5, priority=0,
                       context_len=12, decode_steps=3),
        )
        reqs = build_scenario_workload(
            "multi_tenant", 8, 2, 8, tenant_specs=specs, seed=17
        )
        results, sched = _serve(reqs, max_active=1, token_budget=256, policy="fcfs")
        report = summarize_serving(
            results.values(), occupancy=sched.occupancy,
            token_budget=sched.pool.token_budget, scheduler=sched,
        )
        assert report["requests"] == 8.0
        assert report["completed_requests"] + report["aborted_requests"] == 8.0
        assert report["aborted_requests"] > 0  # 4-round deadlines under fcfs
        assert report["aborted_deadline"] == report["aborted_requests"]
        assert report["deadline_requests"] == 4.0
        assert report["deadline_miss_rate"] == report["deadline_misses"] / 4.0
        assert 1 / 2 <= report["jain_fairness_index"] <= 1.0
        assert 1 / 2 <= report["jain_service_index"] <= 1.0
        assert report["tenants"] == 2.0
        assert "tenant_tokens_gold" in report and "tenant_tokens_bulk" in report
        for key in ("p99_ttft_class0", "p99_ttft_class1", "mean_tpot_class0"):
            assert key in report

    def test_single_class_report_shape_unchanged(self):
        reqs = [_req(f"r{i}", steps=3, seed=i) for i in range(3)]
        results, sched = _serve(reqs, token_budget=256)
        report = summarize_serving(results.values(), scheduler=sched)
        assert not any("_class" in key for key in report)
        assert report["jain_fairness_index"] == 1.0
        assert not any(key.startswith("tenant_tokens_") for key in report)

    def test_timing_from_result_roundtrips_slo_fields(self):
        reqs = [_req("x", steps=2, tenant="T", priority=3, deadline_ms=99.0)]
        results, _ = _serve(reqs, token_budget=256)
        t = timing_from_result(results["x"])
        assert (t.tenant, t.priority, t.deadline_ms) == ("T", 3, 99.0)
        assert t.status == "ok" and not t.deadline_missed


class TestLegacyEquivalence:
    def test_fcfs_unchanged_by_slo_machinery(self):
        """No SLO attributes set -> byte-identical behaviour to PR 2/3."""
        reqs = [
            _req("a", context=16, steps=4, seed=1),
            _req("b", context=16, steps=4, arrival=1.0, seed=2),
        ]
        results, sched = _serve(reqs, max_active=2, token_budget=256)
        assert all(r.status == "ok" for r in results.values())
        assert not any(ev == "abort" for ev, _ in sched.trace)
        request = EngineRequest(
            "plain", reqs[0].k, reqs[0].v, q_prompt=reqs[0].q_prompt
        )
        assert request.tenant == "default" and request.priority == 0
        assert request.deadline_ms is None and request.max_queue_ms is None
