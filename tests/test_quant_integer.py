"""Unit + property tests for symmetric integer quantization."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.quant.integer import (
    QuantizedTensor,
    int_range,
    qat_calibrated_scale,
    quantization_error,
    quantize_symmetric,
)

finite_floats = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False, width=64
)


class TestIntRange:
    def test_int8(self):
        assert int_range(8) == (-128, 127)

    def test_int4(self):
        assert int_range(4) == (-8, 7)

    def test_int2(self):
        assert int_range(2) == (-2, 1)

    def test_rejects_single_bit(self):
        with pytest.raises(ValueError):
            int_range(1)


class TestQuantizeSymmetric:
    def test_payload_within_range(self, rng):
        q = quantize_symmetric(rng.normal(size=(16, 16)), bits=8)
        assert q.data.min() >= -128 and q.data.max() <= 127

    def test_zero_tensor_uses_unit_scale(self):
        q = quantize_symmetric(np.zeros((4, 4)))
        assert float(q.scale) == 1.0
        assert np.all(q.data == 0)

    def test_max_abs_maps_to_qmax(self):
        values = np.array([0.0, 1.27, -1.27])
        q = quantize_symmetric(values, bits=8)
        assert q.data[1] == 127
        assert q.data[2] == -127

    def test_per_axis_scales(self, rng):
        values = rng.normal(size=(4, 8)) * np.array([[1.0], [10.0], [100.0], [1000.0]])
        q = quantize_symmetric(values, bits=8, axis=1)
        assert q.scale.shape == (4, 1)
        # each row's max maps near the grid edge
        assert np.all(np.abs(q.data).max(axis=1) >= 126)

    def test_explicit_scale_clips(self):
        q = quantize_symmetric(np.array([100.0]), bits=8, scale=np.asarray(0.1))
        assert q.data[0] == 127  # clipped, not overflowed

    def test_int4_range(self, rng):
        q = quantize_symmetric(rng.normal(size=100), bits=4)
        assert q.data.min() >= -8 and q.data.max() <= 7

    @given(arrays(np.float64, (8, 8), elements=finite_floats))
    def test_reconstruction_error_bounded_by_half_step(self, values):
        q = quantize_symmetric(values, bits=8)
        step = float(np.max(q.scale))
        err = np.max(np.abs(values - q.dequantize()))
        assert err <= step * 0.5 + 1e-9

    @given(st.integers(min_value=2, max_value=12))
    def test_more_bits_reduce_error(self, bits):
        rng = np.random.default_rng(0)
        values = rng.normal(size=256)
        coarse = quantization_error(values, quantize_symmetric(values, bits=bits))
        fine = quantization_error(values, quantize_symmetric(values, bits=bits + 2))
        assert fine <= coarse + 1e-12


class TestQuantizedTensor:
    def test_out_of_range_payload_rejected(self):
        with pytest.raises(ValueError):
            QuantizedTensor(data=np.array([300]), scale=np.asarray(1.0), bits=8)

    def test_bytes_per_element(self):
        q = quantize_symmetric(np.ones(4), bits=4)
        assert q.bytes_per_element() == 0.5

    def test_dequantize_matches_functional(self, rng):
        values = rng.normal(size=32)
        q = quantize_symmetric(values)
        np.testing.assert_allclose(q.dequantize(), q.data * q.scale)


class TestQATScale:
    def test_tighter_than_max(self, rng):
        values = rng.normal(size=10_000)
        values[0] = 100.0  # outlier
        _, qmax = int_range(8)
        assert qat_calibrated_scale(values, percentile=99.0) < np.abs(values).max() / qmax

    def test_empty_input(self):
        assert qat_calibrated_scale(np.array([])) == 1.0

    def test_qat_distribution_more_uniform(self, rng):
        """Clipped quantization spreads payload mass across the grid."""
        values = rng.standard_t(df=3, size=20_000)  # heavy tails
        ptq = quantize_symmetric(values, bits=8)
        qat = quantize_symmetric(values, bits=8, scale=np.asarray(qat_calibrated_scale(values, percentile=98)))
        assert np.std(qat.data) > np.std(ptq.data)
