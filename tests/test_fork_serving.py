"""Fork-based serving modes: parallel sampling, speculative decoding,
and the fork/tiering interaction.

Forking is only sound if the copy-on-write clone is byte-exact even when
the donor's blocks are partially spilled to the cold tier, if the
charged-footprint admission books count physically shared blocks once,
and if every lineage/anchor reference drains back to the pool no matter
how the request ends (completion, rollback, preemption, eviction).
Hypothesis drives the fork → spill → preempt → restore lifecycles.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PadeConfig
from repro.engine import (
    PadeEngine,
    PagedBitPlaneKVCache,
    PlaneBlockPool,
    PoolExhausted,
)
from repro.engine.cache import TierConfig
from repro.eval.workloads import (
    build_engine_request,
    build_parallel_workload,
    build_speculative_request,
    build_speculative_workload,
)

SPILL_DEPTH = 4  # resident planes during the regression forks


def _tiered_pool(budget_blocks=8, block_size=4, bits=8, num_heads=2, head_dim=4):
    return PlaneBlockPool(
        num_heads, head_dim, head_dim, bits=bits, block_size=block_size,
        token_budget=budget_blocks * block_size,
        tiering=TierConfig(min_resident_planes=2),
    )


def _fill_cache(pool, rng, tokens):
    cache = PagedBitPlaneKVCache(pool)
    k = rng.normal(size=(pool.num_heads, tokens, pool.head_dim))
    v = rng.normal(size=(pool.num_heads, tokens, pool.v_dim))
    cache.prefill(k, v)
    return cache


def _block_bytes(pool, block):
    rows = pool.rows_of(block)
    return pool._planes[:, :, rows, :].tobytes()


class TestForkUnderTiering:
    """Satellite: COW fork of spilled donors must restore before copying
    and must not double-count plane units for shared blocks."""

    def test_fork_at_spill_depth_restores_byte_exact(self):
        rng = np.random.default_rng(3)
        pool = _tiered_pool()
        cache = _fill_cache(pool, rng, 8)
        donor = cache.block_table[0]
        full = _block_bytes(pool, donor)
        pool.share(donor)  # second owner, so fork_block must copy
        pool.spill_block(donor, SPILL_DEPTH)
        assert pool.resident_planes(donor) == SPILL_DEPTH
        fork = pool.fork_block(donor, rows_used=pool.block_size)
        # The donor came home before the copy: both sides are the full-
        # precision original, byte for byte.
        assert pool.resident_planes(donor) == pool.bits
        assert pool.resident_planes(fork) == pool.bits
        assert _block_bytes(pool, donor) == full
        assert _block_bytes(pool, fork) == full
        pool.release([fork])
        cache.release()
        assert pool.used_block_count == 0
        assert pool.plane_units_used == 0

    def test_shared_spilled_blocks_count_plane_units_once(self):
        """share() adds a reference, not plane units: the accounting is
        per physical block, so a partially spilled shared block holds
        exactly its resident planes — once."""
        rng = np.random.default_rng(4)
        pool = _tiered_pool()
        cache = _fill_cache(pool, rng, 8)
        base = pool.plane_units_used
        for block in cache.block_table:
            pool.share(block)
        assert pool.plane_units_used == base  # sharing is free
        pool.spill_block(cache.block_table[0], SPILL_DEPTH)
        spilled = pool.bits - SPILL_DEPTH
        assert pool.plane_units_used == base - spilled
        assert pool.plane_units_used == sum(
            pool.resident_planes(b) for b in pool._allocated
        )
        pool.release(list(cache.block_table))  # the share() refs
        cache.release()
        assert pool.plane_units_used == 0

    def test_cache_fork_then_divergence_over_spilled_donor(self):
        """Full-cache fork at spill depth 4: divergent appends on both
        sides stay byte-exact and the donor's shared prefix survives."""
        rng = np.random.default_rng(5)
        pool = _tiered_pool(budget_blocks=12)
        cache = _fill_cache(pool, rng, 6)  # 1.5 blocks: shared + tail
        for block in cache.block_table:
            pool.spill_block(block, SPILL_DEPTH)
        clone = cache.fork()
        k = rng.normal(size=(pool.num_heads, pool.head_dim))
        v = rng.normal(size=(pool.num_heads, pool.v_dim))
        cache.append(k, v)  # COW-forks the shared tail
        clone.append(-k, -v)
        assert cache.block_table[-1] != clone.block_table[-1]
        shared = cache.block_table[0]
        assert shared == clone.block_table[0]
        # Divergence restored the tails; the appended rows read back
        # exactly on both lineages.
        np.testing.assert_array_equal(cache.k_float[:, -1, :], k)
        np.testing.assert_array_equal(clone.k_float[:, -1, :], -k)
        np.testing.assert_array_equal(cache.values[:, -1, :], v)
        np.testing.assert_array_equal(clone.values[:, -1, :], -v)
        clone.release()
        cache.release()
        assert pool.used_block_count == 0
        assert pool.plane_units_used == 0
        assert not pool._spill_store


class TestChargedFootprintAdmission:
    """Satellite: n-best requests admit on the deduplicated charged set."""

    def test_parallel_request_charges_shared_prompt_once(self):
        engine = PadeEngine(PadeConfig.standard())
        [req] = build_parallel_workload(1, 4, 64, 4, 32, n_samples=4, seed=0)
        # Replicating the full footprint per lineage would need
        # 4 * (64 + 4) = 272 tokens — over this budget.  The dedup
        # charge (shared prompt once + per-lineage tails) fits.
        assert req.n_samples * req.total_tokens > 192
        results = engine.serve([req], max_active=2, token_budget=192,
                               block_size=16)
        assert results[req.request_id].status == "ok"
        assert len(results[req.request_id].sample_outputs) == 3
        pool = engine.last_serve.pool
        assert pool.used_block_count == 0

    def test_replicated_footprint_would_be_rejected(self):
        """The same request under the replicated (pre-dedup) charge is
        provably unservable: pin the budget the dedup accounting saves."""
        engine = PadeEngine(PadeConfig.standard())
        [req] = build_parallel_workload(1, 4, 64, 4, 32, n_samples=4, seed=0)
        scheduler_charge = None
        results = engine.serve([req], max_active=2, token_budget=192,
                               block_size=16)
        scheduler = engine.last_serve
        scheduler_charge = scheduler._charge_tokens(req)
        assert scheduler_charge <= 192 < req.n_samples * req.total_tokens
        assert results[req.request_id].status == "ok"


class TestSpeculativeServing:
    def _serve(self, reqs, **kw):
        engine = PadeEngine(PadeConfig.standard())
        kw.setdefault("max_active", 4)
        kw.setdefault("token_budget", 4096)
        kw.setdefault("block_size", 16)
        results = engine.serve(reqs, **kw)
        return results, engine.last_serve

    def test_draft_friendly_workload_accepts_everything(self):
        req = build_speculative_request("s0", 4, 64, 12, 32, seed=1)
        results, sched = self._serve([req])
        assert results["s0"].status == "ok"
        assert results["s0"].decode_outputs.shape[1] == 12
        assert sched.spec_accepted_tokens == sched.spec_drafted_tokens
        assert sched.spec_rollbacks == 0
        # >= 1.5x the plain one-token-per-round cadence.
        assert sched.spec_emitted_tokens / sched.spec_rounds >= 1.5
        assert sched.pool.used_tokens == 0

    def test_hostile_workload_rolls_back_and_still_completes(self):
        """A random (draft-hostile) stream rejects almost every draft:
        every round must still emit the verifier's bonus token, rewind to
        the anchor, and leak nothing."""
        req = build_engine_request("h0", 4, 32, 10, 32, seed=2)
        from dataclasses import replace

        req = replace(req, speculative=True, draft_tokens=4)
        results, sched = self._serve([req], token_budget=1024)
        assert results["h0"].status == "ok"
        assert results["h0"].decode_outputs.shape[1] == 10
        assert np.isfinite(results["h0"].decode_outputs).all()
        assert sched.spec_rollbacks > 0
        assert sched.spec_emitted_tokens == 10
        assert sched.pool.used_tokens == 0

    def test_speculative_requires_pade_verifier(self):
        engine = PadeEngine(PadeConfig.standard(), policy="h2o")
        req = build_speculative_request("s0", 4, 32, 4, 32)
        with pytest.raises(ValueError, match="pade"):
            engine.serve([req], token_budget=1024)

    def test_non_draftable_draft_policy_is_rejected(self):
        engine = PadeEngine(PadeConfig.standard())
        req = build_speculative_request("s0", 4, 32, 4, 32)
        with pytest.raises(ValueError, match="speculative draft"):
            engine.serve([req], token_budget=1024, draft_policy="h2o")

    def test_spec_counters_flow_into_the_report(self):
        from repro.eval.serving_metrics import summarize_serving

        reqs = build_speculative_workload(3, 4, 32, 8, 32, seed=5)
        results, sched = self._serve(reqs)
        report = summarize_serving(
            results.values(), occupancy=sched.occupancy,
            token_budget=sched.pool.token_budget, scheduler=sched,
        )
        assert report["spec_rounds"] > 0
        assert report["accepted_tokens_per_round"] >= 1.5
        assert 0.0 <= report["draft_acceptance_rate"] <= 1.0

    def test_disabled_modes_report_no_spec_or_parallel_columns(self):
        from repro.eval.serving_metrics import summarize_serving
        from repro.eval.workloads import build_serving_workload

        reqs = build_serving_workload(3, 4, 32, 6, 32, rate=0.5, seed=0)
        results, sched = self._serve(reqs, token_budget=1024)
        report = summarize_serving(
            results.values(), occupancy=sched.occupancy,
            token_budget=sched.pool.token_budget, scheduler=sched,
        )
        leaked = [k for k in report if "spec" in k or "parallel" in k
                  or "amplification" in k or "draft" in k]
        assert not leaked, f"plain run leaked fork-mode columns: {leaked}"


class TestParallelSampling:
    def test_lineages_return_distinct_outputs_and_leak_nothing(self):
        engine = PadeEngine(PadeConfig.standard())
        reqs = build_parallel_workload(2, 4, 32, 6, 32, n_samples=3, seed=7)
        results = engine.serve(reqs, max_active=4, token_budget=2048,
                               block_size=16)
        sched = engine.last_serve
        for req in reqs:
            res = results[req.request_id]
            assert res.status == "ok"
            assert len(res.sample_outputs) == 2
            assert res.decode_outputs.shape == res.sample_outputs[0].shape
            # Different decode streams: the lineages genuinely diverge.
            assert not np.allclose(res.decode_outputs, res.sample_outputs[0])
            assert len(res.sample_retained) == 2
            assert len(res.sample_retained[0]) == res.decode_outputs.shape[1]
        assert sched.parallel_requests == 2
        assert sched.parallel_unique_blocks < sched.parallel_replicated_blocks
        assert sched.pool.used_tokens == 0

    def test_pool_amplification_reported_below_replication(self):
        from repro.eval.serving_metrics import summarize_serving

        engine = PadeEngine(PadeConfig.standard())
        reqs = build_parallel_workload(4, 4, 64, 4, 32, n_samples=4, seed=9)
        results = engine.serve(reqs, max_active=4, token_budget=4096,
                               block_size=16)
        sched = engine.last_serve
        report = summarize_serving(
            results.values(), occupancy=sched.occupancy,
            token_budget=sched.pool.token_budget, scheduler=sched,
        )
        n = 4
        assert 1.0 <= report["pool_amplification_factor"] < n / 2

    def test_parallel_requires_pade_policy(self):
        engine = PadeEngine(PadeConfig.standard(), policy="h2o")
        reqs = build_parallel_workload(1, 4, 32, 4, 32, n_samples=2, seed=0)
        with pytest.raises(ValueError, match="pade"):
            engine.serve(reqs, token_budget=1024)


class TestForkUnderPressureLifecycle:
    """Hypothesis: fork-heavy serving under pressure never leaks blocks
    and survivors decode byte-identically to an unpressured run."""

    @settings(deadline=None, max_examples=12)
    @given(
        n_samples=st.integers(2, 4),
        budget_blocks=st.integers(14, 24),
        seed=st.integers(0, 2**16),
    )
    def test_parallel_under_pressure_leaks_nothing(
        self, n_samples, budget_blocks, seed
    ):
        engine = PadeEngine(PadeConfig.standard())
        reqs = build_parallel_workload(
            3, 2, 24, 6, 16, n_samples=n_samples, rate=1.0, seed=seed
        )
        results = engine.serve(
            reqs, max_active=2, token_budget=budget_blocks * 8, block_size=8,
        )
        sched = engine.last_serve
        assert all(r.status == "ok" for r in results.values())
        assert sched.pool.used_tokens == 0
        assert sched.pool.used_block_count == 0

    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(0, 2**16), budget_blocks=st.integers(16, 28))
    def test_tiered_spec_pressure_leaks_nothing(self, seed, budget_blocks):
        """fork → spill → preempt → restore: speculative requests under a
        tiered pool tight enough to force spills (and possibly
        preemptions) complete clean — no leaked blocks, no stranded
        spill-store entries, no plane units."""
        engine = PadeEngine(PadeConfig.standard())
        reqs = build_speculative_workload(3, 2, 24, 8, 16, rate=1.5, seed=seed)
        results = engine.serve(
            reqs, max_active=3, token_budget=budget_blocks * 8, block_size=8,
            tiering=TierConfig(min_resident_planes=2, restore_blocks_per_round=2),
        )
        pool = engine.last_serve.pool
        assert all(r.status == "ok" for r in results.values())
        assert pool.used_block_count == 0
        assert pool.plane_units_used == 0
        assert not pool._spill_store

    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(0, 2**16))
    def test_pressured_survivors_match_unpressured_run(self, seed):
        """Preemption/spill pressure must be invisible in the bytes: the
        same workload served under a generous budget and a tight tiered
        one returns identical outputs for every completed request."""
        reqs = build_parallel_workload(2, 2, 16, 5, 16, n_samples=2, seed=seed)
        outs = {}
        for tag, kw in (
            ("roomy", dict(token_budget=2048)),
            ("tight", dict(token_budget=14 * 8,
                           tiering=TierConfig(min_resident_planes=2))),
        ):
            engine = PadeEngine(PadeConfig.standard())
            results = engine.serve(
                reqs, max_active=1, block_size=8, **kw
            )
            assert all(r.status == "ok" for r in results.values())
            outs[tag] = {
                rid: (r.decode_outputs.tobytes(),
                      tuple(s.tobytes() for s in r.sample_outputs))
                for rid, r in results.items()
            }
            assert engine.last_serve.pool.used_block_count == 0
        assert outs["roomy"] == outs["tight"]


class TestWallTpotSingleToken:
    """Satellite: 1-token completions carry no wall-TPOT sample; the
    report must say "no data", not "0 ms per token"."""

    def test_single_token_completions_emit_count_only(self):
        from repro.eval.serving_metrics import RequestTiming, summarize_serving

        timings = [
            RequestTiming(
                request_id=f"r{i}", arrival_time=0.0, admit_time=0.0,
                first_token_time=1.0, finish_time=1.0, prompt_tokens=8,
                decode_tokens=1, wall_arrival_ms=0.0, wall_admit_ms=0.5,
                wall_first_token_ms=2.0, wall_finish_ms=2.0,
            )
            for i in range(3)
        ]
        report = summarize_serving(timings)
        assert report["n_wall_tpot_ms"] == 0.0
        tpot_keys = [k for k in report if "wall_tpot" in k]
        assert tpot_keys == ["n_wall_tpot_ms"], tpot_keys
        # TTFT is still fully reported — the first token is its sample.
        assert report["n_wall_ttft_ms"] == 3.0
