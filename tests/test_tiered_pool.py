"""Property tests for the two-tier (plane-progressive spill) pool.

The tiered pool is only sound if spilling is invisible to everything but
the score precision: refcounts, COW sharing, and the free/allocated
accounting must be exactly the flat pool's, a spill → restore round trip
must be byte-identical, writers must never land rows in a degraded
block, and with tiering disabled the pool must behave byte-for-byte like
the pre-tiering code (no tier state, no report columns).  Hypothesis
drives the spill/restore/release schedules.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import PadeConfig
from repro.engine import (
    PadeEngine,
    PagedBitPlaneKVCache,
    PlaneBlockPool,
    PoolExhausted,
)
from repro.engine.cache import TierConfig


def _tiered_pool(budget_blocks=6, block_size=4, bits=8, min_resident=2,
                 num_heads=2, head_dim=4, plane_budget_blocks=None):
    return PlaneBlockPool(
        num_heads, head_dim, head_dim, bits=bits, block_size=block_size,
        token_budget=budget_blocks * block_size,
        tiering=TierConfig(min_resident_planes=min_resident),
        plane_budget_blocks=plane_budget_blocks,
    )


def _fill_cache(pool, rng, tokens):
    cache = PagedBitPlaneKVCache(pool)
    k = rng.normal(size=(pool.num_heads, tokens, pool.head_dim))
    v = rng.normal(size=(pool.num_heads, tokens, pool.v_dim))
    cache.prefill(k, v)
    return cache


def _check_tier_invariants(pool):
    """Accounting invariants that must hold after every operation."""
    live = pool._allocated
    # Plane units are exactly the sum of live residencies.
    assert pool.plane_units_used == sum(pool.resident_planes(b) for b in live)
    assert pool.plane_units_used <= pool.plane_capacity_units
    for block in live:
        r = pool.resident_planes(block)
        assert pool.tiering.min_resident_planes <= r <= pool.bits
        if r < pool.bits:
            # The spill store holds exactly the missing plane prefix.
            assert pool._spill_store[block].shape[0] == pool.bits - r
        else:
            assert block not in pool._spill_store
    # Free blocks carry no tier state.
    for block in pool._free:
        assert block not in pool._resident
        assert block not in pool._spill_store


class TestPoolLifecycle:
    @given(
        schedule=st.lists(st.integers(0, 3), min_size=1, max_size=24),
        min_resident=st.integers(1, 4),
        seed=st.integers(0, 2**16),
    )
    def test_spill_restore_release_preserves_accounting(
        self, schedule, min_resident, seed
    ):
        """Any interleaving of fill/spill/restore/release keeps the
        plane-unit and refcount books balanced and leaks nothing."""
        rng = np.random.default_rng(seed)
        pool = _tiered_pool(budget_blocks=6, min_resident=min_resident)
        ladder = pool.tiering.ladder(pool.bits)
        caches = []
        for op in schedule:
            if op == 0 and len(caches) < 3:  # fill a fresh cache
                try:
                    caches.append(_fill_cache(pool, rng, int(rng.integers(1, 8))))
                except PoolExhausted:
                    pass
            elif op == 1:  # spill the coldest candidate one ladder level
                for block in pool.spill_candidates()[:1]:
                    current = pool.resident_planes(block)
                    target = next((t for t in ladder if t < current), None)
                    if target is not None:
                        pool.spill_block(block, target)
            elif op == 2:  # prefetch-restore the coldest degraded block
                for block in pool.degraded_blocks()[:1]:
                    missing = pool.bits - pool.resident_planes(block)
                    if pool.plane_units_free >= missing:
                        pool.restore_block(block)
            elif op == 3 and caches:  # retire the oldest cache
                caches.pop(0).release()
            _check_tier_invariants(pool)
        for cache in caches:
            cache.release()
        assert pool.used_block_count == 0
        assert pool.plane_units_used == 0
        assert not pool._spill_store
        assert not pool._resident
        assert pool.free_block_count == pool.num_blocks

    @given(
        tokens=st.integers(1, 16),
        target=st.integers(1, 7),
        seed=st.integers(0, 2**16),
    )
    def test_spill_restore_roundtrip_is_byte_identical(self, tokens, target, seed):
        """Restoring a spilled block reproduces its plane bytes exactly;
        while spilled, the low planes read as zero (partial reconstruction)."""
        rng = np.random.default_rng(seed)
        pool = _tiered_pool(budget_blocks=6, min_resident=1)
        cache = _fill_cache(pool, rng, tokens)
        block = cache.block_table[0]
        rows = slice(block * pool.block_size, (block + 1) * pool.block_size)
        before = pool._planes[:, :, rows, :].copy()
        moved = pool.spill_block(block, target)
        assert moved == pool.bits - target
        assert not pool._planes[target:, :, rows, :].any()
        assert (pool._planes[:target, :, rows, :] == before[:target]).all()
        pool.restore_block(block)
        assert pool._planes[:, :, rows, :].tobytes() == before.tobytes()
        cache.release()

    @given(seed=st.integers(0, 2**16))
    def test_writes_into_spilled_blocks_restore_first(self, seed):
        """Appending into a degraded tail block must not leave the fresh
        row's planes half-spilled (a later restore would clobber them)."""
        rng = np.random.default_rng(seed)
        pool = _tiered_pool(budget_blocks=6, block_size=4)
        cache = _fill_cache(pool, rng, 5)  # tail block half-full
        tail = cache.block_table[-1]
        pool.spill_block(tail, pool.tiering.min_resident_planes)
        k = rng.normal(size=(pool.num_heads, pool.head_dim))
        v = rng.normal(size=(pool.num_heads, pool.v_dim))
        cache.append(k, v)
        assert pool.resident_planes(tail) == pool.bits
        assert tail not in pool._spill_store
        cache.release()
        assert pool.plane_units_used == 0


class TestSharingAndCow:
    @given(seed=st.integers(0, 2**16))
    def test_fork_of_spilled_block_restores_then_copies(self, seed):
        """COW-forking a shared degraded block first restores it, so the
        fork is a byte-identical full-precision copy."""
        rng = np.random.default_rng(seed)
        pool = _tiered_pool(budget_blocks=6, block_size=4)
        cache = _fill_cache(pool, rng, 4)
        block = cache.block_table[0]
        pool.share(block)  # a second owner appears
        pool.spill_block(block, pool.tiering.min_resident_planes)
        fork = pool.fork_block(block, rows_used=4)
        assert pool.resident_planes(block) == pool.bits
        assert pool.resident_planes(fork) == pool.bits
        src = slice(block * pool.block_size, (block + 1) * pool.block_size)
        dst = slice(fork * pool.block_size, (fork + 1) * pool.block_size)
        assert (
            pool._planes[:, :, src, :].tobytes()
            == pool._planes[:, :, dst, :].tobytes()
        )
        # The fork consumed the share() reference; only the cache's remains.
        assert pool.ref_count(block) == 1
        pool.release([fork])
        cache.release()
        assert pool.used_block_count == 0
        assert pool.plane_units_used == 0

    def test_protected_blocks_are_never_spill_candidates(self):
        rng = np.random.default_rng(0)
        pool = _tiered_pool(budget_blocks=6)
        cache = _fill_cache(pool, rng, 8)
        pool.set_protected(cache.block_table)
        assert pool.spill_candidates() == []
        pool.set_protected([])
        assert set(pool.spill_candidates()) == set(cache.block_table)
        cache.release()

    def test_plane_budget_exhaustion_raises_and_spill_unblocks(self):
        rng = np.random.default_rng(1)
        pool = _tiered_pool(budget_blocks=6, plane_budget_blocks=2, block_size=4)
        cache = _fill_cache(pool, rng, 8)  # 2 blocks = entire plane budget
        with pytest.raises(PoolExhausted):
            pool.allocate()
        for block in cache.block_table:
            pool.spill_block(block, pool.tiering.min_resident_planes)
        extra = pool.allocate()  # freed units admit a new block
        pool.release([extra])
        cache.release()
        assert pool.plane_units_used == 0


class TestSchedulerIntegration:
    def _overload(self, tiering):
        from repro.eval.workloads import build_serving_workload

        engine = PadeEngine(PadeConfig.standard())
        workload = build_serving_workload(6, 4, 32, 40, 32, rate=1.5, seed=7)
        results = engine.serve(
            workload, max_active=5, token_budget=224, block_size=16,
            tiering=tiering,
        )
        return results, engine.last_serve

    def test_overloaded_tiered_serve_leaks_nothing(self):
        results, scheduler = self._overload(TierConfig(min_resident_planes=4))
        assert all(r.status == "ok" for r in results.values())
        assert scheduler.spill_reliefs > 0, "overload never spilled"
        pool = scheduler.pool
        assert pool.used_block_count == 0
        assert pool.plane_units_used == 0
        assert not pool._spill_store

    def test_disabled_tiering_matches_flat_pool_and_hides_columns(self):
        from repro.eval.serving_metrics import summarize_serving

        results, scheduler = self._overload(None)
        assert scheduler.tiering is None
        pool = scheduler.pool
        assert pool.tiering is None
        assert pool.spill_events == 0 and pool.restore_events == 0
        report = summarize_serving(
            results.values(), occupancy=scheduler.occupancy,
            token_budget=pool.token_budget, scheduler=scheduler,
        )
        leaked = [
            k for k in report
            if "tier" in k or "spill" in k or "planes_resident" in k
            or "degraded" in k
        ]
        assert not leaked, f"disabled run leaked tiering columns: {leaked}"

    def test_tiering_requires_the_pade_policy(self):
        from repro.eval.workloads import build_serving_workload

        engine = PadeEngine(PadeConfig.standard(), policy="h2o")
        workload = build_serving_workload(2, 4, 32, 4, 32, rate=0.5, seed=0)
        with pytest.raises(ValueError, match="pade"):
            engine.serve(workload, token_budget=256, tiering=True)


class TestTierConfigValidation:
    def test_bad_knobs_raise(self):
        with pytest.raises(ValueError):
            TierConfig(min_resident_planes=0)
        with pytest.raises(ValueError):
            TierConfig(restore_blocks_per_round=-1)
        with pytest.raises(ValueError):
            TierConfig(min_resident_planes=8).ladder(8)

    def test_ladder_halves_down_to_the_floor(self):
        assert TierConfig(min_resident_planes=2).ladder(8) == [4, 2]
        assert TierConfig(min_resident_planes=1).ladder(8) == [4, 2, 1]
        assert TierConfig(min_resident_planes=3).ladder(8) == [4, 3]

    def test_floor_at_or_above_bits_rejected_by_pool(self):
        with pytest.raises(ValueError):
            _tiered_pool(min_resident=8)
