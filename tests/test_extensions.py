"""Tests for the SpAtten cascade baseline, ASCII plots, and the CLI."""

import json

import numpy as np
import pytest

from repro.attention.baselines.spatten_cascade import spatten_cascade
from repro.cli import EXPERIMENTS, main as cli_main
from repro.eval.plots import bar_chart, line_chart
from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv


@pytest.fixture
def layer_stack(rng):
    return [synthesize_qkv(4, 256, 32, PROFILE_PRESETS["nlp"], rng) for _ in range(4)]


class TestCascade:
    def test_cascade_only_shrinks(self, layer_stack):
        res = spatten_cascade(layer_stack, keep_fraction=0.3)
        for earlier, later in zip(res.retained_per_layer, res.retained_per_layer[1:]):
            assert not (later & ~earlier).any()  # pruned tokens never return

    def test_first_layer_unpruned(self, layer_stack):
        res = spatten_cascade(layer_stack, keep_fraction=0.2, stale_layers=1)
        assert res.retained_per_layer[0].all()

    def test_budget_respected_after_warmup(self, layer_stack):
        res = spatten_cascade(layer_stack, keep_fraction=0.25)
        for retained in res.retained_per_layer[1:]:
            assert retained.sum() <= round(0.25 * 256)

    def test_stale_guidance_loses_more_than_oracle(self, layer_stack):
        """The accuracy mechanism of Fig. 15: cross-layer guidance misses
        per-layer heavy hitters, losing more mass than the same budget with
        an exact per-layer top-k."""
        from repro.attention.baselines import topk_oracle_attention

        res = spatten_cascade(layer_stack, keep_fraction=0.2)
        oracle_losses = []
        from repro.attention.dense import attention_scores, softmax
        from repro.attention.masks import causal_mask

        for q, k, v in layer_stack[1:]:
            oracle = topk_oracle_attention(q, k, v, keep_fraction=0.2)
            logits = attention_scores(q, k)
            causal = causal_mask(q.shape[0], k.shape[0], k.shape[0] - q.shape[0])
            probs = softmax(np.where(causal, logits, -np.inf), axis=-1)
            oracle_losses.append(float(np.where(oracle.retained, 0.0, probs).sum(axis=-1).mean()))
        assert np.mean(res.lost_mass_per_layer[1:]) > np.mean(oracle_losses)


class TestPlots:
    def test_bar_chart_rows(self):
        out = bar_chart("t", ["a", "b"], [1.0, 2.0], width=10)
        assert out.count("\n") == 2
        assert "██████████" in out  # the max bar is full width

    def test_bar_chart_validates(self):
        with pytest.raises(ValueError):
            bar_chart("t", ["a"], [1.0, 2.0])

    def test_line_chart_contains_markers(self):
        out = line_chart("t", [0, 1, 2], {"a": [1, 2, 3], "b": [3, 2, 1]}, height=6, width=20)
        assert "o" in out and "x" in out and "legend" in out

    def test_line_chart_flat_series(self):
        out = line_chart("t", [0, 1], {"a": [5, 5]})
        assert "==" in out


class TestCLI:
    def test_list_runs(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig14" in out and "table2" in out

    def test_unknown_experiment(self, capsys):
        assert cli_main(["fig99"]) == 2

    def test_fig17_text(self, capsys):
        assert cli_main(["fig17"]) == 0
        assert "GSAT" in capsys.readouterr().out

    def test_fig20_json_parses(self, capsys):
        assert cli_main(["fig20", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert abs(sum(data["fig20"]["area_mm2"].values()) - 4.53) < 0.05

    def test_registry_covers_every_eval_figure(self):
        ids = set(EXPERIMENTS)
        for required in ("fig2", "fig4", "fig5", "fig10", "fig14", "fig15", "fig16",
                         "fig17", "fig18", "fig19", "fig20", "fig21", "fig23", "fig24",
                         "fig25", "fig26", "table1", "table2", "table3"):
            assert required in ids
