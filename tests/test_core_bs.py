"""Property tests for bidirectional bit sparsity (paper Eq. 5-6)."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.bs import bs_partial_dot, effective_bits, plan_plane

q_vec = arrays(np.int64, st.integers(1, 64), elements=st.integers(-128, 127))
bit_vec = arrays(np.uint8, st.integers(1, 64), elements=st.integers(0, 1))


class TestEquivalence:
    @given(q_vec, st.data())
    def test_bs_dot_equals_direct(self, q, data):
        bits = data.draw(
            arrays(np.uint8, st.just(q.shape[0]), elements=st.integers(0, 1))
        )
        direct = int(np.dot(q, bits.astype(np.int64)))
        assert bs_partial_dot(q, bits) == direct

    @given(q_vec, st.data())
    def test_precomputed_qsum_equivalent(self, q, data):
        bits = data.draw(
            arrays(np.uint8, st.just(q.shape[0]), elements=st.integers(0, 1))
        )
        assert bs_partial_dot(q, bits, q_sum=int(q.sum())) == bs_partial_dot(q, bits)


class TestLoadBound:
    @given(bit_vec)
    def test_effective_bits_at_most_half(self, bits):
        assert effective_bits(bits) <= bits.size // 2 + bits.size % 2
        assert effective_bits(bits) <= bits.size - effective_bits(bits) or bits.size == 0

    @given(bit_vec)
    def test_plan_selects_rarer_value(self, bits):
        plan = plan_plane(bits)
        ones = int(bits.sum())
        zeros = bits.size - ones
        assert plan.effective_bits == min(ones, zeros)
        if plan.one_mode:
            assert ones <= zeros
            assert np.all(bits[plan.indices] == 1)
        else:
            assert np.all(bits[plan.indices] == 0)

    def test_all_ones_uses_zero_mode(self):
        plan = plan_plane(np.ones(8, dtype=np.uint8))
        assert not plan.one_mode
        assert plan.effective_bits == 0

    def test_all_zeros_is_free(self):
        plan = plan_plane(np.zeros(8, dtype=np.uint8))
        assert plan.one_mode
        assert plan.effective_bits == 0

    def test_dense_plane_work_halved(self):
        """The worst case for naive bit-serial (all ones) costs nothing
        under BS — that is the load-balancing property."""
        bits = np.ones(64, dtype=np.uint8)
        assert effective_bits(bits) == 0
        bits[::2] = 0
        assert effective_bits(bits) == 32
