"""Kernel-backend registry: resolution rules + reference↔fast parity.

The parity block is the property-style sweep of ISSUE 1 satellite 3: random
seeds, ``allowed``/``protect`` masks, all-pruned rows, and infinite-guard
edge cases, always comparing every :class:`~repro.core.bsf.BSFResult` field
across both registered backends *via the registry* (never by importing a
concrete kernel).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PadeConfig, pade_attention
from repro.core.backend import (
    DEFAULT_BACKEND_ENV,
    FastBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend_name,
    set_default_backend,
)
from repro.core.bui_gf import guard_in_int_units
from repro.quant.bitplane import decompose_bitplanes
from repro.quant.integer import quantize_symmetric


@pytest.fixture(autouse=True)
def _clean_default():
    """Each test starts from an unset session default."""
    previous = set_default_backend(None)
    yield
    set_default_backend(previous)


def _problem(seed: int, num_rows: int = 6, num_keys: int = 96, head_dim: int = 24):
    rng = np.random.default_rng(seed)
    q = rng.normal(size=(num_rows, head_dim)) * rng.uniform(0.5, 3.0)
    k = rng.normal(size=(num_keys, head_dim))
    qi = quantize_symmetric(q)
    ki = quantize_symmetric(k)
    planes = decompose_bitplanes(ki.data)
    scale = float(qi.scale) * float(ki.scale) / np.sqrt(head_dim)
    return qi.data, planes, scale


def _assert_identical(a, b):
    assert np.array_equal(a.retained, b.retained)
    assert np.array_equal(a.planes_processed, b.planes_processed)
    assert np.array_equal(a.scores, b.scores)
    assert a.bit_plane_loads == b.bit_plane_loads
    assert a.effective_bit_ops == b.effective_bit_ops
    assert a.naive_bit_ops == b.naive_bit_ops


class TestRegistry:
    def test_shipped_backends_listed(self):
        assert {"reference", "fast"} <= set(available_backends())

    def test_default_resolution_chain(self, monkeypatch):
        monkeypatch.delenv(DEFAULT_BACKEND_ENV, raising=False)
        assert resolve_backend_name() == "fast"
        monkeypatch.setenv(DEFAULT_BACKEND_ENV, "reference")
        assert resolve_backend_name() == "reference"
        set_default_backend("fast")  # session default beats env var
        assert resolve_backend_name() == "fast"
        assert resolve_backend_name("reference") == "reference"  # explicit wins

    def test_unknown_backend_raises_with_choices(self):
        with pytest.raises(KeyError, match="reference"):
            get_backend("no-such-backend")
        with pytest.raises(KeyError):
            set_default_backend("no-such-backend")

    def test_get_backend_passes_instances_through(self):
        backend = FastBackend()
        assert get_backend(backend) is backend

    def test_reregistration_guarded(self):
        with pytest.raises(ValueError):
            register_backend(FastBackend())
        register_backend(FastBackend(), overwrite=True)  # explicit override ok

    def test_config_backend_flows_through_pade_attention(self):
        rng = np.random.default_rng(0)
        q, k, v = rng.normal(size=(4, 16)), rng.normal(size=(64, 16)), rng.normal(size=(64, 16))
        ref = pade_attention(q, k, v, PadeConfig(backend="reference"))
        fast = pade_attention(q, k, v, PadeConfig(backend="fast"))
        assert np.array_equal(ref.retained, fast.retained)
        np.testing.assert_allclose(ref.output, fast.output)

    def test_config_rejects_nothing_lazily(self):
        # An unknown name fails at resolution time, not config construction.
        cfg = PadeConfig(backend="bogus")
        rng = np.random.default_rng(1)
        with pytest.raises(KeyError):
            pade_attention(
                rng.normal(size=(2, 8)), rng.normal(size=(16, 8)),
                rng.normal(size=(16, 8)), cfg,
            )


class TestBackendParity:
    """reference and fast must agree bit for bit on every BSFResult field."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_problems(self, seed):
        q, planes, scale = _problem(seed)
        guard = guard_in_int_units(0.6, 5.0, scale)
        ref = get_backend("reference").filter(q, planes, guard)
        fast = get_backend("fast").filter(q, planes, guard)
        _assert_identical(ref, fast)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("shared_masks", [True, False])
    def test_allowed_and_protect_masks(self, seed, shared_masks):
        q, planes, scale = _problem(seed + 100)
        num_rows, num_keys = q.shape[0], planes.value_shape[0]
        rng = np.random.default_rng(seed + 17)
        shape = (num_keys,) if shared_masks else (num_rows, num_keys)
        allowed = rng.random(shape) < 0.7
        protect = (rng.random(shape) < 0.1) & allowed
        guard = guard_in_int_units(0.5, 5.0, scale)
        ref = get_backend("reference").filter(q, planes, guard, allowed=allowed, protect=protect)
        fast = get_backend("fast").filter(q, planes, guard, allowed=allowed, protect=protect)
        _assert_identical(ref, fast)
        # Protected candidates must be retained by both.
        full_protect = np.broadcast_to(protect, ref.retained.shape)
        assert ref.retained[full_protect].all()

    @pytest.mark.parametrize("seed", range(4))
    def test_all_pruned_rows(self, seed):
        # A zero guard with rows whose candidates are far below the max
        # prunes entire rows; both backends must agree on the empty sets.
        q, planes, scale = _problem(seed + 200, num_rows=4)
        ref = get_backend("reference").filter(q, planes, 0.0)
        fast = get_backend("fast").filter(q, planes, 0.0)
        _assert_identical(ref, fast)

    def test_empty_allowed_rows(self):
        q, planes, scale = _problem(7)
        allowed = np.zeros((q.shape[0], planes.value_shape[0]), dtype=bool)
        allowed[0, :5] = True  # one row has candidates, the rest none
        guard = guard_in_int_units(0.6, 5.0, scale)
        ref = get_backend("reference").filter(q, planes, guard, allowed=allowed)
        fast = get_backend("fast").filter(q, planes, guard, allowed=allowed)
        _assert_identical(ref, fast)
        assert not ref.retained[1:].any()
        assert (ref.planes_processed[1:] == 0).all()

    @pytest.mark.parametrize("seed", range(4))
    def test_infinite_guard_retains_everything(self, seed):
        q, planes, _ = _problem(seed + 300)
        ref = get_backend("reference").filter(q, planes, float("inf"))
        fast = get_backend("fast").filter(q, planes, float("inf"))
        _assert_identical(ref, fast)
        assert ref.retained.all()
        assert (ref.planes_processed == planes.bits).all()

    @pytest.mark.parametrize("seed", range(4))
    def test_filter_heads_parity(self, seed):
        rng = np.random.default_rng(seed + 400)
        num_heads, num_rows, num_keys, head_dim = 3, 2, 48, 16
        q = rng.normal(size=(num_heads, num_rows, head_dim))
        k = rng.normal(size=(num_heads, num_keys, head_dim))
        qi = [quantize_symmetric(q[h]) for h in range(num_heads)]
        ki = [quantize_symmetric(k[h]) for h in range(num_heads)]
        planes = decompose_bitplanes(np.stack([x.data for x in ki]))
        guards = np.array(
            [
                guard_in_int_units(
                    0.6, 5.0, float(qi[h].scale) * float(ki[h].scale) / np.sqrt(head_dim)
                )
                for h in range(num_heads)
            ]
        )
        q3 = np.stack([x.data for x in qi])
        protect = rng.random((num_heads, num_rows, num_keys)) < 0.05
        ref = get_backend("reference").filter_heads(q3, planes, guards, protect=protect)
        fast = get_backend("fast").filter_heads(q3, planes, guards, protect=protect)
        _assert_identical(ref, fast)

    @pytest.mark.parametrize("seed", range(3))
    def test_heads_kernel_matches_per_head_fast(self, seed):
        """The 3D kernel is exactly a stacked per-head fast filter."""
        rng = np.random.default_rng(seed + 500)
        num_heads, num_rows, num_keys, head_dim = 2, 3, 40, 12
        fast = get_backend("fast")
        q3 = rng.integers(-50, 50, size=(num_heads, num_rows, head_dim))
        k3 = rng.integers(-64, 63, size=(num_heads, num_keys, head_dim))
        planes = decompose_bitplanes(k3)
        guards = np.array([150.0, 90.0])
        batched = fast.filter_heads(q3, planes, guards)
        for h in range(num_heads):
            from repro.quant.bitplane import BitPlanes

            single = fast.filter(
                q3[h], BitPlanes(planes=planes.planes[:, h], bits=planes.bits), guards[h]
            )
            assert np.array_equal(batched.retained[h], single.retained)
            assert np.array_equal(batched.scores[h], single.scores)
            assert np.array_equal(batched.planes_processed[h], single.planes_processed)
