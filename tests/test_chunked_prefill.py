"""Chunked prefill: byte parity, round-budget cost model, stall metrics.

The invariants ISSUE 3 pins down:

* chunk boundaries never change the stored cache bytes — scales are
  frozen on the *full* prompt, so any extend schedule equals one-shot
  ``prefill`` exactly (and therefore every retained set downstream);
* under the round-token cost model, an unchunked long prompt blocks
  decode rounds (``decode_blocked_rounds``), while chunking lets short
  requests prefill and decode alongside it — their TTFT improves;
* preemption mid-prefill frees the partial blocks and replays cleanly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine import (
    ContinuousScheduler,
    PadeEngine,
    PagedBitPlaneKVCache,
    PlaneBlockPool,
)
from repro.eval.serving_metrics import summarize_serving
from repro.eval.workloads import build_engine_request


def _kv(rng, num_heads, seq_len, head_dim):
    return (
        rng.normal(size=(num_heads, seq_len, head_dim)),
        rng.normal(size=(num_heads, seq_len, head_dim)),
    )


class TestCacheChunkParity:
    @given(
        seq_len=st.integers(2, 24),
        block_size=st.integers(1, 7),
        chunk=st.integers(1, 9),
        seed=st.integers(0, 2**16),
    )
    def test_any_chunk_schedule_matches_one_shot(self, seq_len, block_size, chunk, seed):
        rng = np.random.default_rng(seed)
        k, v = _kv(rng, 2, seq_len, 4)
        pool_a = PlaneBlockPool(2, 4, 4, block_size=block_size,
                                token_budget=seq_len + 2 * block_size)
        pool_b = PlaneBlockPool(2, 4, 4, block_size=block_size,
                                token_budget=seq_len + 2 * block_size)
        one_shot = PagedBitPlaneKVCache(pool_a)
        one_shot.prefill(k, v)
        chunked = PagedBitPlaneKVCache(pool_b)
        chunked.begin_prefill(k, v)
        while chunked.prefill_remaining:
            chunked.extend_prefill(chunk)
        chunked.finish_prefill()
        assert chunked.length == one_shot.length
        assert chunked.scales.tobytes() == one_shot.scales.tobytes()
        assert chunked.planes.planes.tobytes() == one_shot.planes.planes.tobytes()
        assert chunked.k_int.tobytes() == one_shot.k_int.tobytes()
        assert chunked.values.tobytes() == one_shot.values.tobytes()
        assert chunked.rows_decomposed == one_shot.rows_decomposed

    def test_append_rejected_mid_prefill(self, rng):
        pool = PlaneBlockPool(2, 4, 4, block_size=4, token_budget=64)
        cache = PagedBitPlaneKVCache(pool)
        k, v = _kv(rng, 2, 10, 4)
        cache.begin_prefill(k, v)
        cache.extend_prefill(4)
        with pytest.raises(RuntimeError, match="prefill"):
            cache.append(np.zeros((2, 4)), np.zeros((2, 4)))
        with pytest.raises(RuntimeError, match="incomplete"):
            cache.finish_prefill()
        cache.extend_prefill()
        cache.finish_prefill()
        cache.append(np.zeros((2, 4)), np.zeros((2, 4)))
        assert cache.length == 11


def _request(rid, context, steps, arrival, seed=0, num_heads=2, head_dim=8):
    return build_engine_request(
        rid, num_heads, context, steps, head_dim=head_dim,
        seed=seed, arrival_time=arrival,
    )


def _serve(requests, **kwargs):
    engine = PadeEngine()
    results = engine.serve(requests, **kwargs)
    return results, engine.last_serve


class TestSchedulerChunking:
    def _mixed(self):
        reqs = [_request("long", 96, 4, 0.0, seed=1)]
        reqs += [_request(f"s{i}", 16, 4, 1.0 + i, seed=2 + i) for i in range(3)]
        return reqs

    def test_retention_identical_across_timing_models(self):
        """Legacy, unchunked-budgeted and chunked runs retain identically."""
        runs = []
        for kwargs in (
            {},
            {"round_token_budget": 24},
            {"round_token_budget": 24, "chunk_tokens": 16},
        ):
            results, _ = _serve(self._mixed(), token_budget=2048, block_size=8, **kwargs)
            runs.append(results)
        for rid in runs[0]:
            digests = {r[rid].retained_bytes() for r in runs}
            assert len(digests) == 1, f"{rid} retention depends on the timing model"
            for r in runs[1:]:
                np.testing.assert_array_equal(
                    runs[0][rid].decode_outputs, r[rid].decode_outputs
                )

    def test_unchunked_long_prompt_blocks_decode(self):
        _, sched = _serve(
            self._mixed(), token_budget=2048, block_size=8, round_token_budget=24
        )
        assert sched.decode_blocked_rounds > 0
        assert sched.chunk_stall_rounds == 0  # no chunking, no chunk stalls

    def test_chunked_improves_short_request_ttft(self):
        reports = {}
        for chunk in (0, 16):
            results, _ = _serve(
                self._mixed(), token_budget=2048, block_size=8,
                round_token_budget=24, chunk_tokens=chunk,
            )
            reports[chunk] = [
                results[rid].first_token_time - results[rid].arrival_time
                for rid in results if rid != "long"
            ]
        assert np.percentile(reports[16], 95) < np.percentile(reports[0], 95)
        assert np.mean(reports[16]) < np.mean(reports[0])

    def test_prefill_cost_scales_with_prompt_length(self):
        """A P-token prompt takes ceil(P / budget) exclusive rounds."""
        results, _ = _serve(
            [_request("r", 96, 1, 0.0)], token_budget=2048, block_size=8,
            round_token_budget=24,
        )
        # 4 prefill rounds (rounds 0-3), first decode in round 4 -> TTFT 5.
        assert results["r"].first_token_time == 5.0

    def test_prefill_only_request_budgeted(self):
        req = build_engine_request("p", 2, 40, 0, head_dim=8, prompt_queries=2)
        results, _ = _serve([req], token_budget=1024, block_size=8,
                            round_token_budget=16)
        res = results["p"]
        assert res.prefill_output is not None
        # ceil(40/16) = 3 prefill rounds: sealed in round 2, output at 3.
        assert res.first_token_time == 3.0
        assert res.decode_outputs.shape[1] == 0

    def test_chunk_stall_counted_when_decode_eats_budget(self):
        # Budget 4: three decoding requests leave 1 token < nothing after
        # the long request's chunk is starved often enough to count.
        reqs = [_request(f"d{i}", 8, 12, 0.0, seed=i) for i in range(3)]
        reqs.append(_request("late", 48, 2, 1.0, seed=9))
        _, sched = _serve(
            reqs, token_budget=2048, block_size=8,
            round_token_budget=3, chunk_tokens=2,
        )
        assert sched.chunk_stall_rounds > 0

    def test_preemption_mid_prefill_replays_cleanly(self):
        reqs = [
            _request("a", 24, 10, 0.0, seed=1),
            _request("b", 24, 10, 1.0, seed=2),
            _request("c", 24, 10, 2.0, seed=3),
        ]
        tight, tight_sched = _serve(
            reqs, max_active=3, token_budget=64, block_size=4,
            round_token_budget=16, chunk_tokens=8,
        )
        assert tight_sched.pool.used_block_count == 0
        ample, _ = _serve(
            reqs, max_active=3, token_budget=4096, block_size=4,
            round_token_budget=16, chunk_tokens=8,
        )
        assert set(tight) == set(ample)
        for rid in ample:
            assert tight[rid].retained_bytes() == ample[rid].retained_bytes()

    def test_preemption_never_evicts_finished_request(self):
        """A request that completed its last decode step this round is
        still in the active list until _collect; the victim picker must
        skip it — its blocks free this round anyway, and evicting it
        would discard fully computed outputs."""
        from repro.engine.scheduler import _RequestState, _Timing

        engine = PadeEngine()
        sched = ContinuousScheduler(engine, token_budget=64, block_size=4)
        reqs = [_request("old", 8, 4, 0.0, seed=1), _request("young", 8, 0, 0.0, seed=2)]
        pool = sched._ensure_pool(reqs[0])
        states = []
        for i, req in enumerate(reqs):
            cache = PagedBitPlaneKVCache(pool)
            cache.prefill(req.k, req.v)
            state = _RequestState(request=req, cache=cache, admit_index=i)
            sched.active.append(state)
            sched._timings[req.request_id] = _Timing(arrival_time=0.0)
            states.append(state)
        assert states[1].done and not states[0].done  # young finished, old not
        sched._preempt_one()
        # The finished 'young' request is untouched; 'old' was evicted.
        assert states[1] in sched.active
        assert states[0] not in sched.active
        with pytest.raises(ValueError, match="chunk_tokens requires"):
            ContinuousScheduler(PadeEngine(), chunk_tokens=8)
        with pytest.raises(ValueError, match=">= 0"):
            ContinuousScheduler(PadeEngine(), round_token_budget=-1)

    def test_report_includes_stall_and_prefix_keys(self):
        results, sched = _serve(
            self._mixed(), token_budget=2048, block_size=8,
            round_token_budget=24, chunk_tokens=16,
        )
        report = summarize_serving(
            results.values(), occupancy=sched.occupancy,
            token_budget=sched.pool.token_budget, scheduler=sched,
        )
        for key in (
            "chunk_stall_rounds", "decode_blocked_rounds",
            "prefix_hit_rate", "prefix_blocks_saved", "peak_used_blocks",
        ):
            assert key in report
