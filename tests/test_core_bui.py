"""Property tests for the bit-wise uncertainty interval (paper Eq. 2-3).

The load-bearing invariant of the whole design: the exact dot product always
lies inside [S_min, S_max], for every prefix of processed planes.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.bui import build_bui_lut, uncertainty_interval
from repro.quant.bitplane import decompose_bitplanes, partial_reconstruct

int8_vec = arrays(np.int64, st.integers(1, 24), elements=st.integers(-128, 127))


class TestPaperExample:
    """Fig. 6 worked example: Q = [6, -5, 9, -4], six planes (scaled by 4)."""

    Q = np.array([6, -5, 9, -4], dtype=np.int64)

    def test_interval_after_msb(self):
        i_min, i_max = uncertainty_interval(self.Q, bits=6, planes_known=1)
        assert i_min / 4 == -69.75
        assert i_max / 4 == 116.25

    def test_interval_after_two_planes(self):
        i_min, i_max = uncertainty_interval(self.Q, bits=6, planes_known=2)
        assert i_min / 4 == -33.75
        assert i_max / 4 == 56.25

    def test_interval_zero_at_lsb(self):
        assert uncertainty_interval(self.Q, bits=6, planes_known=6) == (0, 0)


class TestSoundness:
    @given(int8_vec, st.data())
    def test_exact_score_within_bounds(self, q, data):
        """For every plane prefix, Q·K ∈ [S^r + I_min, S^r + I_max]."""
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        k = rng.integers(-128, 128, size=q.shape[0])
        exact = int(np.dot(q, k))
        planes = decompose_bitplanes(k, bits=8)
        for r in range(1, 9):
            partial = int(np.dot(q, partial_reconstruct(planes, r)))
            i_min, i_max = uncertainty_interval(q, bits=8, planes_known=r)
            assert partial + i_min <= exact <= partial + i_max

    @given(int8_vec)
    def test_intervals_shrink_monotonically(self, q):
        widths = []
        for r in range(1, 9):
            i_min, i_max = uncertainty_interval(q, bits=8, planes_known=r)
            assert i_min <= 0 <= i_max
            widths.append(i_max - i_min)
        assert all(a >= b for a, b in zip(widths, widths[1:]))
        assert widths[-1] == 0

    @given(int8_vec)
    def test_interval_signs_follow_query_mass(self, q):
        i_min, i_max = uncertainty_interval(q, bits=8, planes_known=1)
        if np.all(q >= 0):
            assert i_min == 0
        if np.all(q <= 0):
            assert i_max == 0


class TestLUT:
    @given(arrays(np.int64, st.tuples(st.integers(1, 6), st.integers(1, 16)),
                  elements=st.integers(-128, 127)))
    def test_lut_matches_direct_computation(self, q_batch):
        lut = build_bui_lut(q_batch, bits=8)
        for i in range(q_batch.shape[0]):
            for r in range(1, 9):
                expected = uncertainty_interval(q_batch[i], bits=8, planes_known=r)
                assert lut.interval(i, r) == expected

    def test_lut_shape(self, rng):
        q = rng.integers(-128, 128, size=(5, 16))
        lut = build_bui_lut(q, bits=8)
        assert lut.i_min.shape == (5, 9)
        assert lut.num_queries == 5

    def test_r0_covers_sign_plane(self, rng):
        """The r=0 row must bound scores even with the sign bit unknown."""
        q = rng.integers(-128, 128, size=(1, 16))
        lut = build_bui_lut(q, bits=8)
        k = rng.integers(-128, 128, size=16)
        exact = int(q[0] @ k)
        lo, hi = lut.interval(0, 0)
        assert lo <= exact <= hi

    def test_bound_scores_vectorized(self, rng):
        q = rng.integers(-128, 128, size=(1, 8))
        lut = build_bui_lut(q, bits=8)
        partial = np.array([10, -5, 0], dtype=np.int64)
        planes_known = np.array([1, 4, 8])
        lo, hi = lut.bound_scores(partial, planes_known, 0)
        for j in range(3):
            e_lo, e_hi = lut.interval(0, int(planes_known[j]))
            assert lo[j] == partial[j] + e_lo
            assert hi[j] == partial[j] + e_hi
