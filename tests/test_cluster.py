"""End-to-end tests for the multi-replica cluster front-end.

These spawn real worker subprocesses (one engine each) behind
:class:`ClusterServer` and drive them through the loopback NDJSON
protocol — the same path CI's cluster-smoke job exercises.
"""

import asyncio

import pytest

from repro.cluster.server import ClusterServer, serve_workload_over_cluster
from repro.eval.serving_metrics import summarize_cluster
from repro.eval.workloads import build_cluster_workload
from repro.serve.client import ServeConnection

WORKER_KWARGS = dict(token_budget=1536, max_active=4, block_size=16)


def _workload(groups=2, per_group=3, steps=5, seed=7, rate=0.5):
    return build_cluster_workload(
        groups, per_group, 4, 32, 16, steps, 32, rate=rate, seed=seed
    )


# ----------------------------------------------------------------------
# workload builder
# ----------------------------------------------------------------------


def test_build_cluster_workload_shape_and_determinism():
    a = _workload(groups=3, per_group=2)
    b = _workload(groups=3, per_group=2)
    assert len(a) == 6
    assert sorted(r.request_id for r in a) == sorted(r.request_id for r in b)
    by_id = {r.request_id: r for r in b}
    for req in a:
        twin = by_id[req.request_id]
        assert req.tenant == twin.tenant
        assert req.arrival_time == twin.arrival_time
        assert (req.k == twin.k).all() and (req.v == twin.v).all()
    # One shared Poisson arrival process across groups, per-group tenants.
    assert {r.tenant for r in a} == {"g0", "g1", "g2"}
    assert all(r.arrival_time >= 0.0 for r in a)


def test_build_cluster_workload_groups_share_prefix_within_not_across():
    workload = _workload(groups=2, per_group=2)
    by_tenant = {}
    for req in workload:
        by_tenant.setdefault(req.tenant, []).append(req)
    g0, g1 = by_tenant["g0"], by_tenant["g1"]
    prefix = 32
    assert (g0[0].k[:, :prefix] == g0[1].k[:, :prefix]).all()
    assert not (g0[0].k[:, :prefix] == g1[0].k[:, :prefix]).all()


# ----------------------------------------------------------------------
# cluster report roll-up
# ----------------------------------------------------------------------


def test_summarize_cluster_rolls_up():
    r0 = {
        "requests": 4.0, "completed_requests": 4.0, "aborted_requests": 0.0,
        "generated_tokens": 40.0, "preemptions": 1.0, "makespan_rounds": 20.0,
        "prefix_hit_blocks": 6.0, "prefix_miss_blocks": 2.0,
        "prefix_bytes_saved": 100.0, "p95_ttft": 3.0,
    }
    r1 = {
        "requests": 2.0, "completed_requests": 2.0, "aborted_requests": 0.0,
        "generated_tokens": 20.0, "preemptions": 0.0, "makespan_rounds": 10.0,
        "prefix_hit_blocks": 0.0, "prefix_miss_blocks": 8.0,
        "prefix_bytes_saved": 0.0, "p95_ttft": 7.0,
    }
    out = summarize_cluster([r0, r1, {}])  # one replica served nothing
    assert out["replicas"] == 3.0
    assert out["reporting_replicas"] == 2.0
    assert out["requests"] == 6.0
    assert out["generated_tokens"] == 60.0
    # Concurrent engines: makespan is the max, throughput over that max.
    assert out["cluster_makespan_rounds"] == 20.0
    assert out["cluster_throughput_tokens_per_round"] == pytest.approx(3.0)
    # Hit rate recomputed from summed blocks (request-weighted).
    assert out["prefix_hit_blocks"] == 6.0
    assert out["prefix_hit_rate"] == pytest.approx(6.0 / 16.0)
    assert out["prefix_bytes_saved"] == 100.0
    # Jain over per-replica tokens, the silent replica included.
    assert 0.0 < out["jain_replica_index"] < 1.0
    assert (out["tokens_r0"], out["tokens_r1"], out["tokens_r2"]) == (40.0, 20.0, 0.0)
    assert out["worst_p95_ttft"] == 7.0


def test_summarize_cluster_empty_raises():
    with pytest.raises(ValueError):
        summarize_cluster([])


def test_summarize_cluster_all_dead():
    out = summarize_cluster([{}, {}])
    assert out["reporting_replicas"] == 0.0
    assert out["cluster_throughput_tokens_per_round"] == 0.0


# ----------------------------------------------------------------------
# live serving end-to-end
# ----------------------------------------------------------------------


def test_two_replica_cluster_serves_and_drains_clean():
    workload = _workload()
    dones, ack, cluster = serve_workload_over_cluster(
        workload, replicas=2, routing="prefix", barrier=False,
        concurrency=3, seed=7, **WORKER_KWARGS,
    )
    assert len(dones) == len(workload)
    for rid, done in dones.items():
        assert done["type"] == "done" and done["status"] == "ok", (rid, done)
        assert done["tokens"], rid
    assert ack["leaked_blocks"] == 0
    assert ack["lost_replicas"] == []
    report = ack["report"]
    assert report["replicas"] == 2.0
    assert report["completed_requests"] == float(len(workload))
    assert report["prefix_hit_blocks"] > 0  # affinity warmed both shards


def test_barrier_mode_is_deterministic_across_runs():
    workload = _workload(per_group=4, seed=11, rate=3.0)
    reports = []
    for _ in range(2):
        dones, ack, _ = serve_workload_over_cluster(
            workload, replicas=2, routing="prefix", barrier=True,
            seed=11, **WORKER_KWARGS,
        )
        assert len(dones) == len(workload)
        assert ack["leaked_blocks"] == 0
        # Wall-clock columns measure real time and legitimately differ
        # between runs; everything on the round clock must be identical.
        reports.append(
            {k: v for k, v in ack["report"].items() if "wall" not in k}
        )
    assert reports[0] == reports[1]


# ----------------------------------------------------------------------
# replica failure
# ----------------------------------------------------------------------


async def _kill_one_mid_load(workload, replicas, kill_after):
    cluster = ClusterServer(
        replicas=replicas, routing="prefix",
        queue_limit=len(workload), seed=5, **WORKER_KWARGS,
    )
    await cluster.start()
    try:
        conn = await ServeConnection.open(cluster.host, cluster.port)
        try:
            accepted = []
            for request in workload:
                reply = await conn.submit(request, arrival="now")
                assert reply["type"] == "accepted"
                accepted.append(request.request_id)
            dones = {}
            victim = None
            pending = {
                asyncio.ensure_future(conn.result(rid)): rid for rid in accepted
            }
            while pending:
                finished, _ = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for fut in finished:
                    dones[pending.pop(fut)] = fut.result()
                if victim is None and len(dones) >= kill_after:
                    live = [h for h in cluster.replicas.values() if h.alive]
                    handle = max(live, key=lambda h: h.in_flight)
                    victim = handle.replica_id
                    await cluster.kill_replica(victim)
            ack = await conn.shutdown()
        finally:
            await conn.close()
    finally:
        await cluster.stop()
    return dones, ack, victim


def test_replica_failure_settles_everything_without_leaks():
    workload = _workload(groups=2, per_group=4, steps=6, seed=5)
    dones, ack, victim = asyncio.run(_kill_one_mid_load(workload, 2, 2))
    assert victim is not None
    assert len(dones) == len(workload)
    ok = [r for r, d in dones.items() if d.get("status") == "ok"]
    lost = [
        r for r, d in dones.items() if d.get("abort_reason") == "replica_lost"
    ]
    assert len(ok) + len(lost) == len(workload)
    # Survivor pools are untouched by the failure: nothing leaks.
    assert ack["leaked_blocks"] == 0
    assert ack["lost_replicas"] == [victim]
    assert ack["rerouted_requests"] + len(lost) >= 1
    report = ack["report"]
    assert report["lost_replicas"] == 1.0
    assert report["rerouted_requests"] == float(ack["rerouted_requests"])
