"""Integration tests: the paper's headline claims as executable assertions.

Each test states one claim from the paper and checks the reproduction's
version of it end to end (functional pipeline + simulators together).
These are the tests a reviewer would read first.
"""

import numpy as np
import pytest

from repro.accelerators import (
    AttentionWorkload, DenseAccelerator, GPUModel, PadeAnalyticModel, SangerModel, SofaModel,
)
from repro.attention.dense import dense_attention, softmax
from repro.core import PadeConfig, pade_attention
from repro.eval.workloads import measure_pipeline_stats
from repro.model.configs import get_model
from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv


@pytest.fixture(scope="module")
def llama_workload():
    model = get_model("llama2-7b")
    stats = measure_pipeline_stats(model, 2048)
    return AttentionWorkload(
        num_queries=2048, seq_len=2048, head_dim=model.head_dim,
        num_heads=model.num_heads, num_kv_heads=model.num_kv_heads,
        num_layers=model.num_layers,
        oracle_keep=stats.keep_fraction / 1.05, mean_planes=stats.mean_planes,
    )


class TestAbstractClaims:
    """'PADE achieves 7.43× speed up and 31.1× higher energy efficiency
    than Nvidia H100 GPU ... 5.1×, 4.3× and 3.4× energy saving than
    Sanger, DOTA and SOFA.'"""

    def test_pade_beats_h100_by_severalfold(self, llama_workload):
        gpu = GPUModel().cost(llama_workload)
        pade = PadeAnalyticModel().cost(llama_workload)
        assert gpu.cycles / pade.cycles > 3.0
        assert gpu.total_energy_pj / pade.total_energy_pj > 10.0

    def test_pade_beats_every_predictor_design(self, llama_workload):
        pade = PadeAnalyticModel().cost(llama_workload).total_energy_pj
        for cls in (SangerModel, SofaModel):
            assert cls().cost(llama_workload).total_energy_pj > pade


class TestPredictorFreeClaim:
    """'BSF eliminates the prediction overhead': PADE pays zero predictor
    energy while achieving at least the same retention quality."""

    def test_no_predictor_energy(self, llama_workload):
        assert PadeAnalyticModel().cost(llama_workload).predictor_energy_pj == 0.0

    def test_speculation_work_is_reused(self, rng):
        """The bits spent deciding are the MSBs of the final product —
        retained scores are exact without any recomputation."""
        q, k, v = synthesize_qkv(4, 512, 64, PROFILE_PRESETS["nlp"], rng)
        res = pade_attention(q, k, v, PadeConfig.standard())
        exact = res.q_int.data @ res.k_int.data.T
        # wherever retained, the pipeline's integer scores equal exact QK
        from repro.core.bsf import bsf_filter
        from repro.quant.bitplane import decompose_bitplanes

        planes = decompose_bitplanes(res.k_int.data)
        filt = bsf_filter(res.q_int.data, planes, res.guard_int)
        np.testing.assert_array_equal(filt.scores[filt.retained], exact[filt.retained])


class TestGuardedPruningClaim:
    """'BUI-GF enables precise and reliable early pruning' — no token whose
    logit is within α·radius of the row max is ever pruned."""

    @pytest.mark.parametrize("alpha", [0.3, 0.6, 1.0])
    def test_no_false_pruning(self, alpha, rng):
        q, k, v = synthesize_qkv(4, 512, 64, PROFILE_PRESETS["nlp"], rng)
        res = pade_attention(q, k, v, PadeConfig(alpha=alpha))
        logits = (res.q_int.data @ res.k_int.data.T) * res.logit_scale
        for i in range(4):
            must_keep = logits[i] >= logits[i].max() - alpha * 5.0
            assert res.retained[i][must_keep].all()

    def test_standard_config_near_lossless(self, rng):
        q, k, v = synthesize_qkv(8, 1024, 64, PROFILE_PRESETS["nlp"], rng)
        res = pade_attention(q, k, v, PadeConfig.standard())
        ref = dense_attention(q, k, v)
        logits = (res.q_int.data @ res.k_int.data.T) * res.logit_scale
        probs = softmax(logits, axis=-1)
        lost = np.where(res.retained, 0.0, probs).sum(axis=-1)
        assert lost.mean() < 0.03  # ~0% accuracy loss operating point
        assert np.abs(res.output - ref).max() < 0.25


class TestEarlyTerminationClaim:
    """'fine-grained early termination': most candidates stop well before
    the LSB, and memory access drops accordingly."""

    def test_mean_planes_well_below_eight(self, rng):
        q, k, v = synthesize_qkv(8, 1024, 64, PROFILE_PRESETS["nlp"], rng)
        res = pade_attention(q, k, v, PadeConfig.standard())
        assert res.mean_planes_per_candidate < 5.0

    def test_memory_reduction_vs_dense(self):
        model = get_model("llama2-7b")
        stats = measure_pipeline_stats(model, 2048)
        w = AttentionWorkload(
            num_queries=256, seq_len=2048, head_dim=model.head_dim,
            num_heads=model.num_heads, num_layers=model.num_layers, decode=True,
            oracle_keep=stats.keep_fraction / 1.05, mean_planes=stats.mean_planes,
        )
        dense = DenseAccelerator().cost(w)
        pade = PadeAnalyticModel().cost(w)
        assert pade.dram_bytes < 0.5 * dense.dram_bytes


class TestLoadBalanceClaim:
    """'BS ensures load imbalance remains below 50%' — with BS no plane
    costs more than the 50%-effective-bits ceiling."""

    def test_plane_costs_bounded(self, rng):
        from repro.quant.bitplane import decompose_bitplanes
        from repro.quant.integer import quantize_symmetric
        from repro.sim.pe import lane_task_costs

        q, k, v = synthesize_qkv(1, 512, 64, PROFILE_PRESETS["nlp"], rng)
        planes = decompose_bitplanes(quantize_symmetric(k).data)
        costs = lane_task_costs(planes.planes, bidirectional=True)
        assert costs.max() == 1  # ceil((8/2)/4) = 1 cycle always


class TestSequenceLengthScaling:
    """'PADE's advantage becomes more pronounced as the sequence length
    increases' (Figs. 15c/21/26b)."""

    def test_energy_lead_grows_with_context(self):
        model = get_model("llama2-7b")
        leads = []
        for seq in (4096, 65_536):
            stats = measure_pipeline_stats(model, seq)
            w = AttentionWorkload(
                num_queries=128, seq_len=seq, head_dim=model.head_dim,
                num_heads=model.num_heads, num_layers=model.num_layers, decode=True,
                oracle_keep=stats.keep_fraction / 1.05, mean_planes=stats.mean_planes,
            )
            sofa = SofaModel().cost(w).total_energy_pj
            pade = PadeAnalyticModel().cost(w).total_energy_pj
            leads.append(sofa / pade)
        assert leads[1] > leads[0]
