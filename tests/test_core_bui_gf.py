"""Tests for the guarded filter (paper Eq. 4, Fig. 7)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bui_gf import GuardedFilter, guard_in_int_units


class TestThresholdUpdating:
    def test_threshold_tracks_max_lower_bound(self):
        f = GuardedFilter(guard=3.0)
        f.observe(np.array([1.0, 5.0, 2.0]))
        assert f.threshold == 5.0 - 3.0
        f.observe(np.array([10.0]))
        assert f.threshold == 7.0

    def test_threshold_never_decreases(self):
        f = GuardedFilter(guard=1.0)
        f.observe(np.array([5.0]))
        t0 = f.threshold
        f.observe(np.array([-100.0]))  # lower observations don't relax T
        assert f.threshold == t0

    def test_infinite_guard_never_prunes(self):
        f = GuardedFilter(guard=float("inf"))
        f.observe(np.array([1e9]))
        decision = f.decide(np.array([-1e12]))
        assert decision.keep.all()

    def test_empty_observation_is_noop(self):
        f = GuardedFilter(guard=1.0)
        f.observe(np.array([]))
        assert f.max_lower_bound == -np.inf


class TestDecision:
    def test_keeps_at_or_above_threshold(self):
        f = GuardedFilter(guard=2.0)
        f.observe(np.array([10.0]))
        d = f.decide(np.array([9.0, 8.0, 7.9]))
        assert d.keep.tolist() == [True, True, False]  # inclusive at T
        assert d.threshold == 8.0

    def test_protection_overrides_pruning(self):
        f = GuardedFilter(guard=0.0)
        d = f.filter_round(
            np.array([10.0, 0.0]),
            np.array([10.0, 0.0]),
            protect=np.array([False, True]),
        )
        assert d.keep.tolist() == [True, True]

    @given(st.floats(0.1, 10.0), st.data())
    def test_guard_safety(self, guard, data):
        """Any token whose exact score is within `guard` of the exact max
        survives, regardless of the interleaving of observations."""
        rng = np.random.default_rng(data.draw(st.integers(0, 1 << 16)))
        scores = rng.normal(0, 5, size=32)
        f = GuardedFilter(guard=guard)
        keep = np.ones(32, dtype=bool)
        # feed in random chunks (exact scores = degenerate zero-width bounds)
        order = rng.permutation(32)
        for chunk in np.array_split(order, 4):
            d = f.filter_round(scores[chunk], scores[chunk])
            keep[chunk] = d.keep
        max_score = scores.max()
        must_keep = scores > max_score - guard
        assert np.all(keep[must_keep])


class TestGuardConversion:
    def test_converts_logit_guard(self):
        assert guard_in_int_units(0.5, 4.0, logit_scale=0.01) == pytest.approx(200.0)

    def test_infinite_radius(self):
        assert guard_in_int_units(1.0, float("inf"), 0.5) == float("inf")

    def test_degenerate_scale_disables_pruning(self):
        assert guard_in_int_units(0.5, 5.0, 0.0) == float("inf")
