"""Tests for the MXINT group micro-scaling format."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.quant.mxint import dequantize_mxint, quantize_mxint

mx_inputs = arrays(
    np.float64,
    st.tuples(st.integers(1, 4), st.sampled_from([32, 64, 96])),
    elements=st.floats(-100, 100, allow_nan=False, width=64),
)


class TestQuantizeMX:
    def test_group_count(self, rng):
        q = quantize_mxint(rng.normal(size=(4, 64)), group_size=32)
        assert q.num_groups == 2
        assert q.scales.shape == (4, 2)

    def test_rejects_misaligned_axis(self, rng):
        with pytest.raises(ValueError):
            quantize_mxint(rng.normal(size=(4, 33)), group_size=32)

    def test_payload_within_range(self, rng):
        q = quantize_mxint(rng.normal(size=(2, 64)), bits=8)
        assert q.data.min() >= -128 and q.data.max() <= 127

    def test_group_slice(self, rng):
        q = quantize_mxint(rng.normal(size=(1, 64)), group_size=32)
        assert q.group_slice(1) == slice(32, 64)

    @given(mx_inputs)
    def test_round_trip_error_bounded_per_group(self, values):
        q = quantize_mxint(values, bits=8, group_size=32)
        recon = dequantize_mxint(q)
        grouped_scale = np.repeat(q.scales, 32, axis=-1)
        assert np.all(np.abs(values - recon) <= grouped_scale * 0.5 + 1e-9)

    def test_outlier_isolation(self):
        """A group-local outlier must not degrade the other group — the
        motivation for micro-scaling formats."""
        values = np.zeros((1, 64))
        values[0, :32] = np.linspace(-1, 1, 32)
        values[0, 32] = 1000.0  # outlier confined to group 1
        q = quantize_mxint(values)
        recon = dequantize_mxint(q)
        err_group0 = np.abs(values[0, :32] - recon[0, :32]).max()
        assert err_group0 < 0.01  # unaffected by the outlier

    def test_finer_groups_reduce_error(self, rng):
        values = rng.normal(size=(1, 64)) * np.concatenate(
            [np.ones(32), np.full(32, 50.0)]
        )
        coarse = quantize_mxint(values, group_size=64)
        fine = quantize_mxint(values, group_size=32)
        err_c = np.abs(values - dequantize_mxint(coarse)).mean()
        err_f = np.abs(values - dequantize_mxint(fine)).mean()
        assert err_f < err_c
