"""Tests for the PE-lane timing model and the QK-PU simulation."""

import numpy as np
import pytest

from repro.core.bsf import bsf_filter
from repro.core.bui_gf import guard_in_int_units
from repro.quant.bitplane import decompose_bitplanes
from repro.quant.integer import quantize_symmetric
from repro.sim.pe import Scoreboard, lane_task_costs, simulate_lane
from repro.sim.qkpu import simulate_qkpu


def _work(costs_per_token):
    return [(i, np.asarray(c, dtype=np.int64)) for i, c in enumerate(costs_per_token)]


class TestScoreboard:
    def test_capacity(self):
        sb = Scoreboard(entries=2)
        assert sb.update(1, 0, 10)
        assert sb.update(2, 0, 20)
        assert not sb.update(3, 0, 30)  # full
        assert sb.update(1, 1, 15)  # refresh existing is fine
        sb.evict(1)
        assert sb.update(3, 0, 30)

    def test_hit_miss_counting(self):
        sb = Scoreboard()
        assert sb.lookup(5) is None
        sb.update(5, 0, 1)
        assert sb.lookup(5) == (0, 1)
        assert sb.hits == 1 and sb.misses == 1


class TestLaneTiming:
    def test_ooe_hides_latency_with_enough_tokens(self):
        """With many in-flight tokens, compute fully overlaps DRAM."""
        work = _work([[1, 1, 1, 1]] * 32)
        ooe = simulate_lane(work, dram_latency=10, scoreboard_entries=32)
        blocking = simulate_lane(work, dram_latency=10, scoreboard_entries=32, out_of_order=False)
        assert ooe.finish_cycle < blocking.finish_cycle
        assert ooe.utilization > blocking.utilization

    def test_in_order_exposes_continuation_latency(self):
        work = _work([[1, 1, 1]])  # one token, three planes
        res = simulate_lane(work, dram_latency=10, out_of_order=False)
        # MSB prefetched; 2 continuation planes pay latency
        assert res.finish_cycle == 3 + 2 * 10
        assert res.mem_stall_cycles == 20

    def test_scoreboard_capacity_limits_overlap(self):
        work = _work([[1, 1, 1, 1]] * 16)
        small = simulate_lane(work, dram_latency=20, scoreboard_entries=1)
        big = simulate_lane(work, dram_latency=20, scoreboard_entries=16)
        assert big.finish_cycle < small.finish_cycle
        assert small.scoreboard_stall_cycles > 0

    def test_busy_cycles_conserved(self):
        work = _work([[2, 1], [1], [3, 3, 3]])
        res = simulate_lane(work, dram_latency=5)
        assert res.busy_cycles == 2 + 1 + 1 + 9
        assert res.tasks == 6

    def test_empty_lane(self):
        res = simulate_lane([], dram_latency=5)
        assert res.finish_cycle == 0 and res.utilization == 1.0


class TestTaskCosts:
    def test_bs_halves_worst_case(self, rng):
        planes = decompose_bitplanes(rng.integers(-128, 128, size=(32, 64)))
        bs = lane_task_costs(planes.planes, bidirectional=True)
        naive = lane_task_costs(planes.planes, bidirectional=False)
        assert np.all(bs <= naive)
        assert bs.max() <= 1  # BS + 4 muxes => single cycle per plane

    def test_dense_ones_cost(self):
        k = np.full((4, 64), -1, dtype=np.int64)  # all bits set
        planes = decompose_bitplanes(k)
        naive = lane_task_costs(planes.planes, bidirectional=False)
        bs = lane_task_costs(planes.planes, bidirectional=True)
        assert naive.max() == 2  # 8 effective bits / 4 muxes
        assert bs.max() == 1  # 0-mode turns them free (min 1 cycle)


class TestQKPU:
    @pytest.fixture
    def filtered(self, medium_qkv):
        q, k, v = medium_qkv
        qi = quantize_symmetric(q)
        ki = quantize_symmetric(k)
        planes = decompose_bitplanes(ki.data)
        scale = float(qi.scale) * float(ki.scale) / 8.0
        res = bsf_filter(qi.data, planes, guard_in_int_units(0.6, 5.0, scale))
        return res, planes

    def test_bs_ooe_improves_both_axes(self, filtered):
        res, planes = filtered
        full = simulate_qkpu(res.planes_processed, planes)
        naive = simulate_qkpu(
            res.planes_processed, planes, bidirectional=False, out_of_order=False
        )
        assert full.cycles < naive.cycles
        assert full.utilization > naive.utilization

    def test_stall_fractions_partition_unity(self, filtered):
        res, planes = filtered
        r = simulate_qkpu(res.planes_processed, planes)
        total = r.useful_fraction + r.intra_pe_stall_fraction + r.inter_pe_stall_fraction
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_energy_components_positive(self, filtered):
        res, planes = filtered
        r = simulate_qkpu(res.planes_processed, planes)
        assert r.compute_energy_pj > 0
        assert r.scoreboard_energy_pj > 0
        assert r.decision_energy_pj > 0
        assert r.bit_plane_loads == int(res.planes_processed.sum())

    def test_more_lanes_fewer_cycles(self, filtered):
        res, planes = filtered
        slow = simulate_qkpu(res.planes_processed, planes, lanes_per_row=4)
        fast = simulate_qkpu(res.planes_processed, planes, lanes_per_row=32)
        assert fast.cycles < slow.cycles
