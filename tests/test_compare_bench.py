"""Unit tests for the CI bench-regression gate (benchmarks/compare_bench.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def _load():
    spec = importlib.util.spec_from_file_location(
        "compare_bench", _BENCH_DIR / "compare_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


cb = _load()


def _write(directory, name, payload):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / name).write_text(json.dumps(payload))


# ----------------------------------------------------------------------
# extract: dot-paths with list indices
# ----------------------------------------------------------------------


def test_extract_plain_and_nested():
    data = {"a": {"b": {"c": 3.5}}, "top": 1}
    assert cb.extract(data, "top") == 1.0
    assert cb.extract(data, "a.b.c") == 3.5


def test_extract_list_index():
    data = {"backends": {"fast": [{"speedup": 1.0}, {"speedup": 3.2}]}}
    assert cb.extract(data, "backends.fast.1.speedup") == 3.2


def test_extract_missing_key_raises():
    with pytest.raises(KeyError):
        cb.extract({"a": 1}, "b")


def test_registry_paths_resolve_against_committed_snapshots():
    """Every registry entry with a committed baseline must extract cleanly."""
    root = _BENCH_DIR.parent
    checked = 0
    for name, (path, direction) in cb.REGISTRY.items():
        snapshot = root / name
        if not snapshot.exists():
            continue
        value = cb.extract(json.loads(snapshot.read_text()), path)
        assert value == value and direction in ("higher", "lower")  # not NaN
        checked += 1
    assert checked > 0, "no committed BENCH_*.json snapshots found"


# ----------------------------------------------------------------------
# compare_headline: direction + tolerance semantics
# ----------------------------------------------------------------------


def test_compare_higher_within_tolerance_passes():
    assert cb.compare_headline(4.0, 3.1, "higher", tolerance=0.25) is None
    assert cb.compare_headline(4.0, 5.0, "higher", tolerance=0.25) is None


def test_compare_higher_beyond_tolerance_fails():
    verdict = cb.compare_headline(4.0, 2.8, "higher", tolerance=0.25)
    assert verdict is not None and "regressed" in verdict


def test_compare_lower_direction():
    assert cb.compare_headline(10.0, 12.0, "lower", tolerance=0.25) is None
    verdict = cb.compare_headline(10.0, 13.0, "lower", tolerance=0.25)
    assert verdict is not None and "regressed" in verdict


def test_compare_zero_baseline_never_fails():
    assert cb.compare_headline(0.0, -5.0, "higher") is None


def test_compare_bad_direction_raises():
    with pytest.raises(ValueError):
        cb.compare_headline(1.0, 1.0, "sideways")


# ----------------------------------------------------------------------
# main: end-to-end over temp baseline/fresh directories
# ----------------------------------------------------------------------


def test_main_passes_on_identical_results(tmp_path):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    _write(base, "BENCH_engine.json", {"speedup_fast": 4.0})
    _write(fresh, "BENCH_engine.json", {"speedup_fast": 4.0})
    assert cb.main(["--baseline-dir", str(base), "--fresh-dir", str(fresh)]) == 0


def test_main_fails_on_30pct_slowdown(tmp_path, capsys):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    _write(base, "BENCH_engine.json", {"speedup_fast": 4.0})
    _write(fresh, "BENCH_engine.json", {"speedup_fast": 4.0 * 0.7})
    assert cb.main(["--baseline-dir", str(base), "--fresh-dir", str(fresh)]) == 1
    out = capsys.readouterr().out
    assert "BENCH_engine.json" in out and "regressed" in out


def test_main_tolerates_small_jitter(tmp_path):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    _write(base, "BENCH_engine.json", {"speedup_fast": 4.0})
    _write(fresh, "BENCH_engine.json", {"speedup_fast": 4.0 * 0.8})  # -20% < 25%
    assert cb.main(["--baseline-dir", str(base), "--fresh-dir", str(fresh)]) == 0


def test_main_skips_missing_baseline(tmp_path, capsys):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    base.mkdir()
    _write(fresh, "BENCH_engine.json", {"speedup_fast": 1.0})
    assert cb.main(["--baseline-dir", str(base), "--fresh-dir", str(fresh)]) == 0
    assert "SKIP" in capsys.readouterr().out


def test_main_fails_on_missing_fresh(tmp_path, capsys):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    fresh.mkdir()
    _write(base, "BENCH_engine.json", {"speedup_fast": 4.0})
    assert cb.main(["--baseline-dir", str(base), "--fresh-dir", str(fresh)]) == 1
    assert "no fresh result" in capsys.readouterr().out


def test_main_list_index_path(tmp_path):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    payload = {"backends": {"fast": [{}, {}, {}, {}, {"speedup": 3.1}]}}
    _write(base, "BENCH_batch_decode.json", payload)
    slow = {"backends": {"fast": [{}, {}, {}, {}, {"speedup": 3.1 * 0.6}]}}
    _write(fresh, "BENCH_batch_decode.json", slow)
    assert cb.main(["--baseline-dir", str(base), "--fresh-dir", str(fresh)]) == 1


def test_main_cluster_headline_regression(tmp_path):
    base, fresh = tmp_path / "base", tmp_path / "fresh"
    _write(base, "BENCH_cluster.json", {"scaling": {"throughput_ratio": 3.5}})
    _write(fresh, "BENCH_cluster.json", {"scaling": {"throughput_ratio": 2.0}})
    assert cb.main(["--baseline-dir", str(base), "--fresh-dir", str(fresh)]) == 1
