"""Tests for the V-PU, area model, and the full-accelerator simulation."""

import numpy as np
import pytest
from dataclasses import replace

from repro.sim.accelerator import AcceleratorConfig, PadeAccelerator
from repro.sim.area import (
    AREA_SHARES,
    POWER_SHARES,
    TOTAL_AREA_MM2,
    TOTAL_POWER_MW,
    area_breakdown,
    overhead_summary,
    power_breakdown,
    scaled_breakdown,
    DesignPoint,
)
from repro.sim.vpu import simulate_vpu


class TestVPU:
    def test_macs_scale_with_retained(self, rng):
        dense = np.ones((8, 64), dtype=bool)
        sparse = rng.random((8, 64)) < 0.2
        d = simulate_vpu(dense, head_dim=64)
        s = simulate_vpu(sparse, head_dim=64)
        assert s.macs < d.macs
        assert s.cycles < d.cycles
        assert s.exp_ops == int(sparse.sum())

    def test_rars_reduces_or_matches_loads(self, rng):
        retained = rng.random((8, 128)) < 0.3
        with_rars = simulate_vpu(retained, 64, use_rars=True)
        without = simulate_vpu(retained, 64, use_rars=False)
        assert with_rars.v_vector_loads <= without.v_vector_loads
        assert with_rars.unique_v_vectors == without.unique_v_vectors

    def test_rescale_ops_charged(self, rng):
        retained = rng.random((4, 32)) < 0.5
        base = simulate_vpu(retained, 64, rescale_vector_ops=0)
        extra = simulate_vpu(retained, 64, rescale_vector_ops=10_000)
        assert extra.macs == base.macs + 10_000
        assert extra.energy_pj > base.energy_pj


class TestAreaModel:
    def test_shares_sum_near_one(self):
        # the paper's figure labels over-sum slightly; breakdowns renormalize
        assert sum(AREA_SHARES.values()) == pytest.approx(1.0, abs=0.07)
        assert sum(POWER_SHARES.values()) == pytest.approx(1.0, abs=0.07)

    def test_totals(self):
        assert sum(area_breakdown().values()) == pytest.approx(TOTAL_AREA_MM2, rel=0.02)
        assert sum(power_breakdown().values()) == pytest.approx(TOTAL_POWER_MW, rel=0.02)

    def test_paper_overhead_claims(self):
        o = overhead_summary()
        assert o["bui_area_frac"] == pytest.approx(0.049, abs=0.002)
        assert o["bui_power_frac"] == pytest.approx(0.121, abs=0.002)
        assert o["fusion_area_frac"] == pytest.approx(0.058, abs=0.002)
        assert o["fusion_power_frac"] == pytest.approx(0.049, abs=0.002)

    def test_scaled_scoreboard(self):
        small = scaled_breakdown(DesignPoint(scoreboard_entries=16))
        assert small["scoreboard"] == pytest.approx(area_breakdown()["scoreboard"] / 2)

    def test_scaled_gsat_nondefault_larger(self):
        assert scaled_breakdown(DesignPoint(gsat_subgroup=64))["pe_lane"] > area_breakdown()["pe_lane"]


class TestAccelerator:
    @pytest.fixture
    def qkv(self, medium_qkv):
        return medium_qkv

    def test_pade_beats_dense_baseline(self, qkv):
        q, k, v = qkv
        pade = PadeAccelerator(AcceleratorConfig()).run_head(q, k, v)
        dense = PadeAccelerator(AcceleratorConfig().dense_baseline()).run_head(q, k, v)
        assert pade.latency_cycles < dense.latency_cycles
        assert pade.energy_pj < dense.energy_pj
        assert pade.dram_bytes < dense.dram_bytes

    def test_result_reuse_saves_plane_traffic(self, qkv):
        q, k, v = qkv
        with_sb = PadeAccelerator(AcceleratorConfig()).run_head(q, k, v)
        without = PadeAccelerator(
            replace(AcceleratorConfig(), enable_result_reuse=False)
        ).run_head(q, k, v)
        assert with_sb.dram_bytes < without.dram_bytes

    def test_custom_layout_improves_bandwidth(self, qkv):
        q, k, v = qkv
        dl = PadeAccelerator(AcceleratorConfig()).run_head(q, k, v)
        no_dl = PadeAccelerator(
            replace(AcceleratorConfig(), custom_layout=False)
        ).run_head(q, k, v)
        assert dl.latency_cycles <= no_dl.latency_cycles
        assert dl.dram_activations < no_dl.dram_activations

    def test_energy_breakdown_nonnegative_and_complete(self, qkv):
        q, k, v = qkv
        r = PadeAccelerator(AcceleratorConfig()).run_head(q, k, v)
        assert set(r.energy_breakdown_pj) == {
            "qk_compute", "v_compute", "sram", "dram", "bui", "scheduler", "static",
        }
        assert all(val >= 0 for val in r.energy_breakdown_pj.values())

    def test_report_scaling(self, qkv):
        q, k, v = qkv
        r = PadeAccelerator(AcceleratorConfig()).run_head(q, k, v)
        doubled = r.scaled(2.0)
        assert doubled.latency_cycles == 2 * r.latency_cycles
        assert doubled.energy_pj == pytest.approx(2 * r.energy_pj)
        assert doubled.sparsity == r.sparsity

    def test_throughput_metrics(self, qkv):
        q, k, v = qkv
        r = PadeAccelerator(AcceleratorConfig()).run_head(q, k, v)
        assert r.throughput_gops > 0
        assert r.gops_per_watt > 0

    def test_run_model_attention_scales(self):
        from repro.model.configs import get_model

        acc = PadeAccelerator(AcceleratorConfig())
        short = acc.run_model_attention(get_model("opt-1b3"), 256, seq_cap=256)
        long = acc.run_model_attention(get_model("opt-1b3"), 1024, seq_cap=256)
        assert long.energy_pj > short.energy_pj
        assert long.latency_cycles > short.latency_cycles
