"""Tests for the vectorized BSF fast path and the DTATrans baseline."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.attention.baselines.dtatrans import dtatrans_layer, dtatrans_stack
from repro.core.bsf import bsf_filter
from repro.core.bsf_fast import bsf_filter_fast
from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv
from repro.quant.bitplane import decompose_bitplanes


class TestFastPathEquivalence:
    @given(st.integers(0, 1 << 12), st.floats(0, 3000))
    def test_matches_reference_exactly(self, seed, guard):
        rng = np.random.default_rng(seed)
        k = rng.integers(-128, 128, size=(48, 16))
        q = rng.integers(-128, 128, size=(3, 16))
        planes = decompose_bitplanes(k)
        slow = bsf_filter(q, planes, guard)
        fast = bsf_filter_fast(q, planes, guard)
        np.testing.assert_array_equal(slow.retained, fast.retained)
        np.testing.assert_array_equal(slow.planes_processed, fast.planes_processed)
        np.testing.assert_array_equal(slow.scores, fast.scores)
        assert slow.bit_plane_loads == fast.bit_plane_loads
        assert slow.effective_bit_ops == fast.effective_bit_ops
        assert slow.naive_bit_ops == fast.naive_bit_ops

    def test_matches_with_masks(self, rng):
        k = rng.integers(-128, 128, size=(64, 16))
        q = rng.integers(-128, 128, size=(4, 16))
        planes = decompose_bitplanes(k)
        allowed = rng.random((4, 64)) < 0.7
        protect = rng.random(64) < 0.05
        slow = bsf_filter(q, planes, 400.0, allowed=allowed, protect=protect)
        fast = bsf_filter_fast(q, planes, 400.0, allowed=allowed, protect=protect)
        np.testing.assert_array_equal(slow.retained, fast.retained)
        np.testing.assert_array_equal(slow.planes_processed, fast.planes_processed)

    def test_infinite_guard(self, rng):
        k = rng.integers(-128, 128, size=(32, 8))
        q = rng.integers(-128, 128, size=(2, 8))
        planes = decompose_bitplanes(k)
        fast = bsf_filter_fast(q, planes, float("inf"))
        assert fast.retained.all()
        assert np.all(fast.planes_processed == 8)


class TestDTATrans:
    @pytest.fixture
    def stack(self, rng):
        return [synthesize_qkv(4, 256, 32, PROFILE_PRESETS["nlp"], rng) for _ in range(3)]

    def test_first_layer_full_precision(self, stack):
        res = dtatrans_stack(stack, keep_fraction=0.3)
        assert res[0].full_precision.all()
        assert res[0].lost_mass == 0.0

    def test_band_budgets(self, stack):
        res = dtatrans_stack(stack, keep_fraction=0.25)
        for layer in res[1:]:
            budget = round(0.25 * 256)
            assert layer.full_precision.sum() + layer.low_precision.sum() <= budget
            assert not (layer.full_precision & layer.low_precision).any()

    def test_stale_guidance_loses_mass(self, stack):
        res = dtatrans_stack(stack, keep_fraction=0.25)
        assert np.mean([r.lost_mass for r in res[1:]]) > 0.02

    def test_bigger_budget_loses_less(self, stack):
        small = dtatrans_stack(stack, keep_fraction=0.15)
        big = dtatrans_stack(stack, keep_fraction=0.6)
        assert np.mean([r.lost_mass for r in big[1:]]) <= np.mean(
            [r.lost_mass for r in small[1:]]
        )

    def test_single_layer_interface(self, stack):
        q, k, v = stack[0]
        res, importance = dtatrans_layer(q, k, v, None, 0.3)
        assert res.output.shape == q.shape
        assert importance.shape == (256,)
        res2, _ = dtatrans_layer(q, k, v, importance, 0.3)
        assert res2.pruned.any()


class TestReportAll:
    def test_writes_selected_experiments(self, tmp_path):
        import io

        from repro.eval.report_all import write_report

        buf = io.StringIO()
        n = write_report(buf, experiments=["table3", "fig17"])
        text = buf.getvalue()
        assert n == 2
        assert "fig17" in text and "table3" in text and "QK-PU" in text
