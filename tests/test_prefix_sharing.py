"""Prefix sharing: hash identity, COW forks, ref-count lifecycle, leak fix.

The sharing layer is only sound if it is *invisible*: a request served
from shared blocks must retain byte-identical token sets to one that
wrote everything itself (both backends), blocks must fork before any
divergent write reaches a sharer, and the ref-count lifecycle must never
double-free or strand a block.  Hypothesis drives the interleavings.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import PadeConfig
from repro.engine import (
    BitPlaneKVCache,
    PadeEngine,
    PagedBitPlaneKVCache,
    PlaneBlockPool,
    PoolExhausted,
)
from repro.eval.workloads import build_prefix_workload


def _kv(rng, num_heads, seq_len, head_dim, v_dim):
    return (
        rng.normal(size=(num_heads, seq_len, head_dim)),
        rng.normal(size=(num_heads, seq_len, v_dim)),
    )


def _pool(num_heads=2, head_dim=4, block_size=4, token_budget=256):
    return PlaneBlockPool(
        num_heads, head_dim, head_dim, block_size=block_size, token_budget=token_budget
    )


def _clipped_variant(rng, k, split):
    """A prompt sharing ``k[:, :split]`` whose suffix cannot move the scales."""
    caps = np.abs(k).reshape(k.shape[0], -1).max(axis=1)
    suffix = rng.normal(size=(k.shape[0], k.shape[1] - split, k.shape[2]))
    suffix = np.clip(suffix, -caps[:, None, None], caps[:, None, None])
    return np.concatenate([k[:, :split], suffix], axis=1)


class TestPrefixHits:
    def test_identical_prompts_share_all_full_blocks(self, rng):
        pool = _pool(block_size=4)
        k, v = _kv(rng, 2, 10, 4, 4)  # 2 full blocks + partial tail
        first = PagedBitPlaneKVCache(pool, prefix_sharing=True)
        first.prefill(k, v)
        assert first.prefix_hit_blocks == 0 and first.prefix_miss_blocks == 2
        second = PagedBitPlaneKVCache(pool, prefix_sharing=True)
        second.prefill(k, v)
        assert second.prefix_hit_blocks == 2 and second.prefix_miss_blocks == 0
        # Full blocks shared, partial tail private.
        assert second.block_table[:2] == first.block_table[:2]
        assert second.block_table[2] != first.block_table[2]
        assert pool.ref_count(first.block_table[0]) == 2

    def test_shared_views_byte_identical_to_private(self, rng):
        pool = _pool(block_size=4, token_budget=512)
        k, v = _kv(rng, 2, 12, 4, 4)
        donor = PagedBitPlaneKVCache(pool, prefix_sharing=True)
        donor.prefill(k, v)
        sharer = PagedBitPlaneKVCache(pool, prefix_sharing=True)
        sharer.prefill(k, v)
        dense = BitPlaneKVCache(2, 4, 4)
        dense.prefill(k, v)
        assert sharer.planes.planes.tobytes() == dense.planes.planes.tobytes()
        assert sharer.k_int.tobytes() == dense.k_int.tobytes()
        assert sharer.values.tobytes() == dense.values.tobytes()
        assert sharer.scales.tobytes() == dense.scales.tobytes()

    def test_divergent_scales_never_match(self, rng):
        """A suffix that moves the per-head max-abs changes the frozen
        scales, so the 'same' prefix quantizes differently — no hit."""
        pool = _pool(block_size=4, token_budget=512)
        k, v = _kv(rng, 2, 8, 4, 4)
        loud = k.copy()
        loud[:, 6:] *= 10.0  # scales now calibrate off the suffix
        a = PagedBitPlaneKVCache(pool, prefix_sharing=True)
        a.prefill(k, v)
        b = PagedBitPlaneKVCache(pool, prefix_sharing=True)
        b.prefill(loud, v)
        assert b.prefix_hit_blocks == 0
        assert set(a.block_table).isdisjoint(b.block_table)

    def test_divergent_block_breaks_the_chain(self, rng):
        """Chained keys: a mismatch in block i blocks hits for i and after,
        even if a later block's content coincides."""
        pool = _pool(block_size=4, token_budget=512)
        k, v = _kv(rng, 2, 12, 4, 4)
        k[:, 0, :] = 5.0  # block 0 owns calibration, so scales agree
        variant = _clipped_variant(rng, k, split=4)  # blocks 1+ differ
        a = PagedBitPlaneKVCache(pool, prefix_sharing=True)
        a.prefill(k, v)
        b = PagedBitPlaneKVCache(pool, prefix_sharing=True)
        b.prefill(variant, v)
        assert b.prefix_hit_blocks == 1  # only block 0 matches
        assert b.block_table[0] == a.block_table[0]
        assert b.block_table[1] != a.block_table[1]

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_serve_retention_invariant_under_sharing(self, backend):
        """Acceptance: retained sets byte-identical, sharing on vs off."""
        workload = build_prefix_workload(
            4, 2, prefix_len=48, unique_len=8, decode_steps=3, head_dim=8, seed=3
        )
        runs = {}
        for sharing in (False, True):
            engine = PadeEngine(PadeConfig.standard(), backend=backend)
            runs[sharing] = engine.serve(
                workload, max_active=4, token_budget=2048, block_size=16,
                prefix_sharing=sharing,
            )
        for rid in runs[False]:
            assert (
                runs[False][rid].retained_bytes() == runs[True][rid].retained_bytes()
            ), f"{rid} retention changed under prefix sharing ({backend})"
            np.testing.assert_array_equal(
                runs[False][rid].decode_outputs, runs[True][rid].decode_outputs
            )

    def test_late_binding_hits_under_chunked_prefill(self):
        """Requests admitted in the same round as their donor — before it
        wrote anything — still attach its blocks chunk by chunk."""
        workload = build_prefix_workload(
            4, 2, prefix_len=64, unique_len=8, decode_steps=2, head_dim=8, seed=7
        )  # all arrivals at t=0: everyone begins prefill before any registration
        engine = PadeEngine()
        results = engine.serve(
            workload, max_active=4, token_budget=2048, block_size=8,
            prefix_sharing=True, round_token_budget=32, chunk_tokens=16,
        )
        sched = engine.last_serve
        assert sched.prefix_hit_blocks >= 3 * (64 // 8)  # 3 sharers x prefix blocks
        baseline = PadeEngine().serve(
            workload, max_active=4, token_budget=2048, block_size=8,
            round_token_budget=32, chunk_tokens=16,
        )
        for rid in results:
            assert results[rid].retained_bytes() == baseline[rid].retained_bytes()

    def test_sharing_survives_preemption_restart(self):
        """A preempted sharer re-prefills through the index and still
        matches its uncontended retention."""
        workload = build_prefix_workload(
            3, 2, prefix_len=32, unique_len=16, decode_steps=10, head_dim=8,
            arrival_times=[0.0, 1.0, 2.0], seed=5,
        )
        engine = PadeEngine()
        tight = engine.serve(
            workload, max_active=3, token_budget=96, block_size=8,
            prefix_sharing=True,
        )
        assert engine.last_serve.pool.used_block_count == 0
        ample = PadeEngine().serve(
            workload, max_active=3, token_budget=4096, block_size=8,
            prefix_sharing=True,
        )
        for rid in tight:
            assert tight[rid].retained_bytes() == ample[rid].retained_bytes()


class TestCopyOnWrite:
    def test_fork_then_divergent_append_copies_tail(self, rng):
        pool = _pool(block_size=4)
        k, v = _kv(rng, 2, 6, 4, 4)  # partial tail (2 rows of block 1)
        a = PagedBitPlaneKVCache(pool)
        a.prefill(k, v)
        b = a.fork()
        tail = a.block_table[-1]
        assert pool.ref_count(tail) == 2
        ka, va = rng.normal(size=(2, 4)), rng.normal(size=(2, 4))
        kb, vb = rng.normal(size=(2, 4)), rng.normal(size=(2, 4))
        a.append(ka, va)  # first divergent write forks the shared tail
        assert pool.forks == 1
        assert a.block_table[-1] != tail
        b.append(kb, vb)  # b now owns the original tail alone: no copy
        assert pool.forks == 1
        for cache, k_step, v_step in ((a, ka, va), (b, kb, vb)):
            dense = BitPlaneKVCache(2, 4, 4)
            dense.prefill(k, v)
            dense.append(k_step, v_step)
            assert dense.k_int.tobytes() == cache.k_int.tobytes()
            assert dense.planes.planes.tobytes() == cache.planes.planes.tobytes()
            assert dense.values.tobytes() == cache.values.tobytes()

    def test_fork_of_aligned_cache_never_copies(self, rng):
        """With a full tail block, both sides append into fresh blocks —
        no copy-on-write is ever needed."""
        pool = _pool(block_size=4)
        k, v = _kv(rng, 2, 8, 4, 4)
        a = PagedBitPlaneKVCache(pool)
        a.prefill(k, v)
        b = a.fork()
        a.append(rng.normal(size=(2, 4)), rng.normal(size=(2, 4)))
        b.append(rng.normal(size=(2, 4)), rng.normal(size=(2, 4)))
        assert pool.forks == 0
        assert a.block_table[:-1] == b.block_table[:-1]
        assert a.block_table[-1] != b.block_table[-1]

    def test_registered_blocks_are_never_mutated_by_appends(self, rng):
        """Appends after an aligned prefill go into fresh blocks; the
        registered prompt blocks keep their published content."""
        pool = _pool(block_size=4)
        k, v = _kv(rng, 2, 8, 4, 4)  # aligned: both blocks registered
        a = PagedBitPlaneKVCache(pool, prefix_sharing=True)
        a.prefill(k, v)
        assert pool.is_registered(a.block_table[-1])
        a.append(*(x.reshape(2, 4) for x in _kv(rng, 2, 1, 4, 4)))
        # Aligned tail: append allocated a fresh block, registration intact.
        assert pool.is_registered(a.block_table[-2])
        assert not pool.is_registered(a.block_table[-1])


class TestLeakRegression:
    def test_failed_shared_prefill_releases_prefix_refs(self, rng):
        """ISSUE 3 satellite: PoolExhausted mid-admission must free the
        partially attached blocks, restoring pre-admission occupancy."""
        pool = _pool(block_size=4, token_budget=16)  # 4 blocks
        k, v = _kv(rng, 2, 8, 4, 4)
        donor = PagedBitPlaneKVCache(pool, prefix_sharing=True)
        donor.prefill(k, v)  # 2 blocks, both registered
        filler = PagedBitPlaneKVCache(pool)
        filler.prefill(*_kv(rng, 2, 8, 4, 4))  # the other 2 blocks
        long_k = _clipped_variant(rng, k, split=8)  # hits both donor blocks
        long_k = np.concatenate([long_k, long_k[:, :4]], axis=1)  # needs 1 more
        long_v = np.concatenate([v, v[:, :4]], axis=1)
        victim = PagedBitPlaneKVCache(pool, prefix_sharing=True)
        used_before = pool.used_block_count
        refs_before = [pool.ref_count(b) for b in donor.block_table]
        with pytest.raises(PoolExhausted):
            victim.prefill(long_k, long_v)
        assert pool.used_block_count == used_before
        assert [pool.ref_count(b) for b in donor.block_table] == refs_before
        assert victim.length == 0
        # After the filler frees its blocks the same call succeeds.
        filler.release()
        victim.prefill(long_k, long_v)
        assert victim.prefix_hit_blocks == 2

    def test_allocate_many_is_atomic(self):
        pool = _pool(block_size=4, token_budget=16)
        pool.allocate_many(3)
        free_before = pool.free_block_count
        with pytest.raises(PoolExhausted):
            pool.allocate_many(2)
        assert pool.free_block_count == free_before


class TestRefcountLifecycle:
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["admit", "fork", "append", "free"]), st.integers(0, 7)),
            min_size=1,
            max_size=30,
        ),
        block_size=st.integers(2, 5),
        seed=st.integers(0, 2**16),
    )
    def test_interleaved_admit_fork_free_never_double_frees(self, ops, block_size, seed):
        """ISSUE 3 satellite: any interleaving of admit (shared prompts),
        fork, append and free keeps the pool conserved — used + free ==
        total, every live block has refcount >= 1, and releasing the last
        reference returns the block to the free list."""
        rng = np.random.default_rng(seed)
        pool = PlaneBlockPool(1, 3, 3, block_size=block_size, token_budget=40 * block_size)
        prompts = [_kv(rng, 1, block_size * 2 + 1, 3, 3) for _ in range(3)]
        live = []
        for op, pick in ops:
            if op == "admit":
                cache = PagedBitPlaneKVCache(pool, prefix_sharing=True)
                k, v = prompts[pick % len(prompts)]
                try:
                    cache.prefill(k, v)
                except PoolExhausted:
                    continue
                live.append(cache)
            elif live and op == "fork":
                live.append(live[pick % len(live)].fork())
            elif live and op == "append":
                cache = live[pick % len(live)]
                try:
                    cache.append(rng.normal(size=(1, 3)), rng.normal(size=(1, 3)))
                except PoolExhausted:
                    continue
            elif live and op == "free":
                live.pop(pick % len(live)).release()
            # Conservation + refcount sanity after every step.
            assert pool.used_block_count + pool.free_block_count == pool.num_blocks
            for cache in live:
                for block in cache.block_table:
                    assert pool.ref_count(block) >= 1
        for cache in live:
            cache.release()  # the last reference frees; double frees would raise
        assert pool.used_block_count == 0
        assert pool.free_block_count == pool.num_blocks

    def test_release_after_last_reference_raises(self, rng):
        pool = _pool()
        k, v = _kv(rng, 2, 4, 4, 4)
        a = PagedBitPlaneKVCache(pool)
        a.prefill(k, v)
        blocks = list(a.block_table)
        a.release()
        with pytest.raises(ValueError):
            pool.release(blocks)

    def test_shared_block_freed_only_at_zero_refs(self, rng):
        pool = _pool(block_size=4)
        k, v = _kv(rng, 2, 8, 4, 4)
        a = PagedBitPlaneKVCache(pool, prefix_sharing=True)
        a.prefill(k, v)
        b = PagedBitPlaneKVCache(pool, prefix_sharing=True)
        b.prefill(k, v)
        shared = a.block_table[0]
        a.release()
        assert pool.ref_count(shared) == 1  # b still holds it
        assert pool.lookup_prefix(pool._block_key[shared]) == shared
        b.release()
        assert pool.ref_count(shared) == 0
        assert pool.used_block_count == 0


class TestPolicyInteractions:
    """Prefix sharing × attention policies (ISSUE 4).

    Sharing must stay invisible to every policy: a request served from
    shared blocks retains identical token sets to one that wrote
    everything itself, and content-derived per-block policy state
    (Quest's page summaries in ``pool.block_meta``) is reused by
    sharers but never outlives or escapes its block.
    """

    def _digests(self, results):
        return {rid: results[rid].retained_bytes() for rid in results}

    @pytest.mark.parametrize("policy", ["quest", "streaming-llm", "h2o"])
    def test_sharing_invisible_to_policies(self, policy):
        from repro.eval.workloads import build_prefix_workload

        def serve(sharing):
            workload = build_prefix_workload(4, 2, 16, 8, 6, 16, seed=5)
            engine = PadeEngine(policy=policy)
            results = engine.serve(
                workload, max_active=4, token_budget=1024, block_size=16,
                prefix_sharing=sharing,
            )
            return results, engine.last_serve

        on, on_sched = serve(True)
        off, _ = serve(False)
        assert on_sched.prefix_hit_blocks > 0, "workload was expected to share"
        assert self._digests(on) == self._digests(off)
        for rid in off:
            np.testing.assert_array_equal(
                on[rid].decode_outputs, off[rid].decode_outputs
            )

    def test_quest_block_meta_shared_and_freed(self, rng):
        """Two sharers compute one summary per shared block; freeing the
        last reference drops the meta with the block."""
        from repro.attention.policy import get_policy

        engine = PadeEngine(policy=get_policy("quest", keep_fraction=0.5))
        pool = _pool(num_heads=2, head_dim=8, block_size=4, token_budget=256)
        k, v = _kv(rng, 2, 8, 8, 8)
        q = rng.normal(size=(2, 1, 8))

        donor = PagedBitPlaneKVCache(pool, prefix_sharing=True)
        engine.prefill(donor, k, v, q=q, total_tokens=8)
        assert set(pool.block_meta) <= set(donor.block_table)
        meta_ids = {id(pool.block_meta[b]["quest"]) for b in pool.block_meta}

        sharer = PagedBitPlaneKVCache(pool, prefix_sharing=True)
        engine.prefill(sharer, k, v, q=q, total_tokens=8)
        # The sharer attached the donor's blocks and reused their summaries.
        assert sharer.prefix_hit_blocks == 2
        assert {id(pool.block_meta[b]["quest"]) for b in pool.block_meta} == meta_ids

        donor.release()
        sharer.release()
        assert pool.block_meta == {}

    def test_fork_invalidates_block_meta(self, rng):
        """A copy-on-write fork must not leave stale summaries behind on
        either side of the divergence."""
        engine = PadeEngine(policy="quest")
        pool = _pool(num_heads=1, head_dim=4, block_size=4, token_budget=256)
        k, v = _kv(rng, 1, 4, 4, 4)
        a = PagedBitPlaneKVCache(pool)
        engine.prefill(a, k, v, total_tokens=6)
        b = a.fork()
        # Drive one decode on the fork: the shared tail is full, so the
        # append allocates a new block; the original's meta stays valid.
        engine.decode_step(b, rng.normal(size=(1, 4)), rng.normal(size=(1, 4)),
                           rng.normal(size=(1, 4)))
        shared = a.block_table[0]
        # Now mutate the shared full block via fork_block directly (the
        # partial-tail COW path) and check its meta is dropped.
        pool.block_meta.setdefault(shared, {})["quest"] = "stale"
        fresh = pool.fork_block(shared, rows_used=4)
        assert "quest" not in pool.block_meta.get(fresh, {})
        a._blocks[0] = fresh  # keep the table consistent for release
        a.release()
        b.release()
