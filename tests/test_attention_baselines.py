"""Tests for the software sparse-attention baselines (Fig. 15 comparators)."""

import numpy as np
import pytest

from repro.attention.baselines import (
    double_sparsity_attention,
    minference_attention,
    streaming_llm_attention,
    topk_oracle_attention,
)
from repro.attention.baselines.double_sparsity import select_heavy_channels
from repro.attention.dense import attention_scores, softmax
from repro.attention.masks import causal_mask
from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv


@pytest.fixture
def problem(rng):
    return synthesize_qkv(8, 256, 32, PROFILE_PRESETS["nlp"], rng)


def lost_mass(q, k, retained):
    logits = attention_scores(q, k)
    causal = causal_mask(q.shape[0], k.shape[0], k.shape[0] - q.shape[0])
    probs = softmax(np.where(causal, logits, -np.inf), axis=-1)
    return float(np.where(retained, 0.0, probs).sum(axis=-1).mean())


class TestStreamingLLM:
    def test_budget_respected(self, problem):
        q, k, v = problem
        res = streaming_llm_attention(q, k, v, keep_fraction=0.25)
        assert res.keep_fraction <= 0.30

    def test_no_prediction_cost(self, problem):
        q, k, v = problem
        assert streaming_llm_attention(q, k, v, 0.25).prediction_cost == 0.0

    def test_static_pattern_misses_heavy_hitters(self, problem):
        """With off-pattern heavy hitters the static mask loses more mass
        than the oracle at the same budget (the paper's Fig. 15 finding)."""
        q, k, v = problem
        budget = 0.2
        static = streaming_llm_attention(q, k, v, budget)
        oracle = topk_oracle_attention(q, k, v, budget)
        assert lost_mass(q, k, static.retained) > lost_mass(q, k, oracle.retained)

    def test_sinks_always_kept(self, problem):
        q, k, v = problem
        res = streaming_llm_attention(q, k, v, 0.1, sink_tokens=4)
        assert res.retained[:, :4].all()


class TestMInference:
    def test_output_shape_and_cost(self, problem):
        q, k, v = problem
        res = minference_attention(q, k, v, keep_fraction=0.25)
        assert res.output.shape == q.shape
        assert 0 < res.prediction_cost <= 1.0

    def test_adapts_better_than_static(self, problem):
        q, k, v = problem
        budget = 0.15
        mi = minference_attention(q, k, v, budget)
        st = streaming_llm_attention(q, k, v, budget)
        assert lost_mass(q, k, mi.retained) <= lost_mass(q, k, st.retained) + 0.10

    def test_causal_respected(self, problem):
        q, k, v = problem
        res = minference_attention(q, k, v, 0.3)
        causal = causal_mask(8, 256, 248)
        assert not (res.retained & ~causal).any()


class TestDoubleSparsity:
    def test_channel_selection_picks_high_energy(self, rng):
        k = rng.normal(size=(64, 16))
        k[:, 3] *= 100
        channels = select_heavy_channels(k, 0.25)
        assert 3 in channels
        assert channels.size == 4

    def test_more_accurate_than_static_at_same_budget(self, problem):
        q, k, v = problem
        budget = 0.15
        ds = double_sparsity_attention(q, k, v, budget)
        st = streaming_llm_attention(q, k, v, budget)
        assert lost_mass(q, k, ds.retained) < lost_mass(q, k, st.retained)

    def test_prediction_cost_is_channel_fraction(self, problem):
        q, k, v = problem
        res = double_sparsity_attention(q, k, v, 0.2, channel_fraction=0.125)
        assert res.prediction_cost == 0.125


class TestTopKOracle:
    def test_budget_exact(self, problem):
        q, k, v = problem
        res = topk_oracle_attention(q, k, v, keep_fraction=0.1)
        budget = round(0.1 * 256)
        causal = causal_mask(8, 256, 248)
        per_row = res.retained.sum(axis=1)
        assert np.all(per_row <= budget)
        assert not (res.retained & ~causal).any()

    def test_oracle_dominates_all_heuristics(self, problem):
        q, k, v = problem
        budget = 0.1
        oracle = lost_mass(q, k, topk_oracle_attention(q, k, v, budget).retained)
        for fn in (streaming_llm_attention, minference_attention, double_sparsity_attention):
            assert oracle <= lost_mass(q, k, fn(q, k, v, budget).retained) + 1e-9
