"""Tests for GSAT (functional + DSE) and the BS scheduler."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sim.gsat import GSATConfig, gsat_area_power, gsat_cycles, gsat_partial_dot
from repro.sim.scheduler import BSScheduler

bits64 = arrays(np.uint8, st.just(64), elements=st.integers(0, 1))
q64 = arrays(np.int64, st.just(64), elements=st.integers(-128, 127))


class TestGSATFunctional:
    @given(q64, bits64)
    def test_grouped_dot_equals_monolithic(self, q, bits):
        """Sub-group decomposition changes cost, never the value."""
        expected = int(np.dot(q, bits.astype(np.int64)))
        assert gsat_partial_dot(q, bits) == expected

    @given(q64, bits64, st.sampled_from([2, 4, 8, 16, 32]))
    def test_any_subgroup_size_equivalent(self, q, bits, g):
        cfg = GSATConfig(subgroup=g)
        expected = int(np.dot(q, bits.astype(np.int64)))
        assert gsat_partial_dot(q, bits, cfg) == expected

    def test_dimension_check(self, rng):
        with pytest.raises(ValueError):
            gsat_partial_dot(np.zeros(32, dtype=np.int64), np.zeros(64, dtype=np.uint8))


class TestGSATCycles:
    @given(bits64)
    def test_bs_caps_cycles_at_one(self, bits):
        """With 4 muxes per 8-wide sub-group and BS guaranteeing ≤ 4
        effective bits, every plane takes exactly one selection cycle."""
        assert gsat_cycles(bits) == 1

    def test_worst_subgroup_dominates(self):
        bits = np.zeros(64, dtype=np.uint8)
        bits[:8] = [1, 1, 1, 0, 0, 0, 0, 0]  # 3 eff bits < 4 muxes
        assert gsat_cycles(bits, GSATConfig(muxes_per_subgroup=2)) == 2


class TestGSATDse:
    def test_optimum_at_subgroup_eight(self):
        """Fig. 17(a): size 8 minimizes area and power."""
        areas = {g: gsat_area_power(g)[0] for g in (2, 4, 8, 16, 32, 64)}
        powers = {g: gsat_area_power(g)[1] for g in (2, 4, 8, 16, 32, 64)}
        assert min(areas, key=areas.get) == 8
        assert min(powers, key=powers.get) == 8

    def test_curve_is_convex_shaped(self):
        areas = [gsat_area_power(g)[0] for g in (2, 4, 8, 16, 32, 64)]
        assert areas[0] > areas[2] < areas[-1]

    def test_divisibility_check(self):
        with pytest.raises(ValueError):
            gsat_area_power(12)


class TestBSScheduler:
    @given(arrays(np.uint8, st.integers(1, 16), elements=st.integers(0, 1)))
    def test_selection_completeness(self, bits):
        """Every effective bit is selected exactly once (any density)."""
        sched = BSScheduler()
        one_mode, indices = sched.selected_indices(bits)
        column = bits if one_mode else 1 - bits
        expected = set(np.flatnonzero(column).tolist())
        assert set(indices) == expected
        assert len(indices) == len(expected)

    @given(arrays(np.uint8, st.just(8), elements=st.integers(0, 1)))
    def test_mode_matches_bs_rule(self, bits):
        sched = BSScheduler()
        one_mode, _ = sched.choose_mode(bits)
        assert one_mode == (bits.sum() <= bits.size - bits.sum())

    def test_all_zero_column_single_invalid_step(self):
        sched = BSScheduler()
        one_mode, steps = sched.schedule(np.zeros(8, dtype=np.uint8))
        assert one_mode
        assert len(steps) == 1 and not steps[0].valid

    def test_temporal_reuse_saving(self):
        assert BSScheduler.encoder_area_saving(4) == 0.75

    def test_energy_tracks_invocations(self):
        sched = BSScheduler()
        sched.schedule(np.array([1, 0, 1, 0, 1, 0, 1, 0], dtype=np.uint8))
        assert sched.encoder_invocations > 0
        assert sched.energy_pj() == sched.encoder_invocations * sched.tech.encoder_pj

    def test_steps_bounded_by_width(self):
        sched = BSScheduler()
        _, steps = sched.schedule(np.ones(8, dtype=np.uint8))  # flips to 0-mode
        assert len(steps) <= 8
