"""AttentionPolicy layer: registry, incremental/one-shot parity, footprints.

The parity property ISSUE 4 pins down: for each converted baseline, an
incremental policy decoding a random sequence step by step through the
engine produces, at every step, the same retained mask row the legacy
one-shot function computes for that query, allclose outputs, and the
same cost accounting.  Hypothesis drives the shapes/budgets; the
tensors come from seeded generators so runs are reproducible.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.attention.baselines import (
    double_sparsity_attention,
    h2o_decode,
    minference_attention,
    quest_attention,
    streaming_llm_attention,
    topk_oracle_attention,
)
from repro.attention.baselines.double_sparsity import (
    DoubleSparsityPolicy,
    select_heavy_channels,
)
from repro.attention.policy import (
    POLICY_REGISTRY,
    available_policies,
    get_policy,
    resolve_policy,
)
from repro.core import PadeConfig
from repro.engine import PadeEngine


def _problem(seed, prompt_len, steps, head_dim=12):
    rng = np.random.default_rng(seed)
    total = prompt_len + steps
    return (
        rng.normal(size=(total, head_dim)),
        rng.normal(size=(total, head_dim)),
        rng.normal(size=(steps, head_dim)),
    )


def _decode_incremental(policy, k, v, q, prompt_len):
    """Single-head incremental decode through the policy-routed engine."""
    engine = PadeEngine(PadeConfig.standard(), policy=policy)
    cache = engine.new_cache(1, k.shape[1], v.shape[1])
    engine.prefill(cache, k[None, :prompt_len], v[None, :prompt_len],
                   total_tokens=k.shape[0])
    masks, outputs, costs = [], [], []
    for t in range(q.shape[0]):
        res = engine.decode_step(
            cache, q[None, t], k[None, prompt_len + t], v[None, prompt_len + t]
        )
        masks.append(res.retained[0, 0])
        outputs.append(res.output[0, 0])
        costs.append((res.prediction_cost, res.execution_cost))
    return masks, outputs, costs


def _assert_step_parity(masks, outputs, legacy, prompt_len):
    """Every incremental step row equals the legacy one-shot row."""
    for t, (mask, out) in enumerate(zip(masks, outputs)):
        visible = prompt_len + t + 1
        np.testing.assert_array_equal(mask, legacy.retained[t, :visible])
        assert not legacy.retained[t, visible:].any()
        np.testing.assert_allclose(out, legacy.output[t], atol=1e-12)


shapes = st.tuples(
    st.integers(min_value=6, max_value=48),   # prompt length
    st.integers(min_value=1, max_value=8),    # decode steps
    st.integers(min_value=0, max_value=10_000),  # tensor seed
)
budgets = st.sampled_from([0.1, 0.2, 0.3, 0.5])


class TestIncrementalOneShotParity:
    @given(shape=shapes, keep=budgets, sinks=st.integers(min_value=1, max_value=6))
    def test_streaming_llm(self, shape, keep, sinks):
        prompt_len, steps, seed = shape
        k, v, q = _problem(seed, prompt_len, steps)
        masks, outs, costs = _decode_incremental(
            get_policy("streaming-llm", keep_fraction=keep, sink_tokens=sinks),
            k, v, q, prompt_len,
        )
        legacy = streaming_llm_attention(q, k, v, keep, sink_tokens=sinks)
        _assert_step_parity(masks, outs, legacy, prompt_len)
        assert all(pred == 0.0 for pred, _ in costs)  # no predictor

    @given(shape=shapes, keep=budgets)
    def test_topk_oracle(self, shape, keep):
        prompt_len, steps, seed = shape
        k, v, q = _problem(seed, prompt_len, steps)
        masks, outs, costs = _decode_incremental(
            get_policy("topk-oracle", keep_fraction=keep), k, v, q, prompt_len
        )
        legacy = topk_oracle_attention(q, k, v, keep)
        _assert_step_parity(masks, outs, legacy, prompt_len)
        assert all(pred == 1.0 for pred, _ in costs)  # full dense scoring

    @given(shape=shapes, keep=budgets, page=st.sampled_from([4, 8, 16]))
    def test_quest(self, shape, keep, page):
        prompt_len, steps, seed = shape
        k, v, q = _problem(seed, prompt_len, steps)
        masks, outs, _ = _decode_incremental(
            get_policy("quest", keep_fraction=keep, page_size=page),
            k, v, q, prompt_len,
        )
        legacy = quest_attention(q, k, v, keep, page_size=page)
        _assert_step_parity(masks, outs, legacy, prompt_len)

    @given(shape=shapes, keep=budgets, cf=st.sampled_from([0.125, 0.25, 0.5]))
    def test_double_sparsity(self, shape, keep, cf):
        # Calibration pinned to the full sequence on both sides so the
        # channel subsets agree (serving calibrates on the prompt).
        prompt_len, steps, seed = shape
        k, v, q = _problem(seed, prompt_len, steps)
        channels = select_heavy_channels(k, cf)
        masks, outs, costs = _decode_incremental(
            DoubleSparsityPolicy(keep, cf, channels=channels), k, v, q, prompt_len
        )
        legacy = double_sparsity_attention(
            q, k, v, keep, channel_fraction=cf, channels=channels
        )
        _assert_step_parity(masks, outs, legacy, prompt_len)
        assert all(pred == cf for pred, _ in costs)
        assert legacy.prediction_cost == cf

    @given(shape=shapes, bf=st.sampled_from([0.2, 0.4, 0.8]),
           recent=st.integers(min_value=2, max_value=8))
    def test_h2o(self, shape, bf, recent):
        prompt_len, steps, seed = shape
        k, v, q = _problem(seed, prompt_len, steps)
        legacy_out, legacy_lost, legacy_state = h2o_decode(
            q, k, v, budget_fraction=bf, recent_tokens=recent
        )
        policy = get_policy("h2o", budget_fraction=bf, recent_tokens=recent)
        masks, outs, _ = _decode_incremental(policy, k, v, q, prompt_len)
        for t in range(steps):
            np.testing.assert_allclose(outs[t], legacy_out[t], atol=1e-12)
        # Final alive set and lost-mass series line up with the wrapper
        # (re-run through a fresh engine so the state is inspectable).
        engine = PadeEngine(PadeConfig.standard(), policy=policy)
        cache = engine.new_cache(1, k.shape[1], v.shape[1])
        engine.prefill(cache, k[None, :prompt_len], v[None, :prompt_len],
                       total_tokens=k.shape[0])
        for t in range(steps):
            engine.decode_step(cache, q[None, t], k[None, prompt_len + t],
                               v[None, prompt_len + t])
        engine_state = cache.policy_state.per_head
        np.testing.assert_array_equal(
            engine_state["alive"][0], legacy_state.alive
        )
        np.testing.assert_allclose(
            engine_state["lost"][0], legacy_lost, atol=1e-12
        )

    @given(shape=shapes, keep=budgets)
    def test_minference_prefill_block(self, shape, keep):
        """The one-shot wrapper and the policy's prefill share one pattern
        choice; the incremental decode rows extend exactly that pattern."""
        from repro.attention.baselines.minference import _pattern_mask

        prompt_len, steps, seed = shape
        k, v, q = _problem(seed, prompt_len, steps)
        policy = get_policy("minference", keep_fraction=keep)
        legacy = minference_attention(q, k, v, keep)
        np.testing.assert_array_equal(policy.one_shot_mask(q, k), legacy.retained)

        masks, _, _ = _decode_incremental(policy, k, v, q, prompt_len)
        # Decode rows extend the pattern chosen at the first decode step.
        engine = PadeEngine(PadeConfig.standard(), policy=policy)
        cache = engine.new_cache(1, k.shape[1], v.shape[1])
        engine.prefill(cache, k[None, :prompt_len], v[None, :prompt_len],
                       total_tokens=k.shape[0])
        engine.decode_step(cache, q[None, 0], k[None, prompt_len], v[None, prompt_len])
        name, params = cache.policy_state.per_head["patterns"][0]
        for t, mask in enumerate(masks):
            visible = prompt_len + t + 1
            np.testing.assert_array_equal(
                mask, _pattern_mask(name, params, 1, visible, visible - 1)[0]
            )


class TestRegistry:
    def test_expected_policies_registered(self):
        names = available_policies()
        for expected in ("pade", "quest", "h2o", "streaming-llm", "topk-oracle",
                         "double-sparsity", "minference"):
            assert expected in names

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown attention policy"):
            get_policy("nope")

    def test_resolve_accepts_name_instance_none(self):
        assert resolve_policy(None).name == "pade"
        assert resolve_policy("quest").name == "quest"
        inst = get_policy("h2o")
        assert resolve_policy(inst) is inst

    def test_registry_classes_expose_names(self):
        for name, cls in POLICY_REGISTRY.items():
            assert cls.name == name


class TestFootprints:
    def test_dense_policies_charge_full_context(self):
        for name in ("pade", "quest", "topk-oracle", "double-sparsity", "minference"):
            policy = get_policy(name)
            assert policy.dense_footprint
            assert policy.cache_footprint(100, 20) == 120

    def test_h2o_footprint_bounded_by_budget(self):
        policy = get_policy("h2o", budget_fraction=0.25, recent_tokens=4)
        assert not policy.dense_footprint
        assert policy.cache_footprint(100, 20) == 30  # round(0.25 * 120)
        # The recency floor still wins for tiny contexts.
        assert policy.cache_footprint(4, 2) == 5

    def test_streaming_footprint_is_sink_plus_window(self):
        policy = get_policy("streaming-llm", keep_fraction=0.25, sink_tokens=4)
        assert not policy.dense_footprint
        assert policy.cache_footprint(100, 20) == 4 + 26  # sinks + (30 - 4)

    def test_engine_stats_cost_columns(self):
        k, v, q = _problem(3, 24, 4)
        engine = PadeEngine(PadeConfig.standard(), policy="streaming-llm")
        cache = engine.new_cache(1, k.shape[1], v.shape[1])
        engine.prefill(cache, k[None, :24], v[None, :24], total_tokens=28)
        for t in range(4):
            engine.decode_step(cache, q[None, t], k[None, 24 + t], v[None, 24 + t])
        assert engine.stats.policy_calls == 4
        assert engine.stats.mean_prediction_cost == 0.0
        assert 0.0 < engine.stats.mean_execution_cost < 1.0
        assert engine.stats.mean_sparsity_level == engine.stats.mean_execution_cost
        assert 0.0 < engine.stats.sparsity < 1.0
