"""Tests for the reference dense attention implementation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.attention.dense import attention_scores, dense_attention, masked_dense_attention, softmax

logits_arrays = arrays(
    np.float64, st.tuples(st.integers(1, 6), st.integers(1, 12)),
    elements=st.floats(-50, 50, allow_nan=False, width=64),
)


class TestSoftmax:
    @given(logits_arrays)
    def test_rows_sum_to_one(self, logits):
        w = softmax(logits)
        np.testing.assert_allclose(w.sum(axis=-1), 1.0, rtol=1e-12)

    @given(logits_arrays)
    def test_shift_invariance(self, logits):
        np.testing.assert_allclose(softmax(logits), softmax(logits + 7.5), rtol=1e-9)

    def test_fully_masked_row_yields_zeros(self):
        w = softmax(np.array([[-np.inf, -np.inf]]))
        assert w.tolist() == [[0.0, 0.0]]

    def test_extreme_logits_stable(self):
        w = softmax(np.array([[1e4, -1e4]]))
        assert np.isfinite(w).all()
        assert w[0, 0] == pytest.approx(1.0)

    def test_monotone_in_logits(self):
        w = softmax(np.array([[1.0, 2.0, 3.0]]))
        assert w[0, 0] < w[0, 1] < w[0, 2]


class TestAttention:
    def test_scores_default_scale(self, rng):
        q = rng.normal(size=(2, 16))
        k = rng.normal(size=(5, 16))
        np.testing.assert_allclose(
            attention_scores(q, k), q @ k.T / 4.0, rtol=1e-12
        )

    def test_uniform_scores_average_values(self):
        q = np.zeros((1, 4))
        k = np.ones((3, 4))
        v = np.arange(12, dtype=float).reshape(3, 4)
        np.testing.assert_allclose(dense_attention(q, k, v)[0], v.mean(axis=0))

    def test_one_hot_attention_selects_value(self):
        q = np.array([[100.0, 0.0]])
        k = np.array([[1.0, 0.0], [-1.0, 0.0]])
        v = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = dense_attention(q, k, v, scale=1.0)
        np.testing.assert_allclose(out[0], v[0], atol=1e-10)

    def test_mask_broadcasting_1d(self, rng):
        q, k, v = rng.normal(size=(2, 8)), rng.normal(size=(6, 8)), rng.normal(size=(6, 8))
        keep = np.array([True, False, True, False, True, False])
        out = dense_attention(q, k, v, mask=keep)
        ref = dense_attention(q, k[keep], v[keep])
        np.testing.assert_allclose(out, ref, rtol=1e-10)

    def test_masked_equals_submatrix(self, rng):
        q, k, v = rng.normal(size=(3, 8)), rng.normal(size=(6, 8)), rng.normal(size=(6, 8))
        keep = np.zeros((3, 6), dtype=bool)
        keep[:, [1, 4]] = True
        out = masked_dense_attention(q, k, v, keep)
        ref = dense_attention(q, k[[1, 4]], v[[1, 4]])
        np.testing.assert_allclose(out, ref, rtol=1e-10)

    def test_single_query_vector(self, rng):
        q = rng.normal(size=8)
        k, v = rng.normal(size=(4, 8)), rng.normal(size=(4, 8))
        assert dense_attention(q, k, v).shape == (1, 8)
