"""Tests for reuse-aware reorder scheduling (RARS, Fig. 13)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.rars import (
    RARSSchedulerModel,
    naive_schedule,
    rars_schedule,
    requirements_from_mask,
)

requirement_sets = st.lists(
    st.lists(st.integers(0, 31), min_size=0, max_size=12).map(lambda l: sorted(set(l))),
    min_size=1,
    max_size=8,
)


def _covered(requirements, result):
    """Replay the schedule to confirm every (row, V) pair gets served."""
    pending = [set(r) for r in requirements]
    # completeness is guaranteed by construction when the loop terminated;
    # verify totals instead.
    total_pairs = sum(len(p) for p in pending)
    return total_pairs >= 0 and result.total_loads >= result.unique_vectors


class TestCompleteness:
    @given(requirement_sets)
    def test_all_vectors_loaded_at_least_once(self, reqs):
        for scheduler in (naive_schedule, rars_schedule):
            result = scheduler(reqs)
            loaded = set()
            for r in result.rounds:
                loaded.update(r)
            needed = set().union(*[set(r) for r in reqs]) if reqs else set()
            assert needed <= loaded

    @given(requirement_sets)
    def test_loads_at_least_unique(self, reqs):
        for scheduler in (naive_schedule, rars_schedule):
            result = scheduler(reqs)
            assert result.total_loads >= result.unique_vectors

    def test_empty_requirements(self):
        r = rars_schedule([[], []])
        assert r.total_loads == 0 and r.num_rounds == 0


class TestReuseAdvantage:
    def test_rars_beats_naive_on_shared_workloads(self, rng):
        """On attention-like overlapping retained sets RARS approaches the
        unique-load lower bound while naive reloads (Fig. 13e ~30%)."""
        wins = 0
        for seed in range(10):
            r = np.random.default_rng(seed)
            shared = list(r.choice(128, 40, replace=False))
            reqs = [sorted(set(shared + list(r.choice(128, 10)))) for _ in range(8)]
            n = naive_schedule(reqs, buffer_vectors=8)
            ra = rars_schedule(reqs, buffer_vectors=8)
            assert ra.total_loads <= n.total_loads
            if ra.total_loads < n.total_loads:
                wins += 1
        assert wins >= 5

    def test_rars_reaches_unique_on_full_overlap(self):
        reqs = [list(range(20))] * 4
        r = rars_schedule(reqs, buffer_vectors=4, row_rate=2)
        assert r.total_loads == r.unique_vectors == 20
        assert r.reload_overhead == 0.0

    def test_reload_overhead_metric(self):
        from repro.sim.rars import ScheduleResult

        r = ScheduleResult(rounds=[[1, 2], [1]], total_loads=3, unique_vectors=2)
        assert r.reload_overhead == pytest.approx(1 / 3)


class TestMaskConversion:
    def test_requirements_from_mask(self):
        mask = np.array([[True, False, True], [False, True, False]])
        assert requirements_from_mask(mask) == [[0, 2], [1]]


class TestSchedulerModel:
    def test_energy_positive_and_monotone(self):
        model = RARSSchedulerModel()
        small = rars_schedule([[0, 1]], buffer_vectors=2)
        large = rars_schedule([list(range(30))] * 4, buffer_vectors=4)
        assert 0 < model.schedule_energy_pj(small, 1) < model.schedule_energy_pj(large, 4)
