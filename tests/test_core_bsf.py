"""Tests for the fused bit-serial filter loop (BSF)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bsf import bsf_filter, bsf_filter_row
from repro.core.bui_gf import GuardedFilter
from repro.quant.bitplane import decompose_bitplanes


def _planes(rng, s=64, h=16):
    k = rng.integers(-128, 128, size=(s, h))
    return k, decompose_bitplanes(k, bits=8)


class TestRowFilter:
    def test_infinite_guard_retains_everything(self, rng):
        k, planes = _planes(rng)
        q = rng.integers(-128, 128, size=16)
        res = bsf_filter_row(q, planes, guard=float("inf"))
        assert res.retained.all()
        assert np.all(res.planes_processed == 8)

    def test_retained_scores_are_exact(self, rng):
        k, planes = _planes(rng)
        q = rng.integers(-128, 128, size=16)
        res = bsf_filter_row(q, planes, guard=2000.0)
        exact = k @ q
        np.testing.assert_array_equal(res.scores[res.retained], exact[res.retained])

    def test_zero_guard_prunes_most(self, rng):
        k, planes = _planes(rng, s=128)
        q = rng.integers(-128, 128, size=16)
        res = bsf_filter_row(q, planes, guard=0.0)
        assert res.sparsity > 0.5

    def test_guard_safety_no_false_prune(self, rng):
        """Tokens within `guard` of the exact max must be retained."""
        k, planes = _planes(rng, s=256)
        q = rng.integers(-128, 128, size=16)
        guard = 500.0
        res = bsf_filter_row(q, planes, guard=guard)
        exact = k @ q
        must_keep = exact > exact.max() - guard
        assert np.all(res.retained[must_keep])

    def test_allowed_mask_limits_candidates(self, rng):
        k, planes = _planes(rng)
        q = rng.integers(-128, 128, size=16)
        allowed = np.zeros(64, dtype=bool)
        allowed[:10] = True
        res = bsf_filter_row(q, planes, guard=float("inf"), allowed=allowed)
        assert not res.retained[10:].any()
        assert np.all(res.planes_processed[10:] == 0)

    def test_protect_mask_survives(self, rng):
        k, planes = _planes(rng, s=128)
        q = rng.integers(-128, 128, size=16)
        protect = np.zeros(128, dtype=bool)
        protect[[3, 77]] = True
        res = bsf_filter_row(q, planes, guard=0.0, protect=protect)
        assert res.retained[3] and res.retained[77]

    def test_pruned_tokens_stop_loading_planes(self, rng):
        k, planes = _planes(rng, s=256)
        q = rng.integers(-128, 128, size=16)
        res = bsf_filter_row(q, planes, guard=0.0)
        pruned = ~res.retained
        # A token may be pruned at the LSB round itself, but on average
        # pruned tokens terminate well before the LSB.
        assert res.planes_processed[pruned].mean() < 6.0
        assert res.bit_plane_loads == int(res.planes_processed.sum())

    def test_effective_ops_bounded_by_naive(self, rng):
        k, planes = _planes(rng, s=128)
        q = rng.integers(-128, 128, size=16)
        res = bsf_filter_row(q, planes, guard=100.0)
        assert res.effective_bit_ops <= res.naive_bit_ops

    def test_external_filter_threads_state(self, rng):
        """A shared GuardedFilter tightens across calls (ISTA windows)."""
        k, planes = _planes(rng, s=128)
        q = rng.integers(-128, 128, size=16)
        shared = GuardedFilter(guard=200.0)
        first_half = np.zeros(128, dtype=bool)
        first_half[:64] = True
        r1 = bsf_filter_row(q, planes, 200.0, allowed=first_half, gfilter=shared)
        t_after_first = shared.threshold
        r2 = bsf_filter_row(q, planes, 200.0, allowed=~first_half, gfilter=shared)
        assert shared.threshold >= t_after_first
        assert r1.retained[:64].sum() + r2.retained[64:].sum() >= 1

    @given(st.floats(0, 5000), st.integers(0, 1 << 16))
    def test_monotone_in_guard(self, guard, seed):
        """A larger guard never retains fewer tokens."""
        rng = np.random.default_rng(seed)
        k, planes = _planes(rng, s=64)
        q = rng.integers(-128, 128, size=16)
        tight = bsf_filter_row(q, planes, guard=guard)
        loose = bsf_filter_row(q, planes, guard=guard + 500.0)
        assert np.all(loose.retained | ~tight.retained)


class TestBatchFilter:
    def test_matches_per_row(self, rng):
        k, planes = _planes(rng, s=64)
        q = rng.integers(-128, 128, size=(4, 16))
        batch = bsf_filter(q, planes, guard=300.0)
        for i in range(4):
            row = bsf_filter_row(q[i], planes, guard=300.0)
            np.testing.assert_array_equal(batch.retained[i], row.retained)
            np.testing.assert_array_equal(batch.scores[i], row.scores)

    def test_per_row_masks(self, rng):
        k, planes = _planes(rng, s=32)
        q = rng.integers(-128, 128, size=(2, 16))
        allowed = np.zeros((2, 32), dtype=bool)
        allowed[0, :16] = True
        allowed[1, 16:] = True
        res = bsf_filter(q, planes, guard=float("inf"), allowed=allowed)
        assert res.retained[0, :16].all() and not res.retained[0, 16:].any()
        assert res.retained[1, 16:].all() and not res.retained[1, :16].any()

    def test_aggregate_counters(self, rng):
        k, planes = _planes(rng, s=64)
        q = rng.integers(-128, 128, size=(3, 16))
        res = bsf_filter(q, planes, guard=100.0)
        assert res.bit_plane_loads == int(res.planes_processed.sum())
        assert 0 <= res.sparsity <= 1
        assert 1 <= res.mean_planes <= 8

    def test_shape_validation(self, rng):
        k, planes = _planes(rng)
        with pytest.raises(ValueError):
            bsf_filter_row(np.zeros(7, dtype=np.int64), planes, guard=1.0)
