"""Asyncio serving front-end: protocol, parity, cancellation, backpressure.

What ISSUE 7 pins down:

* the NDJSON wire protocol round-trips requests and tensors losslessly
  (base64 float64, sha256 digests);
* the loopback socket path in deterministic-replay (barrier) mode is
  byte-identical to the in-process :meth:`PadeEngine.serve` call on the
  same workload — same outputs, same retained sets, same round-clock
  report;
* every cancellation path — cancel while queued, cancel during a
  chunked prefill, client disconnect mid-stream — frees every pool
  block and surfaces ``abort_reason="cancelled"`` through the async
  layer;
* admission backpressure rejects with the right reason (``overloaded``,
  ``too-large``, ``duplicate``, ``shutting-down``) without touching the
  scheduler;
* graceful shutdown drains in-flight work, reports zero leaked blocks,
  and carries the wall-clock latency columns in its report.

Everything runs on a loopback socket inside one event loop, so the
tests can poll live scheduler state between rounds (the engine loop
yields at every round boundary).
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.engine import PadeEngine
from repro.eval.workloads import build_engine_request, build_serving_workload
from repro.serve.client import (
    ServeConnection,
    run_closed_loop,
    serve_workload_over_loopback,
)
from repro.serve.protocol import (
    array_digest,
    decode_message,
    decode_request,
    encode_message,
    encode_request,
    result_digests,
)
from repro.serve.server import AsyncPadeServer


def _req(rid, context=16, steps=4, arrival=0.0, seed=0):
    return build_engine_request(
        rid, 2, context, steps, head_dim=8, seed=seed, arrival_time=arrival
    )


async def _wait_for(pred, timeout=10.0, what="condition"):
    """Poll ``pred`` across engine-loop round boundaries."""
    deadline = time.perf_counter() + timeout
    while not pred():
        if time.perf_counter() - deadline > 0:
            raise TimeoutError(f"timed out waiting for {what}")
        await asyncio.sleep(0.001)


async def _start(engine=None, **kwargs):
    kwargs.setdefault("max_active", 2)
    kwargs.setdefault("token_budget", 512)
    kwargs.setdefault("block_size", 8)
    server = AsyncPadeServer(engine or PadeEngine(), **kwargs)
    await server.start()
    return server


async def _graceful_stop(server):
    conn = await ServeConnection.open(server.host, server.port)
    try:
        ack = await conn.shutdown()
    finally:
        await conn.close()
    await server.stop()
    return ack


class TestProtocol:
    def test_message_roundtrip(self):
        msg = {"type": "token", "request_id": "r0", "step": 3, "digest": "ab"}
        line = encode_message(msg)
        assert line.endswith(b"\n")
        assert decode_message(line) == msg

    def test_request_roundtrip_is_lossless(self):
        req = build_engine_request(
            "rt", 2, 12, 3, head_dim=8, seed=7, arrival_time=2.5,
            tenant="t1", priority=2, deadline_ms=80.0, max_queue_ms=10.0,
        )
        back = decode_request(encode_request(req))
        assert back.request_id == req.request_id
        assert back.arrival_time == req.arrival_time
        assert back.tenant == req.tenant
        assert back.priority == req.priority
        assert back.deadline_ms == req.deadline_ms
        assert back.max_queue_ms == req.max_queue_ms
        for a, b in zip(req.k, back.k):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(req.decode_q, back.decode_q):
            np.testing.assert_array_equal(a, b)

    def test_arrival_override(self):
        req = _req("ov", arrival=1.0)
        assert decode_request(encode_request(req), arrival_time=9.0).arrival_time == 9.0

    def test_array_digest_tracks_bytes(self):
        a = np.arange(6, dtype=np.float64).reshape(2, 3)
        assert array_digest(a) == array_digest(a.copy())
        b = a.copy()
        b[0, 0] += 1e-12
        assert array_digest(a) != array_digest(b)


class TestParity:
    def test_loopback_replay_matches_in_process(self):
        workload = build_serving_workload(5, 2, 24, 4, 8, rate=0.5, seed=3)
        kwargs = dict(max_active=2, token_budget=512, block_size=8)
        dones, ack, _server = serve_workload_over_loopback(
            PadeEngine(), workload, barrier=True, **kwargs
        )
        engine = PadeEngine()
        results = engine.serve(workload, **kwargs)
        assert set(dones) == set(results)
        for rid, res in results.items():
            expected = result_digests(res)
            assert dones[rid]["output_digest"] == expected["output_digest"]
            assert dones[rid]["retained_digest"] == expected["retained_digest"]
            # The streamed tokens are the decode outputs, step by step.
            steps = [tok["step"] for tok in dones[rid]["tokens"]]
            assert steps == sorted(set(steps))
            for tok in dones[rid]["tokens"]:
                assert tok["digest"] == array_digest(res.decode_outputs[:, tok["step"], :])
            # Round-clock timing over the socket matches in-process.
            assert dones[rid]["timing"]["finish_time"] == res.finish_time
            assert dones[rid]["timing"]["first_token_time"] == res.first_token_time
        assert ack["leaked_blocks"] == 0

    def test_wall_marks_are_monotone_per_request(self):
        workload = build_serving_workload(4, 2, 16, 3, 8, rate=1.0, seed=5)
        dones, ack, _server = serve_workload_over_loopback(
            PadeEngine(), workload, barrier=False, concurrency=2,
            max_active=2, token_budget=512, block_size=8,
        )
        for done in dones.values():
            wall = done["wall"]
            assert 0 <= wall["arrival"] <= wall["admit"] <= wall["first_token"] <= wall["finish"]
        report = ack["report"]
        assert report["n_wall_ttft_ms"] == float(len(workload))


class TestCancellation:
    def test_cancel_while_queued(self):
        async def run():
            server = await _start(max_active=1)
            conn = await ServeConnection.open(server.host, server.port)
            try:
                assert (await conn.submit(_req("active", steps=12), arrival="now"))[
                    "type"
                ] == "accepted"
                assert (await conn.submit(_req("queued", steps=2), arrival="now"))[
                    "type"
                ] == "accepted"
                # Wait until the first request holds the only active slot
                # and the second sits in the scheduler queue.
                await _wait_for(
                    lambda: any(s.request.request_id == "active" for s in server.scheduler.active)
                    and any(r.request_id == "queued" for _, r in server.scheduler.pending),
                    what="queued request behind the active one",
                )
                await conn.cancel("queued")
                done = await conn.result("queued")
                assert done["status"] == "aborted"
                assert done["abort_reason"] == "cancelled"
                assert conn.tokens.get("queued", []) == []
                active = await conn.result("active")
                assert active["status"] == "ok"
            finally:
                await conn.close()
            ack = await _graceful_stop(server)
            assert ack["leaked_blocks"] == 0
            assert server.results["queued"].abort_reason == "cancelled"

        asyncio.run(run())

    def test_cancel_during_chunked_prefill(self):
        async def run():
            server = await _start(
                max_active=2, token_budget=512, block_size=8,
                round_token_budget=4, chunk_tokens=4,
            )
            conn = await ServeConnection.open(server.host, server.port)
            try:
                req = _req("chunked", context=48, steps=4)
                assert (await conn.submit(req, arrival="now"))["type"] == "accepted"

                def mid_prefill():
                    for state in server.scheduler.active:
                        if state.request.request_id == "chunked" and state.prefilling:
                            return getattr(state.cache, "prefill_remaining", 0) < req.prompt_tokens
                    return False

                await _wait_for(mid_prefill, what="a partially prefilled chunked request")
                await conn.cancel("chunked")
                done = await conn.result("chunked")
                assert done["status"] == "aborted"
                assert done["abort_reason"] == "cancelled"
                assert conn.tokens.get("chunked", []) == []
            finally:
                await conn.close()
            ack = await _graceful_stop(server)
            assert ack["leaked_blocks"] == 0

        asyncio.run(run())

    def test_disconnect_mid_stream_aborts_and_frees(self):
        async def run():
            server = await _start(max_active=1)
            conn = await ServeConnection.open(server.host, server.port)
            assert (await conn.submit(_req("gone", steps=40), arrival="now"))[
                "type"
            ] == "accepted"
            # Wait for the stream to actually start, then vanish without
            # a cancel message — the disconnect itself must abort it.
            await _wait_for(
                lambda: len(conn.tokens.get("gone", [])) >= 2,
                what="a few streamed tokens",
            )
            streamed = len(conn.tokens["gone"])
            await conn.close()
            await _wait_for(
                lambda: "gone" in server.results, what="the disconnect abort"
            )
            res = server.results["gone"]
            assert res.status == "aborted"
            assert res.abort_reason == "cancelled"
            assert streamed < 40  # it really was mid-stream
            ack = await _graceful_stop(server)
            assert ack["leaked_blocks"] == 0
            # The abort surfaces in the report's abort accounting.
            assert ack["report"]["aborted_requests"] == 1.0

        asyncio.run(run())


class TestBackpressure:
    def test_overloaded_rejection_is_bounded_by_queue_limit(self):
        async def run():
            # Barrier above the queue limit: nothing drains, so the
            # accept queue really fills to its bound.
            server = await _start(queue_limit=2, start_barrier=99)
            conn = await ServeConnection.open(server.host, server.port)
            try:
                assert (await conn.submit(_req("a")))["type"] == "accepted"
                assert (await conn.submit(_req("b")))["type"] == "accepted"
                reply = await conn.submit(_req("c"))
                assert reply["type"] == "rejected"
                assert reply["error"] == "overloaded"
            finally:
                await conn.close()
            ack = await _graceful_stop(server)  # drain opens the barrier
            assert ack["served"] == 2
            assert ack["leaked_blocks"] == 0

        asyncio.run(run())

    def test_too_large_rejection(self):
        async def run():
            server = await _start(token_budget=64, block_size=8)
            conn = await ServeConnection.open(server.host, server.port)
            try:
                reply = await conn.submit(_req("huge", context=256, steps=8))
                assert reply["type"] == "rejected"
                assert reply["error"] == "too-large"
                assert not server.scheduler.pending
            finally:
                await conn.close()
            await server.stop()

        asyncio.run(run())

    def test_duplicate_rejection(self):
        async def run():
            server = await _start(start_barrier=99)
            conn = await ServeConnection.open(server.host, server.port)
            try:
                assert (await conn.submit(_req("dup")))["type"] == "accepted"
                reply = await conn.submit(_req("dup"))
                assert reply["type"] == "rejected"
                assert reply["error"] == "duplicate"
            finally:
                await conn.close()
            ack = await _graceful_stop(server)
            assert ack["served"] == 1

        asyncio.run(run())

    def test_submit_while_draining_is_rejected(self):
        async def run():
            server = await _start(max_active=1)
            conn = await ServeConnection.open(server.host, server.port)
            try:
                assert (await conn.submit(_req("inflight", steps=30), arrival="now"))[
                    "type"
                ] == "accepted"
                shutdown_conn = await ServeConnection.open(server.host, server.port)
                ack_task = asyncio.create_task(shutdown_conn.shutdown())
                await _wait_for(lambda: server._draining, what="drain to begin")
                reply = await conn.submit(_req("late"))
                assert reply["type"] == "rejected"
                assert reply["error"] == "shutting-down"
                done = await conn.result("inflight")
                assert done["status"] == "ok"  # in-flight work still drains
                ack = await ack_task
                assert ack["leaked_blocks"] == 0
                await shutdown_conn.close()
            finally:
                await conn.close()
            await server.stop()

        asyncio.run(run())


class TestGracefulShutdown:
    def test_closed_loop_clean_drain(self):
        workload = build_serving_workload(6, 2, 16, 3, 8, rate=0.5, seed=9)
        dones, ack, server = serve_workload_over_loopback(
            PadeEngine(), workload, barrier=False, concurrency=3,
            max_active=2, token_budget=512, block_size=8,
        )
        assert ack["served"] == len(workload)
        assert ack["leaked_blocks"] == 0
        assert all(d["status"] == "ok" for d in dones.values())
        assert all(len(d["tokens"]) == d["decode_tokens"] for d in dones.values())
        assert server.closed.is_set()
        report = ack["report"]
        for series in ("wall_ttft_ms", "wall_queueing_ms"):
            assert report[f"n_{series}"] == float(len(workload))
            assert report[f"p99_{series}"] >= report[f"p50_{series}"] >= 0.0

    def test_queue_limit_validation(self):
        with pytest.raises(ValueError, match="queue_limit"):
            AsyncPadeServer(PadeEngine(), queue_limit=0)
