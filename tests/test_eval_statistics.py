"""Tests for the measurement-statistics helpers (§VI-A protocol)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eval.statistics import (
    bootstrap_ci,
    paper_trimmed_mean,
    repeat_measure,
)


class TestTrimmedMean:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            paper_trimmed_mean([])

    def test_outliers_discarded(self):
        """Top/bottom 15% trimming removes single extreme runs — the reason
        the paper uses it for GPU timing."""
        samples = [10.0] * 18 + [1000.0, 0.001]
        assert paper_trimmed_mean(samples) == pytest.approx(10.0)

    def test_clean_data_matches_mean(self):
        samples = list(np.linspace(5, 6, 40))
        assert paper_trimmed_mean(samples) == pytest.approx(np.mean(samples), rel=1e-3)

    @given(st.lists(st.floats(0.1, 100), min_size=5, max_size=50))
    def test_within_sample_range(self, samples):
        tm = paper_trimmed_mean(samples)
        assert min(samples) - 1e-9 <= tm <= max(samples) + 1e-9


class TestBootstrap:
    def test_ci_contains_trimmed_mean(self, rng):
        samples = rng.normal(50, 5, size=60).tolist()
        lo, hi = bootstrap_ci(samples)
        tm = paper_trimmed_mean(samples)
        assert lo <= tm <= hi

    def test_more_samples_tighter_ci(self, rng):
        wide = rng.normal(10, 2, size=8).tolist()
        narrow = rng.normal(10, 2, size=200).tolist()
        lo_w, hi_w = bootstrap_ci(wide)
        lo_n, hi_n = bootstrap_ci(narrow)
        assert (hi_n - lo_n) < (hi_w - lo_w)

    def test_single_sample_degenerate(self):
        assert bootstrap_ci([7.0]) == (7.0, 7.0)


class TestRepeatMeasure:
    def test_deterministic_given_seed(self):
        def fn(r):
            return float(r.normal(5, 1))

        a = repeat_measure(fn, repeats=10, seed=3)
        b = repeat_measure(fn, repeats=10, seed=3)
        assert a == b

    def test_measures_pipeline_sparsity_stably(self):
        """Measured sparsity varies run to run but with a tight CI — the
        quantity is workload-structural, not noise."""
        from repro.core import PadeConfig, pade_attention
        from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv

        def one(r):
            q, k, v = synthesize_qkv(4, 256, 32, PROFILE_PRESETS["nlp"], r)
            return pade_attention(q, k, v, PadeConfig.standard()).sparsity

        m = repeat_measure(one, repeats=8, seed=1)
        assert 0.3 < m.trimmed_mean < 0.99
        assert m.relative_halfwidth < 0.2

    def test_validates_repeats(self):
        with pytest.raises(ValueError):
            repeat_measure(lambda r: 1.0, repeats=0)
