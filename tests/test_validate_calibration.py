"""Tests for the runtime validators (with failure injection) and profile
calibration."""

import numpy as np

from repro.core.bsf import bsf_filter, bsf_filter_row
from repro.core.validate import validate_partial_scores, validate_retention
from repro.model.calibration import CalibrationTarget, calibrate_profile, measure_profile
from repro.model.synthetic import PROFILE_PRESETS
from repro.quant.bitplane import decompose_bitplanes, partial_reconstruct


class TestRetentionValidator:
    def _pipeline(self, rng, guard=600.0):
        k = rng.integers(-128, 128, size=(128, 16))
        q = rng.integers(-128, 128, size=(4, 16))
        planes = decompose_bitplanes(k)
        res = bsf_filter(q, planes, guard)
        return q, k, res, guard

    def test_honest_pipeline_validates(self, rng):
        q, k, res, guard = self._pipeline(rng)
        report = validate_retention(q, k, res.retained, guard)
        assert report
        assert report.violations == []

    def test_injected_false_prune_detected(self, rng):
        """Failure injection: flip the retained bit of a row's max-score key
        — the validator must flag it."""
        q, k, res, guard = self._pipeline(rng)
        corrupted = res.retained.copy()
        exact = q @ k.T
        row = 0
        corrupted[row, int(np.argmax(exact[row]))] = False
        report = validate_retention(q, k, corrupted, guard)
        assert not report
        assert any("row 0" in v for v in report.violations)

    def test_extra_retention_is_not_a_violation(self, rng):
        q, k, res, guard = self._pipeline(rng)
        everything = np.ones_like(res.retained)
        assert validate_retention(q, k, everything, guard)

    def test_protect_mask_enforced(self, rng):
        q, k, res, guard = self._pipeline(rng)
        protect = np.zeros(128, dtype=bool)
        protect[5] = True
        corrupted = res.retained.copy()
        corrupted[:, 5] = False
        report = validate_retention(q, k, corrupted, guard, protect=protect)
        assert not report


class TestScoreboardValidator:
    def test_honest_partials_validate(self, rng):
        k = rng.integers(-128, 128, size=(64, 16))
        q = rng.integers(-128, 128, size=16)
        planes = decompose_bitplanes(k)
        res = bsf_filter_row(q, planes, guard=500.0)
        partials = np.array([
            int(partial_reconstruct(planes, int(r))[j] @ q) if r else 0
            for j, r in enumerate(res.planes_processed)
        ])
        assert validate_partial_scores(q, planes, partials, res.planes_processed)

    def test_injected_bit_flip_detected(self, rng):
        """A single-bit corruption in one scoreboard entry is caught."""
        k = rng.integers(-128, 128, size=(64, 16))
        q = rng.integers(-128, 128, size=16)
        planes = decompose_bitplanes(k)
        planes_known = np.full(64, 3, dtype=np.int64)
        truth = partial_reconstruct(planes, 3) @ q
        corrupted = truth.copy()
        corrupted[17] ^= 1 << 6  # flip one bit
        report = validate_partial_scores(q, planes, corrupted, planes_known)
        assert not report
        assert any("key 17" in v for v in report.violations)


class TestCalibration:
    def test_measure_profile_consistent_with_presets(self):
        keep, lost = measure_profile(PROFILE_PRESETS["nlp"], CalibrationTarget())
        assert 0.02 < keep < 0.4
        assert lost < 0.1

    def test_calibrate_toward_denser_regime(self):
        """Re-anchor toward the paper's denser keep ≈ 0.3 regime."""
        target = CalibrationTarget(keep_fraction=0.30, lost_mass=0.02, seq_len=512)
        profile = calibrate_profile(target, iterations=4)
        keep, lost = measure_profile(profile, target)
        assert abs(keep - 0.30) < 0.12
        assert profile.num_heavy > PROFILE_PRESETS["nlp"].num_heavy

    def test_calibrate_toward_sparser_regime(self):
        target = CalibrationTarget(keep_fraction=0.04, lost_mass=0.01, seq_len=512)
        profile = calibrate_profile(target, iterations=4)
        keep, _ = measure_profile(profile, target)
        assert keep < 0.12
