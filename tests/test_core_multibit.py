"""Tests for multi-bit stage fusion (§VI-G extension)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bsf import bsf_filter_row
from repro.core.multibit import multibit_filter, multibit_filter_row
from repro.quant.bitplane import decompose_bitplanes


def _problem(seed=0, s=128, h=32):
    rng = np.random.default_rng(seed)
    k = rng.integers(-128, 128, size=(s, h))
    q = rng.integers(-128, 128, size=h)
    return q, k, decompose_bitplanes(k)


class TestEquivalence:
    @given(st.integers(0, 1 << 12), st.floats(0, 3000))
    def test_group_one_matches_single_bit(self, seed, guard):
        q, k, planes = _problem(seed, s=48, h=16)
        single = bsf_filter_row(q, planes, guard)
        grouped = multibit_filter_row(q, planes, guard, group=1)
        np.testing.assert_array_equal(single.retained, grouped.retained)
        np.testing.assert_array_equal(single.planes_processed, grouped.planes_processed)
        np.testing.assert_array_equal(single.scores, grouped.scores)

    def test_group_bits_is_value_level(self):
        q, k, planes = _problem()
        res = multibit_filter_row(q, planes, 1000.0, group=8)
        assert res.decision_rounds == 1
        # exact scores for everything that survives the single decision
        exact = k @ q
        np.testing.assert_array_equal(res.scores[res.retained], exact[res.retained])

    def test_retained_scores_exact_for_any_group(self):
        q, k, planes = _problem()
        exact = k @ q
        for g in (1, 2, 4, 8):
            res = multibit_filter_row(q, planes, 500.0, group=g)
            np.testing.assert_array_equal(res.scores[res.retained], exact[res.retained])


class TestSafety:
    @pytest.mark.parametrize("group", [1, 2, 4])
    def test_guard_safety_holds(self, group):
        q, k, planes = _problem(seed=7, s=256)
        guard = 800.0
        res = multibit_filter_row(q, planes, guard, group=group)
        exact = k @ q
        must_keep = exact > exact.max() - guard
        assert np.all(res.retained[must_keep])

    def test_coarser_groups_never_fetch_fewer_planes(self):
        """Grouping can only round plane consumption UP (the trade-off)."""
        q, k, planes = _problem(seed=3, s=256)
        fine = multibit_filter_row(q, planes, 500.0, group=1)
        for g in (2, 4):
            coarse = multibit_filter_row(q, planes, 500.0, group=g)
            assert coarse.bit_plane_loads >= fine.bit_plane_loads
            assert coarse.decision_rounds <= 8 // g

    def test_decision_rounds_shrink_with_group(self):
        q, k, planes = _problem(seed=3, s=256)
        rounds = [multibit_filter_row(q, planes, 500.0, group=g).decision_rounds for g in (1, 2, 4, 8)]
        assert rounds[0] >= rounds[1] >= rounds[2] >= rounds[3] == 1


class TestValidation:
    def test_group_must_divide_bits(self):
        q, k, planes = _problem()
        with pytest.raises(ValueError):
            multibit_filter_row(q, planes, 1.0, group=3)

    def test_batched(self):
        rng = np.random.default_rng(1)
        k = rng.integers(-128, 128, size=(64, 16))
        q = rng.integers(-128, 128, size=(3, 16))
        planes = decompose_bitplanes(k)
        results = multibit_filter(q, planes, 500.0, group=2)
        assert len(results) == 3
        for i, res in enumerate(results):
            solo = multibit_filter_row(q[i], planes, 500.0, group=2)
            np.testing.assert_array_equal(res.retained, solo.retained)
