"""Tests for mask constructors."""

from hypothesis import given
from hypothesis import strategies as st

from repro.attention.masks import causal_mask, sink_recent_mask, window_mask


class TestCausal:
    @given(st.integers(1, 16), st.integers(1, 32))
    def test_lower_triangular_at_zero_offset(self, p, s):
        m = causal_mask(p, s)
        for i in range(p):
            assert m[i, : min(i + 1, s)].all()
            assert not m[i, i + 1 :].any()

    def test_decode_sees_everything(self):
        assert causal_mask(1, 16, query_offset=15).all()


class TestWindow:
    def test_window_width(self):
        m = window_mask(1, 10, window=3, query_offset=9)
        assert m[0].tolist() == [False] * 7 + [True] * 3

    def test_window_clipped_at_start(self):
        m = window_mask(1, 10, window=5, query_offset=2)
        assert m[0].tolist() == [True] * 3 + [False] * 7

    @given(st.integers(1, 8), st.integers(1, 16), st.integers(1, 8))
    def test_window_subset_of_causal(self, p, s, w):
        off = max(0, s - p)
        assert not (window_mask(p, s, w, off) & ~causal_mask(p, s, off)).any()


class TestSinkRecent:
    def test_combines_sinks_and_window(self):
        m = sink_recent_mask(1, 10, sink_tokens=2, recent_tokens=2, query_offset=9)
        assert m[0].tolist() == [True, True] + [False] * 6 + [True, True]

    def test_sinks_respect_causality(self):
        m = sink_recent_mask(1, 10, sink_tokens=4, recent_tokens=1, query_offset=1)
        # query at position 1 cannot see sinks at positions 2,3
        assert m[0, :2].all() and not m[0, 2:4].any()
