"""Tests for the evaluation harness: every figure function must run and
produce data with the paper's qualitative shape."""

import pytest

from repro.eval import harness as H
from repro.eval.metrics import geomean, normalize, reduction, speedup
from repro.eval.reporting import format_table
from repro.eval.serving_metrics import latency_percentiles
from repro.eval.workloads import WORKLOADS, build_attention_workload, measure_pipeline_stats
from repro.model.configs import get_model


class TestMetrics:
    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_reduction(self):
        assert reduction(10, 4) == pytest.approx(0.6)

    def test_speedup(self):
        assert speedup(10, 5) == 2.0

    def test_normalize(self):
        assert normalize([2, 4], 2) == [1.0, 2.0]


class TestReporting:
    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["xx", 3e-6]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_latency_percentiles_carry_sample_counts(self):
        out = latency_percentiles([1.0, 2.0, 3.0], "ttft")
        assert out["n_ttft"] == 3.0
        assert out["mean_ttft"] == pytest.approx(2.0)
        assert out["p50_ttft"] == pytest.approx(2.0)
        assert out["p50_ttft"] <= out["p95_ttft"] <= out["p99_ttft"]

    def test_empty_series_distinguishable_from_zero_latency(self):
        # An all-aborted flood yields no completed samples; the zeros it
        # reports must be marked as "no data", not "zero latency".
        empty = latency_percentiles([], "tpot")
        assert empty["n_tpot"] == 0.0
        assert set(empty) == {"n_tpot", "mean_tpot", "p50_tpot", "p95_tpot", "p99_tpot"}
        assert all(v == 0.0 for k, v in empty.items() if k != "n_tpot")
        zero = latency_percentiles([0.0], "tpot")
        assert zero["n_tpot"] == 1.0  # same stats, different n


class TestWorkloads:
    def test_named_workloads(self):
        assert WORKLOADS["dolly"].seq_len == 15_000
        assert WORKLOADS["niah-1m"].seq_len == 1_000_000

    def test_pipeline_stats_cached_and_sane(self):
        s = measure_pipeline_stats(get_model("llama2-7b"), 1000)
        assert 0 < s.keep_fraction < 1
        assert 1 <= s.mean_planes <= 8
        assert s.effective_bit_fraction <= 1.0
        again = measure_pipeline_stats(get_model("llama2-7b"), 1000)
        assert again == s

    def test_longseq_extrapolation_sparser(self):
        short = measure_pipeline_stats(get_model("llama2-7b"), 1024)
        long = measure_pipeline_stats(get_model("llama2-7b"), 65_536)
        assert long.keep_fraction < short.keep_fraction
        assert long.mean_planes <= short.mean_planes

    def test_extrapolated_branch_follows_documented_law(self):
        """Beyond seq_cap the keep fraction falls as (cap/S)^0.55 (floored)
        and mean planes decay toward the 2-plane floor as (cap/S)^0.15 —
        exactly what the docstring promises (ISSUE 2 satellite)."""
        model = get_model("llama2-7b")
        cap = 1024
        base = measure_pipeline_stats(model, cap, seq_cap=cap)
        long = measure_pipeline_stats(model, 8 * cap, seq_cap=cap)
        expected_keep = max(3e-3, base.keep_fraction * (1.0 / 8.0) ** 0.55)
        assert long.keep_fraction == pytest.approx(expected_keep, rel=1e-12)
        expected_planes = 2.0 + (base.mean_planes - 2.0) * (1.0 / 8.0) ** 0.15
        assert long.mean_planes == pytest.approx(expected_planes, rel=1e-12)
        # Non-extrapolated fields pass through the capped measurement.
        assert long.effective_bit_fraction == base.effective_bit_fraction
        assert long.lost_mass == base.lost_mass
        # At or below the cap the measurement is returned untouched.
        assert measure_pipeline_stats(model, cap - 1, seq_cap=cap).keep_fraction != (
            long.keep_fraction
        )
        # The 3e-3 floor binds for absurdly long contexts.
        floored = measure_pipeline_stats(model, 10**9, seq_cap=cap)
        assert floored.keep_fraction == pytest.approx(3e-3)

    def test_build_attention_workload(self):
        w, stats = build_attention_workload("mmlu")
        assert w.seq_len == 500 and not w.decode
        wd, _ = build_attention_workload("dolly", decode=True)
        assert wd.decode and wd.num_queries == 256


class TestTables:
    def test_table1_rows(self):
        t = H.table1_features()
        assert t["pade"]["predictor_free"].startswith("yes")
        assert t["sanger"]["predictor_free"] == "no"

    def test_table2_subset(self):
        rows = H.table2_accuracy(tasks=[("mmlu", "llama2-7b"), ("wikitext2", "llama2-7b")])
        mmlu = rows[0]
        assert mmlu["PADE (S)"] <= mmlu["INT8"]
        assert mmlu["PADE (A)"] <= mmlu["PADE (S)"]
        ppl = rows[1]
        assert ppl["PADE (A)"] >= ppl["PADE (S)"] >= ppl["INT8"]

    def test_table3_fields(self):
        t = H.table3_config()
        assert "QK-PU" in t and "128" in t["QK-PU"]


class TestFigureShapes:
    def test_fig2_predictor_dominates_at_8bit(self):
        data = H.fig2_power_breakdown()
        s8 = data["sanger@8b"]
        assert s8["predictor"] > 0.3 * (s8["predictor"] + s8["executor"])
        s16 = data["sanger@16b"]
        pred_share_16 = s16["predictor"] / (s16["predictor"] + s16["executor"])
        pred_share_8 = s8["predictor"] / (s8["predictor"] + s8["executor"])
        assert pred_share_8 > pred_share_16

    def test_fig2_ratio_grows(self):
        r = H.fig2_ratio_vs_seqlen((1024, 4096, 8192))
        assert r["sanger"][0] < r["sanger"][-1]

    def test_fig4_bsf_dominates(self):
        d = H.fig4_bsf_reduction(seq_len=512, num_layers=2)
        assert d["memory_reduction"]["bsf"][-1] > d["memory_reduction"]["stage_splitting"][-1]
        assert d["compute_reduction"]["bsf"][-1] > d["compute_reduction"]["stage_splitting"][-1]

    def test_fig5_memory_grows_superlinearly(self):
        d = H.fig5_untiled_memory()
        assert d["240kB"][-1] > 8 * d["240kB"][0] / 2
        assert d["320kB"][-1] <= d["240kB"][-1]

    def test_fig10_head_tail_reduces_ops(self):
        d = H.fig10_max_update_overhead(seq_len=1024)
        assert d["op_reduction"] > 0.15
        assert d["ht_max_updates"] < d["lr_max_updates"]

    def test_fig14_pade_lowest(self):
        d = H.fig14_comp_mem()
        for model in d["computation"]:
            comp = d["computation"][model]
            assert comp["pade"] == min(comp.values())
        for model in d["memory"]:
            mem = d["memory"][model]
            assert mem["pade"] == min(mem.values())

    def test_fig15_pade_dominates_at_low_levels(self):
        d = H.fig15_accuracy_vs_sparsity()
        for method in ("streaming_llm", "minference", "double_sparsity", "spatten"):
            assert d["pade"][-1] >= d[method][-1] - 0.5
        # and the curve is monotone non-increasing in aggressiveness
        assert all(a >= b - 1e-9 for a, b in zip(d["pade"], d["pade"][1:]))

    def test_fig15_speedup_grows_with_length(self):
        d = H.fig15_speedup_energy(("dolly", "infinitebench"))
        assert d["infinitebench"]["latency_gain"] > d["dolly"]["latency_gain"]
        assert all(v["energy_gain"] > 1 for v in d.values())

    def test_fig16_ablation_monotone_cumulative(self):
        d = H.fig16_ablation(model_names=("opt-1b3",), seq_len=256)
        steps = d["opt-1b3"]
        assert steps["baseline"] == 1.0
        assert steps["+BUI-GF"] < 1.0
        assert steps["+BS-OOE"] < steps["+BUI-GF"]
        assert steps["+ISTA"] <= steps["+BS-OOE"] * 1.1

    def test_fig16_alpha_tradeoff_directions(self):
        d = H.fig16_alpha_tradeoff(alphas=(0.8, 0.5, 0.3))
        accs = list(d["acc_mmlu"].values())
        spas = list(d["spa_mmlu"].values())
        assert accs[0] >= accs[-1]
        assert spas[0] <= spas[-1]

    def test_fig17_dse_optimum(self):
        d = H.fig17_gsat_dse()
        assert d[8] == (1.0, 1.0)
        assert all(area >= 1.0 for area, _ in d.values())

    def test_fig17_scoreboard_saturates(self):
        d = H.fig17_scoreboard_dse(entries_list=(4, 32), sparsity_levels=(0.9,), seq_len=256)
        assert d[0.9][32] > d[0.9][4]

    def test_fig18_bit_worth_it(self):
        d = H.fig18_bit_overhead(seq_len=256)
        for row in d.values():
            assert row["latency_gain"] > 1.0

    def test_fig18_gpu_pade_wins(self):
        d = H.fig18_gpu_comparison(("llama2-7b",))
        row = d["llama2-7b"]
        assert row["pade_std_latency"] < row["gpu_bui_fa3_latency"]
        assert row["pade_aggr_eff"] >= row["pade_std_eff"]
        assert row["pade_std_eff"] > row["gpu_bui_fa3_eff"]

    def test_fig19_waterfall_monotone(self):
        d = H.fig19_gain_breakdown(seq_len=1024)
        eff = d["energy_efficiency"]
        assert eff["gpu"] < eff["baseline_asic"] < eff["+bui_gf"] <= eff["+bs_ooe"] <= eff["+ista"]
        thr = d["throughput"]
        assert thr["gpu"] < thr["baseline_asic"] < thr["+bui_gf"] < thr["+ista"]

    def test_fig20_totals(self):
        d = H.fig20_area_power()
        assert sum(d["area_mm2"].values()) == pytest.approx(4.53, rel=0.02)
        assert sum(d["power_mw"].values()) == pytest.approx(591, rel=0.02)

    def test_fig21_pade_wins_everywhere(self):
        d = H.fig21_sota_comparison((("llama2-7b", 2048),))
        entry = d["llama2-7b"]
        for name, row in entry.items():
            assert row["energy_vs_pade"] >= 1.0
        assert entry["pade"]["speedup"] == max(r["speedup"] for r in entry.values())

    def test_fig23_pade_better_utilized(self):
        d = H.fig23_workload_balance(lane_counts=(16,), seq_len=256)
        assert d["pade"][16]["useful"] > d["bitwave"][16]["useful"]

    def test_fig23_layout_improves_bw(self):
        d = H.fig23_bandwidth((("mmlu", 512),))
        row = d["mmlu"]
        assert row["pade_dl"]["bw_utilization"] >= row["pade_no_dl"]["bw_utilization"]
        assert row["pade_dl"]["dram"] < 1.0

    def test_fig24_system_speedup(self):
        d = H.fig24_system_integration((("dolly-15k", 15_000),))
        assert d["dolly-15k"]["speedup"] > 1.0

    def test_fig25_mx_sound(self):
        d = H.fig25_mx_example()
        assert d["soundness_rate"] == 1.0

    def test_fig26_qat_hurts_sofa_more(self):
        d = H.fig26_quantization(seq_len=1024)
        sofa_penalty = d["qat8"]["sofa"] / d["ptq8"]["sofa"]
        pade_penalty = d["qat8"]["pade"] / d["ptq8"]["pade"]
        assert sofa_penalty > pade_penalty

    def test_fig26_decoding_sofa_grows(self):
        d = H.fig26_decoding(seq_lens=(4096, 16384))
        assert d[16384]["sofa"]["total_vs_dense"] > d[4096]["sofa"]["total_vs_dense"]
        pade_delta = abs(d[16384]["pade"]["total_vs_dense"] - d[4096]["pade"]["total_vs_dense"])
        assert pade_delta < 0.1
