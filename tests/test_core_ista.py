"""Tests for ISTA: tiled sparse attention with online softmax."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.attention.dense import masked_dense_attention, softmax
from repro.core.bsf import bsf_filter_row
from repro.core.ista import head_tail_order, ista_attention, ista_attention_row
from repro.quant.bitplane import decompose_bitplanes


class TestHeadTailOrder:
    def test_five_blocks(self):
        assert head_tail_order(5) == [0, 4, 1, 3, 2]

    def test_single_block(self):
        assert head_tail_order(1) == [0]

    def test_two_blocks(self):
        assert head_tail_order(2) == [0, 1]

    @given(st.integers(0, 64))
    def test_is_permutation(self, n):
        order = head_tail_order(n)
        assert sorted(order) == list(range(n))

    @given(st.integers(2, 64))
    def test_starts_initial_then_recent(self, n):
        order = head_tail_order(n)
        assert order[0] == 0 and order[1] == n - 1


def _int_setup(rng, s=96, h=16):
    k = rng.integers(-64, 64, size=(s, h))
    q = rng.integers(-64, 64, size=h)
    v = rng.normal(size=(s, h))
    planes = decompose_bitplanes(k, bits=8)
    return q, k, v, planes


class TestOnlineSoftmaxEquivalence:
    def test_matches_dense_on_retained_set(self, rng):
        """Invariant #5: ISTA output == dense softmax over retained keys."""
        q, k, v, planes = _int_setup(rng)
        scale = 0.01
        res = ista_attention_row(q, planes, v, guard=800.0, logit_scale=scale, tile_size=8)
        ref = masked_dense_attention(
            q.astype(float), k.astype(float), v, res.retained[None, :], scale=scale / 1.0
        )
        # Reference computes logits from float q·k * default 1/sqrt(h); use
        # explicit logits instead for exactness:
        logits = (k @ q).astype(np.float64) * scale
        logits = np.where(res.retained, logits, -np.inf)
        w = softmax(logits[None, :], axis=-1)
        expected = (w @ v)[0]
        np.testing.assert_allclose(res.output, expected, rtol=1e-10, atol=1e-12)
        del ref

    @pytest.mark.parametrize("interleave", [True, False])
    @pytest.mark.parametrize("tile_size", [1, 4, 16, 1000])
    def test_order_invariance(self, rng, interleave, tile_size):
        """Any tile order / tile size yields the identical output."""
        q, k, v, planes = _int_setup(rng)
        res = ista_attention_row(
            q, planes, v, guard=float("inf"), logit_scale=0.01,
            tile_size=tile_size, interleave=interleave,
        )
        logits = (k @ q).astype(np.float64) * 0.01
        expected = (softmax(logits[None, :]) @ v)[0]
        np.testing.assert_allclose(res.output, expected, rtol=1e-10)

    def test_dense_guard_equals_dense_attention(self, rng):
        q, k, v, planes = _int_setup(rng)
        res = ista_attention_row(q, planes, v, guard=float("inf"), logit_scale=0.01)
        assert res.retained.all()
        assert res.stats.sparsity == 0.0


class TestSubsetThresholdSafety:
    def test_subset_pruned_implies_global_pruned(self, rng):
        """Eq. 7: ISTA (subset thresholds) retains a superset of nothing the
        full-row filter would keep — i.e. every key the full-row pass
        retains with the same guard is also retained by ISTA or was pruned
        safely below the global threshold."""
        q, k, v, planes = _int_setup(rng, s=128)
        guard = 300.0
        row = bsf_filter_row(q, planes, guard)
        tiled = ista_attention_row(q, planes, v, guard, logit_scale=0.01, tile_size=8)
        exact = k @ q
        # The global threshold is max(exact) - guard; ISTA must retain every
        # key above it (its subset thresholds are never higher).
        must_keep = exact > exact.max() - guard
        assert np.all(tiled.retained[must_keep])
        assert np.all(row.retained[must_keep])

    def test_ista_never_prunes_more_mass_than_guard_promises(self, rng):
        q, k, v, planes = _int_setup(rng, s=128)
        scale = 0.05
        guard_logits = 6.0
        res = ista_attention_row(q, planes, v, guard_logits / scale, logit_scale=scale)
        logits = (k @ q).astype(np.float64) * scale
        probs = softmax(logits[None, :])[0]
        lost = probs[~res.retained].sum()
        # every pruned key sits ≥ guard below the max ⇒ its weight is ≤
        # e^-guard relative to the max key; total lost ≤ S·e^-guard.
        assert lost <= 128 * np.exp(-guard_logits) + 1e-9


class TestStats:
    def test_tile_accounting(self, rng):
        q, k, v, planes = _int_setup(rng)
        res = ista_attention_row(q, planes, v, guard=float("inf"), logit_scale=0.01, tile_size=16)
        assert res.stats.v_rows_loaded == 96
        assert res.stats.tiles_flushed == 6
        assert res.stats.candidate_keys == 96
        assert res.stats.retained_keys == 96

    def test_pv_mac_count(self, rng):
        q, k, v, planes = _int_setup(rng)
        res = ista_attention_row(q, planes, v, guard=float("inf"), logit_scale=0.01)
        assert res.stats.pv_macs == 96 * 16

    def test_batched_merge(self, rng):
        q, k, v, planes = _int_setup(rng)
        qb = np.stack([q, -q])
        res = ista_attention(qb, planes, v, guard=float("inf"), logit_scale=0.01)
        assert res.output.shape == (2, 16)
        assert res.stats.candidate_keys == 2 * 96

    def test_empty_allowed_gives_zero_output(self, rng):
        q, k, v, planes = _int_setup(rng)
        allowed = np.zeros(96, dtype=bool)
        res = ista_attention_row(q, planes, v, 1.0, 0.01, allowed=allowed)
        np.testing.assert_array_equal(res.output, np.zeros(16))
        assert res.stats.candidate_keys == 0
