"""Property tests for 2's-complement bit-plane decomposition (BSF substrate)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.quant.bitplane import (
    decompose_bitplanes,
    partial_reconstruct,
    plane_weights,
    popcount_per_plane,
    reconstruct_from_planes,
    unknown_weight_sum,
)

int8_arrays = arrays(
    np.int64, st.tuples(st.integers(1, 6), st.integers(1, 12)),
    elements=st.integers(-128, 127),
)


class TestPlaneWeights:
    def test_int8_weights(self):
        assert plane_weights(8).tolist() == [-128, 64, 32, 16, 8, 4, 2, 1]

    def test_int4_weights(self):
        assert plane_weights(4).tolist() == [-8, 4, 2, 1]

    def test_weights_sum_to_minus_one(self):
        # all-ones pattern encodes -1 in 2's complement
        for bits in (2, 4, 8, 12):
            assert plane_weights(bits).sum() == -1

    def test_rejects_single_bit(self):
        with pytest.raises(ValueError):
            plane_weights(1)


class TestUnknownWeightSum:
    def test_matches_closed_form(self):
        for bits in (4, 8):
            for known in range(1, bits + 1):
                expected = sum(1 << (bits - 1 - i) for i in range(known, bits))
                assert unknown_weight_sum(bits, known) == expected

    def test_paper_example_values(self):
        # Fig. 6 uses 6 fractional planes (our integer planes scaled by 4):
        # W(1) = 31 -> 7.75 after /4; W(2) = 15 -> 3.75.
        assert unknown_weight_sum(6, 1) / 4 == 7.75
        assert unknown_weight_sum(6, 2) / 4 == 3.75

    def test_zero_at_full_precision(self):
        assert unknown_weight_sum(8, 8) == 0

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            unknown_weight_sum(8, 0)
        with pytest.raises(ValueError):
            unknown_weight_sum(8, 9)


class TestRoundTrip:
    @given(int8_arrays)
    def test_decompose_reconstruct_identity(self, values):
        bp = decompose_bitplanes(values, bits=8)
        np.testing.assert_array_equal(reconstruct_from_planes(bp), values)

    @given(arrays(np.int64, st.integers(1, 40), elements=st.integers(-8, 7)))
    def test_int4_round_trip(self, values):
        bp = decompose_bitplanes(values, bits=4)
        np.testing.assert_array_equal(reconstruct_from_planes(bp), values)

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            decompose_bitplanes(np.array([1.5]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            decompose_bitplanes(np.array([200]), bits=8)

    def test_plane_shapes(self):
        bp = decompose_bitplanes(np.zeros((3, 5), dtype=np.int64))
        assert bp.planes.shape == (8, 3, 5)
        assert bp.value_shape == (3, 5)


class TestPartialReconstruct:
    @given(int8_arrays, st.integers(1, 8))
    def test_partial_is_conservative_magnitude(self, values, known):
        """With unknown planes zeroed, the result never exceeds the exact
        value (all non-sign planes contribute non-negatively)."""
        bp = decompose_bitplanes(values, bits=8)
        partial = partial_reconstruct(bp, known)
        assert np.all(partial <= values)
        assert np.all(values - partial <= unknown_weight_sum(8, known))

    @given(int8_arrays)
    def test_partial_monotone_in_planes(self, values):
        bp = decompose_bitplanes(values, bits=8)
        prev = partial_reconstruct(bp, 1)
        for known in range(2, 9):
            cur = partial_reconstruct(bp, known)
            assert np.all(cur >= prev)
            prev = cur

    def test_zero_planes_gives_zero(self):
        bp = decompose_bitplanes(np.array([42, -42]))
        assert partial_reconstruct(bp, 0).tolist() == [0, 0]


class TestPopcount:
    def test_total_popcount(self):
        bp = decompose_bitplanes(np.array([-1, -1]))  # all bits set
        assert popcount_per_plane(bp).tolist() == [2] * 8

    def test_axis_popcount(self):
        bp = decompose_bitplanes(np.array([[0, -1], [0, -1]]))
        pc = popcount_per_plane(bp, axis=1)
        assert pc.shape == (8, 2)
        np.testing.assert_array_equal(pc, np.ones_like(pc))
