"""Property tests for the cluster's prefix-affinity router.

Invariants (see ``repro/cluster/router.py`` docstring):

* routing is a pure, deterministic function of router state (and the
  seeded RNG stream in ``random`` mode);
* a drained replica is never routed to, and draining drops its key
  index;
* a full-prefix match always beats the least-loaded fallback;
* :func:`request_chain_keys` computes byte-identical keys to what the
  request's replica registers in its own pool.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.router import (
    ROUTING_MODES,
    NoReplicaAvailable,
    PrefixAffinityRouter,
    request_chain_keys,
)

# -- strategies --------------------------------------------------------

key = st.binary(min_size=4, max_size=8)
key_seq = st.lists(key, min_size=0, max_size=6)

replica_count = st.integers(min_value=1, max_value=5)


@st.composite
def router_ops(draw):
    """A replica set plus an arbitrary register/load/drain history."""
    n = draw(replica_count)
    ids = [f"r{i}" for i in range(n)]
    registrations = draw(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=n - 1), key_seq),
            max_size=6,
        )
    )
    loads = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
            ),
            max_size=6,
        )
    )
    # Drain a strict subset so at least one replica stays live.
    drained = draw(st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n - 1))
    return ids, registrations, loads, drained


def _build(ids, registrations, loads, drained, mode="prefix", seed=0):
    router = PrefixAffinityRouter(ids, mode=mode, seed=seed)
    for idx, keys in registrations:
        router.register(ids[idx], keys)
    for idx, amount in loads:
        router.add_load(ids[idx], amount)
    for idx in drained:
        router.drain(ids[idx])
    return router


# -- determinism -------------------------------------------------------


@given(router_ops(), key_seq, st.sampled_from(ROUTING_MODES))
def test_route_is_deterministic_given_state(ops, keys, mode):
    """Two routers with equal histories route identically — including the
    ``random`` mode, whose draws come from a seeded private RNG."""
    a = _build(*ops, mode=mode, seed=13)
    b = _build(*ops, mode=mode, seed=13)
    assert a.route(keys) == b.route(keys)


@given(router_ops(), key_seq, st.sampled_from(["prefix", "least-loaded"]))
def test_route_is_pure_outside_random_mode(ops, keys, mode):
    """``route`` mutates nothing: asking twice gives the same answer."""
    router = _build(*ops, mode=mode)
    assert router.route(keys) == router.route(keys)


# -- drained replicas --------------------------------------------------


@given(router_ops(), key_seq, st.sampled_from(ROUTING_MODES))
def test_never_routes_to_drained_replica(ops, keys, mode):
    ids, registrations, loads, drained = ops
    router = _build(ids, registrations, loads, drained, mode=mode)
    target = router.route(keys)
    assert not router.is_drained(target)
    assert target in router.live_replicas


@given(router_ops())
def test_drain_drops_key_index_and_blocks_register(ops):
    ids, registrations, loads, drained = ops
    router = _build(ids, registrations, loads, drained)
    for idx in drained:
        assert router.indexed_keys(ids[idx]) == 0
        with pytest.raises(ValueError):
            router.register(ids[idx], [b"anything"])


@given(replica_count, key_seq)
def test_all_drained_raises(n, keys):
    ids = [f"r{i}" for i in range(n)]
    router = PrefixAffinityRouter(ids)
    for rid in ids:
        router.drain(rid)
    with pytest.raises(NoReplicaAvailable):
        router.route(keys)


# -- affinity beats load -----------------------------------------------


@given(
    replica_count,
    st.lists(key, min_size=1, max_size=6, unique=True),
    st.integers(min_value=0, max_value=4),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)
def test_full_prefix_match_beats_least_loaded(n, keys, warm_idx, warm_load):
    """The only replica holding the full prefix wins at any load level."""
    ids = [f"r{i}" for i in range(n)]
    warm = ids[warm_idx % n]
    router = PrefixAffinityRouter(ids, mode="prefix")
    router.register(warm, keys)
    router.add_load(warm, warm_load)  # arbitrarily busier than the cold ones
    assert router.route(keys) == warm


@given(
    st.lists(key, min_size=2, max_size=6, unique=True),
    st.floats(min_value=1.0, max_value=50.0, allow_nan=False),
)
def test_longer_leading_match_wins(keys, load):
    """More consecutive leading blocks beat fewer, regardless of load."""
    router = PrefixAffinityRouter(["short", "long"], mode="prefix")
    router.register("short", keys[:1])
    router.register("long", keys)
    router.add_load("long", load)
    assert router.route(keys) == "long"


def test_interior_match_scores_nothing():
    """The pool attaches leading blocks only, so a hole kills affinity."""
    router = PrefixAffinityRouter(["a", "b"], mode="prefix")
    keys = [b"k0", b"k1", b"k2"]
    router.register("a", keys[1:])  # holds everything *except* the root
    assert router.match_length("a", keys) == 0
    router.add_load("a", 0.0)
    router.add_load("b", 5.0)
    # No leading match anywhere: falls back to least-loaded, which is "a"
    # on load grounds, not affinity grounds.
    assert router.route(keys) == "a"
    router.add_load("a", 10.0)
    assert router.route(keys) == "b"


# -- assign bookkeeping ------------------------------------------------


@given(st.lists(key, min_size=1, max_size=4, unique=True))
def test_assign_registers_and_charges(keys):
    router = PrefixAffinityRouter(["r0", "r1"], mode="prefix")
    first = router.assign(keys)
    assert router.load(first) == 1.0
    assert router.match_length(first, keys) == len(keys)
    # The same prompt now has affinity to its first target.
    assert router.assign(keys) == first


# -- key parity with the pool ------------------------------------------


def test_request_chain_keys_match_what_the_replica_registers():
    """Router-side keys must be byte-identical to the cache's own chain."""
    from repro.engine.cache import PagedBitPlaneKVCache, PlaneBlockPool
    from repro.eval.workloads import build_engine_request

    request = build_engine_request("parity", 4, 48, 4, 32, seed=3)
    bits, block_size = 8, 16
    keys = request_chain_keys(request, bits=bits, block_size=block_size)
    assert len(keys) == 48 // block_size

    k = np.asarray(request.k, dtype=np.float64)
    v = np.asarray(request.v, dtype=np.float64)
    pool = PlaneBlockPool(
        k.shape[0], k.shape[2], v.shape[2], bits=bits,
        block_size=block_size, token_budget=256,
    )
    cache = PagedBitPlaneKVCache(pool, prefix_sharing=True)
    cache.begin_prefill(k, v)
    assert cache._block_keys == keys


# -- bounded key index + eviction mirroring ----------------------------


@given(st.lists(key, min_size=1, max_size=6, unique=True))
def test_unregister_drops_match_and_reports_count(keys):
    router = PrefixAffinityRouter(["a", "b"], mode="prefix")
    router.register("a", keys)
    assert router.match_length("a", keys) == len(keys)
    assert router.unregister("a", keys) == len(keys)
    assert router.match_length("a", keys) == 0
    assert router.indexed_keys("a") == 0
    # Idempotent: the keys are already gone, nothing else breaks.
    assert router.unregister("a", keys) == 0


def test_unregister_unknown_replica_raises():
    router = PrefixAffinityRouter(["a"])
    with pytest.raises(KeyError):
        router.unregister("ghost", [b"k"])


def test_unregister_on_drained_replica_is_a_noop():
    router = PrefixAffinityRouter(["a", "b"])
    router.register("a", [b"k1", b"k2"])
    router.drain("a")
    assert router.unregister("a", [b"k1", b"k2"]) == 0


@given(cap=st.integers(1, 8), extra=st.integers(1, 8))
def test_key_index_is_bounded_and_evicts_oldest_first(cap, extra):
    router = PrefixAffinityRouter(["a"], max_keys_per_replica=cap)
    total = cap + extra
    keys = [f"k{i}".encode() for i in range(total)]
    for k in keys:
        router.register("a", [k])
    assert router.indexed_keys("a") == cap
    # Oldest keys fell out, the newest cap survive.
    for k in keys[:extra]:
        assert router.match_length("a", [k]) == 0
    for k in keys[extra:]:
        assert router.match_length("a", [k]) == 1


def test_reregistering_refreshes_eviction_age():
    router = PrefixAffinityRouter(["a"], max_keys_per_replica=2)
    router.register("a", [b"old"])
    router.register("a", [b"mid"])
    router.register("a", [b"old"])  # refresh: "mid" is now the oldest
    router.register("a", [b"new"])
    assert router.match_length("a", [b"old"]) == 1
    assert router.match_length("a", [b"mid"]) == 0
    assert router.match_length("a", [b"new"]) == 1


def test_evicted_keys_flow_from_pool_to_scheduler_drain():
    """The pool reports recycled prefix keys exactly once per drain."""
    from repro.engine.cache import PagedBitPlaneKVCache, PlaneBlockPool
    from repro.eval.workloads import build_engine_request

    request = build_engine_request("evict", 4, 32, 4, 32, seed=5)
    k = np.asarray(request.k, dtype=np.float64)
    v = np.asarray(request.v, dtype=np.float64)
    pool = PlaneBlockPool(
        k.shape[0], k.shape[2], v.shape[2], bits=8,
        block_size=16, token_budget=256,
    )
    cache = PagedBitPlaneKVCache(pool, prefix_sharing=True)
    cache.begin_prefill(k, v)
    while cache.prefill_remaining:
        cache.extend_prefill()
    registered = list(cache._block_keys)
    assert registered and pool.drain_evicted_prefix_keys() == []
    cache.release()  # frees the registered blocks -> keys are evicted
    drained = pool.drain_evicted_prefix_keys()
    assert sorted(drained) == sorted(registered)
    assert pool.drain_evicted_prefix_keys() == []  # drained exactly once
