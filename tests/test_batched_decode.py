"""Cross-request batched decode: fused round == per-request loop (ISSUE 6).

Three parity layers, strictest first:

* **kernel** — ``bsf_filter_fast_batch`` must reproduce a per-request
  loop over ``bsf_filter_fast_heads`` (and the reference backend's
  ``filter_heads_batch``) bit for bit on every ``BSFResult`` field,
  across ragged sequence lengths, ``allowed``/``protect`` masks, and
  finite/infinite guards — property-tested via hypothesis;
* **engine** — ``decode_step_batch`` must match interleaved
  ``decode_step`` calls exactly (outputs, retained sets, shared filter
  counters), and fall back to the loop when the attention policy does
  not declare ``supports_batched_decode``;
* **serving** — ``engine.serve(..., batched_decode=True)`` must be
  byte-identical to ``batched_decode=False`` end to end (results,
  retained history, trace, timings) on both backends, including under
  preemption pressure and deadline aborts, and the batched run must
  populate the ``batched_rounds`` / ``batch_efficiency`` accounting.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import PadeConfig
from repro.core.backend import get_backend
from repro.core.bsf_fast import bsf_filter_fast_heads
from repro.core.bsf_fast_batch import bsf_filter_fast_batch
from repro.engine import PadeEngine
from repro.eval.serving_metrics import summarize_serving
from repro.eval.workloads import build_engine_request
from repro.quant.bitplane import decompose_bitplanes

BITS = 6
_LO, _HI = -(1 << (BITS - 1)), (1 << (BITS - 1)) - 1


# ----------------------------------------------------------------------
# Kernel parity: fused batch == per-request heads == reference batch
# ----------------------------------------------------------------------
def _random_request(rng, num_heads, num_rows, seq_len, head_dim, masks, guard_kind):
    """One request's (q_int, planes, guards, allowed, protect) tuple."""
    q = rng.integers(_LO, _HI + 1, size=(num_heads, num_rows, head_dim))
    k = rng.integers(_LO, _HI + 1, size=(num_heads, seq_len, head_dim))
    planes = decompose_bitplanes(k, bits=BITS)
    if guard_kind == "inf":
        guards = np.full(num_heads, np.inf)
    elif guard_kind == "mixed":
        guards = np.where(
            rng.random(num_heads) < 0.5, np.inf, rng.uniform(0.0, 40.0, num_heads)
        )
    else:
        guards = rng.uniform(0.0, 40.0, size=num_heads)
    allowed = protect = None
    if masks:
        # Some rows end up fully masked — the all-pruned edge case.
        allowed = rng.random((num_heads, num_rows, seq_len)) < 0.8
        protect = rng.random((num_heads, num_rows, seq_len)) < 0.1
    return q, planes, guards, allowed, protect


def _assert_results_identical(got, want, label):
    assert np.array_equal(got.retained, want.retained), label
    assert np.array_equal(got.planes_processed, want.planes_processed), label
    assert np.array_equal(got.scores, want.scores), label
    assert got.bit_plane_loads == want.bit_plane_loads, label
    assert got.effective_bit_ops == want.effective_bit_ops, label
    assert got.naive_bit_ops == want.naive_bit_ops, label


@given(
    seed=st.integers(0, 2**32 - 1),
    num_requests=st.integers(1, 5),
    num_heads=st.integers(1, 3),
    num_rows=st.integers(1, 2),
    head_dim=st.integers(4, 12),
    masks=st.booleans(),
    guard_kind=st.sampled_from(["finite", "inf", "mixed"]),
)
def test_kernel_parity_ragged(
    seed, num_requests, num_heads, num_rows, head_dim, masks, guard_kind
):
    """Fused filter == per-request loop, bit for bit, on ragged sets."""
    rng = np.random.default_rng(seed)
    seq_lens = rng.integers(1, 33, size=num_requests)
    reqs = [
        _random_request(rng, num_heads, num_rows, int(s), head_dim, masks, guard_kind)
        for s in seq_lens
    ]
    qs = [r[0] for r in reqs]
    planes = [r[1] for r in reqs]
    guards = [r[2] for r in reqs]
    alloweds = [r[3] for r in reqs]
    protects = [r[4] for r in reqs]

    fused = bsf_filter_fast_batch(qs, planes, guards, alloweds=alloweds, protects=protects)
    assert len(fused) == num_requests
    for i in range(num_requests):
        loop = bsf_filter_fast_heads(
            qs[i], planes[i], guards[i], allowed=alloweds[i], protect=protects[i]
        )
        _assert_results_identical(fused[i], loop, f"request {i} vs fast heads loop")

    ref = get_backend("reference").filter_heads_batch(
        qs, planes, guards, alloweds=alloweds, protects=protects
    )
    for i in range(num_requests):
        _assert_results_identical(fused[i], ref[i], f"request {i} vs reference batch")


def test_kernel_batch_via_registry():
    """Both registered backends expose filter_heads_batch and agree."""
    rng = np.random.default_rng(7)
    reqs = [_random_request(rng, 2, 1, s, 8, True, "finite") for s in (5, 17, 17, 1)]
    args = tuple(zip(*reqs))
    fast = get_backend("fast").filter_heads_batch(
        args[0], args[1], args[2], alloweds=args[3], protects=args[4]
    )
    ref = get_backend("reference").filter_heads_batch(
        args[0], args[1], args[2], alloweds=args[3], protects=args[4]
    )
    for i, (f, r) in enumerate(zip(fast, ref)):
        _assert_results_identical(f, r, f"request {i}")


def test_kernel_batch_validates_ragged_inputs():
    rng = np.random.default_rng(11)
    q, planes, guards, _, _ = _random_request(rng, 2, 1, 8, 8, False, "finite")
    assert bsf_filter_fast_batch([], [], []) == []
    with pytest.raises(ValueError):
        bsf_filter_fast_batch([q], [planes], [])  # length mismatch
    q_bad, planes_bad, guards_bad, _, _ = _random_request(rng, 3, 1, 8, 8, False, "finite")
    with pytest.raises(ValueError):  # heterogeneous head counts
        bsf_filter_fast_batch([q, q_bad], [planes, planes_bad], [guards, guards_bad])


# ----------------------------------------------------------------------
# Engine parity: decode_step_batch == interleaved decode_step
# ----------------------------------------------------------------------
def _engine_requests(num, context=12, steps=4, num_heads=2, head_dim=16, **kw):
    return [
        build_engine_request(
            f"r{i}", num_heads, context + 3 * (i % 3), steps,
            head_dim=head_dim, seed=50 + i, **kw,
        )
        for i in range(num)
    ]


def _prefilled(engine, requests):
    from repro.engine.cache import PagedBitPlaneKVCache, PlaneBlockPool

    first = np.asarray(requests[0].k)
    num_heads, _, head_dim = first.shape
    v_dim = np.asarray(requests[0].v).shape[2]
    budget = sum(16 * -(-r.total_tokens // 16) for r in requests)
    pool = PlaneBlockPool(num_heads, head_dim, v_dim, bits=engine.config.bits,
                          block_size=16, token_budget=budget)
    caches = []
    for req in requests:
        cache = PagedBitPlaneKVCache(pool)
        engine.prefill(cache, req.k, req.v, total_tokens=req.total_tokens)
        caches.append(cache)
    return caches


_SHARED_COUNTERS = (
    "filter_calls", "bit_plane_loads", "effective_bit_ops",
    "naive_bit_ops", "retained_keys", "candidate_keys",
)


@pytest.mark.parametrize("backend", ["fast", "reference"])
def test_decode_step_batch_matches_loop(backend):
    requests = _engine_requests(4)
    loop_engine = PadeEngine(PadeConfig.standard(), backend=backend)
    loop_caches = _prefilled(loop_engine, requests)
    fused_engine = PadeEngine(PadeConfig.standard(), backend=backend)
    fused_caches = _prefilled(fused_engine, requests)

    for t in range(requests[0].decode_steps):
        loop_res = [
            loop_engine.decode_step(
                c, r.decode_q[:, t, :], r.decode_k[:, t, :], r.decode_v[:, t, :]
            )
            for c, r in zip(loop_caches, requests)
        ]
        fused_res = fused_engine.decode_step_batch(
            [
                (c, r.decode_q[:, t, :], r.decode_k[:, t, :], r.decode_v[:, t, :])
                for c, r in zip(fused_caches, requests)
            ]
        )
        for i, (a, b) in enumerate(zip(loop_res, fused_res)):
            assert np.array_equal(a.retained, b.retained), f"step {t} request {i}"
            assert a.output.tobytes() == b.output.tobytes(), f"step {t} request {i}"
            assert np.array_equal(a.scores, b.scores)
            assert a.candidate_keys == b.candidate_keys
            assert a.prediction_cost == b.prediction_cost
            assert a.execution_cost == b.execution_cost

    for field in _SHARED_COUNTERS:
        assert getattr(loop_engine.stats, field) == getattr(fused_engine.stats, field)
    assert fused_engine.stats.batched_rounds == requests[0].decode_steps
    assert fused_engine.stats.fused_rows > 0
    assert 0.0 < fused_engine.stats.batch_efficiency <= 1.0
    assert loop_engine.stats.batched_rounds == 0


def test_decode_step_batch_single_request_uses_loop_path():
    """A batch of one never pays the fused-lattice setup."""
    requests = _engine_requests(1)
    engine = PadeEngine(PadeConfig.standard(), backend="fast")
    caches = _prefilled(engine, requests)
    req = requests[0]
    res = engine.decode_step_batch(
        [(caches[0], req.decode_q[:, 0, :], req.decode_k[:, 0, :], req.decode_v[:, 0, :])]
    )
    assert len(res) == 1
    assert engine.stats.batched_rounds == 0


def test_unsupported_policy_falls_back_to_loop():
    """Policies without supports_batched_decode serve via the loop."""
    requests = _engine_requests(3)
    engine = PadeEngine(PadeConfig.standard(), backend="fast", policy="h2o")
    assert not engine.supports_batched_decode
    results = engine.serve(
        requests, token_budget=512, block_size=16, batched_decode=True
    )
    assert all(r.status == "ok" for r in results.values())
    assert engine.stats.batched_rounds == 0


# ----------------------------------------------------------------------
# Serving parity: batched_decode=True == False, byte for byte
# ----------------------------------------------------------------------
def _result_digest(results):
    """Order-stable byte digest of everything a caller can observe."""
    out = []
    for rid in sorted(results):
        r = results[rid]
        out.append((
            rid, r.status, r.abort_reason,
            r.arrival_time, r.admit_time, r.first_token_time, r.finish_time,
            b"".join(np.asarray(o).tobytes() for o in r.decode_outputs),
            b"".join(
                np.packbits(np.asarray(h, dtype=bool).astype(np.uint8)).tobytes()
                for h in r.retained_history
            ),
        ))
    return out


def _serve(backend, batched, requests=None, **serve_kw):
    engine = PadeEngine(PadeConfig.standard(), backend=backend)
    if requests is None:
        requests = _engine_requests(5, deadline_ms=None)
    results = engine.serve(requests, batched_decode=batched, **serve_kw)
    return results, engine.last_serve, engine.stats


@pytest.mark.parametrize("backend", ["fast", "reference"])
def test_serve_batched_matches_loop(backend):
    kw = dict(token_budget=512, block_size=16)
    loop_results, loop_sched, loop_stats = _serve(backend, False, **kw)
    fused_results, fused_sched, fused_stats = _serve(backend, True, **kw)
    assert _result_digest(loop_results) == _result_digest(fused_results)
    assert loop_sched.trace == fused_sched.trace
    for field in _SHARED_COUNTERS:
        assert getattr(loop_stats, field) == getattr(fused_stats, field)
    assert fused_stats.batched_rounds > 0
    assert loop_stats.batched_rounds == 0


@pytest.mark.parametrize("backend", ["fast", "reference"])
def test_serve_batched_matches_loop_under_preemption(backend):
    """Parity must survive PoolExhausted preempt-and-retry and SLO aborts."""
    def mk():
        reqs = _engine_requests(6, context=10, steps=5)
        # One request with a deadline tight enough to abort mid-flight.
        reqs.append(
            build_engine_request("tight", 2, 14, 6, head_dim=16, seed=99,
                                 deadline_ms=6.0)
        )
        return reqs

    kw = dict(token_budget=32, block_size=4, max_active=4)
    loop_results, loop_sched, _ = _serve(backend, False, requests=mk(), **kw)
    fused_results, fused_sched, fused_stats = _serve(backend, True, requests=mk(), **kw)
    assert any(e[0] == "preempt" for e in loop_sched.trace), "scenario lost its pressure"
    assert _result_digest(loop_results) == _result_digest(fused_results)
    assert loop_sched.trace == fused_sched.trace
    assert fused_stats.batched_rounds > 0


def test_serve_batched_deterministic():
    """Two identical batched runs are byte-identical (golden determinism)."""
    a_results, a_sched, _ = _serve("fast", True, token_budget=48, block_size=4)
    b_results, b_sched, _ = _serve("fast", True, token_budget=48, block_size=4)
    assert _result_digest(a_results) == _result_digest(b_results)
    assert a_sched.trace == b_sched.trace


def test_legacy_scheduler_uses_batched_rounds():
    """EngineScheduler's round goes through decode_step_batch too."""
    engine = PadeEngine(PadeConfig.standard(), backend="fast", max_active=4)
    for req in _engine_requests(3):
        engine.submit(req)
    results = engine.run()
    assert all(r.status == "ok" for r in results.values())
    assert engine.stats.batched_rounds > 0


def test_summarize_serving_reports_batch_columns():
    results, sched, _ = _serve("fast", True, token_budget=512, block_size=16)
    report = summarize_serving(
        results.values(), sched.occupancy, token_budget=512, scheduler=sched
    )
    assert report["batched_rounds"] > 0
    assert 0.0 < report["batch_efficiency"] <= 1.0
    loop_results, loop_sched, _ = _serve("fast", False, token_budget=512, block_size=16)
    loop_report = summarize_serving(
        loop_results.values(), loop_sched.occupancy, token_budget=512,
        scheduler=loop_sched,
    )
    assert loop_report["batched_rounds"] == 0
