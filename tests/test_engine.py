"""Serving engine: bit-plane cache, batched attention, request scheduling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PadeConfig
from repro.engine import BitPlaneKVCache, EngineRequest, PadeEngine
from repro.eval.workloads import build_engine_request
from repro.quant.bitplane import decompose_bitplanes
from repro.quant.integer import quantize_symmetric


def _head_qkv(rng, num_heads, seq_len, head_dim):
    k = rng.normal(size=(num_heads, seq_len, head_dim))
    v = rng.normal(size=(num_heads, seq_len, head_dim))
    return k, v


class TestBitPlaneCache:
    def test_incremental_append_matches_bulk_decomposition(self, rng):
        """Planes appended token-by-token equal a one-shot decomposition
        of the same keys under the frozen prefill scales."""
        num_heads, prefix, extra, head_dim = 3, 20, 7, 8
        k, v = _head_qkv(rng, num_heads, prefix + extra, head_dim)
        cache = BitPlaneKVCache(num_heads, head_dim, head_dim)
        cache.prefill(k[:, :prefix], v[:, :prefix])
        for t in range(extra):
            cache.append(k[:, prefix + t], v[:, prefix + t])

        # Bulk reference: quantize all keys with the *frozen* scales.
        k_int = np.stack(
            [
                quantize_symmetric(k[h], scale=cache.scales[h]).data
                for h in range(num_heads)
            ]
        )
        bulk = decompose_bitplanes(k_int)
        assert np.array_equal(cache.planes.planes, bulk.planes)
        assert np.array_equal(cache.k_int, k_int)
        assert np.array_equal(cache.values, v)
        assert cache.length == prefix + extra
        assert cache.rows_decomposed == num_heads * (prefix + extra)

    def test_capacity_doubles_not_per_step(self, rng):
        k, v = _head_qkv(rng, 2, 40, 4)
        cache = BitPlaneKVCache(2, 4, 4)
        cache.prefill(k[:, :8], v[:, :8])
        for t in range(8, 40):
            cache.append(k[:, t], v[:, t])
        assert cache._capacity >= 40
        assert cache._capacity <= 64  # doubling, not unbounded over-reserve

    def test_prefill_twice_rejected(self, rng):
        k, v = _head_qkv(rng, 2, 8, 4)
        cache = BitPlaneKVCache(2, 4, 4)
        cache.prefill(k, v)
        with pytest.raises(RuntimeError):
            cache.prefill(k, v)

    def test_empty_cache_guards(self):
        cache = BitPlaneKVCache(1, 4, 4)
        with pytest.raises(RuntimeError):
            _ = cache.planes
        with pytest.raises(RuntimeError):
            cache.append(np.zeros((1, 4)), np.zeros((1, 4)))


class TestEngineAttention:
    def test_output_matches_masked_softmax_of_exact_scores(self, rng):
        num_heads, seq_len, head_dim = 2, 64, 16
        k, v = _head_qkv(rng, num_heads, seq_len, head_dim)
        q = rng.normal(size=(num_heads, 4, head_dim))
        engine = PadeEngine(PadeConfig.standard())
        cache = engine.new_cache(num_heads, head_dim, head_dim)
        res = engine.prefill(cache, k, v, q=q)

        for h in range(num_heads):
            qi = quantize_symmetric(q[h])
            logits = (
                qi.data @ cache.k_int[h].T
            ).astype(np.float64) * float(qi.scale) * cache.scales[h] / np.sqrt(head_dim)
            masked = np.where(res.retained[h], logits, -np.inf)
            probs = np.exp(masked - masked.max(axis=1, keepdims=True))
            probs /= probs.sum(axis=1, keepdims=True)
            np.testing.assert_allclose(res.output[h], probs @ v[h], atol=1e-9)
            # Retained scores are the exact integer products.
            exact = qi.data @ cache.k_int[h].T
            assert np.array_equal(res.scores[h][res.retained[h]], exact[res.retained[h]])

    def test_decode_step_counts_reuse(self, rng):
        num_heads, seq_len, head_dim = 2, 32, 8
        k, v = _head_qkv(rng, num_heads, seq_len + 2, head_dim)
        engine = PadeEngine()
        cache = engine.new_cache(num_heads, head_dim, head_dim)
        engine.prefill(cache, k[:, :seq_len], v[:, :seq_len])
        for t in range(2):
            q = rng.normal(size=(num_heads, head_dim))
            res = engine.decode_step(cache, q, k[:, seq_len + t], v[:, seq_len + t])
            assert res.output.shape == (num_heads, 1, head_dim)
        stats = engine.stats
        assert stats.decode_steps == 2
        assert stats.rows_decomposed == num_heads * (seq_len + 2)
        assert stats.rows_reused == num_heads * (seq_len + seq_len + 1)
        assert 0.0 < stats.decomposition_reuse < 1.0

    def test_protection_masks_respected(self, rng):
        cfg = PadeConfig(alpha=0.2, radius=5.0, sink_tokens=3, recent_tokens=4)
        num_heads, seq_len, head_dim = 2, 48, 8
        k, v = _head_qkv(rng, num_heads, seq_len + 1, head_dim)
        engine = PadeEngine(cfg)
        cache = engine.new_cache(num_heads, head_dim, head_dim)
        engine.prefill(cache, k[:, :seq_len], v[:, :seq_len])
        res = engine.decode_step(
            cache, rng.normal(size=(num_heads, head_dim)), k[:, seq_len], v[:, seq_len]
        )
        retained = res.retained[:, 0, :]  # (H, S+1)
        assert retained[:, :3].all()  # sinks
        assert retained[:, -4:].all()  # recency window

    def test_causal_sparsity_counts_candidates_only(self, rng):
        """Disallowed (causal) pairs are not counted as pruned."""
        num_heads, seq_len, head_dim = 2, 32, 8
        k, v = _head_qkv(rng, num_heads, seq_len, head_dim)
        q = rng.normal(size=(num_heads, seq_len, head_dim))
        engine = PadeEngine(PadeConfig(causal=True, radius=float("inf")))
        cache = engine.new_cache(num_heads, head_dim, head_dim)
        res = engine.prefill(cache, k, v, q=q)
        # Infinite guard retains every causal candidate: sparsity must be 0
        # even though ~half the (q, k) pairs are causally disallowed.
        assert res.candidate_keys == num_heads * seq_len * (seq_len + 1) // 2
        assert res.sparsity == 0.0
        assert engine.stats.sparsity == 0.0

    def test_model_preset_caches(self):
        engine = PadeEngine()
        caches = engine.new_model_caches("llama3-8b")
        assert len(caches) == 32
        assert caches[0].num_heads == 8  # GQA: KV heads, not query heads
        assert caches[0].head_dim == 128

    def test_backend_invariant_retention(self, rng):
        results = {}
        for backend in ("reference", "fast"):
            engine = PadeEngine(backend=backend)
            engine.submit(
                build_engine_request("r", 3, 96, 6, head_dim=16, seed=5)
            )
            results[backend] = engine.run()["r"]
        assert (
            results["reference"].retained_bytes() == results["fast"].retained_bytes()
        )
        np.testing.assert_allclose(
            results["reference"].decode_outputs, results["fast"].decode_outputs
        )


class TestScheduler:
    def test_requests_batched_per_round(self):
        engine = PadeEngine(max_active=2)
        for i in range(3):
            engine.submit(build_engine_request(f"r{i}", 2, 32, 3, head_dim=8, seed=i))
        results = engine.run()
        assert set(results) == {"r0", "r1", "r2"}
        trace = engine.schedule_trace
        # First decode round covers both admitted requests at once.
        rounds = [ids for event, ids in trace if event == "decode_round"]
        assert rounds[0] == ("r0", "r1")
        # r2 is only admitted after a slot frees up.
        prefill_order = [ids[0] for event, ids in trace if event == "prefill"]
        assert prefill_order == ["r0", "r1", "r2"]
        finished = [ids[0] for event, ids in trace if event == "finish"]
        assert set(finished) == {"r0", "r1", "r2"}

    def test_results_carry_outputs_and_history(self):
        engine = PadeEngine()
        engine.submit(build_engine_request("a", 2, 24, 4, head_dim=8, seed=1))
        res = engine.run()["a"]
        assert res.decode_outputs.shape == (2, 4, 8)
        assert res.steps == 4
        assert res.final_length == 28
        # History lengths grow by one token per step.
        assert [r.shape[1] for r in res.retained_history] == [25, 26, 27, 28]
        assert res.prefill_output is not None  # default request has 1 prompt query

    def test_prefill_only_request(self):
        engine = PadeEngine()
        engine.submit(build_engine_request("p", 2, 16, 0, head_dim=8, prompt_queries=4))
        res = engine.run()["p"]
        assert res.prefill_output.shape == (2, 4, 8)
        assert res.decode_outputs.shape == (2, 0, 8)
        assert res.steps == 0

    def test_duplicate_request_id_rejected(self):
        engine = PadeEngine()
        engine.submit(build_engine_request("dup", 2, 16, 2, head_dim=8))
        with pytest.raises(ValueError, match="dup"):
            engine.submit(build_engine_request("dup", 2, 16, 2, head_dim=8))

    def test_mismatched_decode_streams_rejected(self):
        k = np.zeros((1, 4, 4))
        v = np.zeros((1, 4, 4))
        with pytest.raises(ValueError):
            EngineRequest("x", k, v, decode_q=np.zeros((1, 2, 4)))
        with pytest.raises(ValueError):
            EngineRequest(
                "x", k, v,
                decode_q=np.zeros((1, 2, 4)),
                decode_k=np.zeros((1, 3, 4)),
                decode_v=np.zeros((1, 3, 4)),
            )
