"""End-to-end tests of the public PADE attention operator."""

import numpy as np
import pytest

from repro.attention.dense import dense_attention
from repro.core.config import PadeConfig
from repro.core.pade_attention import causal_allowed, pade_attention, protection_mask


class TestConfig:
    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            PadeConfig(alpha=1.5)

    def test_presets(self):
        assert PadeConfig.standard().alpha == 0.6
        assert PadeConfig.aggressive().alpha == 0.5
        assert np.isinf(PadeConfig.dense().radius)

    def test_with_alpha(self):
        cfg = PadeConfig.standard().with_alpha(0.3)
        assert cfg.alpha == 0.3 and cfg.radius == 5.0


class TestCausalMask:
    def test_prefill_shape(self):
        m = causal_allowed(4, 4)
        assert m.tolist() == [
            [True, False, False, False],
            [True, True, False, False],
            [True, True, True, False],
            [True, True, True, True],
        ]

    def test_decode_offset(self):
        m = causal_allowed(1, 8, query_offset=7)
        assert m.all()

    def test_protection_mask_none_when_disabled(self):
        assert protection_mask(2, 8, 0, 0) is None

    def test_protection_sink_and_recent(self):
        m = protection_mask(2, 8, sink_tokens=1, recent_tokens=2, query_offset=6)
        assert m[0, 0] and m[1, 0]
        assert m[0, 5] and m[0, 6] and not m[0, 7]
        assert m[1, 6] and m[1, 7]


class TestEndToEnd:
    def test_dense_config_matches_reference(self, small_qkv):
        q, k, v = small_qkv
        res = pade_attention(q, k, v, PadeConfig.dense())
        ref = dense_attention(q, k, v)
        # only INT8 quantization separates them
        assert np.abs(res.output - ref).max() < 0.1
        assert res.sparsity == 0.0

    def test_standard_config_accurate_and_sparse(self, small_qkv):
        q, k, v = small_qkv
        res = pade_attention(q, k, v, PadeConfig.standard())
        ref = dense_attention(q, k, v)
        assert res.sparsity > 0.2
        assert np.abs(res.output - ref).max() < 0.35

    def test_sparsity_monotone_in_alpha(self, small_qkv):
        q, k, v = small_qkv
        sparsities = [
            pade_attention(q, k, v, PadeConfig(alpha=a)).sparsity
            for a in (1.0, 0.6, 0.3)
        ]
        assert sparsities[0] <= sparsities[1] <= sparsities[2]

    def test_early_termination_reduces_plane_loads(self, small_qkv):
        q, k, v = small_qkv
        res = pade_attention(q, k, v, PadeConfig.standard())
        assert res.mean_planes_per_candidate < 8.0

    def test_single_decode_row(self, small_qkv):
        q, k, v = small_qkv
        res = pade_attention(q[0], k, v, PadeConfig.standard())
        assert res.output.shape == (1, v.shape[1])

    def test_causal_masking(self, rng):
        q = rng.normal(size=(4, 16))
        k = rng.normal(size=(4, 16))
        v = rng.normal(size=(4, 16))
        res = pade_attention(q, k, v, PadeConfig(causal=True, radius=float("inf"), alpha=1.0))
        assert not res.retained[0, 1:].any()
        assert res.retained[3].all()

    def test_sink_protection_retains_sinks(self, small_qkv):
        q, k, v = small_qkv
        cfg = PadeConfig(alpha=0.1, sink_tokens=2)
        res = pade_attention(q, k, v, cfg)
        assert res.retained[:, :2].all()

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            pade_attention(rng.normal(size=(2, 8)), rng.normal(size=(4, 16)), rng.normal(size=(4, 16)))
        with pytest.raises(ValueError):
            pade_attention(rng.normal(size=(2, 8)), rng.normal(size=(4, 8)), rng.normal(size=(5, 8)))

    def test_guard_scales_with_alpha(self, small_qkv):
        q, k, v = small_qkv
        g1 = pade_attention(q, k, v, PadeConfig(alpha=1.0)).guard_int
        g2 = pade_attention(q, k, v, PadeConfig(alpha=0.5)).guard_int
        assert g1 == pytest.approx(2 * g2)

    def test_output_error_bounded_by_lost_mass(self, small_qkv):
        """Pruning can shift the output by at most ~2·lost-mass·max|V|."""
        from repro.attention.dense import softmax

        q, k, v = small_qkv
        res = pade_attention(q, k, v, PadeConfig.standard())
        logits = (res.q_int.data @ res.k_int.data.T) * res.logit_scale
        probs = softmax(logits, axis=-1)
        lost = np.where(res.retained, 0.0, probs).sum(axis=-1)
        quant_ref = (softmax(np.where(res.retained, logits, -np.inf), axis=-1)) @ v
        err = np.abs(res.output - quant_ref).max()
        assert err < 1e-8  # ISTA is exact on the retained set
        assert lost.max() < 0.2
