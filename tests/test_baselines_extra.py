"""Tests for the extra comparators: H2O eviction and Quest page selection."""

import numpy as np
import pytest

from repro.attention.baselines.h2o import h2o_decode
from repro.attention.baselines.quest import (
    build_page_summaries,
    page_bound_soundness,
    page_score_upper_bound,
    quest_attention,
)
from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv


@pytest.fixture
def decode_problem(rng):
    return synthesize_qkv(16, 256, 32, PROFILE_PRESETS["nlp"], rng)


class TestH2O:
    def test_budget_enforced(self, decode_problem):
        q, k, v = decode_problem
        _, _, state = h2o_decode(q, k, v, budget_fraction=0.25)
        assert state.cache_size <= round(0.25 * 256) + 1

    def test_full_budget_loses_nothing(self, decode_problem):
        q, k, v = decode_problem
        _, lost, _ = h2o_decode(q, k, v, budget_fraction=1.0)
        assert max(lost) < 1e-9

    def test_eviction_is_irreversible(self, decode_problem):
        """Once evicted, a token's mass is lost for all later steps — the
        failure mode fresh per-step selection (DoubleSparsity) avoids."""
        q, k, v = decode_problem
        outputs, lost, state = h2o_decode(q, k, v, budget_fraction=0.15)
        assert np.mean(lost[-4:]) >= 0.0
        assert outputs.shape == (16, 32)

    def test_smaller_budget_loses_more(self, decode_problem):
        q, k, v = decode_problem
        _, lost_small, _ = h2o_decode(q, k, v, budget_fraction=0.1)
        _, lost_big, _ = h2o_decode(q, k, v, budget_fraction=0.5)
        assert np.mean(lost_small) >= np.mean(lost_big) - 1e-9

    def test_recency_window_protected(self, decode_problem):
        q, k, v = decode_problem
        _, _, state = h2o_decode(q, k, v, budget_fraction=0.2, recent_tokens=8)
        visible = 256
        assert state.alive[visible - 8 : visible - 1].all()


class TestQuest:
    def test_page_bounds_sound(self, rng):
        k = rng.normal(size=(128, 16))
        q = rng.normal(size=16)
        _, ok = page_bound_soundness(q, k, page_size=16)
        assert ok

    def test_bound_tightness_improves_with_smaller_pages(self, rng):
        k = rng.normal(size=(128, 16))
        q = rng.normal(size=16)
        slack_big, _ = page_bound_soundness(q, k, page_size=64)
        slack_small, _ = page_bound_soundness(q, k, page_size=4)
        assert slack_small < slack_big

    def test_summaries_shapes(self, rng):
        s = build_page_summaries(rng.normal(size=(100, 8)), page_size=16)
        assert s.num_pages == 7
        assert np.all(s.k_min <= s.k_max)

    def test_selects_heavy_pages(self, decode_problem):
        q, k, v = decode_problem
        res = quest_attention(q, k, v, keep_fraction=0.3, page_size=16)
        assert res.output.shape == q.shape
        assert 0 < res.keep_fraction <= 0.45

    def test_page_granularity_wastes_budget_vs_token_topk(self, decode_problem):
        """Whole-page fetches for single heavy hitters: at the same keep
        fraction Quest retains less attention mass than exact token top-k —
        the granularity argument for PADE's bit/token-level bounds."""
        from repro.attention.baselines import topk_oracle_attention
        from repro.attention.dense import attention_scores, softmax
        from repro.attention.masks import causal_mask

        q, k, v = decode_problem
        causal = causal_mask(16, 256, 240)
        probs = softmax(np.where(causal, attention_scores(q, k), -np.inf), axis=-1)

        def lost(mask):
            return float(np.where(mask, 0.0, probs).sum(axis=-1).mean())

        quest = quest_attention(q, k, v, keep_fraction=0.15, page_size=32)
        oracle = topk_oracle_attention(q, k, v, keep_fraction=quest.keep_fraction)
        assert lost(quest.retained) >= lost(oracle.retained) - 1e-9

    def test_upper_bound_positive_negative_split(self):
        k = np.array([[1.0, -2.0], [3.0, 0.5]])
        s = build_page_summaries(k, page_size=2)
        q = np.array([2.0, -1.0])
        bound = page_score_upper_bound(q, s)[0]
        # pos part picks k_max = [3, .5]; neg part picks k_min = [1, -2]
        assert bound == pytest.approx(2 * 3.0 + (-1.0) * (-2.0))
