"""Tests for the FP-query exponent-alignment extension (§VI-F)."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.fp_query import align_query, fp_bsf_filter_row
from repro.quant.bitplane import decompose_bitplanes

fp_rows = arrays(
    np.float64, st.integers(4, 32),
    elements=st.floats(-1e3, 1e3, allow_nan=False, width=64),
)


class TestAlignment:
    @given(fp_rows)
    def test_reconstruction_error_bounded(self, q):
        aligned = align_query(q, mantissa_bits=12)
        err = np.abs(q - aligned.reconstruct()).max() if q.size else 0.0
        assert err <= aligned.truncation_error + 1e-12
        # one ulp of the shared exponent bounds the truncation
        assert aligned.truncation_error <= 2.0 ** aligned.exponent * 0.5 + 1e-12

    @given(fp_rows)
    def test_mantissa_within_width(self, q):
        aligned = align_query(q, mantissa_bits=12)
        assert np.abs(aligned.mantissa).max(initial=0) <= 2**11

    def test_zero_row(self):
        aligned = align_query(np.zeros(8))
        assert aligned.exponent == 0 and aligned.truncation_error == 0.0

    def test_wider_mantissa_less_truncation(self, rng):
        q = rng.normal(size=64) * 10
        narrow = align_query(q, mantissa_bits=8)
        wide = align_query(q, mantissa_bits=14)
        assert wide.truncation_error < narrow.truncation_error


class TestFPFilter:
    def test_guard_safety_with_fp_query(self, rng):
        k = rng.integers(-128, 128, size=(256, 32))
        planes = decompose_bitplanes(k)
        q = rng.normal(size=32) * 4
        guard_logits, scale_k = 4.0, 0.005
        res, aligned = fp_bsf_filter_row(q, planes, guard_logits, scale_k)
        # exact FP-domain logits
        logits = (k @ q) * scale_k
        must_keep = logits > logits.max() - guard_logits
        assert np.all(res.retained[must_keep])

    def test_prunes_something_realistic(self, rng):
        from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv

        q, k, v = synthesize_qkv(1, 512, 64, PROFILE_PRESETS["nlp"], rng)
        from repro.quant.integer import quantize_symmetric

        ki = quantize_symmetric(k)
        planes = decompose_bitplanes(ki.data)
        scale_k = float(ki.scale) / np.sqrt(64)
        res, _ = fp_bsf_filter_row(q[0], planes, 3.0, scale_k)
        assert 0.0 < res.sparsity < 1.0

    def test_degenerate_scale_keeps_everything(self, rng):
        k = rng.integers(-128, 128, size=(16, 8))
        planes = decompose_bitplanes(k)
        res, _ = fp_bsf_filter_row(rng.normal(size=8), planes, 1.0, 0.0)
        assert res.retained.all()
