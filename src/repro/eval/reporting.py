"""ASCII table/series renderers used by the benchmark harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["print_table", "print_series", "format_table"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a list-of-rows table with aligned columns."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    print(f"\n== {title} ==")
    print(format_table(headers, rows))


def print_series(title: str, xs: Sequence, series: dict) -> None:
    """Print one or more y-series against a shared x axis."""
    headers = ["x"] + list(series)
    rows = [[x] + [series[name][i] for name in series] for i, x in enumerate(xs)]
    print_table(title, headers, rows)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)
