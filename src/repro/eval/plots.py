"""ASCII plotting for the regenerated figures (offline-friendly).

Matplotlib is unavailable in the reproduction environment, so the benches
and examples can render series as unicode bar/line charts — enough to
eyeball the shapes the paper's figures show.
"""

from __future__ import annotations

from typing import Dict, Sequence

__all__ = ["bar_chart", "line_chart"]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def bar_chart(
    title: str, labels: Sequence[str], values: Sequence[float], width: int = 40
) -> str:
    """Horizontal bar chart with value annotations."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    vmax = max(values) if values else 1.0
    vmax = vmax if vmax > 0 else 1.0
    label_w = max((len(l) for l in labels), default=0)
    lines = [f"== {title} =="]
    for label, value in zip(labels, values):
        frac = max(0.0, value / vmax)
        full = int(frac * width)
        rem = int((frac * width - full) * 8)
        bar = "█" * full + (_BLOCKS[rem] if rem else "")
        lines.append(f"{label.ljust(label_w)} |{bar.ljust(width)}| {value:.3g}")
    return "\n".join(lines)


def line_chart(
    title: str,
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
) -> str:
    """Multi-series scatter/line chart on a character grid."""
    if not series:
        return f"== {title} == (no data)"
    all_y = [y for ys in series.values() for y in ys]
    ymin, ymax = min(all_y), max(all_y)
    if ymax == ymin:
        ymax = ymin + 1.0
    xmin, xmax = min(xs), max(xs)
    if xmax == xmin:
        xmax = xmin + 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    for (name, ys), marker in zip(series.items(), markers):
        for x, y in zip(xs, ys):
            col = int((x - xmin) / (xmax - xmin) * (width - 1))
            row = height - 1 - int((y - ymin) / (ymax - ymin) * (height - 1))
            grid[row][col] = marker
    lines = [f"== {title} =="]
    for i, row in enumerate(grid):
        y_label = ymax - (ymax - ymin) * i / (height - 1)
        lines.append(f"{y_label:10.3g} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(f"{'':11s}{xmin:<10.4g}{'':>{max(0, width - 20)}}{xmax:>10.4g}")
    legend = "  ".join(f"{m}={n}" for (n, _), m in zip(series.items(), markers))
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
