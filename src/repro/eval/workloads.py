"""Named benchmark workloads + measured pipeline statistics.

The analytic accelerator models are parameterized by two quantities PADE's
functional pipeline *measures* on a workload: the oracle-ish keep fraction
and the mean bit planes consumed per candidate key.  This module runs the
pipeline once per (model, sequence-length) pair (capped for tractability)
and caches the statistics, so every figure draws from the same numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.accelerators.base import AttentionWorkload
from repro.attention.dense import softmax
from repro.core.config import PadeConfig
from repro.core.pade_attention import pade_attention
from repro.model.configs import ModelConfig, get_model
from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv

__all__ = [
    "Workload",
    "WORKLOADS",
    "PipelineStats",
    "measure_pipeline_stats",
    "build_attention_workload",
    "build_engine_request",
    "poisson_arrival_times",
    "bursty_arrival_times",
    "diurnal_arrival_times",
    "trace_arrival_times",
    "build_serving_workload",
    "build_prefix_workload",
    "build_cluster_workload",
    "build_speculative_request",
    "build_speculative_workload",
    "build_parallel_workload",
    "SCENARIO_KINDS",
    "TenantSpec",
    "default_tenant_specs",
    "build_scenario_workload",
]


@dataclass(frozen=True)
class Workload:
    """A named benchmark: dataset, default model, and sequence length."""

    name: str
    model: str
    seq_len: int
    decode_steps: int = 0  # generated tokens (0 = prefill-dominated task)


#: The evaluation workloads referenced across §VI (sequence lengths per the
#: paper's dataset descriptions; long-context entries for Figs. 15c/24/26).
WORKLOADS: Dict[str, Workload] = {
    "winogrande": Workload("winogrande", "llama2-7b", 250),
    "mmlu": Workload("mmlu", "llama2-7b", 500),
    "mbpp": Workload("mbpp", "llama2-7b", 1_000, decode_steps=256),
    "wikitext2": Workload("wikitext2", "llama2-7b", 2_000),
    "wikilingua": Workload("wikilingua", "llama2-7b", 2_000, decode_steps=128),
    "dolly": Workload("dolly", "llama2-7b", 15_000, decode_steps=256),
    "pg19": Workload("pg19", "llama2-7b", 100_000, decode_steps=256),
    "infinitebench": Workload("infinitebench", "llama3-8b", 214_000, decode_steps=256),
    "niah-1m": Workload("niah-1m", "llama3-8b", 1_000_000, decode_steps=128),
    "imagenet-vit": Workload("imagenet-vit", "vit-l/16", 576),
    "imagenet-pvt": Workload("imagenet-pvt", "pvt", 3_000),
}


@dataclass(frozen=True)
class PipelineStats:
    """Functional-pipeline measurements that parameterize analytic models."""

    keep_fraction: float  # PADE's retained fraction at this config
    mean_planes: float  # planes per candidate key (early termination)
    effective_bit_fraction: float  # BS adds / naive adds
    lost_mass: float  # softmax mass discarded (accuracy proxy input)

    @property
    def sparsity(self) -> float:
        return 1.0 - self.keep_fraction


@lru_cache(maxsize=256)
def _measure(
    model_name: str,
    seq_len: int,
    alpha: float,
    bits: int,
    profile_name: str,
    seed: int,
    seq_cap: int,
) -> PipelineStats:
    model = get_model(model_name)
    profile = PROFILE_PRESETS[profile_name]
    rng = np.random.default_rng(seed)
    seq = int(min(seq_len, seq_cap))
    q, k, v = synthesize_qkv(8, seq, model.head_dim, profile, rng)
    cfg = PadeConfig(alpha=alpha, bits=bits)
    res = pade_attention(q, k, v, cfg)
    logits = (res.q_int.data @ res.k_int.data.T).astype(np.float64) * res.logit_scale
    probs = softmax(logits, axis=-1)
    lost = float(np.where(res.retained, 0.0, probs).sum(axis=-1).mean())
    eff_frac = (
        res.stats.effective_bit_ops / res.stats.naive_bit_ops
        if res.stats.naive_bit_ops
        else 0.5
    )
    return PipelineStats(
        keep_fraction=1.0 - res.sparsity,
        mean_planes=res.mean_planes_per_candidate,
        effective_bit_fraction=float(eff_frac),
        lost_mass=lost,
    )


def measure_pipeline_stats(
    model: ModelConfig | str,
    seq_len: int,
    alpha: float = 0.6,
    bits: int = 8,
    profile: Optional[str] = None,
    seed: int = 17,
    seq_cap: int = 1024,
) -> PipelineStats:
    """Measure keep/planes statistics for a (model, seq, α) point (cached).

    Measurement runs at ``min(seq_len, seq_cap)`` keys.  Beyond the cap the
    keep fraction is extrapolated with the locality law the generator obeys:
    the relevant set (sinks + local band + heavy hitters) grows sublinearly
    with context, so the *fraction* kept falls as ``(cap/S)^0.55`` (floored
    at 3e-3) — the mechanism behind the paper's "sparsity increases with
    sequence length" observations (Figs. 2b, 15c, 26b).  Mean planes drift
    toward the MSB-only floor (2 planes) as ``(cap/S)^0.15``, since pruned
    tokens terminate after the sign/MSB rounds.
    """
    cfg = get_model(model) if isinstance(model, str) else model
    prof = profile or ("cv" if cfg.modality == "cv" else "nlp")
    sim_len = int(min(seq_len, seq_cap))
    stats = _measure(cfg.name, sim_len, float(alpha), int(bits), prof, seed, seq_cap)
    if seq_len <= seq_cap:
        return stats
    scale = (seq_cap / seq_len) ** 0.55
    keep = max(3e-3, stats.keep_fraction * scale)
    planes_floor = 2.0
    planes = planes_floor + (stats.mean_planes - planes_floor) * (seq_cap / seq_len) ** 0.15
    return PipelineStats(
        keep_fraction=keep,
        mean_planes=planes,
        effective_bit_fraction=stats.effective_bit_fraction,
        lost_mass=stats.lost_mass,
    )


def build_attention_workload(
    workload: Workload | str,
    alpha: float = 0.6,
    bits: int = 8,
    decode: bool = False,
) -> Tuple[AttentionWorkload, PipelineStats]:
    """Turn a named workload into an :class:`AttentionWorkload` + stats.

    ``decode=True`` costs the generation phase (``decode_steps`` steps over
    the full context); otherwise the prefill phase.
    """
    w = WORKLOADS[workload] if isinstance(workload, str) else workload
    model = get_model(w.model)
    stats = measure_pipeline_stats(model, w.seq_len, alpha=alpha, bits=bits)
    num_queries = w.decode_steps if decode else w.seq_len
    aw = AttentionWorkload(
        num_queries=max(1, num_queries),
        seq_len=w.seq_len,
        head_dim=model.head_dim,
        num_heads=model.num_heads,
        num_kv_heads=model.num_kv_heads,
        num_layers=model.num_layers,
        oracle_keep=stats.keep_fraction / 1.05,  # PADE ≈ oracle × 1.05
        mean_planes=stats.mean_planes,
        decode=decode,
    )
    return aw, stats


def build_engine_request(
    request_id: str,
    num_heads: int,
    context_len: int,
    decode_steps: int,
    head_dim: int,
    profile: str = "nlp",
    seed: int = 0,
    prompt_queries: int = 1,
    arrival_time: float = 0.0,
    tenant: str = "default",
    priority: int = 0,
    deadline_ms: Optional[float] = None,
    max_queue_ms: Optional[float] = None,
):
    """Synthesize a multi-head decode request for the serving engine.

    Each head gets its own structured attention problem over
    ``context_len + decode_steps`` positions: the first ``context_len``
    keys/values form the prompt (with ``prompt_queries`` trailing prompt
    queries attended at prefill) and the rest become the per-step decode
    streams, so the engine replays exactly the workload a model runtime
    would hand over token by token.
    """
    from repro.engine import EngineRequest

    rng = np.random.default_rng(seed)
    prof = PROFILE_PRESETS[profile]
    total = context_len + decode_steps
    num_queries = max(1, prompt_queries) + decode_steps
    qp, k_heads, v_heads, dq, dk, dv = [], [], [], [], [], []
    for _ in range(num_heads):
        # Query rows sit at positions total - num_queries .. total - 1, so the
        # first block is the prompt tail and the rest are the decode steps.
        q, k, v = synthesize_qkv(num_queries, total, head_dim, prof, rng)
        split = num_queries - decode_steps
        qp.append(q[:split])
        k_heads.append(k[:context_len])
        v_heads.append(v[:context_len])
        dq.append(q[split:])
        dk.append(k[context_len:])
        dv.append(v[context_len:])
    return EngineRequest(
        request_id=request_id,
        k=np.stack(k_heads),
        v=np.stack(v_heads),
        q_prompt=np.stack(qp) if prompt_queries else None,
        decode_q=np.stack(dq) if decode_steps else None,
        decode_k=np.stack(dk) if decode_steps else None,
        decode_v=np.stack(dv) if decode_steps else None,
        arrival_time=arrival_time,
        tenant=tenant,
        priority=priority,
        deadline_ms=deadline_ms,
        max_queue_ms=max_queue_ms,
    )


# ---------------------------------------------------------------------------
# Serving-traffic generators (arrival processes over decode-round time)
# ---------------------------------------------------------------------------

def poisson_arrival_times(num_requests: int, rate: float, seed: int = 0) -> np.ndarray:
    """Cumulative arrival times of a Poisson process with ``rate`` per round.

    Inter-arrival gaps are i.i.d. ``Exponential(1/rate)``, so ``rate`` is
    the mean number of request arrivals per decode round — the open-loop
    load knob of every serving benchmark.  Returns ``num_requests``
    non-decreasing floats starting after time 0.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if rate <= 0:
        raise ValueError("rate must be > 0 arrivals per round")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate, size=num_requests)
    return np.cumsum(gaps)


def trace_arrival_times(times) -> np.ndarray:
    """Validate an explicit (replayed) arrival trace.

    ``times`` is any sequence of non-negative, non-decreasing floats —
    e.g. timestamps replayed from a production trace, rebased to round
    units.  Returned as a float64 array.
    """
    arr = np.asarray(list(times), dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("arrival trace must be a non-empty 1-D sequence")
    if (arr < 0).any():
        raise ValueError("arrival times must be >= 0")
    if (np.diff(arr) < 0).any():
        raise ValueError("arrival times must be non-decreasing")
    return arr


def build_serving_workload(
    num_requests: int,
    num_heads: int,
    context_len: int,
    decode_steps: int,
    head_dim: int,
    rate: Optional[float] = None,
    arrival_times=None,
    context_spread: float = 0.25,
    profile: str = "nlp",
    seed: int = 0,
):
    """Synthesize a list of timed :class:`EngineRequest`\\ s for the
    continuous scheduler.

    Arrivals come from ``arrival_times`` (an explicit trace) or a Poisson
    process at ``rate`` requests per decode round (exactly one of the two
    must be given).  Prompt lengths are jittered uniformly within
    ``context_len * (1 ± context_spread)`` so admission policies that look
    at prompt size (``shortest-prompt``) have something to reorder;
    tensors are synthesized per request with decorrelated seeds, so the
    same ``seed`` always reproduces the same workload.
    """
    if (rate is None) == (arrival_times is None):
        raise ValueError("provide exactly one of rate / arrival_times")
    if arrival_times is not None:
        times = trace_arrival_times(arrival_times)
        if times.size != num_requests:
            raise ValueError(f"expected {num_requests} arrival times, got {times.size}")
    else:
        times = poisson_arrival_times(num_requests, rate, seed=seed)
    rng = np.random.default_rng(seed + 1)
    spread = abs(context_spread)
    low = max(1, int(round(context_len * (1.0 - spread))))
    high = max(low, int(round(context_len * (1.0 + spread))))
    return [
        build_engine_request(
            f"req{i}",
            num_heads,
            int(rng.integers(low, high + 1)),
            decode_steps,
            head_dim,
            profile=profile,
            seed=seed + 101 * (i + 1),
            arrival_time=float(times[i]),
        )
        for i in range(num_requests)
    ]


def build_prefix_workload(
    num_requests: int,
    num_heads: int,
    prefix_len: int,
    unique_len: int,
    decode_steps: int,
    head_dim: int,
    rate: Optional[float] = None,
    arrival_times=None,
    profile: str = "nlp",
    seed: int = 0,
):
    """Synthesize requests sharing one system-prompt prefix (hash-hittable).

    Every request's prompt is ``shared prefix (prefix_len tokens) +
    private suffix (unique_len tokens)``.  Prefix sharing keys cover the
    *quantized* prompt under the request's frozen per-head scales, so two
    prompts only share when their calibration agrees; this generator
    guarantees that by clipping each request's private K rows (suffix and
    decode stream) to the prefix's per-head max-abs — the shared system
    prompt dominates calibration, exactly the deployment prefix caching
    targets.  Arrivals come from an explicit trace, a Poisson process at
    ``rate``, or default to everyone at time 0 (the maximal-overlap case
    the pool-savings benchmark measures).
    """
    if prefix_len < 1 or unique_len < 1:
        raise ValueError("prefix_len and unique_len must be >= 1")
    if rate is not None and arrival_times is not None:
        raise ValueError("provide at most one of rate / arrival_times")
    if arrival_times is not None:
        times = trace_arrival_times(arrival_times)
        if times.size != num_requests:
            raise ValueError(f"expected {num_requests} arrival times, got {times.size}")
    elif rate is not None:
        times = poisson_arrival_times(num_requests, rate, seed=seed)
    else:
        times = np.zeros(num_requests)

    from repro.engine import EngineRequest

    prof = PROFILE_PRESETS[profile]
    rng = np.random.default_rng(seed)
    prefix_k = np.stack(
        [synthesize_qkv(1, prefix_len, head_dim, prof, rng)[1] for _ in range(num_heads)]
    )  # (H, prefix, D)
    prefix_v = np.stack(
        [synthesize_qkv(1, prefix_len, head_dim, prof, rng)[2] for _ in range(num_heads)]
    )
    # Per-head calibration cap: the prefix must own each head's max-abs so
    # every sharer freezes identical quantization scales.
    caps = np.abs(prefix_k).reshape(num_heads, -1).max(axis=1)  # (H,)

    requests = []
    num_queries = 1 + decode_steps
    total = prefix_len + unique_len + decode_steps
    for i in range(num_requests):
        rng_i = np.random.default_rng(seed + 313 * (i + 1))
        qp, ks, vs, dq, dk, dv = [], [], [], [], [], []
        for h in range(num_heads):
            q, k, v = synthesize_qkv(num_queries, total, head_dim, prof, rng_i)
            k[:prefix_len] = prefix_k[h]
            v[:prefix_len] = prefix_v[h]
            np.clip(k[prefix_len:], -caps[h], caps[h], out=k[prefix_len:])
            split = prefix_len + unique_len
            qp.append(q[:1])
            ks.append(k[:split])
            vs.append(v[:split])
            dq.append(q[1:])
            dk.append(k[split:])
            dv.append(v[split:])
        requests.append(
            EngineRequest(
                request_id=f"req{i}",
                k=np.stack(ks),
                v=np.stack(vs),
                q_prompt=np.stack(qp),
                decode_q=np.stack(dq) if decode_steps else None,
                decode_k=np.stack(dk) if decode_steps else None,
                decode_v=np.stack(dv) if decode_steps else None,
                arrival_time=float(times[i]),
            )
        )
    return requests


# ---------------------------------------------------------------------------
# Speculative & parallel-sampling workloads (ISSUE 10)
# ---------------------------------------------------------------------------

def build_speculative_request(
    request_id: str,
    num_heads: int,
    context_len: int,
    decode_steps: int,
    head_dim: int,
    seed: int = 0,
    arrival_time: float = 0.0,
    speculative: bool = True,
    draft_tokens: int = 4,
    sink_gain: float = 18.0,
    anti_gain: float = 18.0,
    noise: float = 0.05,
):
    """One draft-friendly request for draft-verify speculative decoding.

    The geometry concentrates softmax mass on the attention sinks: the
    first four keys align strongly with every query (``sink_gain``),
    everything else anti-aligns (``-anti_gain``), so both the cheap
    positional draft (StreamingLLM keeps sinks + recency window) and the
    PADE verifier (the filter prunes the hopeless middle) reduce to the
    same sink-dominated attention — the regime where draft acceptance is
    high and speculation pays.  The gains must overwhelm the *count* of
    anti-aligned keys, not just their individual scores: the per-key
    logit gap is ``(sink_gain + anti_gain) / sqrt(head_dim)``, and the
    collective leaked mass is ``context_len * exp(-gap)``, so at
    ``head_dim=32`` the defaults leave < 1% of the softmax mass off the
    sinks even at ``context_len=256`` (gain 6 leaks ~45% at 32 keys and
    zeroes out acceptance).  ``speculative=False`` returns the same
    tensors as a plain request, the parity arm of ``bench_spec``.
    """
    from repro.engine import EngineRequest

    rng = np.random.default_rng(seed)
    ks, vs, qps, dqs, dks, dvs = [], [], [], [], [], []
    for _ in range(num_heads):
        u = rng.normal(size=head_dim)
        u /= np.linalg.norm(u)

        def rows(n: int, gain: float) -> np.ndarray:
            return gain * u[None, :] + noise * rng.normal(size=(n, head_dim))

        sinks = min(4, context_len)
        ks.append(np.concatenate([rows(sinks, sink_gain),
                                  rows(context_len - sinks, -anti_gain)]))
        vs.append(rng.normal(size=(context_len, head_dim)))
        qps.append(rows(1, 1.0))
        dqs.append(rows(decode_steps, 1.0))
        dks.append(rows(decode_steps, -anti_gain))
        dvs.append(rng.normal(size=(decode_steps, head_dim)))
    return EngineRequest(
        request_id=request_id,
        k=np.stack(ks),
        v=np.stack(vs),
        q_prompt=np.stack(qps),
        decode_q=np.stack(dqs) if decode_steps else None,
        decode_k=np.stack(dks) if decode_steps else None,
        decode_v=np.stack(dvs) if decode_steps else None,
        arrival_time=arrival_time,
        speculative=speculative,
        draft_tokens=draft_tokens,
    )


def build_speculative_workload(
    num_requests: int,
    num_heads: int,
    context_len: int,
    decode_steps: int,
    head_dim: int,
    rate: Optional[float] = None,
    seed: int = 0,
    speculative: bool = True,
    draft_tokens: int = 4,
):
    """Timed draft-friendly requests (everyone at 0 when ``rate`` is None)."""
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    times = (
        poisson_arrival_times(num_requests, rate, seed=seed)
        if rate is not None
        else np.zeros(num_requests)
    )
    return [
        build_speculative_request(
            f"req{i}", num_heads, context_len, decode_steps, head_dim,
            seed=seed + 131 * (i + 1), arrival_time=float(times[i]),
            speculative=speculative, draft_tokens=draft_tokens,
        )
        for i in range(num_requests)
    ]


def build_parallel_workload(
    num_requests: int,
    num_heads: int,
    context_len: int,
    decode_steps: int,
    head_dim: int,
    n_samples: int = 4,
    rate: Optional[float] = None,
    profile: str = "nlp",
    seed: int = 0,
):
    """n-best parallel-sampling requests: one prompt, ``n_samples`` lineages.

    Each request carries ``n_samples - 1`` extra decode streams (drawn
    from the same synthesis as the primary, decorrelated seeds) that the
    scheduler serves as COW-forked lineages off the shared prefill —
    the workload behind the pool-amplification gate.  ``n_samples=1``
    degenerates to :func:`build_serving_workload`-style plain requests.
    """
    from dataclasses import replace

    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    times = (
        poisson_arrival_times(num_requests, rate, seed=seed)
        if rate is not None
        else np.zeros(num_requests)
    )
    requests = []
    for i in range(num_requests):
        base = build_engine_request(
            f"req{i}", num_heads, context_len, decode_steps, head_dim,
            profile=profile, seed=seed + 101 * (i + 1),
            arrival_time=float(times[i]),
        )
        if n_samples == 1 or decode_steps == 0:
            requests.append(base)
            continue
        # Sibling decode streams from the same generator, so every
        # lineage's tensor statistics match the primary's.
        sq, sk, sv = [], [], []
        for s in range(n_samples - 1):
            sib = build_engine_request(
                f"req{i}", num_heads, context_len, decode_steps, head_dim,
                profile=profile, seed=seed + 101 * (i + 1) + 7919 * (s + 1),
            )
            sq.append(sib.decode_q)
            sk.append(sib.decode_k)
            sv.append(sib.decode_v)
        requests.append(
            replace(
                base,
                sample_decode_q=np.stack(sq),
                sample_decode_k=np.stack(sk),
                sample_decode_v=np.stack(sv),
            )
        )
    return requests


# ---------------------------------------------------------------------------
# Scenario workload suite (ISSUE 5): diverse, seed-deterministic traffic
# ---------------------------------------------------------------------------

def bursty_arrival_times(
    num_requests: int,
    rate: float,
    burst_factor: float = 8.0,
    switch_prob: float = 0.15,
    seed: int = 0,
) -> np.ndarray:
    """Markov-modulated Poisson arrivals: calm/burst states, geometric dwell.

    A two-state MMPP — the standard bursty-traffic model: a *calm* state
    arriving at ``rate`` and a *burst* state arriving at
    ``rate * burst_factor``, switching state after each arrival with
    probability ``switch_prob`` (geometric dwell times, mean
    ``1/switch_prob`` arrivals per episode).  The result keeps the calm
    state's spacing most of the time but clumps arrivals into tight
    bursts — the squeeze the admission policy has to absorb.  Returns
    ``num_requests`` non-decreasing floats; deterministic per seed.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if rate <= 0 or burst_factor <= 0:
        raise ValueError("rate and burst_factor must be > 0")
    if not 0.0 <= switch_prob <= 1.0:
        raise ValueError("switch_prob must be in [0, 1]")
    rng = np.random.default_rng(seed)
    times = np.empty(num_requests)
    t = 0.0
    bursting = False
    for i in range(num_requests):
        state_rate = rate * burst_factor if bursting else rate
        t += rng.exponential(scale=1.0 / state_rate)
        times[i] = t
        if rng.random() < switch_prob:
            bursting = not bursting
    return times


def diurnal_arrival_times(
    num_requests: int,
    rate: float,
    period: float = 200.0,
    amplitude: float = 0.9,
    seed: int = 0,
) -> np.ndarray:
    """Sinusoidal-rate (diurnal) Poisson arrivals via Lewis thinning.

    The instantaneous rate is ``rate * (1 + amplitude * sin(2πt/period))``
    — the day/night swing of production traffic compressed onto the
    decode-round clock.  Candidates are generated at the peak rate and
    accepted with probability ``rate(t)/rate_peak`` (Lewis & Shedler
    thinning), which is exact for inhomogeneous Poisson processes.
    Returns ``num_requests`` non-decreasing floats; deterministic per seed.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if rate <= 0 or period <= 0:
        raise ValueError("rate and period must be > 0")
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("amplitude must be in [0, 1)")
    rng = np.random.default_rng(seed)
    peak = rate * (1.0 + amplitude)
    times = np.empty(num_requests)
    t = 0.0
    filled = 0
    while filled < num_requests:
        t += rng.exponential(scale=1.0 / peak)
        current = rate * (1.0 + amplitude * np.sin(2.0 * np.pi * t / period))
        if rng.random() * peak < current:
            times[filled] = t
            filled += 1
    return times


def _pareto_lengths(
    rng: np.random.Generator, n: int, shape: float, minimum: int, maximum: int
) -> np.ndarray:
    """Pareto(Lomax+min) integer lengths clipped to ``[minimum, maximum]``.

    ``shape`` is the Pareto tail index: smaller = heavier tail.  The
    median stays near ``minimum`` while the tail reaches ``maximum`` —
    the long-context stragglers that dominate pool pressure.
    """
    raw = minimum * (1.0 + rng.pareto(shape, size=n))
    return np.clip(np.round(raw), minimum, maximum).astype(int)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic shape + SLO mix in a multi-tenant scenario."""

    name: str
    rate: float  # mean arrivals per round of this tenant's Poisson stream
    share: float = 1.0  # fraction of num_requests routed to this tenant
    priority: int = 0  # service class (higher = more urgent)
    context_len: int = 48
    decode_steps: int = 8
    deadline_ms: Optional[float] = None
    max_queue_ms: Optional[float] = None
    # Fair-share weight.  Requests carry no weights, so the caller must
    # collect these into ContinuousScheduler(tenant_weights={name: weight})
    # — serving_profile does this for its default multi_tenant specs.
    weight: float = 1.0


def default_tenant_specs(
    tenants: int,
    rate: float = 0.4,
    context_len: int = 48,
    decode_steps: int = 8,
) -> Tuple[TenantSpec, ...]:
    """An even split of ``rate`` over ``tenants`` tenants with a class mix.

    Tenant ``t0`` is the premium class (highest priority, a deadline SLO
    sized well above its uncontended service time), the rest step down
    one class each until 0 (further tenants stay best-effort class 0) —
    a miniature of the interactive/batch split a production engine
    serves.  All tenants share the given prompt/output shape.
    """
    if tenants < 1:
        raise ValueError("tenants must be >= 1")
    specs = []
    for i in range(tenants):
        prio = max(0, tenants - 1 - i)
        specs.append(
            TenantSpec(
                name=f"t{i}",
                rate=rate / tenants,
                share=1.0 / tenants,
                priority=prio,
                context_len=context_len,
                decode_steps=decode_steps,
                deadline_ms=200.0 if prio == tenants - 1 and tenants > 1 else None,
            )
        )
    return tuple(specs)


#: Scenario kinds build_scenario_workload understands.
SCENARIO_KINDS = (
    "bursty", "diurnal", "heavy_tail", "multi_tenant", "agentic", "rag_burst",
)


def build_cluster_workload(
    groups: int,
    per_group: int,
    num_heads: int,
    prefix_len: int,
    unique_len: int,
    decode_steps: int,
    head_dim: int,
    rate: float = 0.5,
    profile: str = "nlp",
    seed: int = 0,
):
    """Multiple prefix families arriving interleaved: the sharding workload.

    ``groups`` independent system prompts, ``per_group`` requests each
    (built by :func:`build_prefix_workload` with per-group decorrelated
    seeds, so requests within a group share their prefix blocks and
    requests across groups share nothing).  One Poisson arrival process
    at ``rate`` covers the merged stream, with arrival slots assigned
    round-robin across groups — every prefix family stays live for the
    whole run, which is exactly the traffic shape where affinity routing
    pays (each family keeps hitting its replica's warm blocks) and
    random routing destroys the hit rate (a family's blocks end up
    duplicated on every replica).  Request ids are ``g{g}-req{j}`` and
    the tenant is the group name, so per-group token accounting falls
    out of the standard report.
    """
    from dataclasses import replace

    if groups < 1 or per_group < 1:
        raise ValueError("groups and per_group must be >= 1")
    times = poisson_arrival_times(groups * per_group, rate, seed=seed)
    family = [
        build_prefix_workload(
            per_group, num_heads, prefix_len, unique_len, decode_steps, head_dim,
            profile=profile, seed=seed + 7919 * (g + 1),
        )
        for g in range(groups)
    ]
    merged = []
    for i in range(groups * per_group):
        g, j = i % groups, i // groups
        merged.append(
            replace(
                family[g][j],
                request_id=f"g{g}-req{j}",
                tenant=f"g{g}",
                arrival_time=float(times[i]),
            )
        )
    return merged


def _build_agentic_workload(
    num_requests: int,
    num_heads: int,
    head_dim: int,
    context_len: int,
    decode_steps: int,
    rate: float,
    profile: str,
    seed: int,
    turns: int = 4,
    think_rounds: float = 3.0,
):
    """Multi-turn conversations whose prompts grow turn by turn.

    One K/V stream per conversation; turn ``t``'s prompt is its first
    ``context_len + t * turn_len`` rows, so consecutive turns replay the
    previous prompt verbatim.  Rows past the first turn (and the decode
    keys) are clipped to the first turn's per-head max-abs, so every
    turn freezes identical quantization scales and the grown prompts
    share quantized prefix blocks — the prefix-cache + tiering traffic
    shape.  Turns within a conversation are spaced ``think_rounds``
    apart from a Poisson conversation start — short enough that turn
    ``t+1`` usually arrives while turn ``t`` still decodes, since the
    pool's prefix index drops keys when the donor's blocks free.
    """
    from repro.engine import EngineRequest

    convs = -(-num_requests // turns)
    starts = poisson_arrival_times(convs, max(rate / turns, 1e-6), seed=seed)
    prof = PROFILE_PRESETS[profile]
    turn_len = max(8, context_len // 2)
    requests = []
    for c in range(convs):
        rng_c = np.random.default_rng(seed + 4243 * (c + 1))
        full_len = context_len + (turns - 1) * turn_len
        ks, vs = [], []
        for _ in range(num_heads):
            _, k, v = synthesize_qkv(1, full_len, head_dim, prof, rng_c)
            ks.append(k)
            vs.append(v)
        ks, vs = np.stack(ks), np.stack(vs)
        caps = np.abs(ks[:, :context_len]).reshape(num_heads, -1).max(axis=1)
        for h in range(num_heads):
            np.clip(ks[h, context_len:], -caps[h], caps[h], out=ks[h, context_len:])
        for t in range(turns):
            if len(requests) == num_requests:
                break
            plen = context_len + t * turn_len
            rng_t = np.random.default_rng(seed + 4243 * (c + 1) + 97 * (t + 1))
            qp, dq, dk, dv = [], [], [], []
            for h in range(num_heads):
                q, kd, vd = synthesize_qkv(
                    1 + decode_steps, plen + decode_steps, head_dim, prof, rng_t
                )
                np.clip(kd, -caps[h], caps[h], out=kd)
                qp.append(q[:1])
                dq.append(q[1:])
                dk.append(kd[plen:])
                dv.append(vd[plen:])
            requests.append(
                EngineRequest(
                    request_id=f"c{c}-t{t}",
                    k=ks[:, :plen].copy(),
                    v=vs[:, :plen].copy(),
                    q_prompt=np.stack(qp),
                    decode_q=np.stack(dq) if decode_steps else None,
                    decode_k=np.stack(dk) if decode_steps else None,
                    decode_v=np.stack(dv) if decode_steps else None,
                    arrival_time=float(starts[c] + t * think_rounds),
                    tenant=f"c{c}",
                )
            )
    requests.sort(key=lambda r: (r.arrival_time, r.request_id))
    return requests


def build_scenario_workload(
    kind: str,
    num_requests: int,
    num_heads: int,
    head_dim: int,
    context_len: int = 48,
    decode_steps: int = 8,
    rate: float = 0.4,
    tenants: int = 3,
    tenant_specs: Optional[Sequence[TenantSpec]] = None,
    burst_factor: float = 8.0,
    switch_prob: float = 0.15,
    period: float = 200.0,
    amplitude: float = 0.9,
    tail_shape: float = 1.5,
    max_context_len: Optional[int] = None,
    max_decode_steps: Optional[int] = None,
    profile: str = "nlp",
    seed: int = 0,
):
    """Synthesize one of the named serving scenarios (seed-deterministic).

    The four kinds cover the traffic axes a multi-tenant scheduler is
    judged on:

    * ``bursty`` — Markov-modulated Poisson arrivals
      (:func:`bursty_arrival_times`): tight arrival clumps at
      ``burst_factor`` times the calm rate stress admission and
      preemption.
    * ``diurnal`` — sinusoidal-rate arrivals
      (:func:`diurnal_arrival_times`): slow load swings of ``amplitude``
      around ``rate`` over ``period`` rounds.
    * ``heavy_tail`` — Poisson arrivals with Pareto(``tail_shape``)
      prompt and output lengths between the base values and
      ``max_context_len`` / ``max_decode_steps`` (default 8x base): a few
      stragglers own most of the pool.
    * ``multi_tenant`` — per-tenant Poisson streams merged by arrival
      time, each tenant with its own rate, share, priority class,
      deadline/queueing SLO and prompt shape (``tenant_specs``, default
      :func:`default_tenant_specs` over ``tenants`` tenants); request ids
      carry the tenant name (``t0-req3``).
    * ``agentic`` — multi-turn conversations: each conversation's prompt
      grows turn by turn (turn ``t`` replays turns ``0..t-1`` verbatim
      plus a new suffix, calibration pinned by the first turn so the
      grown prompts share quantized prefix blocks), with think-time gaps
      between turns — the traffic that exercises prefix sharing and
      tiering together.  Request ids are ``c{c}-t{t}``, tenant is the
      conversation.
    * ``rag_burst`` — RAG-style long-prompt bursts: Markov-modulated
      arrivals (as ``bursty``) but with 4x prompts and halved outputs —
      retrieval dumps a long document context, the answer is short, and
      whole bursts of them land at once.

    Every kind is a pure function of its arguments: the same ``seed``
    reproduces the same arrival times, lengths, tenants and tensors —
    the substrate of the end-to-end determinism golden test.
    """
    if kind not in SCENARIO_KINDS:
        raise ValueError(f"unknown scenario {kind!r}; choose from {SCENARIO_KINDS}")
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")

    if kind == "multi_tenant":
        specs = tuple(
            tenant_specs
            if tenant_specs is not None
            else default_tenant_specs(
                tenants, rate, context_len=context_len, decode_steps=decode_steps
            )
        )
        if not specs:
            raise ValueError("multi_tenant needs at least one TenantSpec")
        total_share = sum(max(0.0, s.share) for s in specs)
        if total_share <= 0:
            raise ValueError("tenant shares must sum to > 0")
        # Deterministic request split: largest-remainder over shares.
        counts = [int(num_requests * s.share / total_share) for s in specs]
        remainders = [
            (num_requests * s.share / total_share) - c for s, c in zip(specs, counts)
        ]
        for i in sorted(
            range(len(specs)), key=lambda j: (-remainders[j], j)
        )[: num_requests - sum(counts)]:
            counts[i] += 1
        requests = []
        for t_idx, (spec, count) in enumerate(zip(specs, counts)):
            if count == 0:
                continue
            times = poisson_arrival_times(count, spec.rate, seed=seed + 977 * (t_idx + 1))
            for j in range(count):
                requests.append(
                    build_engine_request(
                        f"{spec.name}-req{j}",
                        num_heads,
                        spec.context_len,
                        spec.decode_steps,
                        head_dim,
                        profile=profile,
                        seed=seed + 101 * (len(requests) + 1) + 9173 * (t_idx + 1),
                        arrival_time=float(times[j]),
                        tenant=spec.name,
                        priority=spec.priority,
                        deadline_ms=spec.deadline_ms,
                        max_queue_ms=spec.max_queue_ms,
                    )
                )
        requests.sort(key=lambda r: (r.arrival_time, r.request_id))
        return requests

    if kind == "agentic":
        return _build_agentic_workload(
            num_requests, num_heads, head_dim, context_len, decode_steps,
            rate, profile, seed,
        )

    if kind in ("bursty", "rag_burst"):
        times = bursty_arrival_times(
            num_requests, rate, burst_factor=burst_factor,
            switch_prob=switch_prob, seed=seed,
        )
    elif kind == "diurnal":
        times = diurnal_arrival_times(
            num_requests, rate, period=period, amplitude=amplitude, seed=seed
        )
    else:  # heavy_tail
        times = poisson_arrival_times(num_requests, rate, seed=seed)

    if kind == "rag_burst":
        # Long retrieved contexts, short grounded answers.
        context_len = 4 * context_len
        decode_steps = max(1, decode_steps // 2)

    rng = np.random.default_rng(seed + 1)
    if kind == "heavy_tail":
        ctx_cap = max_context_len if max_context_len is not None else 8 * context_len
        out_cap = max_decode_steps if max_decode_steps is not None else 8 * decode_steps
        contexts = _pareto_lengths(rng, num_requests, tail_shape, context_len, ctx_cap)
        outputs = _pareto_lengths(rng, num_requests, tail_shape, decode_steps, out_cap)
    else:
        # Mild uniform jitter, same spread as build_serving_workload.
        low = max(1, int(round(context_len * 0.75)))
        high = max(low, int(round(context_len * 1.25)))
        contexts = rng.integers(low, high + 1, size=num_requests)
        outputs = np.full(num_requests, decode_steps, dtype=int)
    return [
        build_engine_request(
            f"req{i}",
            num_heads,
            int(contexts[i]),
            int(outputs[i]),
            head_dim,
            profile=profile,
            seed=seed + 101 * (i + 1),
            arrival_time=float(times[i]),
        )
        for i in range(num_requests)
    ]
