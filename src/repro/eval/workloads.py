"""Named benchmark workloads + measured pipeline statistics.

The analytic accelerator models are parameterized by two quantities PADE's
functional pipeline *measures* on a workload: the oracle-ish keep fraction
and the mean bit planes consumed per candidate key.  This module runs the
pipeline once per (model, sequence-length) pair (capped for tractability)
and caches the statistics, so every figure draws from the same numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Tuple

import numpy as np

from repro.accelerators.base import AttentionWorkload
from repro.attention.dense import softmax
from repro.core.config import PadeConfig
from repro.core.pade_attention import pade_attention
from repro.model.configs import ModelConfig, get_model
from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv

__all__ = [
    "Workload",
    "WORKLOADS",
    "PipelineStats",
    "measure_pipeline_stats",
    "build_attention_workload",
    "build_engine_request",
    "poisson_arrival_times",
    "trace_arrival_times",
    "build_serving_workload",
    "build_prefix_workload",
]


@dataclass(frozen=True)
class Workload:
    """A named benchmark: dataset, default model, and sequence length."""

    name: str
    model: str
    seq_len: int
    decode_steps: int = 0  # generated tokens (0 = prefill-dominated task)


#: The evaluation workloads referenced across §VI (sequence lengths per the
#: paper's dataset descriptions; long-context entries for Figs. 15c/24/26).
WORKLOADS: Dict[str, Workload] = {
    "winogrande": Workload("winogrande", "llama2-7b", 250),
    "mmlu": Workload("mmlu", "llama2-7b", 500),
    "mbpp": Workload("mbpp", "llama2-7b", 1_000, decode_steps=256),
    "wikitext2": Workload("wikitext2", "llama2-7b", 2_000),
    "wikilingua": Workload("wikilingua", "llama2-7b", 2_000, decode_steps=128),
    "dolly": Workload("dolly", "llama2-7b", 15_000, decode_steps=256),
    "pg19": Workload("pg19", "llama2-7b", 100_000, decode_steps=256),
    "infinitebench": Workload("infinitebench", "llama3-8b", 214_000, decode_steps=256),
    "niah-1m": Workload("niah-1m", "llama3-8b", 1_000_000, decode_steps=128),
    "imagenet-vit": Workload("imagenet-vit", "vit-l/16", 576),
    "imagenet-pvt": Workload("imagenet-pvt", "pvt", 3_000),
}


@dataclass(frozen=True)
class PipelineStats:
    """Functional-pipeline measurements that parameterize analytic models."""

    keep_fraction: float  # PADE's retained fraction at this config
    mean_planes: float  # planes per candidate key (early termination)
    effective_bit_fraction: float  # BS adds / naive adds
    lost_mass: float  # softmax mass discarded (accuracy proxy input)

    @property
    def sparsity(self) -> float:
        return 1.0 - self.keep_fraction


@lru_cache(maxsize=256)
def _measure(
    model_name: str,
    seq_len: int,
    alpha: float,
    bits: int,
    profile_name: str,
    seed: int,
    seq_cap: int,
) -> PipelineStats:
    model = get_model(model_name)
    profile = PROFILE_PRESETS[profile_name]
    rng = np.random.default_rng(seed)
    seq = int(min(seq_len, seq_cap))
    q, k, v = synthesize_qkv(8, seq, model.head_dim, profile, rng)
    cfg = PadeConfig(alpha=alpha, bits=bits)
    res = pade_attention(q, k, v, cfg)
    logits = (res.q_int.data @ res.k_int.data.T).astype(np.float64) * res.logit_scale
    probs = softmax(logits, axis=-1)
    lost = float(np.where(res.retained, 0.0, probs).sum(axis=-1).mean())
    eff_frac = (
        res.stats.effective_bit_ops / res.stats.naive_bit_ops
        if res.stats.naive_bit_ops
        else 0.5
    )
    return PipelineStats(
        keep_fraction=1.0 - res.sparsity,
        mean_planes=res.mean_planes_per_candidate,
        effective_bit_fraction=float(eff_frac),
        lost_mass=lost,
    )


def measure_pipeline_stats(
    model: ModelConfig | str,
    seq_len: int,
    alpha: float = 0.6,
    bits: int = 8,
    profile: Optional[str] = None,
    seed: int = 17,
    seq_cap: int = 1024,
) -> PipelineStats:
    """Measure keep/planes statistics for a (model, seq, α) point (cached).

    Measurement runs at ``min(seq_len, seq_cap)`` keys.  Beyond the cap the
    keep fraction is extrapolated with the locality law the generator obeys:
    the relevant set (sinks + local band + heavy hitters) grows sublinearly
    with context, so the *fraction* kept falls as ``(cap/S)^0.55`` (floored
    at 3e-3) — the mechanism behind the paper's "sparsity increases with
    sequence length" observations (Figs. 2b, 15c, 26b).  Mean planes drift
    toward the MSB-only floor (2 planes) as ``(cap/S)^0.15``, since pruned
    tokens terminate after the sign/MSB rounds.
    """
    cfg = get_model(model) if isinstance(model, str) else model
    prof = profile or ("cv" if cfg.modality == "cv" else "nlp")
    sim_len = int(min(seq_len, seq_cap))
    stats = _measure(cfg.name, sim_len, float(alpha), int(bits), prof, seed, seq_cap)
    if seq_len <= seq_cap:
        return stats
    scale = (seq_cap / seq_len) ** 0.55
    keep = max(3e-3, stats.keep_fraction * scale)
    planes_floor = 2.0
    planes = planes_floor + (stats.mean_planes - planes_floor) * (seq_cap / seq_len) ** 0.15
    return PipelineStats(
        keep_fraction=keep,
        mean_planes=planes,
        effective_bit_fraction=stats.effective_bit_fraction,
        lost_mass=stats.lost_mass,
    )


def build_attention_workload(
    workload: Workload | str,
    alpha: float = 0.6,
    bits: int = 8,
    decode: bool = False,
) -> Tuple[AttentionWorkload, PipelineStats]:
    """Turn a named workload into an :class:`AttentionWorkload` + stats.

    ``decode=True`` costs the generation phase (``decode_steps`` steps over
    the full context); otherwise the prefill phase.
    """
    w = WORKLOADS[workload] if isinstance(workload, str) else workload
    model = get_model(w.model)
    stats = measure_pipeline_stats(model, w.seq_len, alpha=alpha, bits=bits)
    num_queries = w.decode_steps if decode else w.seq_len
    aw = AttentionWorkload(
        num_queries=max(1, num_queries),
        seq_len=w.seq_len,
        head_dim=model.head_dim,
        num_heads=model.num_heads,
        num_kv_heads=model.num_kv_heads,
        num_layers=model.num_layers,
        oracle_keep=stats.keep_fraction / 1.05,  # PADE ≈ oracle × 1.05
        mean_planes=stats.mean_planes,
        decode=decode,
    )
    return aw, stats


def build_engine_request(
    request_id: str,
    num_heads: int,
    context_len: int,
    decode_steps: int,
    head_dim: int,
    profile: str = "nlp",
    seed: int = 0,
    prompt_queries: int = 1,
    arrival_time: float = 0.0,
):
    """Synthesize a multi-head decode request for the serving engine.

    Each head gets its own structured attention problem over
    ``context_len + decode_steps`` positions: the first ``context_len``
    keys/values form the prompt (with ``prompt_queries`` trailing prompt
    queries attended at prefill) and the rest become the per-step decode
    streams, so the engine replays exactly the workload a model runtime
    would hand over token by token.
    """
    from repro.engine import EngineRequest

    rng = np.random.default_rng(seed)
    prof = PROFILE_PRESETS[profile]
    total = context_len + decode_steps
    num_queries = max(1, prompt_queries) + decode_steps
    qp, k_heads, v_heads, dq, dk, dv = [], [], [], [], [], []
    for _ in range(num_heads):
        # Query rows sit at positions total - num_queries .. total - 1, so the
        # first block is the prompt tail and the rest are the decode steps.
        q, k, v = synthesize_qkv(num_queries, total, head_dim, prof, rng)
        split = num_queries - decode_steps
        qp.append(q[:split])
        k_heads.append(k[:context_len])
        v_heads.append(v[:context_len])
        dq.append(q[split:])
        dk.append(k[context_len:])
        dv.append(v[context_len:])
    return EngineRequest(
        request_id=request_id,
        k=np.stack(k_heads),
        v=np.stack(v_heads),
        q_prompt=np.stack(qp) if prompt_queries else None,
        decode_q=np.stack(dq) if decode_steps else None,
        decode_k=np.stack(dk) if decode_steps else None,
        decode_v=np.stack(dv) if decode_steps else None,
        arrival_time=arrival_time,
    )


# ---------------------------------------------------------------------------
# Serving-traffic generators (arrival processes over decode-round time)
# ---------------------------------------------------------------------------

def poisson_arrival_times(num_requests: int, rate: float, seed: int = 0) -> np.ndarray:
    """Cumulative arrival times of a Poisson process with ``rate`` per round.

    Inter-arrival gaps are i.i.d. ``Exponential(1/rate)``, so ``rate`` is
    the mean number of request arrivals per decode round — the open-loop
    load knob of every serving benchmark.  Returns ``num_requests``
    non-decreasing floats starting after time 0.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if rate <= 0:
        raise ValueError("rate must be > 0 arrivals per round")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate, size=num_requests)
    return np.cumsum(gaps)


def trace_arrival_times(times) -> np.ndarray:
    """Validate an explicit (replayed) arrival trace.

    ``times`` is any sequence of non-negative, non-decreasing floats —
    e.g. timestamps replayed from a production trace, rebased to round
    units.  Returned as a float64 array.
    """
    arr = np.asarray(list(times), dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("arrival trace must be a non-empty 1-D sequence")
    if (arr < 0).any():
        raise ValueError("arrival times must be >= 0")
    if (np.diff(arr) < 0).any():
        raise ValueError("arrival times must be non-decreasing")
    return arr


def build_serving_workload(
    num_requests: int,
    num_heads: int,
    context_len: int,
    decode_steps: int,
    head_dim: int,
    rate: Optional[float] = None,
    arrival_times=None,
    context_spread: float = 0.25,
    profile: str = "nlp",
    seed: int = 0,
):
    """Synthesize a list of timed :class:`EngineRequest`\\ s for the
    continuous scheduler.

    Arrivals come from ``arrival_times`` (an explicit trace) or a Poisson
    process at ``rate`` requests per decode round (exactly one of the two
    must be given).  Prompt lengths are jittered uniformly within
    ``context_len * (1 ± context_spread)`` so admission policies that look
    at prompt size (``shortest-prompt``) have something to reorder;
    tensors are synthesized per request with decorrelated seeds, so the
    same ``seed`` always reproduces the same workload.
    """
    if (rate is None) == (arrival_times is None):
        raise ValueError("provide exactly one of rate / arrival_times")
    if arrival_times is not None:
        times = trace_arrival_times(arrival_times)
        if times.size != num_requests:
            raise ValueError(f"expected {num_requests} arrival times, got {times.size}")
    else:
        times = poisson_arrival_times(num_requests, rate, seed=seed)
    rng = np.random.default_rng(seed + 1)
    spread = abs(context_spread)
    low = max(1, int(round(context_len * (1.0 - spread))))
    high = max(low, int(round(context_len * (1.0 + spread))))
    return [
        build_engine_request(
            f"req{i}",
            num_heads,
            int(rng.integers(low, high + 1)),
            decode_steps,
            head_dim,
            profile=profile,
            seed=seed + 101 * (i + 1),
            arrival_time=float(times[i]),
        )
        for i in range(num_requests)
    ]


def build_prefix_workload(
    num_requests: int,
    num_heads: int,
    prefix_len: int,
    unique_len: int,
    decode_steps: int,
    head_dim: int,
    rate: Optional[float] = None,
    arrival_times=None,
    profile: str = "nlp",
    seed: int = 0,
):
    """Synthesize requests sharing one system-prompt prefix (hash-hittable).

    Every request's prompt is ``shared prefix (prefix_len tokens) +
    private suffix (unique_len tokens)``.  Prefix sharing keys cover the
    *quantized* prompt under the request's frozen per-head scales, so two
    prompts only share when their calibration agrees; this generator
    guarantees that by clipping each request's private K rows (suffix and
    decode stream) to the prefix's per-head max-abs — the shared system
    prompt dominates calibration, exactly the deployment prefix caching
    targets.  Arrivals come from an explicit trace, a Poisson process at
    ``rate``, or default to everyone at time 0 (the maximal-overlap case
    the pool-savings benchmark measures).
    """
    if prefix_len < 1 or unique_len < 1:
        raise ValueError("prefix_len and unique_len must be >= 1")
    if rate is not None and arrival_times is not None:
        raise ValueError("provide at most one of rate / arrival_times")
    if arrival_times is not None:
        times = trace_arrival_times(arrival_times)
        if times.size != num_requests:
            raise ValueError(f"expected {num_requests} arrival times, got {times.size}")
    elif rate is not None:
        times = poisson_arrival_times(num_requests, rate, seed=seed)
    else:
        times = np.zeros(num_requests)

    from repro.engine import EngineRequest

    prof = PROFILE_PRESETS[profile]
    rng = np.random.default_rng(seed)
    prefix_k = np.stack(
        [synthesize_qkv(1, prefix_len, head_dim, prof, rng)[1] for _ in range(num_heads)]
    )  # (H, prefix, D)
    prefix_v = np.stack(
        [synthesize_qkv(1, prefix_len, head_dim, prof, rng)[2] for _ in range(num_heads)]
    )
    # Per-head calibration cap: the prefix must own each head's max-abs so
    # every sharer freezes identical quantization scales.
    caps = np.abs(prefix_k).reshape(num_heads, -1).max(axis=1)  # (H,)

    requests = []
    num_queries = 1 + decode_steps
    total = prefix_len + unique_len + decode_steps
    for i in range(num_requests):
        rng_i = np.random.default_rng(seed + 313 * (i + 1))
        qp, ks, vs, dq, dk, dv = [], [], [], [], [], []
        for h in range(num_heads):
            q, k, v = synthesize_qkv(num_queries, total, head_dim, prof, rng_i)
            k[:prefix_len] = prefix_k[h]
            v[:prefix_len] = prefix_v[h]
            np.clip(k[prefix_len:], -caps[h], caps[h], out=k[prefix_len:])
            split = prefix_len + unique_len
            qp.append(q[:1])
            ks.append(k[:split])
            vs.append(v[:split])
            dq.append(q[1:])
            dk.append(k[split:])
            dv.append(v[split:])
        requests.append(
            EngineRequest(
                request_id=f"req{i}",
                k=np.stack(ks),
                v=np.stack(vs),
                q_prompt=np.stack(qp),
                decode_q=np.stack(dq) if decode_steps else None,
                decode_k=np.stack(dk) if decode_steps else None,
                decode_v=np.stack(dv) if decode_steps else None,
                arrival_time=float(times[i]),
            )
        )
    return requests
