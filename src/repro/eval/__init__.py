"""Experiment harness regenerating every table and figure of the paper.

* :mod:`repro.eval.workloads` — named benchmark workloads + measured
  pipeline statistics (keep fractions, mean planes) that parameterize the
  analytic models.
* :mod:`repro.eval.metrics` — reductions, speedups, geometric means.
* :mod:`repro.eval.serving_metrics` — serving currency: TTFT / TPOT /
  queueing-delay percentiles, throughput, pool occupancy.
* :mod:`repro.eval.harness` — one function per experiment (``fig2_*`` ...
  ``fig26_*``, ``table1`` ... ``table3``), each returning plain data.
* :mod:`repro.eval.reporting` — ASCII renderers used by the benches.
"""

from repro.eval.workloads import (
    WORKLOADS,
    Workload,
    PipelineStats,
    measure_pipeline_stats,
    build_attention_workload,
    build_serving_workload,
    poisson_arrival_times,
    trace_arrival_times,
)
from repro.eval.metrics import geomean, reduction, speedup
from repro.eval.serving_metrics import (
    RequestTiming,
    latency_percentiles,
    summarize_serving,
    timing_from_result,
)
from repro.eval import harness
from repro.eval.reporting import print_table, print_series

__all__ = [
    "WORKLOADS",
    "Workload",
    "PipelineStats",
    "measure_pipeline_stats",
    "build_attention_workload",
    "build_serving_workload",
    "poisson_arrival_times",
    "trace_arrival_times",
    "RequestTiming",
    "latency_percentiles",
    "summarize_serving",
    "timing_from_result",
    "geomean",
    "reduction",
    "speedup",
    "harness",
    "print_table",
    "print_series",
]
