"""Measurement statistics following the paper's protocol (§VI-A).

The paper's GPU measurements run each experiment 2000 times and *discard
the top and bottom 15% before averaging* — a 15% trimmed mean.  This module
provides that estimator plus a bootstrap confidence interval, and a
``repeat_measure`` harness for anything in the reproduction that has run-to-
run variance (randomized workload draws, for instance), so reported numbers
can carry uncertainty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np
from scipy import stats

__all__ = ["Measurement", "paper_trimmed_mean", "bootstrap_ci", "repeat_measure"]

#: the paper discards the top and bottom 15% of runs
PAPER_TRIM_FRACTION = 0.15


@dataclass(frozen=True)
class Measurement:
    """A repeated measurement summarized the paper's way."""

    samples: Tuple[float, ...]
    trimmed_mean: float
    ci_low: float
    ci_high: float

    @property
    def relative_halfwidth(self) -> float:
        if self.trimmed_mean == 0:
            return 0.0
        return (self.ci_high - self.ci_low) / 2 / abs(self.trimmed_mean)


def paper_trimmed_mean(samples: Sequence[float], trim: float = PAPER_TRIM_FRACTION) -> float:
    """15%-trimmed mean (the paper's averaging rule)."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no samples")
    return float(stats.trim_mean(arr, trim))


def bootstrap_ci(
    samples: Sequence[float],
    confidence: float = 0.95,
    n_boot: int = 2000,
    trim: float = PAPER_TRIM_FRACTION,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap CI of the trimmed mean."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size < 2:
        return float(arr[0]), float(arr[0])
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_boot, arr.size))
    boots = stats.trim_mean(arr[idx], trim, axis=1)
    lo = float(np.percentile(boots, (1 - confidence) / 2 * 100))
    hi = float(np.percentile(boots, (1 + confidence) / 2 * 100))
    return lo, hi


def repeat_measure(
    fn: Callable[[np.random.Generator], float],
    repeats: int = 20,
    seed: int = 0,
) -> Measurement:
    """Run ``fn`` with independent rngs and summarize per the paper's rule."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    root = np.random.default_rng(seed)
    samples = tuple(float(fn(np.random.default_rng(root.integers(0, 2**63)))) for _ in range(repeats))
    tm = paper_trimmed_mean(samples) if repeats >= 3 else float(np.mean(samples))
    lo, hi = bootstrap_ci(samples) if repeats >= 3 else (min(samples), max(samples))
    return Measurement(samples=samples, trimmed_mean=tm, ci_low=lo, ci_high=hi)
