"""Small metric helpers shared by the harness and the benches."""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["geomean", "reduction", "speedup", "normalize"]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's cross-benchmark aggregate)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 0.0
    if np.any(arr <= 0):
        raise ValueError("geomean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def reduction(baseline: float, value: float) -> float:
    """Fractional reduction of ``value`` relative to ``baseline``."""
    if baseline <= 0:
        return 0.0
    return 1.0 - value / baseline


def speedup(baseline: float, value: float) -> float:
    """``baseline / value`` with a zero guard."""
    return baseline / value if value > 0 else float("inf")


def normalize(values: Iterable[float], reference: float) -> list:
    """Divide every value by a reference (figure-normalization helper)."""
    if reference == 0:
        raise ValueError("reference must be non-zero")
    return [v / reference for v in values]
