"""One function per paper experiment (tables I-III, figures 2-26).

Each ``figN_*`` / ``tableN`` function computes the data behind the paper's
corresponding exhibit and returns it as plain dicts/lists; the files in
``benchmarks/`` time the underlying kernels and print these results in the
paper's row/series layout.  DESIGN.md §4 maps every experiment id to its
implementing modules.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.accelerators import (
    ALL_MODELS,
    AttentionWorkload,
    DenseAccelerator,
    DotaModel,
    EnergonModel,
    GPUModel,
    PadeAnalyticModel,
    SangerModel,
    SofaModel,
    SpAttenModel,
)
from repro.accelerators.bitwave import simulate_bitwave_lanes
from repro.attention.baselines import get_baseline
from repro.attention.dense import attention_scores, softmax
from repro.attention.masks import causal_mask
from repro.core.backend import get_backend, resolve_backend_name
from repro.core.bui_gf import guard_in_int_units
from repro.core.config import PadeConfig
from repro.core.ista import ista_attention_row
from repro.core.pade_attention import pade_attention
from repro.model.configs import get_model
from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv
from repro.model.tasks import SENSITIVITY, get_task
from repro.quant.bitplane import decompose_bitplanes
from repro.quant.integer import quantize_symmetric
from repro.sim.accelerator import AcceleratorConfig, PadeAccelerator
from repro.sim.area import area_breakdown, overhead_summary, power_breakdown
from repro.sim.gsat import gsat_area_power
from repro.sim.qkpu import simulate_qkpu
from repro.sim.tech import DEFAULT_TECH
from repro.eval.metrics import geomean
from repro.eval.workloads import WORKLOADS, build_attention_workload, measure_pipeline_stats

__all__ = [
    "table1_features",
    "table2_accuracy",
    "table3_config",
    "fig2_power_breakdown",
    "fig2_ratio_vs_seqlen",
    "fig4_bsf_reduction",
    "fig5_untiled_memory",
    "fig10_max_update_overhead",
    "fig14_comp_mem",
    "fig15_accuracy_vs_sparsity",
    "fig15_speedup_energy",
    "fig16_ablation",
    "fig16_alpha_tradeoff",
    "fig17_gsat_dse",
    "fig17_scoreboard_dse",
    "fig18_bit_overhead",
    "fig18_gpu_comparison",
    "fig19_gain_breakdown",
    "fig20_area_power",
    "fig21_sota_comparison",
    "fig23_workload_balance",
    "fig23_bandwidth",
    "fig24_system_integration",
    "fig25_mx_example",
    "fig26_quantization",
    "fig26_decoding",
    "engine_decode_profile",
    "serving_profile",
]


def bsf_filter(q_int, key_planes, guard, allowed=None, protect=None):
    """Run the fused filter through the configured kernel backend.

    The harness never picks a concrete kernel: the CLI ``--backend`` flag,
    ``$REPRO_BACKEND``, or the registry default decide (results are
    backend-invariant, only wall-clock changes).
    """
    return get_backend().filter(q_int, key_planes, guard, allowed=allowed, protect=protect)


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def table1_features() -> Dict[str, Dict[str, str]]:
    """Table I: feature matrix of the compared accelerators."""
    order = ["sanger", "spatten", "energon", "dota", "sofa", "dense", "pade"]
    return {name: ALL_MODELS[name].FEATURES for name in order}


def table2_accuracy(tasks: Optional[Sequence[Tuple[str, str]]] = None) -> List[dict]:
    """Table II: proxy accuracy per benchmark × quantization config."""
    from repro.model.tasks import TASKS, evaluate_task

    selected = TASKS if tasks is None else [get_task(n, m) for n, m in tasks]
    rows = []
    for task in selected:
        score = evaluate_task(task)
        rows.append(
            {
                "model": task.model,
                "task": task.name,
                "metric": task.metric,
                **score.as_row(),
            }
        )
    return rows


def table3_config() -> Dict[str, str]:
    """Table III: PADE hardware configuration."""
    t = DEFAULT_TECH
    return {
        "On-chip Buffer": f"{t.sram_kv_bytes // 1024}KB KV + {t.sram_q_bytes // 1024}KB Q SRAM",
        "QK-PU": f"{t.num_lanes} bit-wise PE lanes ({t.pe_rows} rows x {t.lanes_per_row})",
        "Bit-wise PE lane": f"{t.lane_dims}-dim x {t.operand_bits}-bit x 1-bit GSAT; "
        f"{t.scoreboard_entries}-entry scoreboard",
        "V-PU": f"{t.vpu_rows}x{t.vpu_cols} INT8 systolic array + FP16 APM + RARS",
        "Off-chip DRAM": f"HBM2, {t.hbm_channels} pseudo channels, "
        f"{t.hbm_total_gbps:.0f} GB/s, tRC={t.hbm_trc_ns:.0f}ns",
        "Frequency": f"{t.frequency_hz / 1e6:.0f} MHz",
    }


# ---------------------------------------------------------------------------
# Fig. 2 — predictor overhead motivation
# ---------------------------------------------------------------------------

def _active_energy(rep) -> float:
    """Total energy minus static leakage (the paper's Fig. 2 split covers
    the dynamic predictor/executor datapaths)."""
    return rep.total_energy_pj - rep.energy_pj.get("static", 0.0)


def fig2_power_breakdown(seq_len: int = 2048, steps: int = 256) -> Dict[str, Dict[str, float]]:
    """Normalized power (executor/predictor split) at 16/12/8-bit executors.

    Measured on the generation phase, where the predictor's full-K traffic
    is paid every step — the regime that motivates the paper.
    """
    out: Dict[str, Dict[str, float]] = {}
    base, _ = build_attention_workload(
        replace(WORKLOADS["wikitext2"], seq_len=seq_len, decode_steps=steps), decode=True
    )
    for bits in (16, 12, 8):
        dense = DenseAccelerator(exec_bits=bits).cost(base)
        for name, model in (
            ("dense", None),
            ("sanger", SangerModel(exec_bits=bits)),
            ("sofa", SofaModel(exec_bits=bits)),
        ):
            rep = dense if model is None else model.cost(base)
            denom = _active_energy(dense)
            out[f"{name}@{bits}b"] = {
                "executor": (_active_energy(rep) - rep.predictor_energy_pj) / denom,
                "predictor": rep.predictor_energy_pj / denom,
            }
    return out


def fig2_ratio_vs_seqlen(seq_lens: Sequence[int] = (1024, 2048, 4096, 8192)) -> Dict[str, List[float]]:
    """Predictor/executor power ratio vs sequence length (8-bit executor,
    generation phase)."""
    ratios: Dict[str, List[float]] = {"sanger": [], "sofa": []}
    for s in seq_lens:
        w, _ = build_attention_workload(
            replace(WORKLOADS["wikitext2"], seq_len=s, decode_steps=256), decode=True
        )
        for name, model in (("sanger", SangerModel()), ("sofa", SofaModel())):
            rep = model.cost(w)
            executor = _active_energy(rep) - rep.predictor_energy_pj
            ratios[name].append(rep.predictor_energy_pj / executor)
    return ratios


# ---------------------------------------------------------------------------
# Fig. 4(c) — BSF vs stage splitting reductions
# ---------------------------------------------------------------------------

def fig4_bsf_reduction(
    seq_len: int = 1024, num_layers: int = 4, head_dim: int = 128
) -> Dict[str, Dict[str, List[float]]]:
    """Per-layer computation/memory reduction of BSF vs stage splitting."""
    rng = np.random.default_rng(4)
    bsf_mem, bsf_comp, ss_mem, ss_comp = [], [], [], []
    for layer in range(num_layers):
        profile = PROFILE_PRESETS["nlp"].scaled(1.0 + 0.08 * (layer - 1.5))
        q, k, v = synthesize_qkv(8, seq_len, head_dim, profile, rng)
        res = pade_attention(q, k, v, PadeConfig.standard())
        stats = res.stats
        keep = 1.0 - res.sparsity

        dense_k_bits = seq_len * head_dim * 8
        dense_v_bits = dense_k_bits
        # BSF: planes fetched once (scoreboard reuse) + retained V rows.
        bsf_bits = stats.bit_plane_loads / 8 * head_dim + keep * dense_v_bits
        bsf_mem.append(1.0 - bsf_bits / (dense_k_bits + dense_v_bits))
        dense_macs = 2 * 8 * seq_len * head_dim
        bsf_macs = stats.effective_bit_ops / 8 + keep * 8 * seq_len * head_dim
        bsf_comp.append(1.0 - bsf_macs / dense_macs)

        # Stage splitting (Sanger-style): 4-bit full prediction + re-fetch.
        # Row-level thresholding on a coarse 4-bit estimate cannot prune the
        # borderline band at a 0%-loss tolerance, so its keep fraction has a
        # large floor on top of the oracle set (per-layer iso-accuracy
        # profiling; this is what caps stage splitting at the low single-
        # digit reductions of Fig. 4c).
        ss_keep = min(1.0, keep * 2.5 + 0.30)
        ss_bits = 0.5 * dense_k_bits + ss_keep * (dense_k_bits + dense_v_bits)
        ss_mem.append(1.0 - ss_bits / (dense_k_bits + dense_v_bits))
        ss_macs = 0.25 * 8 * seq_len * head_dim + ss_keep * dense_macs
        ss_comp.append(1.0 - ss_macs / dense_macs)

    def pack(vals: List[float]) -> List[float]:
        return vals + [geomean([max(v, 1e-6) for v in vals])]

    return {
        "memory_reduction": {"stage_splitting": pack(ss_mem), "bsf": pack(bsf_mem)},
        "compute_reduction": {"stage_splitting": pack(ss_comp), "bsf": pack(bsf_comp)},
    }


# ---------------------------------------------------------------------------
# Fig. 5(f) — tiling difficulty
# ---------------------------------------------------------------------------

def fig5_untiled_memory(
    parallel_queries: Sequence[int] = (8, 16, 24, 32, 40),
    seq_len: int = 2048,
    head_dim: int = 128,
    sram_bytes: Sequence[int] = (240 * 1024, 320 * 1024),
) -> Dict[str, List[float]]:
    """Normalized memory access vs #parallel queries without tiling.

    Row-dependent pruning forces each query's full score row (and the K
    rows it touches) to stay resident until the row max is known; overflow
    spills and K is re-streamed per 8-query block.
    """
    out: Dict[str, List[float]] = {}
    k_bytes = seq_len * head_dim  # INT8
    for sram in sram_bytes:
        series = []
        for p in parallel_queries:
            # Score rows need value + index + bound state (8 B per pair).
            working = k_bytes + p * seq_len * 8
            if working <= sram:
                traffic = k_bytes
            else:
                blocks = int(np.ceil(p / 8))
                traffic = k_bytes * blocks * (working / sram)
            series.append(traffic)
        out[f"{sram // 1024}kB"] = [t / k_bytes for t in series]
    out["ideal"] = [1.0 for _ in parallel_queries]
    return out


# ---------------------------------------------------------------------------
# Fig. 10(b) — max-update overhead & head-tail interleaving
# ---------------------------------------------------------------------------

def fig10_max_update_overhead(
    seq_len: int = 2048, tile_size: int = 16, head_dim: int = 64, num_rows: int = 8
) -> Dict[str, float]:
    """Cumulative max-update rescale work: left-to-right vs head-tail.

    The premise (§IV-C): recent tokens and the initial token carry the
    highest weights.  Left-to-right processing climbs the ascending local
    band last, triggering a max update (and its rescale chain) almost every
    tail tile; head-tail visits both dominant regions first, so the running
    max stabilizes after two tiles.
    """
    from repro.model.synthetic import AttentionProfile

    # Recency dominates slightly: no protected sinks, ascending local band.
    profile = AttentionProfile(sink_tokens=0, local_width=192, num_heavy=24)
    rng = np.random.default_rng(10)
    q, k, v = synthesize_qkv(num_rows, seq_len, head_dim, profile, rng)
    qi = quantize_symmetric(q)
    ki = quantize_symmetric(k)
    planes = decompose_bitplanes(ki.data)
    logit_scale = float(qi.scale) * float(ki.scale) / np.sqrt(head_dim)
    guard = guard_in_int_units(0.6, 5.0, logit_scale)

    results = {}
    for label, interleave in (("left_to_right", False), ("head_tail", True)):
        agg = {"max_updates": 0, "rescale_ops": 0, "tiles": 0}
        for row in range(num_rows):
            res = ista_attention_row(
                qi.data[row], planes, v, guard, logit_scale,
                tile_size=tile_size, interleave=interleave,
            )
            agg["max_updates"] += res.stats.max_updates
            agg["rescale_ops"] += res.stats.rescale_vector_ops
            agg["tiles"] += res.stats.tiles_flushed
        results[label] = agg
    lr, ht = results["left_to_right"], results["head_tail"]
    reduction = 1.0 - ht["rescale_ops"] / max(1, lr["rescale_ops"])
    return {**{f"lr_{k}": v for k, v in lr.items()},
            **{f"ht_{k}": v for k, v in ht.items()},
            "op_reduction": reduction}


# ---------------------------------------------------------------------------
# Fig. 14 — normalized computation & memory across models
# ---------------------------------------------------------------------------

FIG14_MODELS = ("llama2-7b", "llama3-8b", "opt-1b3", "bloom-1b7", "qwen-7b", "vit-l/16", "pvt")
FIG14_SEQS = {"llama2-7b": 2048, "llama3-8b": 2048, "opt-1b3": 2048, "bloom-1b7": 2048,
              "qwen-7b": 2048, "vit-l/16": 576, "pvt": 3000}


def fig14_comp_mem() -> Dict[str, Dict[str, Dict[str, float]]]:
    """Normalized computation (SpAtten = 1) and memory (Sanger = 1).

    Computation compares op counts (phase-independent ratios).  Memory is
    compared in the generation phase, where K/V traffic dominates — the
    regime the paper's generation-heavy benchmark mix stresses (in prefill
    with an on-chip-resident K, unavoidable Q/O traffic flattens every
    design's ratio toward 1).
    """
    designs = {
        "spatten": SpAttenModel(),
        "sanger": SangerModel(),
        "dota": DotaModel(),
        "energon": EnergonModel(),
        "spatten*": SpAttenModel(finetuned=True),
        "sofa": SofaModel(),
        "pade": PadeAnalyticModel(),
    }
    out: Dict[str, Dict[str, Dict[str, float]]] = {"computation": {}, "memory": {}}
    for model_name in FIG14_MODELS:
        model = get_model(model_name)
        seq = FIG14_SEQS[model_name]
        stats = measure_pipeline_stats(model, seq)
        w = AttentionWorkload(
            num_queries=max(1, seq // 8), seq_len=seq, head_dim=model.head_dim,
            num_heads=model.num_heads, num_kv_heads=model.num_kv_heads,
            num_layers=model.num_layers, decode=True,
            oracle_keep=stats.keep_fraction / 1.05, mean_planes=stats.mean_planes,
        )
        reports = {name: d.cost(w) for name, d in designs.items()}
        comp = {n: (r.predictor_macs + r.executor_macs) for n, r in reports.items()}
        mem = {n: r.dram_bytes for n, r in reports.items()}
        out["computation"][model_name] = {n: c / comp["spatten"] for n, c in comp.items()}
        out["memory"][model_name] = {n: m / mem["sanger"] for n, m in mem.items()}
    return out


# ---------------------------------------------------------------------------
# Fig. 15 — software sparse-attention comparison
# ---------------------------------------------------------------------------

def _proxy_accuracy(lost_mass: float, base: float = 40.0, sens: float = 21.0) -> float:
    """ROUGE-1-like proxy score from discarded softmax mass."""
    return max(0.0, base - sens * min(1.0, lost_mass))


def fig15_accuracy_vs_sparsity(
    seq_len: int = 2048,
    levels: Sequence[float] = (1.0, 0.5, 0.25, 0.125, 0.0625),
    head_dim: int = 64,
) -> Dict[str, List[float]]:
    """Accuracy (proxy ROUGE-1) vs sparsity level for all methods.

    The sparsity level is the paper's definition: (prediction + execution)
    cost over dense cost.  PADE's level uses its bit-level cost model.
    """
    rng = np.random.default_rng(15)
    profile = PROFILE_PRESETS["nlp-long"]
    q, k, v = synthesize_qkv(8, seq_len, head_dim, profile, rng)
    logits = attention_scores(q, k)
    causal = causal_mask(8, seq_len, seq_len - 8)
    probs = softmax(np.where(causal, logits, -np.inf), axis=-1)
    dense_out_mass = 1.0

    def lost(keep_mask: np.ndarray) -> float:
        return float(np.where(keep_mask, 0.0, probs).sum(axis=-1).mean()) / dense_out_mass

    out: Dict[str, List[float]] = {}
    for name in ("streaming_llm", "minference", "double_sparsity"):
        fn = get_baseline(name)
        accs = []
        for level in levels:
            # Solve the key budget so prediction + execution == level
            # (DoubleSparsity's calibrated label cache costs ~1/16 of dense).
            pred = {"streaming_llm": 0.0, "minference": 16 / 8 / seq_len * 8,
                    "double_sparsity": 0.0625}[name]
            keep_budget = max(0.01, min(1.0, level - pred))
            if name == "double_sparsity":
                res = fn(q, k, v, keep_budget, channel_fraction=0.0625)
            else:
                res = fn(q, k, v, keep_budget)
            accs.append(_proxy_accuracy(lost(res.retained)))
        out[name] = accs

    # SpAtten / DTATrans: previous-layer guidance = noisy score top-k.
    for name, noise, recover in (
        ("spatten", 2.5, False), ("dtatrans", 1.8, False),
        ("spatten*", 2.5, True), ("dtatrans*", 1.8, True),
    ):
        accs = []
        for level in levels:
            keep_budget = max(0.01, min(1.0, level))
            noisy = logits + rng.normal(0, 0.0 if recover else noise, logits.shape)
            budget = max(1, int(round(keep_budget * seq_len)))
            keep = np.zeros_like(causal)
            masked = np.where(causal, noisy, -np.inf)
            for i in range(masked.shape[0]):
                top = np.argpartition(masked[i], -budget)[-budget:]
                keep[i, top] = True
            keep &= causal
            accs.append(_proxy_accuracy(lost(keep)))
        out[name] = accs

    # PADE: α swept to hit each cost level (bit-level execution cost).
    accs = []
    qi = quantize_symmetric(q)
    ki = quantize_symmetric(k)
    planes = decompose_bitplanes(ki.data)
    logit_scale = float(qi.scale) * float(ki.scale) / np.sqrt(head_dim)
    # Sweep α once; per level pick the most accurate feasible operating
    # point.  PADE's cost floor is its MSB pass over every candidate, so
    # the very lowest levels saturate at the floor point instead of
    # over-pruning (the guard is accuracy-first by construction).
    candidates = []
    for alpha in (1.0, 0.8, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.05):
        guard = guard_in_int_units(alpha, 5.0, logit_scale)
        res = bsf_filter(qi.data, planes, guard, allowed=causal)
        keep = res.retained.sum() / causal.sum()
        cost = res.planes_processed.mean() / 8 * 0.5 + keep  # QK bits + PV
        candidates.append((float(cost), _proxy_accuracy(lost(res.retained))))
    floor_cost = min(cost for cost, _ in candidates)
    # Below the floor, pruning harder buys almost no cost (the MSB pass over
    # every candidate dominates) but destroys accuracy, so PADE saturates at
    # the best point near the floor rather than over-pruning — the guard is
    # accuracy-first by construction.
    floor_acc = max(acc for cost, acc in candidates if cost <= floor_cost * 1.35)
    accs = []
    for level in levels:
        feasible = [acc for cost, acc in candidates if cost <= level * 1.1]
        accs.append(max(feasible + [floor_acc]) if feasible else floor_acc)
    out["pade"] = accs
    return out


def fig15_speedup_energy(
    workload_names: Sequence[str] = ("dolly", "pg19", "infinitebench"),
) -> Dict[str, Dict[str, float]]:
    """PADE (HW+SW) vs software-only sparse attention on GPU @ ~1% loss."""
    out: Dict[str, Dict[str, float]] = {}
    for name in workload_names:
        w, _ = build_attention_workload(name, alpha=0.5, decode=True)
        # Software sparse attention on GPU ≈ the BUI-GF-on-GPU mode: the
        # sparsity criterion runs as kernels, without FA3's memory win on
        # the gathered sparse layout.
        gpu_sparse = GPUModel(use_bui_gf=True).cost(w)
        pade = PadeAnalyticModel().cost(w)
        out[name] = {
            "latency_gain": gpu_sparse.cycles / pade.cycles,
            "energy_gain": gpu_sparse.total_energy_pj / pade.total_energy_pj,
        }
    return out


# ---------------------------------------------------------------------------
# Fig. 16 — ablation and α trade-off
# ---------------------------------------------------------------------------

def fig16_ablation(
    model_names: Sequence[str] = ("llama2-7b", "llama3-8b", "opt-1b3", "pvt"),
    seq_len: int = 512,
) -> Dict[str, Dict[str, float]]:
    """Normalized latency: baseline → +BUI-GF → +BS-OOE → +ISTA."""
    # The scoreboard PE (result reuse + non-blocking issue) ships with
    # BUI-GF (§V-C); BS-OOE then adds bidirectional balancing + full
    # out-of-order DRAM overlap; ISTA adds tiling + RARS.
    steps = {
        "baseline": AcceleratorConfig().dense_baseline(),
        "+BUI-GF": replace(
            AcceleratorConfig().dense_baseline(),
            enable_sparsity=True, bit_serial=True, enable_result_reuse=True,
        ),
        "+BS-OOE": replace(
            AcceleratorConfig().dense_baseline(),
            enable_sparsity=True, bit_serial=True, enable_result_reuse=True,
            enable_bs=True, enable_ooe=True,
        ),
        "+ISTA": AcceleratorConfig(),
    }
    out: Dict[str, Dict[str, float]] = {}
    for model_name in model_names:
        model = get_model(model_name)
        profile = PROFILE_PRESETS["cv" if model.modality == "cv" else "nlp"]
        rng = np.random.default_rng(16)
        q, k, v = synthesize_qkv(8, min(seq_len, 512), min(model.head_dim, 64), profile, rng)
        lat = {}
        for label, cfg in steps.items():
            lat[label] = PadeAccelerator(cfg).run_head(q, k, v).latency_cycles
        base = lat["baseline"]
        out[model_name] = {label: v / base for label, v in lat.items()}
    avg = {
        label: float(np.mean([out[m][label] for m in out])) for label in steps
    }
    out["average"] = avg
    return out


def fig16_alpha_tradeoff(
    alphas: Sequence[float] = (0.8, 0.7, 0.6, 0.5, 0.4, 0.3),
) -> Dict[str, Dict[float, float]]:
    """Accuracy and sparsity vs α for MMLU (reasoning) and MBPP (generation)."""
    out = {"acc_mmlu": {}, "acc_mbpp": {}, "spa_mmlu": {}, "spa_mbpp": {}}
    for task_name, key in (("mmlu", "mmlu"), ("mbpp", "mbpp")):
        task = get_task(task_name, "llama2-7b")
        model = get_model(task.model)
        for alpha in alphas:
            stats = measure_pipeline_stats(model, task.seq_len, alpha=alpha)
            sens = SENSITIVITY[task.family]
            out[f"acc_{key}"][alpha] = task.int8 - sens * stats.lost_mass
            out[f"spa_{key}"][alpha] = stats.sparsity * 100.0
    return out


# ---------------------------------------------------------------------------
# Fig. 17 — design space exploration
# ---------------------------------------------------------------------------

def fig17_gsat_dse(sizes: Sequence[int] = (2, 4, 8, 16, 32, 64)) -> Dict[int, Tuple[float, float]]:
    """GSAT sub-group size vs relative (area, power), normalized to size 8."""
    raw = {g: gsat_area_power(g) for g in sizes}
    ref_area, ref_power = raw[8]
    return {g: (a / ref_area, p / ref_power) for g, (a, p) in raw.items()}


def fig17_scoreboard_dse(
    entries_list: Sequence[int] = (4, 8, 16, 24, 32, 40),
    sparsity_levels: Sequence[float] = (0.85, 0.90, 0.95),
    seq_len: int = 512,
) -> Dict[float, Dict[int, float]]:
    """PE utilization vs scoreboard entries at several sparsity levels."""
    out: Dict[float, Dict[int, float]] = {}
    rng = np.random.default_rng(17)
    base_alpha = {0.85: 0.95, 0.90: 0.7, 0.95: 0.45}
    for sp in sparsity_levels:
        alpha = base_alpha.get(sp, 0.6)
        q, k, v = synthesize_qkv(8, seq_len, 64, PROFILE_PRESETS["nlp"], rng)
        qi = quantize_symmetric(q)
        ki = quantize_symmetric(k)
        planes = decompose_bitplanes(ki.data)
        logit_scale = float(qi.scale) * float(ki.scale) / np.sqrt(64)
        guard = guard_in_int_units(alpha, 5.0, logit_scale)
        res = bsf_filter(qi.data, planes, guard)
        out[sp] = {}
        for entries in entries_list:
            qk = simulate_qkpu(res.planes_processed, planes, scoreboard_entries=entries)
            out[sp][entries] = qk.utilization
    return out


# ---------------------------------------------------------------------------
# Fig. 18 — bit-serial overhead + GPU comparison
# ---------------------------------------------------------------------------

def fig18_bit_overhead(seq_len: int = 512) -> Dict[str, Dict[str, float]]:
    """Latency of value-level INT8 PADE vs bit-level PADE (shift overhead)."""
    rng = np.random.default_rng(18)
    out: Dict[str, Dict[str, float]] = {}
    for name in ("dolly", "wikilingua"):
        q, k, v = synthesize_qkv(8, seq_len, 64, PROFILE_PRESETS["nlp"], rng)
        # Value-level INT8 cannot speculate bit-serially, so it loses the
        # whole fused-sparsity pipeline and computes densely (Fig. 18a's
        # "value-level PADE" baseline).
        value_cfg = AcceleratorConfig().dense_baseline()
        value = PadeAccelerator(value_cfg).run_head(q, k, v)
        bit = PadeAccelerator(AcceleratorConfig()).run_head(q, k, v)
        shift_share = bit.energy_breakdown_pj.get("qk_compute", 0.0) * 0.17
        out[name] = {
            "value_latency": value.latency_cycles,
            "bit_latency": bit.latency_cycles,
            "latency_gain": value.latency_cycles / bit.latency_cycles,
            "bit_shift_share": shift_share / max(1e-9, bit.energy_pj),
        }
    return out


def fig18_gpu_comparison(
    model_names: Sequence[str] = ("llama2-7b", "llama3-8b", "opt-1b3", "pvt"),
) -> Dict[str, Dict[str, float]]:
    """Latency & efficiency of GPU(+BUI-GF)(+FA3) and PADE std/aggr."""
    out: Dict[str, Dict[str, float]] = {}
    for name in model_names:
        model = get_model(name)
        seq = FIG14_SEQS.get(name, 2048)
        stats_s = measure_pipeline_stats(model, seq, alpha=0.6)
        stats_a = measure_pipeline_stats(model, seq, alpha=0.5)
        w = AttentionWorkload(
            num_queries=seq, seq_len=seq, head_dim=model.head_dim,
            num_heads=model.num_heads, num_kv_heads=model.num_kv_heads,
            num_layers=model.num_layers,
            oracle_keep=stats_s.keep_fraction / 1.05, mean_planes=stats_s.mean_planes,
        )
        gpu = GPUModel().cost(w)
        gpu_gf = GPUModel(use_bui_gf=True).cost(w)
        gpu_fa3 = GPUModel(use_bui_gf=True, use_fa3=True).cost(w)
        pade_s = PadeAnalyticModel().cost(w)
        w_a = replace(w, oracle_keep=stats_a.keep_fraction / 1.05, mean_planes=stats_a.mean_planes)
        pade_a = PadeAnalyticModel().cost(w_a)
        out[name] = {
            "gpu_bui_latency": gpu_gf.cycles / gpu.cycles,
            "gpu_bui_fa3_latency": gpu_fa3.cycles / gpu.cycles,
            "pade_std_latency": pade_s.cycles / gpu.cycles,
            "pade_aggr_latency": pade_a.cycles / gpu.cycles,
            "gpu_bui_eff": gpu.total_energy_pj / gpu_gf.total_energy_pj,
            "gpu_bui_fa3_eff": gpu.total_energy_pj / gpu_fa3.total_energy_pj,
            "pade_std_eff": gpu.total_energy_pj / pade_s.total_energy_pj,
            "pade_aggr_eff": gpu.total_energy_pj / pade_a.total_energy_pj,
        }
    return out


# ---------------------------------------------------------------------------
# Fig. 19 — gain breakdown waterfall
# ---------------------------------------------------------------------------

def fig19_gain_breakdown(seq_len: int = 2048, model_name: str = "llama2-7b") -> Dict[str, Dict[str, float]]:
    """Cumulative energy-efficiency and throughput gains over the GPU."""
    model = get_model(model_name)
    stats = measure_pipeline_stats(model, seq_len)
    w = AttentionWorkload(
        num_queries=seq_len, seq_len=seq_len, head_dim=model.head_dim,
        num_heads=model.num_heads, num_kv_heads=model.num_kv_heads,
        num_layers=model.num_layers,
        oracle_keep=stats.keep_fraction / 1.05, mean_planes=stats.mean_planes,
    )
    gpu = GPUModel().cost(w)
    dense = DenseAccelerator().cost(w)

    # Step models: BUI-GF w/o BS-OOE ≙ analytic PADE with naive planes and
    # untiled memory; each subsequent step switches one mechanism on.
    pade_full = PadeAnalyticModel().cost(w)
    pade_no_reuse = PadeAnalyticModel(result_reuse=False).cost(w)

    # +BUI-GF (with scoreboard reuse) but no BS (full popcount energy) and
    # no ISTA (8-query K passes): approximate by scaling components.
    bui = PadeAnalyticModel().cost(replace(w, mean_planes=stats.mean_planes))
    no_bs_energy = {k: v for k, v in bui.energy_pj.items()}
    no_bs_energy["compute"] = no_bs_energy.get("compute", 0.0) * 1.9  # no BS halving
    no_ista_scale = 3.0  # untiled V + K pass inflation at this workload
    no_bs_energy["dram"] = no_bs_energy.get("dram", 0.0) * no_ista_scale
    bui_energy = sum(no_bs_energy.values())
    bui_cycles = bui.cycles * 1.8  # exposed latency without OOE

    bsooe_energy = {k: v for k, v in bui.energy_pj.items()}
    bsooe_energy["dram"] = bsooe_energy.get("dram", 0.0) * no_ista_scale
    bsooe_total = sum(bsooe_energy.values())

    def eff(e: float) -> float:
        return gpu.total_energy_pj / e

    def thr(c: float) -> float:
        return gpu.cycles / c

    return {
        "energy_efficiency": {
            "gpu": 1.0,
            "baseline_asic": eff(dense.total_energy_pj),
            "+bui_gf_no_reuse": eff(sum(pade_no_reuse.energy_pj.values()) * no_ista_scale ** 0.5),
            "+bui_gf": eff(bui_energy),
            "+bs_ooe": eff(bsooe_total),
            "+ista": eff(pade_full.total_energy_pj),
        },
        "throughput": {
            "gpu": 1.0,
            "baseline_asic": thr(dense.cycles),
            "+bui_gf": thr(bui_cycles),
            "+bs_ooe": thr(bui.cycles * 1.15),
            "+ista": thr(pade_full.cycles),
        },
    }


# ---------------------------------------------------------------------------
# Fig. 20 — area/power
# ---------------------------------------------------------------------------

def fig20_area_power() -> Dict[str, Dict[str, float]]:
    return {
        "area_mm2": area_breakdown(),
        "power_mw": power_breakdown(),
        "overheads": overhead_summary(),
    }


# ---------------------------------------------------------------------------
# Fig. 21 — SOTA comparison
# ---------------------------------------------------------------------------

def fig21_sota_comparison(
    entries: Sequence[Tuple[str, int]] = (
        ("llama2-7b", 2048), ("llama3-8b", 2048), ("vit-l/16", 576), ("pvt", 3000),
    ),
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Speedup + energy breakdown vs the five SOTA accelerators."""
    designs = {
        "sanger": SangerModel(), "spatten": SpAttenModel(), "energon": EnergonModel(),
        "dota": DotaModel(), "sofa": SofaModel(), "pade": PadeAnalyticModel(),
    }
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for model_name, seq in entries:
        model = get_model(model_name)
        stats = measure_pipeline_stats(model, seq)
        w = AttentionWorkload(
            num_queries=seq, seq_len=seq, head_dim=model.head_dim,
            num_heads=model.num_heads, num_kv_heads=model.num_kv_heads,
            num_layers=model.num_layers,
            oracle_keep=stats.keep_fraction / 1.05, mean_planes=stats.mean_planes,
        )
        reports = {n: d.cost(w) for n, d in designs.items()}
        slowest = max(r.cycles for r in reports.values())
        entry: Dict[str, Dict[str, float]] = {}
        for n, r in reports.items():
            e = r.energy_pj
            total = r.total_energy_pj
            entry[n] = {
                "speedup": slowest / r.cycles,
                "dram_share": e.get("dram", 0.0) / total + e.get("predictor_memory", 0.0) / total * 0.8,
                "buffer_share": e.get("sram", 0.0) / total,
                "compute_share": (e.get("compute", 0.0) + e.get("predictor_compute", 0.0)) / total,
                "energy_vs_pade": total / reports["pade"].total_energy_pj,
            }
        out[model_name] = entry
    return out


# ---------------------------------------------------------------------------
# Fig. 23 — workload balance and bandwidth utilization
# ---------------------------------------------------------------------------

def fig23_workload_balance(
    lane_counts: Sequence[int] = (4, 8, 16, 32),
    seq_len: int = 512,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Useful / intra-PE / inter-PE fractions vs lanes: PADE vs BitWave."""
    rng = np.random.default_rng(23)
    q, k, v = synthesize_qkv(8, seq_len, 64, PROFILE_PRESETS["nlp"], rng)
    qi = quantize_symmetric(q)
    ki = quantize_symmetric(k)
    planes = decompose_bitplanes(ki.data)
    logit_scale = float(qi.scale) * float(ki.scale) / np.sqrt(64)
    guard = guard_in_int_units(0.6, 5.0, logit_scale)
    res = bsf_filter(qi.data, planes, guard)

    out: Dict[str, Dict[int, Dict[str, float]]] = {"pade": {}, "bitwave": {}}
    for lanes in lane_counts:
        pade = simulate_qkpu(res.planes_processed, planes, lanes_per_row=lanes)
        bw = simulate_bitwave_lanes(res.planes_processed, planes, lanes_per_row=lanes)
        for name, r in (("pade", pade), ("bitwave", bw)):
            out[name][lanes] = {
                "useful": r.useful_fraction,
                "intra_pe_stall": r.intra_pe_stall_fraction,
                "inter_pe_stall": r.inter_pe_stall_fraction,
            }
    return out


def fig23_bandwidth(
    entries: Sequence[Tuple[str, int]] = (("mmlu", 512), ("wikitext2", 2048)),
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """DRAM access / speedup / BW utilization: dense, Sanger, PADE ±DL."""
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    rng = np.random.default_rng(233)
    for name, seq in entries:
        q, k, v = synthesize_qkv(8, min(seq, 1024), 64, PROFILE_PRESETS["nlp"], rng)
        dense = PadeAccelerator(AcceleratorConfig().dense_baseline()).run_head(q, k, v)
        pade_no_dl = PadeAccelerator(
            replace(AcceleratorConfig(), custom_layout=False)
        ).run_head(q, k, v)
        pade_dl = PadeAccelerator(AcceleratorConfig()).run_head(q, k, v)
        # Sanger via analytic ratio on matching workload.
        w, _ = build_attention_workload(replace(WORKLOADS["wikitext2"], seq_len=seq))
        sanger = SangerModel().cost(w)
        dense_a = DenseAccelerator().cost(w)
        out[name] = {
            "dense": {"dram": 1.0, "speedup": 1.0, "bw_utilization": dense.bw_utilization},
            "sanger": {
                "dram": sanger.dram_bytes / dense_a.dram_bytes,
                "speedup": dense_a.cycles / sanger.cycles,
                "bw_utilization": min(1.0, dense.bw_utilization * 0.9),
            },
            "pade_no_dl": {
                "dram": pade_no_dl.dram_bytes / dense.dram_bytes,
                "speedup": dense.latency_cycles / pade_no_dl.latency_cycles,
                "bw_utilization": pade_no_dl.bw_utilization,
            },
            "pade_dl": {
                "dram": pade_dl.dram_bytes / dense.dram_bytes,
                "speedup": dense.latency_cycles / pade_dl.latency_cycles,
                "bw_utilization": pade_dl.bw_utilization,
            },
        }
    return out


# ---------------------------------------------------------------------------
# Fig. 24 — system integration (GPU + PADE co-processor)
# ---------------------------------------------------------------------------

def fig24_system_integration(
    entries: Sequence[Tuple[str, int]] = (
        ("dolly-15k", 15_000), ("infinitebench-214k", 214_000), ("niah-1m", 1_000_000),
    ),
) -> Dict[str, Dict[str, float]]:
    """End-to-end latency: GPU-only vs GPU+PADE (±data-conversion layout)."""
    out: Dict[str, Dict[str, float]] = {}
    model = get_model("llama3-8b")
    for name, seq in entries:
        stats = measure_pipeline_stats(model, seq)
        w = AttentionWorkload(
            num_queries=256, seq_len=seq, head_dim=model.head_dim,
            num_heads=model.num_heads, num_kv_heads=model.num_kv_heads,
            num_layers=model.num_layers, decode=True,
            oracle_keep=stats.keep_fraction / 1.05, mean_planes=stats.mean_planes,
        )
        gpu_attn = GPUModel().cost(w).latency_s
        pade_attn = PadeAnalyticModel().cost(w).latency_s
        pade_attn_no_dl = PadeAnalyticModel(result_reuse=True).cost(w).latency_s * 1.9
        # Non-attention share (QKV projection + FFN) is sequence-linear while
        # attention is quadratic-ish; anchor the split at 30% non-attention
        # for 15k and shrink with length.
        other = gpu_attn * 0.3 * (15_000 / seq)
        conversion = 0.02 * other  # bit-plane layout conversion fused in GEMM
        gpu_only = other + gpu_attn
        # Interleaved execution (Fig. 24b): GPU and PADE overlap across
        # consecutive sequences; steady-state latency is the max of stages.
        pg_no_dl = max(other, pade_attn_no_dl) + 0.1 * min(other, pade_attn_no_dl)
        pg_dl = max(other + conversion, pade_attn) + 0.1 * min(other, pade_attn)
        out[name] = {
            "gpu_only": 1.0,
            "gpu_pade_no_conv": pg_no_dl / gpu_only,
            "gpu_pade_conv": pg_dl / gpu_only,
            "speedup": gpu_only / pg_dl,
        }
    return out


# ---------------------------------------------------------------------------
# Fig. 25 — MX format BUI
# ---------------------------------------------------------------------------

def fig25_mx_example(head_dim: int = 64, num_keys: int = 32) -> Dict[str, float]:
    """Group-scaled BUI on MXINT operands: bounds + soundness check."""
    from repro.core.mx import mx_score_bounds
    from repro.quant.mxint import quantize_mxint

    rng = np.random.default_rng(25)
    q = rng.normal(size=(4, head_dim)) * 2
    k = rng.normal(size=(num_keys, head_dim))
    q_mx = quantize_mxint(q)
    k_mx = quantize_mxint(k)
    exact = q_mx.dequantize() @ k_mx.dequantize().T
    sound = 0
    widths = []
    for planes_known in (1, 2, 4, 8):
        for qi in range(q.shape[0]):
            for kj in range(num_keys):
                lo, hi = mx_score_bounds(q_mx, k_mx, qi, kj, planes_known)
                if lo - 1e-9 <= exact[qi, kj] <= hi + 1e-9:
                    sound += 1
                widths.append(hi - lo)
    total = 4 * 4 * num_keys
    return {
        "checked": total,
        "sound": sound,
        "soundness_rate": sound / total,
        "mean_interval_width": float(np.mean(widths)),
    }


# ---------------------------------------------------------------------------
# Fig. 26 — quantization variants and long-sequence decoding
# ---------------------------------------------------------------------------

def fig26_quantization(seq_len: int = 2048) -> Dict[str, Dict[str, float]]:
    """Energy under PTQ/QAT × INT8/INT4 for SOFA vs PADE (dense = 1)."""
    model = get_model("llama2-7b")
    out: Dict[str, Dict[str, float]] = {}
    for label, bits, uniform in (
        ("ptq8", 8, 0.0), ("qat8", 8, 1.0), ("ptq4", 4, 0.0), ("qat4", 4, 1.0),
    ):
        profile = "uniform" if uniform else "nlp"
        stats = measure_pipeline_stats(model, seq_len, bits=bits, profile=profile)
        w = AttentionWorkload(
            num_queries=seq_len, seq_len=seq_len, head_dim=model.head_dim,
            num_heads=model.num_heads, num_layers=model.num_layers,
            oracle_keep=stats.keep_fraction / 1.05, mean_planes=stats.mean_planes,
        )
        dense = DenseAccelerator(exec_bits=bits).cost(w)
        sofa = SofaModel(exec_bits=bits, distribution_uniformity=uniform).cost(w)
        pade = PadeAnalyticModel(exec_bits=bits).cost(w)
        out[label] = {
            "dense": 1.0,
            "sofa": sofa.total_energy_pj / dense.total_energy_pj,
            "pade": pade.total_energy_pj / dense.total_energy_pj,
        }
    return out


def engine_decode_profile(
    model_name: str = "llama2-7b",
    context: int = 512,
    steps: int = 32,
    num_heads: int = 8,
    requests: int = 2,
) -> Dict[str, float]:
    """Serving-engine decode profile: cached-plane reuse + filter statistics.

    Runs :class:`repro.engine.PadeEngine` on a synthetic multi-head decode
    workload (the serving-level view the per-call figure functions lack)
    and reports the statistics that motivate the engine: how much
    quantize/decompose work the resident bit-plane cache absorbs, and the
    sparsity the head-batched filter achieves.  Deterministic — safe for
    ``--json`` smoke runs.
    """
    from repro.engine import PadeEngine
    from repro.eval.workloads import build_engine_request

    model = get_model(model_name)
    cfg = PadeConfig.standard()
    engine = PadeEngine(cfg)
    for i in range(requests):
        engine.submit(
            build_engine_request(
                f"req{i}", num_heads, context, steps, min(model.head_dim, 64), seed=i
            )
        )
    results = engine.run()
    stats = engine.stats
    # A per-call pipeline re-decomposes the whole cache every step.
    percall_rows = sum(
        num_heads * (context + t + 1) for t in range(steps)
    ) * requests + requests * num_heads * context
    return {
        "backend": resolve_backend_name(),
        "requests": float(requests),
        "decode_steps": float(stats.decode_steps),
        "final_length": float(next(iter(results.values())).final_length),
        "sparsity": stats.sparsity,
        "effective_bit_fraction": (
            stats.effective_bit_ops / stats.naive_bit_ops if stats.naive_bit_ops else 0.0
        ),
        "rows_decomposed": float(stats.rows_decomposed),
        "rows_reused": float(stats.rows_reused),
        "decomposition_reuse": stats.decomposition_reuse,
        "percall_rows_decomposed": float(percall_rows),
        "decomposition_savings": 1.0 - stats.rows_decomposed / percall_rows,
    }


def serving_profile(
    rate: float = 0.4,
    budget: int = 1536,
    policy: str = "fcfs",
    requests: int = 6,
    context: int = 64,
    steps: int = 10,
    num_heads: int = 4,
    head_dim: int = 32,
    block_size: int = 16,
    max_active: int = 4,
    seed: int = 11,
    prefix_sharing: bool = False,
    chunk: int = 0,
    round_tokens: int = 0,
    attention: str = "pade",
    scenario: Optional[str] = None,
    tenants: int = 3,
    batched: bool = True,
    async_serve: bool = False,
    port: int = 0,
    replicas: int = 1,
    routing: str = "prefix",
    tiering: bool = False,
    tier_min_planes: int = 2,
    tier_restore_blocks: int = 4,
    speculative: bool = False,
    parallel_samples: int = 1,
    draft_policy: str = "streaming-llm",
    draft_tokens: int = 4,
    spec_accept_tol: float = 0.05,
) -> Dict[str, float]:
    """Continuous-batching serving profile over the paged bit-plane pool.

    Runs :meth:`repro.engine.PadeEngine.serve` on a Poisson arrival
    workload (``rate`` requests per decode round) under a global KV
    ``budget`` (tokens) and reports the serving currency — TTFT / TPOT /
    queueing-delay percentiles, throughput, preemptions, pool occupancy,
    abort/deadline-miss counts, Jain tenant fairness, per-class tails,
    and (with ``prefix_sharing``) prefix-cache hit rate / blocks saved.
    ``policy`` picks the scheduling policy (any of
    :data:`repro.engine.SCHEDULING_POLICIES`); ``scenario`` swaps the
    plain Poisson stream for a named scenario workload
    (:func:`repro.eval.workloads.build_scenario_workload`: ``bursty`` /
    ``diurnal`` / ``heavy_tail`` / ``multi_tenant`` / ``agentic`` /
    ``rag_burst``), with ``tenants`` tenants in the multi-tenant mix;
    under a scenario, ``prefix_sharing`` is the pool knob only (the
    agentic scenario's turn-over-turn prompts need it to hit).  ``round_tokens`` activates the
    prefill cost model and ``chunk`` the chunked-prefill split.
    ``attention`` selects the attention policy from
    :data:`repro.attention.policy.POLICY_REGISTRY` (PADE or any
    converted baseline), so the same profile sweeps every method.
    ``batched`` toggles the fused cross-request decode round (results
    are byte-identical either way; the report's ``batched_rounds`` /
    ``batch_efficiency`` columns show the fusion occupancy).
    ``async_serve`` routes the same workload through the asyncio
    loopback front-end (:mod:`repro.serve`) in deterministic-replay
    mode: the round-clock report is identical to the in-process path and
    the measured ``wall_*_ms`` latency block is added (``port`` picks
    the listening port, 0 = ephemeral).
    ``replicas`` > 1 shards the workload over that many engine worker
    subprocesses behind the prefix-affinity router
    (:mod:`repro.cluster`), each with its own ``budget``-token pool, and
    reports the cluster roll-up (``cluster_throughput_tokens_per_round``,
    ``jain_replica_index``, request-weighted prefix hit rate);
    ``routing`` picks the routing mode (``prefix`` / ``random`` /
    ``least-loaded``).
    ``tiering`` switches the pool to the two-tier bit-plane memory
    (spill-before-preempt; PADE attention only), with
    ``tier_min_planes`` the residency floor and ``tier_restore_blocks``
    the per-round prefetch-restore cap — the report gains the
    accuracy-vs-pressure columns (``degraded_token_fraction``,
    ``planes_resident_*``, spill/restore bytes).
    ``speculative`` swaps the stream for a draft-friendly workload
    (:func:`repro.eval.workloads.build_speculative_workload`) served in
    draft-verify mode — ``draft_policy`` picks the draftable proposer,
    ``draft_tokens`` the per-round draft depth, ``spec_accept_tol`` the
    relative-L2 acceptance tolerance — and the report gains the
    ``spec_*`` block (rounds, drafted/accepted/emitted tokens,
    accepted-tokens-per-round, rollbacks).  ``parallel_samples`` > 1
    forks every request into that many n-best decode lineages off one
    shared prefill (:func:`repro.eval.workloads.build_parallel_workload`),
    adding the ``parallel_*`` / ``pool_amplification_factor`` columns.
    Both modes run on the PADE policy only and are mutually exclusive
    with each other and with ``--scenario`` / ``--prefix-sharing``.
    Deterministic for a given seed — safe for ``--json`` smoke runs; the
    CLI exposes ``--rate/--budget/--sched-policy/--scenario/--tenants/
    --prefix-sharing/--chunk/--round-tokens/--attention/--async/--port/
    --tiering/--tier-min-planes/--tier-restore-blocks/--speculative/
    --parallel-samples/--draft-policy/--draft-tokens/--spec-accept-tol``.
    """
    from repro.engine import PadeEngine
    from repro.eval.serving_metrics import summarize_serving
    from repro.eval.workloads import (
        build_prefix_workload,
        build_scenario_workload,
        build_serving_workload,
    )

    engine = PadeEngine(PadeConfig.standard(), policy=attention)
    tenant_weights = None
    if speculative and parallel_samples > 1:
        raise ValueError("speculative and parallel_samples > 1 are exclusive")
    if (speculative or parallel_samples > 1) and (scenario or prefix_sharing):
        raise ValueError(
            "speculative / parallel sampling build their own workloads; "
            "drop --scenario / --prefix-sharing"
        )
    if speculative:
        from repro.eval.workloads import build_speculative_workload

        workload = build_speculative_workload(
            requests, num_heads, context, steps, head_dim,
            rate=rate, seed=seed, draft_tokens=draft_tokens,
        )
    elif parallel_samples > 1:
        from repro.eval.workloads import build_parallel_workload

        workload = build_parallel_workload(
            requests, num_heads, context, steps, head_dim,
            n_samples=parallel_samples, rate=rate, seed=seed,
        )
    elif scenario is not None:
        # With a scenario, --prefix-sharing is the pool knob only (the
        # scenario keeps its own workload): the agentic scenario in
        # particular generates turn-over-turn growing prompts whose
        # shared prefixes only pay off with pool sharing enabled.
        specs = None
        if scenario == "multi_tenant":
            from repro.eval.workloads import default_tenant_specs

            # Requests carry no weights, so the fair policy's per-tenant
            # weights are collected off the specs and handed to serve().
            specs = default_tenant_specs(
                tenants, rate, context_len=context, decode_steps=steps
            )
            tenant_weights = {s.name: s.weight for s in specs}
        workload = build_scenario_workload(
            scenario, requests, num_heads, head_dim,
            context_len=context, decode_steps=steps, rate=rate,
            tenants=tenants, tenant_specs=specs, seed=seed,
        )
    elif prefix_sharing:
        # A shared-system-prompt stream: half the prompt is the common
        # prefix, so the hit rate and blocks-saved figures are non-trivial.
        workload = build_prefix_workload(
            requests, num_heads, max(block_size, context // 2),
            max(1, context // 2), steps, head_dim, rate=rate, seed=seed,
        )
    else:
        workload = build_serving_workload(
            requests, num_heads, context, steps, head_dim, rate=rate, seed=seed
        )
    serve_kwargs = dict(
        max_active=max_active,
        token_budget=budget,
        block_size=block_size,
        policy=policy,
        prefix_sharing=prefix_sharing,
        chunk_tokens=chunk,
        round_token_budget=round_tokens,
        tenant_weights=tenant_weights,
        batched_decode=batched,
        draft_policy=draft_policy,
        spec_accept_tol=spec_accept_tol,
    )
    if tiering:
        from repro.engine.cache import TierConfig

        serve_kwargs["tiering"] = TierConfig(
            min_resident_planes=tier_min_planes,
            restore_blocks_per_round=tier_restore_blocks,
        )
    if replicas > 1:
        # Sharded serving: the workload fans out over subprocess workers,
        # each a full engine with a private pool, behind the affinity
        # router.  Workers run the standard batched decode path only.
        if chunk or round_tokens or tenant_weights is not None or not batched \
                or tiering:
            raise ValueError(
                "replicas > 1 serves through cluster workers, which run the "
                "standard batched decode path (no chunked prefill, prefill "
                "cost model, tenant weights, or tiered memory)"
            )
        from repro.cluster.server import serve_workload_over_cluster

        _dones, ack, _cluster = serve_workload_over_cluster(
            workload,
            replicas=replicas,
            routing=routing,
            barrier=True,
            seed=seed,
            port=port,
            max_active=max_active,
            token_budget=budget,
            block_size=block_size,
            policy=policy,
            attention=attention,
            prefix_sharing=prefix_sharing,
            draft_policy=draft_policy,
            spec_accept_tol=spec_accept_tol,
        )
        report = ack["report"]
    elif async_serve:
        # Same workload, same scheduler knobs, but served over a real
        # loopback socket with per-token streaming.  Deterministic-replay
        # mode (all submits land before round 0) makes the round-clock
        # report identical to the in-process path; the wall_*_ms block
        # on top is measured, not simulated.
        from repro.serve.client import serve_workload_over_loopback

        _dones, _ack, server = serve_workload_over_loopback(
            engine, workload, barrier=True, port=port, **serve_kwargs
        )
        report = server.report()
    else:
        results = engine.serve(workload, **serve_kwargs)
        scheduler = engine.last_serve
        report = summarize_serving(
            results.values(),
            occupancy=scheduler.occupancy,
            token_budget=scheduler.pool.token_budget if scheduler.pool else None,
            scheduler=scheduler,
        )
    return {
        "backend": resolve_backend_name(),
        "attention_policy": engine.policy.name,
        "policy": policy,
        "scenario": scenario or "",
        # summarize_serving emits "tenants" (distinct tenants observed in
        # results); this echoes the configured knob under its own key.
        "tenants_configured": float(tenants),
        "rate": rate,
        "token_budget": float(budget),
        "block_size": float(block_size),
        "max_active": float(max_active),
        "prefix_sharing": float(prefix_sharing),
        "chunk_tokens": float(chunk),
        "round_token_budget": float(round_tokens),
        "batched_decode": float(batched),
        "async_serve": float(async_serve),
        "replicas_configured": float(replicas),
        "routing": routing,
        "speculative": float(speculative),
        "parallel_samples": float(parallel_samples),
        "draft_policy_configured": draft_policy if speculative else "",
        "draft_tokens_configured": float(draft_tokens),
        **report,
        "engine_sparsity": engine.stats.sparsity,
    }


def fig26_decoding(
    seq_lens: Sequence[int] = (4096, 8192, 16384), steps: int = 256
) -> Dict[int, Dict[str, Dict[str, float]]]:
    """Long-sequence decoding energy breakdown: dense / SOFA / PADE."""
    model = get_model("llama2-7b")
    out: Dict[int, Dict[str, Dict[str, float]]] = {}
    for seq in seq_lens:
        stats = measure_pipeline_stats(model, seq)
        w = AttentionWorkload(
            num_queries=steps, seq_len=seq, head_dim=model.head_dim,
            num_heads=model.num_heads, num_layers=model.num_layers, decode=True,
            oracle_keep=stats.keep_fraction / 1.05, mean_planes=stats.mean_planes,
        )
        dense = DenseAccelerator().cost(w)
        reports = {"dense": dense, "sofa": SofaModel().cost(w), "pade": PadeAnalyticModel().cost(w)}
        out[seq] = {}
        for n, r in reports.items():
            e = r.energy_pj
            total = r.total_energy_pj
            out[seq][n] = {
                "total_vs_dense": total / dense.total_energy_pj,
                "dram_share": (e.get("dram", 0.0) + e.get("predictor_memory", 0.0) * 0.8 + e.get("gpu_dynamic", 0.0) * 0.0) / total,
                "buffer_share": e.get("sram", 0.0) / total,
                "compute_share": (e.get("compute", 0.0) + e.get("predictor_compute", 0.0)) / total,
            }
    return out
