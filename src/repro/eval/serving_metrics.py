"""Serving-side latency and utilization metrics (TTFT / TPOT / queueing).

The figure harness measures *per-call* quantities (sparsity, bit ops,
energy); a serving stack is judged on a different currency — how long a
request waits (queueing delay), how fast the first token lands (TTFT),
how fast tokens stream after that (TPOT), and how well the KV budget is
used (pool occupancy).  This module turns the per-request timing the
continuous scheduler records into those numbers, with the p50/p95/p99
tails that capacity planning actually cares about.

Round-based times are in decode-round units on the scheduler's clock;
the conversions to wall-clock are a single multiply by the round latency
of whatever hardware model is being costed, so ratios and percentile
shapes carry over unchanged.  The async front-end
(:mod:`repro.serve`) additionally stamps *measured* wall-clock marks
(``wall_*_ms``, milliseconds on a monotonic clock relative to the server
epoch) onto each :class:`RequestTiming` via :func:`with_wall_clock`;
when any timing carries them, :func:`summarize_serving` reports
wall-clock TTFT/TPOT/queueing percentiles alongside the round-based
ones.  Every latency series also reports its sample count
(``n_{prefix}``) so an empty series — all-zero percentiles — cannot be
mistaken for genuinely perfect latency.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "RequestTiming",
    "timing_from_result",
    "with_wall_clock",
    "latency_percentiles",
    "jain_fairness_index",
    "prefix_cache_stats",
    "summarize_serving",
    "summarize_cluster",
]

#: Tail percentiles reported for every latency series.
PERCENTILES = (50.0, 95.0, 99.0)


@dataclass(frozen=True)
class RequestTiming:
    """Clock marks of one served request (decode-round units).

    ``first_token_time`` is when the first decode token (or the prefill
    output, for prefill-only requests) became available; ``decode_tokens``
    counts generated tokens.

    The ``wall_*_ms`` fields are *measured* wall-clock marks stamped by
    the async front-end (milliseconds on a monotonic clock, relative to
    the server epoch — see :func:`with_wall_clock`); they stay ``None``
    for in-process simulation runs, where only the round clock exists.
    """

    request_id: str
    arrival_time: float
    admit_time: Optional[float]  # None = never admitted (queued abort)
    first_token_time: Optional[float]
    finish_time: float
    prompt_tokens: int
    decode_tokens: int
    preemptions: int = 0
    final_length: int = 0  # KV tokens resident at finish/abort
    tenant: str = "default"
    priority: int = 0
    deadline_ms: Optional[float] = None
    status: str = "ok"
    abort_reason: Optional[str] = None
    wall_arrival_ms: Optional[float] = None
    wall_admit_ms: Optional[float] = None
    wall_first_token_ms: Optional[float] = None
    wall_finish_ms: Optional[float] = None

    @property
    def aborted(self) -> bool:
        return self.status == "aborted"

    @property
    def deadline_missed(self) -> bool:
        """A completion SLO was set and not met — scheduler-caused abort
        or late finish; voluntary cancellations don't count (shared
        predicate: :func:`repro.engine.scheduler.deadline_was_missed`)."""
        from repro.engine.scheduler import deadline_was_missed

        return deadline_was_missed(
            self.deadline_ms, self.status, self.abort_reason,
            self.arrival_time, self.finish_time,
        )

    @property
    def queueing_delay(self) -> float:
        """Rounds spent waiting for admission (slot + memory headroom).

        A request aborted while still queued waited its whole life:
        ``finish - arrival``.
        """
        if self.admit_time is None:
            return self.finish_time - self.arrival_time
        return self.admit_time - self.arrival_time

    @property
    def ttft(self) -> float:
        """Time to first token, measured from *arrival* (the user's view)."""
        first = self.finish_time if self.first_token_time is None else self.first_token_time
        return first - self.arrival_time

    @property
    def tpot(self) -> float:
        """Mean time per output token after the first (0 for <=1 token)."""
        if self.decode_tokens <= 1 or self.first_token_time is None:
            return 0.0
        return (self.finish_time - self.first_token_time) / (self.decode_tokens - 1)

    # -- measured wall-clock views (None when no wall marks were stamped)
    @property
    def wall_ttft_ms(self) -> Optional[float]:
        """Measured wall-clock time to first token from arrival (ms)."""
        if self.wall_arrival_ms is None:
            return None
        first = (
            self.wall_finish_ms
            if self.wall_first_token_ms is None
            else self.wall_first_token_ms
        )
        if first is None:
            return None
        return first - self.wall_arrival_ms

    @property
    def wall_tpot_ms(self) -> Optional[float]:
        """Measured mean wall ms per output token after the first."""
        if (
            self.decode_tokens <= 1
            or self.wall_first_token_ms is None
            or self.wall_finish_ms is None
        ):
            return None
        return (self.wall_finish_ms - self.wall_first_token_ms) / (self.decode_tokens - 1)

    @property
    def wall_queueing_ms(self) -> Optional[float]:
        """Measured wall ms spent waiting for admission (whole life for
        a request aborted while still queued, mirroring
        :attr:`queueing_delay`)."""
        if self.wall_arrival_ms is None:
            return None
        if self.wall_admit_ms is None:
            if self.wall_finish_ms is None:
                return None
            return self.wall_finish_ms - self.wall_arrival_ms
        return self.wall_admit_ms - self.wall_arrival_ms


def with_wall_clock(
    timing: RequestTiming,
    arrival_ms: Optional[float] = None,
    admit_ms: Optional[float] = None,
    first_token_ms: Optional[float] = None,
    finish_ms: Optional[float] = None,
) -> RequestTiming:
    """Stamp measured wall-clock marks onto a round-clock timing.

    All marks are milliseconds on one monotonic clock
    (``time.perf_counter`` based — never the NTP-adjustable wall clock)
    relative to a shared epoch, so differences are always non-negative.
    """
    return replace(
        timing,
        wall_arrival_ms=arrival_ms,
        wall_admit_ms=admit_ms,
        wall_first_token_ms=first_token_ms,
        wall_finish_ms=finish_ms,
    )


def timing_from_result(result) -> RequestTiming:
    """Extract a :class:`RequestTiming` from a scheduler ``RequestResult``."""
    return RequestTiming(
        request_id=result.request_id,
        arrival_time=result.arrival_time,
        admit_time=result.admit_time,
        first_token_time=result.first_token_time,
        finish_time=result.finish_time,
        prompt_tokens=result.prompt_tokens,
        decode_tokens=result.decode_outputs.shape[1],
        preemptions=result.preemptions,
        final_length=getattr(result, "final_length", 0),
        tenant=getattr(result, "tenant", "default"),
        priority=getattr(result, "priority", 0),
        deadline_ms=getattr(result, "deadline_ms", None),
        status=getattr(result, "status", "ok"),
        abort_reason=getattr(result, "abort_reason", None),
    )


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index over per-tenant allocations.

    ``(Σx)² / (n · Σx²)`` — 1.0 when every tenant gets the same share,
    ``1/n`` when one tenant takes everything.  Degenerate inputs (empty,
    or all-zero allocations) report 1.0: nothing was served, so nothing
    was served *unfairly*.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 1.0
    if (arr < 0).any():
        raise ValueError("allocations must be >= 0")
    square_sum = float((arr * arr).sum())
    if square_sum == 0.0:
        return 1.0
    return float(arr.sum()) ** 2 / (arr.size * square_sum)


def latency_percentiles(values: Sequence[float], prefix: str) -> Dict[str, float]:
    """Mean + p50/p95/p99 of a latency series, keyed ``{prefix}_{stat}``.

    Uses linear interpolation (numpy default) so small request counts
    still produce stable, monotone tails.  An empty series reports zeros
    *plus* ``n_{prefix} = 0`` — every series carries its sample count,
    so report consumers (and the bench sanity gates) can tell "no data"
    from "zero latency" (an all-aborted flood produces the former).
    """
    out = {f"n_{prefix}": float(len(values)), f"mean_{prefix}": 0.0}
    out.update({f"p{int(q)}_{prefix}": 0.0 for q in PERCENTILES})
    if len(values) == 0:
        return out
    arr = np.asarray(values, dtype=np.float64)
    out[f"mean_{prefix}"] = float(arr.mean())
    for q in PERCENTILES:
        out[f"p{int(q)}_{prefix}"] = float(np.percentile(arr, q))
    return out


def prefix_cache_stats(
    hit_blocks: int, miss_blocks: int, bytes_per_block: int = 0
) -> Dict[str, float]:
    """Prefix-cache effectiveness in serving currency.

    ``hit_blocks`` is how many full prompt blocks were attached from the
    pool's content index instead of allocated + re-decomposed;
    ``miss_blocks`` how many shareable blocks had to be written fresh.
    Every hit is one pool block *and* one block's worth of prefill
    compute saved, so the report doubles as a blocks-saved figure.
    """
    shareable = hit_blocks + miss_blocks
    return {
        "prefix_hit_blocks": float(hit_blocks),
        "prefix_miss_blocks": float(miss_blocks),
        "prefix_hit_rate": hit_blocks / shareable if shareable else 0.0,
        "prefix_blocks_saved": float(hit_blocks),
        "prefix_bytes_saved": float(hit_blocks * bytes_per_block),
    }


def summarize_serving(
    results: Iterable,
    occupancy: Sequence[Tuple[float, int, int]] = (),
    token_budget: Optional[int] = None,
    scheduler=None,
) -> Dict[str, float]:
    """Reduce per-request results + the occupancy timeline to one report.

    ``results`` is any iterable of ``RequestResult`` (or pre-built
    :class:`RequestTiming`, which the async front-end passes so its
    wall-clock marks survive); ``occupancy`` is the scheduler's
    ``(time, used_tokens, active_requests)`` timeline.  The report
    covers latency (TTFT / TPOT / queueing delay, each with
    n/mean/p50/p95/p99, measured over *completed* requests; a
    ``wall_*_ms`` block is added when wall marks are present),
    throughput (generated tokens per round over the makespan),
    preemption count, and — when ``token_budget`` is given — mean/peak
    pool occupancy as a fraction of the budget, with means
    *time-weighted* over the sample intervals so fast-forwarded idle
    gaps count for their full duration.

    The multi-tenant SLO block is always present: completed/aborted
    counts (aborts split by reason), the deadline-miss rate over
    deadlined requests (aborts *and* late finishes count as misses),
    Jain's fairness index over per-tenant generated tokens
    (``jain_fairness_index``, with ``tenant_tokens_{name}`` detail) and
    over resident KV service (``jain_service_index`` — the quantity the
    ``fair`` policy equalizes), and — whenever more than one priority
    class appears — per-class TTFT/TPOT percentiles keyed
    ``..._ttft_class{p}`` / ``..._tpot_class{p}``.  Passing the
    ``ContinuousScheduler`` itself adds the prefix-cache figures
    (hit rate, blocks/bytes saved, peak live blocks), the chunked-
    prefill stall counters (``chunk_stall_rounds`` — rounds a prefill got
    zero budget; ``decode_blocked_rounds`` — rounds an unchunked prefill
    stalled decode), and the per-policy attention columns read off the
    engine: achieved sparsity over candidate pairs plus the paper's
    Fig. 15 cost split (mean prediction/execution cost per attention
    call and their sum, the sparsity level).
    """
    timings = [
        r if isinstance(r, RequestTiming) else timing_from_result(r) for r in results
    ]
    if not timings:
        raise ValueError("no results to summarize")
    completed = [t for t in timings if not t.aborted]
    aborted = [t for t in timings if t.aborted]
    report: Dict[str, float] = {"requests": float(len(timings))}
    report["completed_requests"] = float(len(completed))
    report["aborted_requests"] = float(len(aborted))
    for reason in ("deadline", "queue-timeout", "cancelled"):
        key = f"aborted_{reason.replace('-', '_')}"
        report[key] = float(sum(1 for t in aborted if t.abort_reason == reason))
    deadlined = [t for t in timings if t.deadline_ms is not None]
    misses = sum(1 for t in deadlined if t.deadline_missed)
    report["deadline_requests"] = float(len(deadlined))
    report["deadline_misses"] = float(misses)
    report["deadline_miss_rate"] = misses / len(deadlined) if deadlined else 0.0

    report.update(latency_percentiles([t.ttft for t in completed], "ttft"))
    report.update(
        latency_percentiles([t.tpot for t in completed if t.decode_tokens > 1], "tpot")
    )
    report.update(latency_percentiles([t.queueing_delay for t in completed], "queueing_delay"))

    # Measured wall-clock latency block: only when the async front-end
    # stamped wall marks (in-process simulation reports stay unchanged).
    if any(t.wall_arrival_ms is not None for t in timings):
        wall_ttft = [t.wall_ttft_ms for t in completed if t.wall_ttft_ms is not None]
        wall_tpot = [t.wall_tpot_ms for t in completed if t.wall_tpot_ms is not None]
        wall_queue = [
            t.wall_queueing_ms for t in completed if t.wall_queueing_ms is not None
        ]
        report.update(latency_percentiles(wall_ttft, "wall_ttft_ms"))
        if wall_tpot:
            report.update(latency_percentiles(wall_tpot, "wall_tpot_ms"))
        else:
            # Every completion streamed <= 1 token, so no TPOT sample
            # exists (the first token is TTFT's).  Emit only the count:
            # zero percentiles here would read as a measured 0.0 ms per
            # token instead of "no data".
            report["n_wall_tpot_ms"] = 0.0
        report.update(latency_percentiles(wall_queue, "wall_queueing_ms"))
        wall_start = [t.wall_arrival_ms for t in timings if t.wall_arrival_ms is not None]
        wall_end = [t.wall_finish_ms for t in timings if t.wall_finish_ms is not None]
        if wall_start and wall_end:
            wall_makespan = max(wall_end) - min(wall_start)
            report["wall_makespan_ms"] = wall_makespan
            report["wall_tokens_per_s"] = (
                1000.0 * sum(t.decode_tokens for t in timings) / wall_makespan
                if wall_makespan > 0
                else 0.0
            )

    # Per-class latency tails: only when the workload actually has classes
    # (single-class reports stay exactly the pre-SLO shape).
    classes = sorted({t.priority for t in timings})
    if len(classes) > 1:
        for prio in classes:
            in_class = [t for t in completed if t.priority == prio]
            report.update(
                latency_percentiles([t.ttft for t in in_class], f"ttft_class{prio}")
            )
            report.update(
                latency_percentiles(
                    [t.tpot for t in in_class if t.decode_tokens > 1], f"tpot_class{prio}"
                )
            )

    # Per-tenant fairness, two views.  ``jain_fairness_index`` is over
    # *delivered decode tokens* (what each tenant's users actually
    # received; aborted requests count their partial streams).
    # ``jain_service_index`` is over resident KV service (prompt written
    # + decode, via ``final_length``) — the quantity the ``fair`` policy
    # equalizes, so with skewed prompt/output shapes the two can
    # legitimately diverge.
    tenant_tokens: Dict[str, float] = {}
    tenant_service: Dict[str, float] = {}
    for t in timings:
        tenant_tokens[t.tenant] = tenant_tokens.get(t.tenant, 0.0) + t.decode_tokens
        service = t.final_length
        if not service and not t.aborted:
            service = t.prompt_tokens + t.decode_tokens
        tenant_service[t.tenant] = tenant_service.get(t.tenant, 0.0) + service
    report["tenants"] = float(len(tenant_tokens))
    report["jain_fairness_index"] = jain_fairness_index(list(tenant_tokens.values()))
    report["jain_service_index"] = jain_fairness_index(list(tenant_service.values()))
    if len(tenant_tokens) > 1:
        for tenant in sorted(tenant_tokens):
            report[f"tenant_tokens_{tenant}"] = tenant_tokens[tenant]

    first_arrival = min(t.arrival_time for t in timings)
    last_finish = max(t.finish_time for t in timings)
    makespan = last_finish - first_arrival
    total_decode = sum(t.decode_tokens for t in timings)
    report["makespan_rounds"] = makespan
    report["generated_tokens"] = float(total_decode)
    report["throughput_tokens_per_round"] = total_decode / makespan if makespan > 0 else 0.0
    report["preemptions"] = float(sum(t.preemptions for t in timings))

    if occupancy:
        times = np.asarray([t for t, _, _ in occupancy], dtype=np.float64)
        used = np.asarray([u for _, u, _ in occupancy], dtype=np.float64)
        active = np.asarray([a for _, _, a in occupancy], dtype=np.float64)
        # Each sample covers the interval since the previous one (the
        # first covers one round), so means are *time-weighted*: an idle
        # gap the scheduler fast-forwarded across counts for its full
        # duration instead of one sample — executed rounds (1-unit
        # intervals) keep weight 1, so dense timelines are unchanged.
        weights = np.ones_like(times)
        if times.size > 1:
            weights[1:] = np.diff(times)
        span = float(weights.sum())
        report["peak_active_requests"] = float(active.max())
        report["mean_active_requests"] = float((active * weights).sum() / span)
        if token_budget:
            report["mean_pool_occupancy"] = float(
                (used * weights).sum() / (span * token_budget)
            )
            report["peak_pool_occupancy"] = float(used.max() / token_budget)

    if scheduler is not None:
        pool = getattr(scheduler, "pool", None)
        report.update(
            prefix_cache_stats(
                getattr(scheduler, "prefix_hit_blocks", 0),
                getattr(scheduler, "prefix_miss_blocks", 0),
                pool.bytes_per_block if pool is not None else 0,
            )
        )
        report["chunk_stall_rounds"] = float(getattr(scheduler, "chunk_stall_rounds", 0))
        report["decode_blocked_rounds"] = float(
            getattr(scheduler, "decode_blocked_rounds", 0)
        )
        if pool is not None:
            report["peak_used_blocks"] = float(pool.peak_used_blocks)
        if getattr(scheduler, "tiering", None) is not None and pool is not None:
            # Accuracy-vs-pressure columns, emitted only when the tiered
            # backend ran so the disabled report stays byte-identical.
            report["spill_reliefs"] = float(scheduler.spill_reliefs)
            report["spill_events"] = float(pool.spill_events)
            report["restore_events"] = float(pool.restore_events)
            report["spilled_plane_bytes"] = float(pool.spilled_plane_bytes)
            report["restored_plane_bytes"] = float(pool.restored_plane_bytes)
            report["tier_prefetch_restores"] = float(scheduler.tier_prefetch_restores)
            report["degraded_token_fraction"] = float(
                scheduler.degraded_tokens / max(1, scheduler.decoded_tokens)
            )
            report["tier_min_resident_planes"] = float(
                scheduler.tiering.min_resident_planes
            )
            rounds = max(1, scheduler.tier_hist_rounds)
            for level, count in sorted(scheduler.planes_hist.items()):
                report[f"planes_resident_{level}"] = float(count / rounds)
            dram = pool.tier_dram_stats()
            report["tier_restore_cycles"] = float(dram["restore"].cycles)
            report["tier_restore_energy_pj"] = float(dram["restore"].energy_pj)
        if getattr(scheduler, "spec_rounds", 0):
            # Draft-verify speculative decoding: the headline is emitted
            # tokens per verifier round (plain decode is 1.0 by
            # construction — one token per round per request).
            report["spec_rounds"] = float(scheduler.spec_rounds)
            report["spec_drafted_tokens"] = float(scheduler.spec_drafted_tokens)
            report["spec_accepted_tokens"] = float(scheduler.spec_accepted_tokens)
            report["spec_emitted_tokens"] = float(scheduler.spec_emitted_tokens)
            report["spec_rollbacks"] = float(scheduler.spec_rollbacks)
            report["accepted_tokens_per_round"] = (
                scheduler.spec_emitted_tokens / scheduler.spec_rounds
            )
            report["draft_acceptance_rate"] = (
                scheduler.spec_accepted_tokens
                / max(1, scheduler.spec_drafted_tokens)
            )
        if getattr(scheduler, "parallel_requests", 0):
            # n-best parallel sampling: amplification is unique physical
            # blocks across all lineages over one lineage's blocks — 1.0
            # means perfect sharing, n means no sharing at all.
            report["parallel_requests"] = float(scheduler.parallel_requests)
            report["parallel_unique_blocks"] = float(scheduler.parallel_unique_blocks)
            report["parallel_replicated_blocks"] = float(
                scheduler.parallel_replicated_blocks
            )
            report["pool_amplification_factor"] = (
                scheduler.parallel_unique_blocks
                / max(1, scheduler.parallel_single_blocks)
            )
        engine = getattr(scheduler, "engine", None)
        stats = getattr(engine, "stats", None)
        if stats is not None:
            report["policy_sparsity"] = float(stats.sparsity)
            report["policy_prediction_cost"] = float(stats.mean_prediction_cost)
            report["policy_execution_cost"] = float(stats.mean_execution_cost)
            report["policy_sparsity_level"] = float(stats.mean_sparsity_level)
            # Fused-decode occupancy: how many rounds ran as one
            # cross-request filter call, and how full the padded lattice
            # was when they did (1.0 = perfectly rectangular active set).
            report["batched_rounds"] = float(stats.batched_rounds)
            report["batch_efficiency"] = float(stats.batch_efficiency)
    return report


def summarize_cluster(replica_reports: Sequence[Dict[str, float]]) -> Dict[str, float]:
    """Roll per-replica serving reports up into one cluster report.

    ``replica_reports`` is one :func:`summarize_serving` dict per replica
    (an empty dict for a replica that served nothing — a dead replica,
    or one the router simply never picked).  Counts sum; the cluster
    makespan is the *max* per-replica makespan, because replicas are
    independent engines running concurrently — on the shared round
    clock, the cluster is done when its slowest replica is done, so
    ``cluster_throughput_tokens_per_round`` is total generated tokens
    over that max.  Prefix-cache hit/miss blocks sum before the hit rate
    is recomputed (so the cluster rate is request-weighted, not an
    average of rates), and ``jain_replica_index`` applies Jain's index
    to per-replica generated tokens — the load-balance figure, with
    ``tokens_r{i}`` detail columns.  Worst-tail columns
    (``worst_p95_ttft`` etc.) take the max across replicas: the SLO a
    cluster operator quotes is the one its worst shard delivers.
    """
    reports = list(replica_reports)
    if not reports:
        raise ValueError("no replica reports to summarize")
    served = [r for r in reports if r]
    out: Dict[str, float] = {
        "replicas": float(len(reports)),
        "reporting_replicas": float(len(served)),
    }

    def total(key: str) -> float:
        return float(sum(float(r.get(key, 0.0)) for r in served))

    for key in (
        "requests",
        "completed_requests",
        "aborted_requests",
        "generated_tokens",
        "preemptions",
    ):
        out[key] = total(key)
    makespan = max((float(r.get("makespan_rounds", 0.0)) for r in served), default=0.0)
    out["cluster_makespan_rounds"] = makespan
    out["cluster_throughput_tokens_per_round"] = (
        out["generated_tokens"] / makespan if makespan > 0 else 0.0
    )
    hit = total("prefix_hit_blocks")
    miss = total("prefix_miss_blocks")
    out.update(prefix_cache_stats(int(hit), int(miss)))
    out["prefix_bytes_saved"] = total("prefix_bytes_saved")
    out["jain_replica_index"] = jain_fairness_index(
        [float(r.get("generated_tokens", 0.0)) for r in reports]
    )
    for i, r in enumerate(reports):
        out[f"tokens_r{i}"] = float(r.get("generated_tokens", 0.0))
    for key in ("p95_ttft", "p99_ttft", "p95_queueing_delay", "p95_wall_ttft_ms"):
        values = [float(r[key]) for r in served if key in r]
        if values:
            out[f"worst_{key}"] = max(values)
    return out
