"""Serving-side latency and utilization metrics (TTFT / TPOT / queueing).

The figure harness measures *per-call* quantities (sparsity, bit ops,
energy); a serving stack is judged on a different currency — how long a
request waits (queueing delay), how fast the first token lands (TTFT),
how fast tokens stream after that (TPOT), and how well the KV budget is
used (pool occupancy).  This module turns the per-request timing the
continuous scheduler records into those numbers, with the p50/p95/p99
tails that capacity planning actually cares about.

All times are in decode-round units on the scheduler's clock; the
conversions to wall-clock are a single multiply by the round latency of
whatever hardware model is being costed, so ratios and percentile shapes
carry over unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "RequestTiming",
    "timing_from_result",
    "latency_percentiles",
    "prefix_cache_stats",
    "summarize_serving",
]

#: Tail percentiles reported for every latency series.
PERCENTILES = (50.0, 95.0, 99.0)


@dataclass(frozen=True)
class RequestTiming:
    """Clock marks of one served request (decode-round units).

    ``first_token_time`` is when the first decode token (or the prefill
    output, for prefill-only requests) became available; ``decode_tokens``
    counts generated tokens.
    """

    request_id: str
    arrival_time: float
    admit_time: float
    first_token_time: Optional[float]
    finish_time: float
    prompt_tokens: int
    decode_tokens: int
    preemptions: int = 0

    @property
    def queueing_delay(self) -> float:
        """Rounds spent waiting for admission (slot + memory headroom)."""
        return self.admit_time - self.arrival_time

    @property
    def ttft(self) -> float:
        """Time to first token, measured from *arrival* (the user's view)."""
        first = self.finish_time if self.first_token_time is None else self.first_token_time
        return first - self.arrival_time

    @property
    def tpot(self) -> float:
        """Mean time per output token after the first (0 for <=1 token)."""
        if self.decode_tokens <= 1 or self.first_token_time is None:
            return 0.0
        return (self.finish_time - self.first_token_time) / (self.decode_tokens - 1)


def timing_from_result(result) -> RequestTiming:
    """Extract a :class:`RequestTiming` from a scheduler ``RequestResult``."""
    return RequestTiming(
        request_id=result.request_id,
        arrival_time=result.arrival_time,
        admit_time=result.admit_time,
        first_token_time=result.first_token_time,
        finish_time=result.finish_time,
        prompt_tokens=result.prompt_tokens,
        decode_tokens=result.decode_outputs.shape[1],
        preemptions=result.preemptions,
    )


def latency_percentiles(values: Sequence[float], prefix: str) -> Dict[str, float]:
    """Mean + p50/p95/p99 of a latency series, keyed ``{prefix}_{stat}``.

    Uses linear interpolation (numpy default) so small request counts
    still produce stable, monotone tails; an empty series reports zeros.
    """
    out = {f"mean_{prefix}": 0.0}
    out.update({f"p{int(q)}_{prefix}": 0.0 for q in PERCENTILES})
    if len(values) == 0:
        return out
    arr = np.asarray(values, dtype=np.float64)
    out[f"mean_{prefix}"] = float(arr.mean())
    for q in PERCENTILES:
        out[f"p{int(q)}_{prefix}"] = float(np.percentile(arr, q))
    return out


def prefix_cache_stats(
    hit_blocks: int, miss_blocks: int, bytes_per_block: int = 0
) -> Dict[str, float]:
    """Prefix-cache effectiveness in serving currency.

    ``hit_blocks`` is how many full prompt blocks were attached from the
    pool's content index instead of allocated + re-decomposed;
    ``miss_blocks`` how many shareable blocks had to be written fresh.
    Every hit is one pool block *and* one block's worth of prefill
    compute saved, so the report doubles as a blocks-saved figure.
    """
    shareable = hit_blocks + miss_blocks
    return {
        "prefix_hit_blocks": float(hit_blocks),
        "prefix_miss_blocks": float(miss_blocks),
        "prefix_hit_rate": hit_blocks / shareable if shareable else 0.0,
        "prefix_blocks_saved": float(hit_blocks),
        "prefix_bytes_saved": float(hit_blocks * bytes_per_block),
    }


def summarize_serving(
    results: Iterable,
    occupancy: Sequence[Tuple[float, int, int]] = (),
    token_budget: Optional[int] = None,
    scheduler=None,
) -> Dict[str, float]:
    """Reduce per-request results + the occupancy timeline to one report.

    ``results`` is any iterable of ``RequestResult``; ``occupancy`` is the
    scheduler's ``(time, used_tokens, active_requests)`` timeline.  The
    report covers latency (TTFT / TPOT / queueing delay, each with
    mean/p50/p95/p99), throughput (generated tokens per round over the
    makespan), preemption count, and — when ``token_budget`` is given —
    mean/peak pool occupancy as a fraction of the budget.  Passing the
    ``ContinuousScheduler`` itself adds the prefix-cache figures
    (hit rate, blocks/bytes saved, peak live blocks), the chunked-
    prefill stall counters (``chunk_stall_rounds`` — rounds a prefill got
    zero budget; ``decode_blocked_rounds`` — rounds an unchunked prefill
    stalled decode), and the per-policy attention columns read off the
    engine: achieved sparsity over candidate pairs plus the paper's
    Fig. 15 cost split (mean prediction/execution cost per attention
    call and their sum, the sparsity level).
    """
    timings = [timing_from_result(r) for r in results]
    if not timings:
        raise ValueError("no results to summarize")
    report: Dict[str, float] = {"requests": float(len(timings))}
    report.update(latency_percentiles([t.ttft for t in timings], "ttft"))
    report.update(latency_percentiles([t.tpot for t in timings if t.decode_tokens > 1], "tpot"))
    report.update(latency_percentiles([t.queueing_delay for t in timings], "queueing_delay"))

    first_arrival = min(t.arrival_time for t in timings)
    last_finish = max(t.finish_time for t in timings)
    makespan = last_finish - first_arrival
    total_decode = sum(t.decode_tokens for t in timings)
    report["makespan_rounds"] = makespan
    report["generated_tokens"] = float(total_decode)
    report["throughput_tokens_per_round"] = total_decode / makespan if makespan > 0 else 0.0
    report["preemptions"] = float(sum(t.preemptions for t in timings))

    if occupancy:
        used = np.asarray([u for _, u, _ in occupancy], dtype=np.float64)
        active = np.asarray([a for _, _, a in occupancy], dtype=np.float64)
        report["peak_active_requests"] = float(active.max())
        report["mean_active_requests"] = float(active.mean())
        if token_budget:
            report["mean_pool_occupancy"] = float(used.mean() / token_budget)
            report["peak_pool_occupancy"] = float(used.max() / token_budget)

    if scheduler is not None:
        pool = getattr(scheduler, "pool", None)
        report.update(
            prefix_cache_stats(
                getattr(scheduler, "prefix_hit_blocks", 0),
                getattr(scheduler, "prefix_miss_blocks", 0),
                pool.bytes_per_block if pool is not None else 0,
            )
        )
        report["chunk_stall_rounds"] = float(getattr(scheduler, "chunk_stall_rounds", 0))
        report["decode_blocked_rounds"] = float(
            getattr(scheduler, "decode_blocked_rounds", 0)
        )
        if pool is not None:
            report["peak_used_blocks"] = float(pool.peak_used_blocks)
        engine = getattr(scheduler, "engine", None)
        stats = getattr(engine, "stats", None)
        if stats is not None:
            report["policy_sparsity"] = float(stats.sparsity)
            report["policy_prediction_cost"] = float(stats.mean_prediction_cost)
            report["policy_execution_cost"] = float(stats.mean_execution_cost)
            report["policy_sparsity_level"] = float(stats.mean_sparsity_level)
    return report
