"""2's-complement bit-plane decomposition (the substrate of BSF).

PADE's bit-serial stage fusion processes each Key vector one *bit plane* at a
time, MSB first.  For a ``p``-bit 2's-complement integer ``b_{p-1} ... b_0``
(paper Eq. 2):

    x = -b_{p-1} * 2^(p-1) + sum_{i=0}^{p-2} b_i * 2^i

We index planes MSB-first: plane 0 is the sign bit with weight ``-2^(p-1)``
and plane ``i >= 1`` has weight ``+2^(p-1-i)``.  Because every non-sign bit
contributes a non-negative amount, knowing a *prefix* of planes bounds the
value from below (all unknown bits zero) and above (all unknown bits one) —
the property the bit-wise uncertainty interval (BUI, §IV-A) is built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "BitPlanes",
    "plane_weights",
    "unknown_weight_sum",
    "decompose_bitplanes",
    "reconstruct_from_planes",
    "partial_reconstruct",
    "popcount_per_plane",
]


def plane_weights(bits: int) -> np.ndarray:
    """Weights of each MSB-first plane of a ``bits``-wide 2's-complement int.

    >>> plane_weights(4).tolist()
    [-8, 4, 2, 1]
    """
    if bits < 2:
        raise ValueError(f"need at least 2 bits, got {bits}")
    weights = np.array([1 << (bits - 1 - i) for i in range(bits)], dtype=np.int64)
    weights[0] = -weights[0]
    return weights


def unknown_weight_sum(bits: int, planes_known: int) -> int:
    """Total positive weight of the planes *not yet* processed.

    After the first ``planes_known`` MSB-first planes are known, the unknown
    planes are ``planes_known .. bits-1``, all with positive weights summing
    to ``2^(bits - planes_known) - 1`` (for ``planes_known >= 1``).  This is
    the ``W(r)`` of DESIGN.md §6 and the magnitude the BUI scales the
    positive/negative query mass by.

    >>> unknown_weight_sum(8, 1)
    127
    >>> unknown_weight_sum(8, 8)
    0
    """
    if not 1 <= planes_known <= bits:
        raise ValueError(f"planes_known must be in [1, {bits}], got {planes_known}")
    return (1 << (bits - planes_known)) - 1


@dataclass(frozen=True)
class BitPlanes:
    """MSB-first bit planes of an integer tensor.

    ``planes`` has shape ``(bits,) + value_shape`` with entries in {0, 1};
    ``planes[0]`` is the sign plane.
    """

    planes: np.ndarray
    bits: int

    @property
    def value_shape(self) -> Tuple[int, ...]:
        return self.planes.shape[1:]

    def plane(self, index: int) -> np.ndarray:
        """Return plane ``index`` (0 = MSB)."""
        return self.planes[index]

    def reconstruct(self, planes_known: int | None = None) -> np.ndarray:
        """Rebuild integers from the first ``planes_known`` planes.

        Unknown planes are treated as zero — the "conservative value"
        ``S^r`` of paper Eq. (3) when applied inside a dot product.
        """
        known = self.bits if planes_known is None else planes_known
        return partial_reconstruct(self, known)


def decompose_bitplanes(values: np.ndarray, bits: int = 8) -> BitPlanes:
    """Split an integer tensor into MSB-first 2's-complement bit planes.

    ``values`` must fit in a signed ``bits``-wide integer.
    """
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.integer):
        raise TypeError(f"expected an integer tensor, got dtype {values.dtype}")
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if values.size and (values.min() < lo or values.max() > hi):
        raise ValueError(f"values out of int{bits} range [{lo}, {hi}]")
    # 2's complement: reinterpret as unsigned bits-wide, then slice bits.
    unsigned = values.astype(np.int64) & ((1 << bits) - 1)
    planes = np.empty((bits,) + values.shape, dtype=np.uint8)
    for i in range(bits):
        shift = bits - 1 - i  # plane 0 = MSB
        planes[i] = (unsigned >> shift) & 1
    return BitPlanes(planes=planes, bits=bits)


def reconstruct_from_planes(bp: BitPlanes) -> np.ndarray:
    """Exact inverse of :func:`decompose_bitplanes` (returns int64)."""
    return partial_reconstruct(bp, bp.bits)


def partial_reconstruct(bp: BitPlanes, planes_known: int) -> np.ndarray:
    """Reconstruct with only the first ``planes_known`` planes, rest zeroed.

    With ``planes_known == bits`` this is the exact value; with fewer planes
    it is the lower-magnitude "all unknown bits = 0" value used as the
    conservative partial score in BUI-GF.
    """
    if not 0 <= planes_known <= bp.bits:
        raise ValueError(f"planes_known must be in [0, {bp.bits}], got {planes_known}")
    weights = plane_weights(bp.bits)
    out = np.zeros(bp.value_shape, dtype=np.int64)
    for i in range(planes_known):
        out += weights[i] * bp.planes[i].astype(np.int64)
    return out


def popcount_per_plane(bp: BitPlanes, axis: int | None = None) -> np.ndarray:
    """Number of set bits in each plane (optionally along one value axis).

    This drives the bidirectional-sparsity load model: a plane's *effective*
    work under BS is ``min(popcount, N - popcount)``.
    """
    planes = bp.planes.astype(np.int64)
    if axis is None:
        return planes.reshape(bp.bits, -1).sum(axis=1)
    return planes.sum(axis=axis + 1)
