"""Symmetric integer quantization.

PADE executes self-attention at 8-bit integer precision (Table III); the
Fig. 26 study additionally evaluates INT4 and QAT-shaped distributions.  This
module implements the post-training symmetric quantizer used throughout the
reproduction: a single power-free scale per tensor (or per row), zero-point
fixed at 0, and round-to-nearest-even semantics matching common PTQ stacks
(GPTQ / SmoothQuant style).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "QuantizedTensor",
    "quantize_symmetric",
    "dequantize",
    "quantization_error",
    "qat_calibrated_scale",
    "int_range",
]


def int_range(bits: int) -> Tuple[int, int]:
    """Return the representable ``(min, max)`` of a signed ``bits``-wide int.

    >>> int_range(8)
    (-128, 127)
    >>> int_range(4)
    (-8, 7)
    """
    if bits < 2:
        raise ValueError(f"need at least 2 bits for signed quantization, got {bits}")
    return -(1 << (bits - 1)), (1 << (bits - 1)) - 1


@dataclass(frozen=True)
class QuantizedTensor:
    """An integer tensor together with its dequantization scale.

    Attributes
    ----------
    data:
        Integer payload, stored as ``int64`` so downstream dot products never
        overflow (a 64-dim INT8 dot product peaks around ``2**20``).
    scale:
        Either a scalar or an array broadcastable against ``data``;
        ``float_value = data * scale``.
    bits:
        Bit width of the quantization grid (the payload is *logically* a
        ``bits``-wide 2's-complement integer even though stored wider).
    """

    data: np.ndarray
    scale: np.ndarray
    bits: int

    def __post_init__(self) -> None:
        qmin, qmax = int_range(self.bits)
        lo = int(self.data.min()) if self.data.size else 0
        hi = int(self.data.max()) if self.data.size else 0
        if lo < qmin or hi > qmax:
            raise ValueError(
                f"payload out of range for int{self.bits}: [{lo}, {hi}] "
                f"not within [{qmin}, {qmax}]"
            )

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    def dequantize(self) -> np.ndarray:
        """Return the float reconstruction ``data * scale``."""
        return self.data.astype(np.float64) * self.scale

    def bytes_per_element(self) -> float:
        """Storage cost of one element in bytes at the logical bit width."""
        return self.bits / 8.0


def _resolve_scale(
    values: np.ndarray, bits: int, axis: Optional[int], scale: Optional[np.ndarray]
) -> np.ndarray:
    if scale is not None:
        return np.asarray(scale, dtype=np.float64)
    _, qmax = int_range(bits)
    # Subnormal inputs can make ``max_abs / qmax`` underflow to exactly
    # 0.0 even though ``max_abs > 0`` — a zero scale then divides by zero
    # downstream.  Flooring at the smallest normal double is a no-op for
    # every normal quotient and keeps the reconstruction-error bound
    # (|err| <= scale/2) intact for subnormal ones.
    tiny = np.finfo(np.float64).tiny
    if axis is None:
        max_abs = float(np.max(np.abs(values))) if values.size else 0.0
        resolved = np.asarray(max(max_abs / qmax, tiny) if max_abs > 0 else 1.0)
    else:
        max_abs = np.max(np.abs(values), axis=axis, keepdims=True)
        resolved = np.where(max_abs > 0, np.maximum(max_abs / qmax, tiny), 1.0)
    return resolved.astype(np.float64)


def quantize_symmetric(
    values: np.ndarray,
    bits: int = 8,
    axis: Optional[int] = None,
    scale: Optional[np.ndarray] = None,
) -> QuantizedTensor:
    """Quantize ``values`` onto a symmetric signed integer grid.

    Parameters
    ----------
    values:
        Float tensor to quantize.
    bits:
        Target bit width (8 for the paper's default executor, 4 for Fig. 26).
    axis:
        If given, compute an independent scale along this axis (per-token
        quantization); otherwise one scale covers the whole tensor.
    scale:
        Explicit scale override (used by calibrated/QAT flows); values are
        clipped into the representable range.
    """
    values = np.asarray(values, dtype=np.float64)
    resolved = _resolve_scale(values, bits, axis, scale)
    qmin, qmax = int_range(bits)
    with np.errstate(divide="ignore", invalid="ignore"):
        q = np.rint(values / resolved)
    q = np.clip(q, qmin, qmax).astype(np.int64)
    return QuantizedTensor(data=q, scale=resolved, bits=bits)


def dequantize(q: QuantizedTensor) -> np.ndarray:
    """Functional alias for :meth:`QuantizedTensor.dequantize`."""
    return q.dequantize()


def quantization_error(values: np.ndarray, q: QuantizedTensor) -> float:
    """Root-mean-square reconstruction error of ``q`` against ``values``."""
    values = np.asarray(values, dtype=np.float64)
    diff = values - q.dequantize()
    return float(np.sqrt(np.mean(diff * diff))) if diff.size else 0.0


def qat_calibrated_scale(values: np.ndarray, bits: int = 8, percentile: float = 99.9) -> float:
    """Return a clipping scale emulating quantization-aware training.

    QAT learns clipping ranges tighter than the absolute maximum, which makes
    the post-quantization distribution more *uniform* — the effect the paper
    leans on in Fig. 26(a) (uniform data reduces the sparsity that predictor
    designs such as SOFA rely on).  We emulate this by clipping at a high
    percentile instead of the max.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 1.0
    _, qmax = int_range(bits)
    bound = float(np.percentile(np.abs(values), percentile))
    return bound / qmax if bound > 0 else 1.0
