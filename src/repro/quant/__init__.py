"""Quantization substrate for the PADE reproduction.

This package provides the numeric building blocks the PADE accelerator
operates on:

* :mod:`repro.quant.integer` — symmetric INT8/INT4 post-training quantization
  (the paper's executor precision) plus a QAT-shaped variant used by the
  Fig. 26 quantization study.
* :mod:`repro.quant.bitplane` — 2's-complement bit-plane decomposition, the
  representation underlying the bit-serial stage-fusion (BSF) strategy.
* :mod:`repro.quant.mxint` — group-wise MXINT micro-scaling format used by
  the Fig. 25 extension study.
"""

from repro.quant.integer import (
    QuantizedTensor,
    quantize_symmetric,
    dequantize,
    quantization_error,
    qat_calibrated_scale,
)
from repro.quant.bitplane import (
    BitPlanes,
    decompose_bitplanes,
    reconstruct_from_planes,
    partial_reconstruct,
    plane_weights,
    unknown_weight_sum,
)
from repro.quant.mxint import MXQuantizedTensor, quantize_mxint, dequantize_mxint

__all__ = [
    "QuantizedTensor",
    "quantize_symmetric",
    "dequantize",
    "quantization_error",
    "qat_calibrated_scale",
    "BitPlanes",
    "decompose_bitplanes",
    "reconstruct_from_planes",
    "partial_reconstruct",
    "plane_weights",
    "unknown_weight_sum",
    "MXQuantizedTensor",
    "quantize_mxint",
    "dequantize_mxint",
]
