"""MXINT micro-scaling format (32-element groups).

The MX format (Rouhani et al., and paper §VI-F / Fig. 25) quantizes along the
channel dimension in fixed-size groups, each with its own scale.  PADE stays
compatible by scaling the bit uncertainty interval group-wise and summing
(see :mod:`repro.core.mx`).  This module provides the group quantizer itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.quant.integer import int_range

__all__ = ["MXQuantizedTensor", "quantize_mxint", "dequantize_mxint", "DEFAULT_GROUP_SIZE"]

DEFAULT_GROUP_SIZE = 32


@dataclass(frozen=True)
class MXQuantizedTensor:
    """Group-quantized tensor: last axis split into groups of ``group_size``.

    Attributes
    ----------
    data:
        Integer payload (int64), same shape as the source tensor.
    scales:
        Per-group scales with shape ``source_shape[:-1] + (num_groups,)``.
    bits:
        Element bit width.
    group_size:
        Number of consecutive last-axis elements sharing a scale.
    """

    data: np.ndarray
    scales: np.ndarray
    bits: int
    group_size: int

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def num_groups(self) -> int:
        return self.scales.shape[-1]

    def group_slice(self, g: int) -> slice:
        start = g * self.group_size
        return slice(start, start + self.group_size)

    def dequantize(self) -> np.ndarray:
        return dequantize_mxint(self)


def quantize_mxint(
    values: np.ndarray, bits: int = 8, group_size: int = DEFAULT_GROUP_SIZE
) -> MXQuantizedTensor:
    """Quantize ``values`` with a shared scale per ``group_size`` channel group.

    The last axis must be a multiple of ``group_size`` (the paper groups
    64-length head dims into two 32-element groups).
    """
    values = np.asarray(values, dtype=np.float64)
    last = values.shape[-1]
    if last % group_size != 0:
        raise ValueError(f"last axis {last} is not a multiple of group size {group_size}")
    num_groups = last // group_size
    grouped = values.reshape(values.shape[:-1] + (num_groups, group_size))
    _, qmax = int_range(bits)
    max_abs = np.max(np.abs(grouped), axis=-1)
    # Subnormal-underflow floor, same rationale as quant.integer.
    scales = np.where(
        max_abs > 0, np.maximum(max_abs / qmax, np.finfo(np.float64).tiny), 1.0
    )
    q = np.rint(grouped / scales[..., None])
    q = np.clip(q, -qmax - 1, qmax).astype(np.int64)
    return MXQuantizedTensor(
        data=q.reshape(values.shape), scales=scales, bits=bits, group_size=group_size
    )


def dequantize_mxint(q: MXQuantizedTensor) -> np.ndarray:
    """Reconstruct floats from an :class:`MXQuantizedTensor`."""
    grouped = q.data.reshape(q.data.shape[:-1] + (q.num_groups, q.group_size))
    out = grouped.astype(np.float64) * q.scales[..., None]
    return out.reshape(q.data.shape)
