"""Prefix-affinity request routing across engine replicas.

Each replica owns a private :class:`~repro.engine.cache.PlaneBlockPool`,
so a prefix-cache hit is only possible on the replica that already wrote
the prompt's blocks.  The router keeps a per-replica *key index* — the
chained sha256 block keys (:func:`repro.engine.cache.chain_block_keys`)
of every prompt it has routed there — and sends a new request to the
replica with the longest consecutive leading match against its index.
No match (or a non-prefix mode) falls back to least-loaded.

The index is *optimistic*: keys are recorded at routing time, before the
replica has written anything.  That is safe because the pool's prefix
index is itself late-binding (a request admitted in the same round as
its donor still attaches blocks as they appear) and a miss merely costs
the prefill the request would have paid anyway — affinity is a
performance hint, never a correctness dependency.

Invariants (property-tested in ``tests/test_cluster_router.py``):

* :meth:`route` is a pure function of the router state — no hidden
  clocks; two routers with equal state route identically (``random``
  mode draws from a seeded private RNG, so equal seeds + equal call
  sequences also replay identically).
* A drained replica is never routed to, and draining drops its key
  index, so dead replicas cannot attract affinity traffic.
* The index is bounded: each replica holds at most
  ``max_keys_per_replica`` keys (oldest-registered evicted first), and
  :meth:`unregister` mirrors pool-side block eviction so recycled
  prefixes stop attracting routes to a guaranteed miss.
* A full-prefix match always beats the least-loaded fallback, whatever
  the loads are — affinity is worth a longer queue because a hit saves
  both pool blocks and prefill compute on the target.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Set

import numpy as np

from repro.engine.cache import chain_block_keys, quantize_heads

__all__ = [
    "ROUTING_MODES",
    "NoReplicaAvailable",
    "PrefixAffinityRouter",
    "request_chain_keys",
]

#: Supported routing modes, in CLI order.
ROUTING_MODES = ("prefix", "random", "least-loaded")


class NoReplicaAvailable(RuntimeError):
    """Every replica is drained — there is nowhere to route."""


def request_chain_keys(request, bits: int, block_size: int) -> List[bytes]:
    """Chained block keys of a request's prompt, as its replica will compute them.

    Mirrors :meth:`PagedBitPlaneKVCache.begin_prefill` exactly: quantize
    the *full* prompt per head (scale calibration included), then chain
    the full blocks with :func:`chain_block_keys` under the same config
    tuple.  A prompt shorter than one block yields no keys — such
    requests can never share, so they route by load alone.
    """
    k = np.asarray(request.k, dtype=np.float64)
    v = np.asarray(request.v, dtype=np.float64)
    k_int, scales = quantize_heads(k, bits=bits)
    return chain_block_keys(
        k_int,
        k,
        v,
        scales,
        bits=bits,
        block_size=block_size,
        num_heads=k.shape[0],
        head_dim=k.shape[2],
        v_dim=v.shape[2],
    )


class PrefixAffinityRouter:
    """Greedy longest-prefix-match routing with a least-loaded fallback.

    ``load`` is whatever unit the caller charges (the cluster front-end
    charges in-flight requests); ties break toward the lower load, then
    toward replica declaration order, so routing is fully deterministic.
    """

    def __init__(self, replica_ids: Sequence[str], mode: str = "prefix", seed: int = 0,
                 max_keys_per_replica: int = 65536):
        ids = list(replica_ids)
        if not ids:
            raise ValueError("need at least one replica")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate replica ids in {ids!r}")
        if mode not in ROUTING_MODES:
            raise ValueError(f"mode must be one of {ROUTING_MODES}, got {mode!r}")
        if max_keys_per_replica < 1:
            raise ValueError("max_keys_per_replica must be >= 1")
        self.mode = mode
        self.max_keys_per_replica = int(max_keys_per_replica)
        self._ids = ids
        self._order = {rid: i for i, rid in enumerate(ids)}
        # Insertion-ordered (dict) so the cap evicts oldest-registered
        # first — the keys most likely already recycled by the pool.
        self._keys: Dict[str, Dict[bytes, None]] = {rid: {} for rid in ids}
        self._loads: Dict[str, float] = {rid: 0.0 for rid in ids}
        self._drained: Set[str] = set()
        self._rng = random.Random(seed)

    # -- state ---------------------------------------------------------
    @property
    def replica_ids(self) -> List[str]:
        return list(self._ids)

    @property
    def live_replicas(self) -> List[str]:
        return [rid for rid in self._ids if rid not in self._drained]

    def load(self, replica_id: str) -> float:
        return self._loads[replica_id]

    def add_load(self, replica_id: str, amount: float = 1.0) -> None:
        self._loads[replica_id] += amount

    def sub_load(self, replica_id: str, amount: float = 1.0) -> None:
        self._loads[replica_id] = max(0.0, self._loads[replica_id] - amount)

    def indexed_keys(self, replica_id: str) -> int:
        return len(self._keys[replica_id])

    def is_drained(self, replica_id: str) -> bool:
        return replica_id in self._drained

    def drain(self, replica_id: str) -> None:
        """Remove a replica from rotation and forget its key index.

        Idempotent; used both for graceful drain and for failure — in
        either case no further request may land there, and its keys must
        stop attracting affinity traffic (the blocks died with the pool).
        """
        if replica_id not in self._order:
            raise KeyError(f"unknown replica {replica_id!r}")
        self._drained.add(replica_id)
        self._keys[replica_id] = {}

    def register(self, replica_id: str, keys: Sequence[bytes]) -> None:
        """Record that ``keys`` were routed to ``replica_id`` (optimistic).

        Re-registering an existing key refreshes its age (moves it to the
        back of the eviction order); past ``max_keys_per_replica`` the
        oldest keys are evicted so the index cannot grow without bound.
        """
        if replica_id in self._drained:
            raise ValueError(f"replica {replica_id!r} is drained")
        index = self._keys[replica_id]
        for key in keys:
            index.pop(key, None)
            index[key] = None
        while len(index) > self.max_keys_per_replica:
            index.pop(next(iter(index)))

    def unregister(self, replica_id: str, keys: Sequence[bytes]) -> int:
        """Drop ``keys`` from a replica's index; returns how many were present.

        Mirrors pool-side block eviction: when a replica's pool recycles
        a registered prefix block, the chain key stops matching there, so
        keeping it indexed only attracts affinity traffic to a guaranteed
        miss.  Unknown keys and drained replicas are ignored (the drain
        already emptied the index).
        """
        if replica_id not in self._order:
            raise KeyError(f"unknown replica {replica_id!r}")
        index = self._keys[replica_id]
        dropped = 0
        for key in keys:
            if key in index:
                del index[key]
                dropped += 1
        return dropped

    # -- routing -------------------------------------------------------
    def match_length(self, replica_id: str, keys: Sequence[bytes]) -> int:
        """Longest consecutive leading run of ``keys`` in the replica's index.

        Consecutive-from-the-root is what the pool's prefix lookup can
        actually attach (``begin_prefill`` stops at the first miss), so
        an interior match is worth nothing and scores nothing.
        """
        index = self._keys[replica_id]
        n = 0
        for key in keys:
            if key not in index:
                break
            n += 1
        return n

    def _least_loaded(self, live: List[str]) -> str:
        return min(live, key=lambda rid: (self._loads[rid], self._order[rid]))

    def route(self, keys: Sequence[bytes] = ()) -> str:
        """Pick the replica for a request with prompt block ``keys``.

        Pure decision — the caller applies it with :meth:`register` /
        :meth:`add_load` once the request is actually dispatched.
        """
        live = self.live_replicas
        if not live:
            raise NoReplicaAvailable("all replicas drained")
        if self.mode == "random":
            return live[self._rng.randrange(len(live))]
        if self.mode == "prefix" and keys:
            best = max(self.match_length(rid, keys) for rid in live)
            if best > 0:
                matched = [rid for rid in live if self.match_length(rid, keys) == best]
                return self._least_loaded(matched)
        return self._least_loaded(live)

    def assign(self, keys: Sequence[bytes] = ()) -> str:
        """Route, then commit: register the keys and charge one load unit."""
        replica_id = self.route(keys)
        self.register(replica_id, keys)
        self.add_load(replica_id)
        return replica_id
