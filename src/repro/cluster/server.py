"""Multi-replica sharded serving: :class:`ClusterServer`.

N replica workers (one subprocess + private pool each, spawned via
:class:`~repro.cluster.replica.ReplicaHandle`) behind one client-facing
socket speaking the *same* NDJSON protocol as a single
:class:`~repro.serve.server.AsyncPadeServer` — every existing client
(:class:`ServeConnection`, the closed/open-loop load generators) works
against a cluster unchanged.

**Routing.**  Each accepted submit is routed once by the
:class:`PrefixAffinityRouter` (``prefix`` computes the prompt's chained
block keys and matches the per-replica key index; ``random`` /
``least-loaded`` are the control arms) and forwarded verbatim; replies
(accepted / rejected / token / done) are relayed back to the owning
client as they arrive.

**Admission.**  Two layers: the cluster rejects with ``overloaded`` when
total in-flight reaches ``queue_limit`` (global admission), and each
replica still applies its own queue bound and ``fits_budget`` check —
a replica-level rejection is relayed like any other reply.

**Replica failure.**  When a replica's socket dies unexpectedly, it is
drained from the router (its key index dies with its pool) and every
request routed there is settled: requests with zero streamed tokens are
re-submitted to a surviving replica (restart-from-scratch is the
engine's own preemption semantics, so the client observes nothing but
latency), requests that already streamed get a synthesized done with
``abort_reason="replica_lost"`` — replaying those could duplicate
tokens.  Survivor pools are untouched: their leak counters still read 0
at shutdown.

**Deterministic replay.**  With ``start_barrier=N`` the workers are
spawned holding their engine loops (an unreachable barrier); once N
routed submits have their accept/reject replies, the cluster lowers
each replica's barrier to its accepted count over the socket.  Every
replica then starts round 0 fully loaded, so the whole cluster run is a
deterministic function of the workload — the mode the scaling and
affinity benchmarks use.

**Shutdown.**  A client ``shutdown`` drains every live replica
(forwarded ``shutdown``, which finishes all in-flight work), then
answers with a cluster ``shutdown_ack``: summed ``leaked_blocks``, the
roll-up report (:func:`repro.eval.serving_metrics.summarize_cluster`)
and the per-replica reports under ``replica_reports``.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence, Set

from repro.cluster.replica import BARRIER_HOLD, ReplicaHandle
from repro.cluster.router import (
    NoReplicaAvailable,
    PrefixAffinityRouter,
    request_chain_keys,
)
from repro.eval.serving_metrics import summarize_cluster
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    decode_message,
    decode_request,
    encode_message,
)

__all__ = ["ClusterServer", "serve_workload_over_cluster"]


class _ClientConn:
    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.owned: Set[str] = set()
        self.alive = True

    def send(self, msg: dict) -> None:
        if not self.alive:
            return
        try:
            self.writer.write(encode_message(msg))
        except (ConnectionError, RuntimeError):
            self.alive = False


class ClusterServer:
    def __init__(
        self,
        replicas: int = 2,
        routing: str = "prefix",
        host: str = "127.0.0.1",
        port: int = 0,
        queue_limit: int = 64,
        start_barrier: int = 0,
        seed: int = 0,
        max_active: int = 4,
        token_budget: int = 1536,
        block_size: int = 16,
        policy: str = "fcfs",
        attention: str = "pade",
        prefix_sharing: bool = True,
        draft_policy: str = "streaming-llm",
        spec_accept_tol: float = 0.05,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        from repro.core.config import PadeConfig

        self.num_replicas = int(replicas)
        self.routing = routing
        self.host = host
        self.port = port
        self.queue_limit = int(queue_limit)
        self.start_barrier = int(start_barrier)
        self.block_size = int(block_size)
        self.bits = PadeConfig.standard().bits  # what every worker's pool uses
        self._worker_kwargs = dict(
            queue_limit=max(queue_limit, 1),
            max_active=max_active,
            token_budget=token_budget,
            block_size=block_size,
            policy=policy,
            attention=attention,
            prefix_sharing=prefix_sharing,
            draft_policy=draft_policy,
            spec_accept_tol=spec_accept_tol,
        )
        self.router = PrefixAffinityRouter(
            [f"r{i}" for i in range(self.num_replicas)], mode=routing, seed=seed
        )
        self.replicas: Dict[str, ReplicaHandle] = {}
        self.rerouted_requests = 0
        self.lost_aborts = 0
        self.lost_replicas: List[str] = []
        self._owners: Dict[str, _ClientConn] = {}
        self._rid_replica: Dict[str, str] = {}
        self._rid_keys: Dict[str, List[bytes]] = {}
        self._done: Set[str] = set()
        self._rejected: Set[str] = set()
        self._connections: List[_ClientConn] = []
        self._draining = False
        self._replies = 0  # accepted+rejected replies seen (barrier bookkeeping)
        self._barrier_lowered = False
        self._drain_task: Optional[asyncio.Task] = None
        self._handler_tasks: Set[asyncio.Task] = set()
        self._server: Optional[asyncio.base_events.Server] = None
        self.closed = asyncio.Event()

    # ------------------------------------------------------------------
    async def start(self) -> None:
        barrier = BARRIER_HOLD if self.start_barrier else 0
        for i in range(self.num_replicas):
            handle = ReplicaHandle(f"r{i}")
            handle.on_message = self._on_replica_message
            handle.on_lost = self._on_replica_lost
            await handle.spawn(start_barrier=barrier, **self._worker_kwargs)
            self.replicas[handle.replica_id] = handle
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Force teardown (the graceful path is the ``shutdown`` message)."""
        for handle in self.replicas.values():
            await handle.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in self._connections:
            if conn.alive:
                conn.alive = False
                try:
                    conn.writer.close()
                except RuntimeError:
                    pass
        # Let the client-handler tasks observe EOF and return on their
        # own — cancelling them trips asyncio's stream-server done
        # callback into logging the cancellation.  Only a handler still
        # stuck after the grace period gets cancelled.
        if self._handler_tasks:
            _, stuck = await asyncio.wait(set(self._handler_tasks), timeout=5.0)
            for task in stuck:
                task.cancel()
            if stuck:
                await asyncio.gather(*stuck, return_exceptions=True)
        self.closed.set()

    async def kill_replica(self, replica_id: str) -> None:
        """Failure injection: hard-kill one worker (``on_lost`` settles it)."""
        await self.replicas[replica_id].kill()

    @property
    def in_flight(self) -> int:
        return sum(h.in_flight for h in self.replicas.values())

    # ------------------------------------------------------------------
    def _on_replica_message(self, handle: ReplicaHandle, msg: dict) -> None:
        kind = msg.get("type")
        rid = msg.get("request_id")
        if kind == "accepted":
            handle.accepted_count += 1
            self._replies += 1
            self._relay(rid, msg)
            self._maybe_lower_barrier()
        elif kind == "rejected":
            self._replies += 1
            handle.assigned.pop(rid, None)
            self.router.sub_load(handle.replica_id)
            self._rejected.add(rid)
            self._relay(rid, msg)
            self._maybe_lower_barrier()
        elif kind == "token":
            handle.streamed[rid] = handle.streamed.get(rid, 0) + 1
            self._relay(rid, msg)
        elif kind == "done":
            handle.done.add(rid)
            self._done.add(rid)
            self.router.sub_load(handle.replica_id)
            self._relay(rid, msg)
            # A finished request is when the replica's pool recycles
            # blocks, so poll its stats (fire-and-forget) to learn which
            # prefix keys died — the reply unindexes them below.
            if handle.alive and not handle.expect_close:
                handle.send_nowait({"type": "stats"})
        elif kind == "stats":
            # Mirror pool-side block eviction into the router: a key the
            # replica recycled can never hit there again, so drop it from
            # the index before it attracts another affinity route.
            evicted = msg.get("evicted_prefix_keys") or []
            if evicted and not self.router.is_drained(handle.replica_id):
                self.router.unregister(
                    handle.replica_id, [bytes.fromhex(k) for k in evicted]
                )
        elif kind == "shutdown_ack":
            handle.ack = msg
            handle.expect_close = True
            handle.ack_event.set()
        # barrier_ack replies need no action here

    def _relay(self, rid: Optional[str], msg: dict) -> None:
        conn = self._owners.get(rid)
        if conn is not None:
            conn.send(msg)

    def _maybe_lower_barrier(self) -> None:
        if (
            self.start_barrier
            and not self._barrier_lowered
            and self._replies >= self.start_barrier
        ):
            self._barrier_lowered = True
            for handle in self.replicas.values():
                if handle.alive:
                    handle.send_nowait(
                        {"type": "barrier", "count": handle.accepted_count}
                    )

    # ------------------------------------------------------------------
    def _on_replica_lost(self, handle: ReplicaHandle) -> None:
        """Unexpected replica death: drain it, settle its assignments."""
        handle.ack_event.set()  # nothing further will arrive
        self.router.drain(handle.replica_id)
        self.lost_replicas.append(handle.replica_id)
        for rid, submit_msg in list(handle.assigned.items()):
            if rid in handle.done:
                continue
            if handle.streamed.get(rid, 0) == 0:
                try:
                    self._reroute(rid, submit_msg)
                    continue
                except NoReplicaAvailable:
                    pass  # nowhere left: fall through to the abort
            self._abort_lost(rid, handle.streamed.get(rid, 0))

    def _reroute(self, rid: str, submit_msg: dict) -> None:
        keys = self._rid_keys.get(rid, [])
        target = self.router.route(keys)
        self.router.register(target, keys)
        self.router.add_load(target)
        new_handle = self.replicas[target]
        new_handle.assigned[rid] = submit_msg
        self._rid_replica[rid] = target
        new_handle.send_nowait(submit_msg)
        self.rerouted_requests += 1

    def _abort_lost(self, rid: str, streamed: int) -> None:
        self._done.add(rid)
        self.lost_aborts += 1
        self._relay(
            rid,
            {
                "type": "done",
                "request_id": rid,
                "status": "aborted",
                "abort_reason": "replica_lost",
                "decode_tokens": streamed,
                "preemptions": 0,
                "timing": {},
                "wall": {},
            },
        )

    # ------------------------------------------------------------------
    async def _on_submit(self, conn: _ClientConn, msg: dict) -> None:
        rid = str(msg["request"]["request_id"])
        if self._draining:
            conn.send({"type": "rejected", "request_id": rid, "error": "shutting-down"})
            return
        if rid in self._owners:
            conn.send({"type": "rejected", "request_id": rid, "error": "duplicate"})
            return
        if self.in_flight >= self.queue_limit:
            conn.send({"type": "rejected", "request_id": rid, "error": "overloaded"})
            return
        keys: List[bytes] = []
        if self.routing == "prefix":
            keys = request_chain_keys(
                decode_request(msg["request"]), bits=self.bits, block_size=self.block_size
            )
        try:
            target = self.router.route(keys)
        except NoReplicaAvailable:
            conn.send({"type": "rejected", "request_id": rid, "error": "no-replica"})
            return
        self.router.register(target, keys)
        self.router.add_load(target)
        self._owners[rid] = conn
        conn.owned.add(rid)
        self._rid_replica[rid] = target
        self._rid_keys[rid] = keys
        handle = self.replicas[target]
        handle.assigned[rid] = msg
        await handle.send(msg)

    def _cluster_stats(self) -> dict:
        return {
            "type": "stats",
            "routing": self.routing,
            "in_flight": self.in_flight,
            "rerouted_requests": self.rerouted_requests,
            "lost_aborts": self.lost_aborts,
            "lost_replicas": list(self.lost_replicas),
            "replicas": {
                rid: {
                    "alive": handle.alive,
                    "drained": self.router.is_drained(rid),
                    "load": self.router.load(rid),
                    "in_flight": handle.in_flight,
                    "indexed_keys": self.router.indexed_keys(rid),
                    "assigned": len(handle.assigned),
                    "done": len(handle.done),
                }
                for rid, handle in self.replicas.items()
            },
        }

    def _drop_connection(self, conn: _ClientConn) -> None:
        if not conn.alive:
            return
        conn.alive = False
        for rid in conn.owned:
            if rid in self._done or rid in self._rejected:
                continue
            target = self._rid_replica.get(rid)
            if target is not None and self.replicas[target].alive:
                self.replicas[target].send_nowait({"type": "cancel", "request_id": rid})

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _ClientConn(writer)
        self._connections.append(conn)
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                msg = decode_message(line)
                kind = msg["type"]
                if kind == "submit":
                    await self._on_submit(conn, msg)
                elif kind == "cancel":
                    rid = str(msg["request_id"])
                    target = self._rid_replica.get(rid)
                    if target is not None and self.replicas[target].alive:
                        await self.replicas[target].send(msg)
                elif kind == "stats":
                    conn.send(self._cluster_stats())
                elif kind == "shutdown":
                    ack = await self._drain_all()
                    conn.send(ack)
                else:
                    conn.send({"type": "error", "error": f"unknown type {kind!r}"})
                try:
                    await writer.drain()
                except (ConnectionError, RuntimeError):
                    break
        except (ConnectionError, ValueError):
            pass
        finally:
            if task is not None:
                self._handler_tasks.discard(task)
            self._drop_connection(conn)

    # ------------------------------------------------------------------
    async def _drain_all(self) -> dict:
        """Drain every replica once; all shutdown clients share the ack."""
        if self._drain_task is None:
            self._drain_task = asyncio.ensure_future(self._drain_flow())
        return await self._drain_task

    async def _drain_flow(self) -> dict:
        self._draining = True
        live = [h for h in self.replicas.values() if h.alive]
        for handle in live:
            await handle.send({"type": "shutdown"})
        if live:
            await asyncio.gather(*(h.ack_event.wait() for h in live))
        acks = {rid: (h.ack or {}) for rid, h in self.replicas.items()}
        report = summarize_cluster(
            [ack.get("report", {}) for ack in acks.values()]
        )
        report["rerouted_requests"] = float(self.rerouted_requests)
        report["lost_aborts"] = float(self.lost_aborts)
        report["lost_replicas"] = float(len(self.lost_replicas))
        ack_msg = {
            "type": "shutdown_ack",
            "served": sum(int(ack.get("served", 0)) for ack in acks.values()),
            "leaked_blocks": sum(int(ack.get("leaked_blocks", 0)) for ack in acks.values()),
            "report": report,
            "replica_reports": {rid: ack.get("report", {}) for rid, ack in acks.items()},
            "rerouted_requests": self.rerouted_requests,
            "lost_aborts": self.lost_aborts,
            "lost_replicas": list(self.lost_replicas),
        }
        for handle in self.replicas.values():
            await handle.close()
        return ack_msg


def serve_workload_over_cluster(
    requests: Sequence,
    replicas: int = 2,
    routing: str = "prefix",
    barrier: bool = True,
    concurrency: int = 4,
    queue_limit: Optional[int] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    seed: int = 0,
    **worker_kwargs,
):
    """Serve ``requests`` through a loopback cluster; mirror of
    :func:`repro.serve.client.serve_workload_over_loopback`.

    Returns ``(dones, ack, cluster)``.  ``barrier=True`` runs the
    deterministic-replay mode (every replica starts round 0 fully
    loaded); ``barrier=False`` serves live with the closed-loop client.
    """
    from repro.serve.client import ServeConnection, run_closed_loop, run_open_loop

    limit = queue_limit if queue_limit is not None else max(len(requests), 1)

    async def _run():
        cluster = ClusterServer(
            replicas=replicas,
            routing=routing,
            host=host,
            port=port,
            queue_limit=limit,
            start_barrier=len(requests) if barrier else 0,
            seed=seed,
            **worker_kwargs,
        )
        await cluster.start()
        try:
            if barrier:
                dones = await run_open_loop(cluster.host, cluster.port, requests)
            else:
                dones = await run_closed_loop(
                    cluster.host, cluster.port, requests, concurrency=concurrency
                )
            conn = await ServeConnection.open(cluster.host, cluster.port)
            try:
                ack = await conn.shutdown()
            finally:
                await conn.close()
        finally:
            await cluster.stop()
        return dones, ack, cluster

    return asyncio.run(_run())
