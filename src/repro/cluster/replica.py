"""One replica from the cluster front-end's point of view.

:class:`ReplicaHandle` pairs the worker subprocess with the control
socket the cluster keeps to it, tracks what was routed there (assigned
submits, per-request token high-water marks, done set), and surfaces the
two events the cluster reacts to:

* ``on_message(handle, msg)`` — every decoded protocol message the
  worker sends (accepted / rejected / token / done / stats /
  shutdown_ack), called from the handle's reader task.
* ``on_lost(handle)`` — the socket hit EOF or errored while the replica
  was still supposed to be alive.  Fired at most once; a handle whose
  ``expect_close`` flag is set (graceful shutdown acked, or an injected
  kill the caller owns) does not fire it.

The token high-water marks exist for exactly one decision: when a
replica dies, requests with **zero** streamed tokens are safe to
re-route (the client saw nothing; restart-from-scratch is the engine's
own preemption semantics), while requests that already streamed must
surface ``abort_reason="replica_lost"`` — silently replaying them could
hand the client duplicate tokens.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
from pathlib import Path
from typing import Dict, Optional, Set

from repro.serve.protocol import MAX_LINE_BYTES, decode_message, encode_message

__all__ = ["BARRIER_HOLD", "ReplicaHandle"]

#: A start barrier no workload reaches: replay-mode workers hold their
#: engine loop until the cluster lowers the barrier to the routed count
#: over the socket.  Lives here (not in ``worker.py``) so importing the
#: cluster package never pre-imports the worker's ``__main__`` module.
BARRIER_HOLD = 1 << 30


class ReplicaHandle:
    def __init__(self, replica_id: str) -> None:
        self.replica_id = replica_id
        self.process: Optional[asyncio.subprocess.Process] = None
        self.port: Optional[int] = None
        self.alive = False
        self.expect_close = False
        self.on_message = None
        self.on_lost = None
        self.assigned: Dict[str, dict] = {}  # rid -> submit msg (for re-route)
        self.streamed: Dict[str, int] = {}  # rid -> tokens relayed so far
        self.done: Set[str] = set()
        self.accepted_count = 0
        self.ack: Optional[dict] = None  # shutdown_ack once received
        self.ack_event = asyncio.Event()
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pump_task: Optional[asyncio.Task] = None

    @property
    def in_flight(self) -> int:
        return len(self.assigned) - len(self.done)

    # ------------------------------------------------------------------
    async def spawn(
        self,
        *,
        start_barrier: int = 0,
        queue_limit: int = 64,
        max_active: int = 4,
        token_budget: int = 1536,
        block_size: int = 16,
        policy: str = "fcfs",
        attention: str = "pade",
        prefix_sharing: bool = True,
        draft_policy: str = "streaming-llm",
        spec_accept_tol: float = 0.05,
    ) -> None:
        """Start the worker subprocess, read its ready line, connect."""
        import repro

        # The worker must import `repro` regardless of how the parent was
        # launched (pytest sets pythonpath via pytest.ini, which does not
        # propagate to subprocesses), so prepend the package root.
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        cmd = [
            sys.executable,
            "-m",
            "repro.cluster.worker",
            "--replica-id", self.replica_id,
            "--port", "0",
            "--queue-limit", str(queue_limit),
            "--start-barrier", str(start_barrier),
            "--max-active", str(max_active),
            "--budget", str(token_budget),
            "--block-size", str(block_size),
            "--policy", str(policy),
            "--attention", str(attention),
            "--draft-policy", str(draft_policy),
            "--spec-accept-tol", str(spec_accept_tol),
        ]
        if prefix_sharing:
            cmd.append("--prefix-sharing")
        self.process = await asyncio.create_subprocess_exec(
            *cmd, stdout=asyncio.subprocess.PIPE, env=env
        )
        line = await self.process.stdout.readline()
        if not line:
            raise RuntimeError(f"replica {self.replica_id}: worker exited before ready")
        ready = json.loads(line)
        if ready.get("type") != "ready":
            raise RuntimeError(f"replica {self.replica_id}: bad ready line {ready!r}")
        self.port = int(ready["port"])
        self._reader, self._writer = await asyncio.open_connection(
            "127.0.0.1", self.port, limit=MAX_LINE_BYTES
        )
        self.alive = True
        self._pump_task = asyncio.create_task(self._pump())

    async def _pump(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                msg = decode_message(line)
                if self.on_message is not None:
                    self.on_message(self, msg)
        except (ConnectionError, asyncio.IncompleteReadError, ValueError):
            pass
        finally:
            was_alive = self.alive
            self.alive = False
            if was_alive and not self.expect_close and self.on_lost is not None:
                self.on_lost(self)

    # ------------------------------------------------------------------
    def send_nowait(self, msg: dict) -> None:
        """Queue one message on the socket (transport-buffered).

        Safe from synchronous callbacks; a dead transport is ignored —
        the pump's EOF is the authoritative failure signal.
        """
        if self._writer is None or self._writer.is_closing():
            return
        try:
            self._writer.write(encode_message(msg))
        except (ConnectionError, RuntimeError):
            pass

    async def send(self, msg: dict) -> None:
        self.send_nowait(msg)
        if self._writer is not None and not self._writer.is_closing():
            try:
                await self._writer.drain()
            except (ConnectionError, RuntimeError):
                pass

    # ------------------------------------------------------------------
    async def kill(self) -> None:
        """Hard-kill the worker (failure injection; ``on_lost`` fires)."""
        if self.process is not None and self.process.returncode is None:
            self.process.kill()
            await self.process.wait()

    async def close(self) -> None:
        """Tear the handle down quietly (no ``on_lost``)."""
        self.expect_close = True
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass
        if self.process is not None and self.process.returncode is None:
            self.process.terminate()
            try:
                await asyncio.wait_for(self.process.wait(), timeout=10.0)
            except asyncio.TimeoutError:
                self.process.kill()
                await self.process.wait()
