"""Replica worker: one engine + one :class:`AsyncPadeServer` per process.

The cluster front-end spawns this module as a subprocess per replica
(``python -m repro.cluster.worker``).  Each worker owns its own
:class:`~repro.engine.cache.PlaneBlockPool` — nothing is shared across
replicas except the NDJSON protocol — and announces readiness by
printing one JSON line ``{"type": "ready", "replica": ..., "port": ...}``
on stdout once its socket is bound (port 0 = ephemeral, the parent reads
the real port from the announcement).

``--start-barrier`` is normally either 0 (serve live) or an unreachable
sentinel: in deterministic-replay cluster runs the parent routes every
submit first, then lowers each worker's barrier over the socket with a
``barrier`` message (see :meth:`AsyncPadeServer` protocol handling).
"""

from __future__ import annotations

import argparse
import asyncio
import json

from repro.core.config import PadeConfig
from repro.engine import PadeEngine
from repro.serve.server import AsyncPadeServer

__all__ = ["main"]


async def _amain(args) -> int:
    engine = PadeEngine(PadeConfig.standard(), policy=args.attention)
    server = AsyncPadeServer(
        engine,
        host=args.host,
        port=args.port,
        queue_limit=args.queue_limit,
        start_barrier=args.start_barrier,
        max_active=args.max_active,
        token_budget=args.budget,
        block_size=args.block_size,
        policy=args.policy,
        prefix_sharing=args.prefix_sharing,
        draft_policy=args.draft_policy,
        spec_accept_tol=args.spec_accept_tol,
    )
    await server.start()
    print(
        json.dumps({"type": "ready", "replica": args.replica_id, "port": server.port}),
        flush=True,
    )
    await server.wait_closed()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Cluster replica worker process.")
    parser.add_argument("--replica-id", default="r0")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument("--start-barrier", type=int, default=0)
    parser.add_argument("--max-active", type=int, default=4)
    parser.add_argument("--budget", type=int, default=1536)
    parser.add_argument("--block-size", type=int, default=16)
    parser.add_argument("--policy", default="fcfs")
    parser.add_argument("--attention", default="pade")
    parser.add_argument("--prefix-sharing", action="store_true")
    parser.add_argument("--draft-policy", default="streaming-llm")
    parser.add_argument("--spec-accept-tol", type=float, default=0.05)
    args = parser.parse_args(argv)
    return asyncio.run(_amain(args))


if __name__ == "__main__":
    raise SystemExit(main())
