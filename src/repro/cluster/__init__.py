"""Multi-replica sharded serving with prefix-affinity routing.

Horizontal scale for the serving stack: N replica workers — each a
subprocess owning its own engine and :class:`PlaneBlockPool`, driving
the same ``start()/step()/finish()`` round loop through an
:class:`~repro.serve.server.AsyncPadeServer` — behind one cluster
front-end speaking the unchanged NDJSON client protocol.

* :mod:`repro.cluster.router` — :class:`PrefixAffinityRouter`: greedy
  longest-match routing of the prompt's chained sha256 block keys
  (:func:`repro.engine.cache.chain_block_keys`) against a per-replica
  key index, falling back to least-loaded; ``random`` and
  ``least-loaded`` modes as control arms.
* :mod:`repro.cluster.worker` — the replica subprocess entry point
  (``python -m repro.cluster.worker``).
* :mod:`repro.cluster.replica` — :class:`ReplicaHandle`: subprocess +
  control socket + per-replica assignment/streaming bookkeeping.
* :mod:`repro.cluster.server` — :class:`ClusterServer`: global
  admission in front of per-replica admission, reply relaying, replica
  failure handling (re-route untouched requests, surface
  ``abort_reason="replica_lost"`` for streamed ones), deterministic
  replay via socket-lowered barriers, and the cluster roll-up report.
* :mod:`repro.cluster.smoke` — the CI smoke entry
  (``python -m repro.cluster.smoke --replicas 2 --routing prefix``).
"""

from repro.cluster.router import (
    ROUTING_MODES,
    NoReplicaAvailable,
    PrefixAffinityRouter,
    request_chain_keys,
)
from repro.cluster.replica import ReplicaHandle
from repro.cluster.server import ClusterServer, serve_workload_over_cluster

__all__ = [
    "ROUTING_MODES",
    "NoReplicaAvailable",
    "PrefixAffinityRouter",
    "request_chain_keys",
    "ReplicaHandle",
    "ClusterServer",
    "serve_workload_over_cluster",
]
