"""Cluster smoke: boot N replica workers behind the router, stream a
shared-prefix workload through the closed-loop client, assert a clean
drain.

Exit code 0 requires: every request completed ``ok`` with a non-empty
token stream, the cluster shutdown ack reporting zero leaked pool blocks
across all replicas, and — under ``prefix`` routing — a nonzero cluster
prefix-hit count (the affinity index actually landed requests on warm
replicas).  Run by CI as::

    python -m repro.cluster.smoke --replicas 2 --routing prefix
"""

from __future__ import annotations

import argparse
import json

from repro.cluster.server import serve_workload_over_cluster
from repro.eval.workloads import build_cluster_workload

__all__ = ["main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Cluster loopback smoke test.")
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--routing", default="prefix",
                        choices=("prefix", "random", "least-loaded"))
    parser.add_argument("--groups", type=int, default=2)
    parser.add_argument("--per-group", type=int, default=4)
    parser.add_argument("--steps", type=int, default=6)
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    workload = build_cluster_workload(
        args.groups, args.per_group, 4, 32, 16, args.steps, 32,
        rate=0.5, seed=args.seed,
    )
    dones, ack, cluster = serve_workload_over_cluster(
        workload,
        replicas=args.replicas,
        routing=args.routing,
        barrier=False,
        concurrency=args.concurrency,
        seed=args.seed,
        token_budget=1536,
        max_active=4,
        block_size=16,
    )

    failures = []
    if len(dones) != len(workload):
        failures.append(f"expected {len(workload)} dones, got {len(dones)}")
    for rid, done in sorted(dones.items()):
        if done.get("type") != "done" or done.get("status") != "ok":
            failures.append(f"{rid}: not served ok ({done.get('type')}/{done.get('status')})")
        elif not done.get("tokens"):
            failures.append(f"{rid}: no streamed tokens")
    if ack.get("leaked_blocks", -1) != 0:
        failures.append(f"leaked_blocks = {ack.get('leaked_blocks')}")
    report = ack.get("report", {})
    if report.get("reporting_replicas", 0.0) < 1.0:
        failures.append("no replica produced a serving report")
    if args.routing == "prefix" and report.get("prefix_hit_blocks", 0.0) <= 0.0:
        failures.append("prefix routing produced zero cluster prefix hits")

    print(
        json.dumps(
            {
                "replicas": args.replicas,
                "routing": args.routing,
                "requests": len(dones),
                "leaked_blocks": ack.get("leaked_blocks"),
                "prefix_hit_blocks": report.get("prefix_hit_blocks"),
                "prefix_hit_rate": report.get("prefix_hit_rate"),
                "jain_replica_index": report.get("jain_replica_index"),
                "cluster_throughput_tokens_per_round": report.get(
                    "cluster_throughput_tokens_per_round"
                ),
                "failures": failures,
            },
            indent=2,
        )
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
