"""repro — a full reproduction of PADE (HPCA 2026).

PADE is a predictor-free sparse attention accelerator built on bit-serial
stage fusion.  This package provides:

* :mod:`repro.core` — the paper's algorithms (BUI-GF, BS-OOE, ISTA), the
  end-to-end :func:`repro.core.pade_attention` operator, and the pluggable
  kernel-backend registry (:mod:`repro.core.backend`).
* :mod:`repro.engine` — the batched multi-head serving layer: persistent
  bit-plane KV caches, head-batched filter rounds, request scheduling.
* :mod:`repro.quant` — INT/MXINT quantization and bit-plane decomposition.
* :mod:`repro.attention` — dense / FlashAttention references and software
  sparse-attention baselines.
* :mod:`repro.model` — transformer workload substrate (model presets,
  synthetic attention generators, proxy accuracy tasks).
* :mod:`repro.sim` — cycle-approximate simulator of the PADE accelerator
  (HBM2, PE lanes, scoreboard, GSAT, RARS, V-PU) + energy/area models.
* :mod:`repro.accelerators` — analytic models of the compared designs
  (dense ASIC, Sanger, SpAtten, Energon, DOTA, SOFA, BitWave, H100 GPU).
* :mod:`repro.eval` — the experiment harness regenerating every table and
  figure of the paper's evaluation section.
"""

from repro.core import PadeConfig, pade_attention

__version__ = "1.0.0"

__all__ = ["PadeConfig", "pade_attention", "__version__"]
