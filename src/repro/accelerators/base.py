"""Shared framework for the analytic accelerator models.

Every design is costed on the same :class:`AttentionWorkload` under the same
:class:`~repro.sim.tech.TechConfig`; a model's job is to fill in a
:class:`CostReport` — computation energy, predictor energy, SRAM/DRAM
traffic, and the cycle counts of its execution scheme.  Ratios between
models are then meaningful under the paper's normalization protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.sim.tech import DEFAULT_TECH, TechConfig

__all__ = ["AttentionWorkload", "CostReport", "AcceleratorModel"]


@dataclass(frozen=True)
class AttentionWorkload:
    """One attention execution to cost.

    Attributes
    ----------
    num_queries:
        Query rows processed (S for prefill, 1 per step × steps for decode).
    seq_len:
        Key/value sequence length.
    head_dim / num_heads / num_kv_heads / num_layers:
        Model shape (GQA when ``num_kv_heads < num_heads``).
    oracle_keep:
        Fraction of (query, key) pairs an exact top-score criterion would
        keep at the target accuracy (from the functional pipeline).  Each
        design achieves ``oracle_keep * its keep_inflation``.
    mean_planes:
        Mean bit planes per candidate key consumed by PADE's early
        termination (from the functional pipeline; max = operand bits).
    decode:
        Auto-regressive decoding (no query-side reuse of K/V).
    """

    num_queries: int
    seq_len: int
    head_dim: int = 64
    num_heads: int = 32
    num_kv_heads: Optional[int] = None
    num_layers: int = 32
    oracle_keep: float = 0.12
    mean_planes: float = 3.8
    decode: bool = False

    @property
    def kv_heads(self) -> int:
        return self.num_kv_heads if self.num_kv_heads is not None else self.num_heads

    @property
    def heads_layers(self) -> float:
        return float(self.num_heads * self.num_layers)

    @property
    def dense_pairs(self) -> float:
        """Total (query, key) pairs across heads and layers."""
        return float(self.num_queries) * self.seq_len * self.heads_layers

    @property
    def dense_macs(self) -> float:
        """Dense attention MACs (QK^T + PV)."""
        return 2.0 * self.dense_pairs * self.head_dim

    @property
    def dense_equivalent_ops(self) -> float:
        return 2.0 * self.dense_macs  # 2 ops per MAC

    def kv_bytes(self, bits: int) -> float:
        """One full K (or V) pass per layer across KV heads."""
        return self.seq_len * self.head_dim * bits / 8.0 * self.kv_heads * self.num_layers


@dataclass
class CostReport:
    """Latency/energy result of one analytic model on one workload."""

    name: str
    cycles: float
    energy_pj: Dict[str, float] = field(default_factory=dict)
    dram_bytes: float = 0.0
    predictor_macs: float = 0.0
    executor_macs: float = 0.0
    keep_fraction: float = 1.0
    tech: TechConfig = field(default=DEFAULT_TECH, repr=False)

    @property
    def total_energy_pj(self) -> float:
        return float(sum(self.energy_pj.values()))

    @property
    def predictor_energy_pj(self) -> float:
        return self.energy_pj.get("predictor_compute", 0.0) + self.energy_pj.get(
            "predictor_memory", 0.0
        )

    @property
    def executor_energy_pj(self) -> float:
        return self.total_energy_pj - self.predictor_energy_pj

    @property
    def latency_s(self) -> float:
        return self.cycles * self.tech.cycle_time_s

    def throughput_gops(self, workload: AttentionWorkload) -> float:
        if self.latency_s <= 0:
            return 0.0
        return workload.dense_equivalent_ops / self.latency_s / 1e9

    def gops_per_watt(self, workload: AttentionWorkload) -> float:
        if self.total_energy_pj <= 0:
            return 0.0
        return workload.dense_equivalent_ops / (self.total_energy_pj * 1e-12) / 1e9


class AcceleratorModel:
    """Base class: shared tech, peak compute, and costing helpers."""

    #: human-readable name and Table I feature row, overridden per design
    name: str = "base"
    FEATURES: Dict[str, str] = {}

    #: identical peak executor compute for every normalized design —
    #: calibrated so the equal-PE-area protocol holds against PADE's
    #: 128 bit-serial GSAT lanes (bit-serial adders are far denser than
    #: full INT8 MACs at 28 nm)
    PEAK_INT8_MACS_PER_CYCLE: int = 512
    #: executor utilization on attention (irregularity penalty); designs
    #: with load-balancing hardware override this
    executor_utilization: float = 0.70
    #: query rows sharing one K/V stream when the working set spills SRAM;
    #: designs whose pruning criterion blocks tiling are stuck at one PE-row
    #: block (Table I "tiling support"), SOFA's cross-stage tiling widens it,
    #: PADE's ISTA covers the whole 32 KB Q buffer (256 queries).
    BLOCK_QUERIES: int = 8

    def __init__(self, tech: TechConfig = DEFAULT_TECH) -> None:
        self.tech = tech

    # -- helpers ---------------------------------------------------------
    def mac_energy(self, macs: float, bits: int) -> float:
        t = self.tech
        per = {4: t.int4_mult_pj, 8: t.int8_mac_pj, 16: t.int16_mac_pj}.get(bits)
        if per is None:
            per = t.int8_mac_pj * (bits / 8.0) ** 1.6
        return macs * per

    def dram_energy(self, nbytes: float, activation_rate: float = 0.05) -> float:
        t = self.tech
        accesses = nbytes / t.hbm_burst_bytes
        return nbytes * 8 * t.hbm_pj_per_bit + accesses * activation_rate * t.hbm_activation_energy_pj

    def sram_energy(self, nbytes_read: float, nbytes_written: float = 0.0) -> float:
        t = self.tech
        return nbytes_read * t.sram_read_pj_per_byte + nbytes_written * t.sram_write_pj_per_byte

    def kv_passes(self, workload: AttentionWorkload, bits: int = 8) -> float:
        """How many times the K (or V) tensor streams from DRAM.

        If one head's K working set fits on chip it is fetched once and
        reused across every query block (the short-sequence regime where all
        designs look alike); otherwise each query block re-streams it —
        ``BLOCK_QUERIES`` then decides how fast traffic grows with queries
        (the Fig. 5f tiling-difficulty mechanism).  Decoding always streams
        per step: there is no query-side reuse.
        """
        if workload.decode:
            return float(workload.num_queries)
        per_head_kv = workload.seq_len * workload.head_dim * bits / 8.0
        if per_head_kv <= self.tech.sram_kv_bytes:  # K resident, V streamed on demand
            return 1.0
        return float(np.ceil(workload.num_queries / self.BLOCK_QUERIES))

    def sram_for(self, macs: float, dram_bytes: float, reuse: float = 16.0) -> float:
        """SRAM energy for a compute phase.

        Operands are read from SRAM once per ``reuse`` MACs (PE-array operand
        reuse); every DRAM byte is written into SRAM once on fill.
        """
        return self.sram_energy(macs / max(1.0, reuse) * 2.0, dram_bytes)

    def compute_cycles(self, macs: float, utilization: Optional[float] = None) -> float:
        u = utilization if utilization is not None else self.executor_utilization
        return macs / (self.PEAK_INT8_MACS_PER_CYCLE * max(1e-6, u))

    def dram_cycles(self, nbytes: float) -> float:
        return nbytes / self.tech.hbm_bytes_per_cycle

    def static_energy(self, cycles: float) -> float:
        return cycles * self.tech.cycle_time_s * self.tech.static_power_w * 1e12

    def softmax_energy(self, elements: float) -> float:
        return elements * self.tech.fp16_exp_pj

    # -- interface -------------------------------------------------------
    def cost(self, workload: AttentionWorkload) -> CostReport:
        raise NotImplementedError

    def keep_fraction(self, workload: AttentionWorkload) -> float:
        """Achieved keep fraction at iso-accuracy.

        ``oracle_keep × KEEP_INFLATION + KEEP_FLOOR``: the multiplicative
        term models estimate noise, the additive floor the borderline band a
        coarse estimate cannot prune at a 0%-loss tolerance (stale cross-
        layer guidance has the largest floor, exact bit-level bounds none).
        """
        return min(
            1.0,
            workload.oracle_keep * getattr(self, "KEEP_INFLATION", 1.0)
            + getattr(self, "KEEP_FLOOR", 0.0),
        )
