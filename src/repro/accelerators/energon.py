"""Energon (TCAD'22): progressive mixed-precision filtering predictor.

Energon filters candidates in rounds of increasing precision: a very low-bit
pass over everything, then higher-precision passes over shrinking survivor
sets.  That makes its predictor cheaper than Sanger's single 4-bit full pass
(the paper credits Energon with a 32% computation reduction) but it still
cannot reuse predictor work in the executor, and the multi-round K fetches
keep its memory reduction modest (21% in Fig. 14).
"""

from __future__ import annotations


from repro.accelerators.base import AcceleratorModel, AttentionWorkload, CostReport

__all__ = ["EnergonModel"]


class EnergonModel(AcceleratorModel):
    name = "energon"
    BLOCK_QUERIES = 8
    KEEP_INFLATION = 1.25
    KEEP_FLOOR = 0.08
    FEATURES = {
        "computation": "optimized (progressive precision)",
        "memory": "none",
        "predictor_free": "no",
        "tiling": "no",
        "optimization_level": "multi-bit",
    }

    #: (bits, fraction of candidates surviving INTO this round)
    ROUNDS = ((2, 1.0), (4, 0.45), (8, 0.20))

    def __init__(self, tech=None, exec_bits: int = 8) -> None:
        super().__init__(tech) if tech is not None else super().__init__()
        self.exec_bits = exec_bits

    def cost(self, workload: AttentionWorkload) -> CostReport:
        w = workload
        keep = self.keep_fraction(w)
        k_passes = self.kv_passes(w)

        pred_compute = 0.0
        pred_k_bytes = 0.0
        pred_macs = 0.0
        for bits, frac in self.ROUNDS[:-1]:
            macs = w.dense_pairs * w.head_dim * frac
            pred_macs += macs
            pred_compute += self.mac_energy(macs, bits)
            pred_k_bytes += w.kv_bytes(bits) * k_passes * frac
        pred_memory = self.dram_energy(pred_k_bytes) + self.sram_for(pred_macs, pred_k_bytes)

        exec_macs = 2.0 * keep * w.dense_pairs * w.head_dim
        exec_k_bytes = w.kv_bytes(self.exec_bits) * k_passes * keep
        exec_v_bytes = w.kv_bytes(self.exec_bits) * k_passes * keep
        q_bytes = w.num_queries * w.head_dim * self.exec_bits / 8 * w.heads_layers
        out_bytes = w.num_queries * w.head_dim * 2 * w.heads_layers
        exec_bytes = exec_k_bytes + exec_v_bytes + q_bytes + out_bytes

        pred_cycles = max(
            self.compute_cycles(pred_macs * 0.4, utilization=0.85),
            self.dram_cycles(pred_k_bytes),
        )
        exec_cycles = max(
            self.compute_cycles(exec_macs, utilization=0.52),
            self.dram_cycles(exec_bytes),
        )
        cycles = pred_cycles + exec_cycles

        energy = {
            "predictor_compute": pred_compute,
            "predictor_memory": pred_memory,
            "compute": self.mac_energy(exec_macs, self.exec_bits),
            "softmax": self.softmax_energy(keep * w.dense_pairs),
            "sram": self.sram_for(exec_macs, exec_bytes),
            "dram": self.dram_energy(exec_bytes),
            "static": self.static_energy(cycles),
        }
        return CostReport(
            name=self.name,
            cycles=cycles,
            energy_pj=energy,
            dram_bytes=pred_k_bytes + exec_bytes,
            predictor_macs=pred_macs,
            executor_macs=exec_macs,
            keep_fraction=keep,
            tech=self.tech,
        )
