"""Nvidia H100 baseline (TensorRT-LLM + FlashAttention-3).

The paper measures a physical H100 (CUDA-event timing, ``nvprof`` phase
exclusion, ``nvidia-smi`` active-minus-idle power, batch size tuned per
dataset — §VI-A).  None of that is reproducible offline, so this model is
**anchored to the paper's own measured gap** instead of raw H100 datasheet
physics: the dense ASIC reference (Fig. 19) is 4.0× more energy-efficient
and ~1.5× faster than the measured H100 on the evaluated workload mix, so
the GPU baseline is the dense accelerator's cost scaled by those factors.

Two GPU-side software modes reproduce Fig. 18(b):

* ``use_bui_gf`` — running the BUI-GF sparsity criterion as a GPU kernel
  buys only ~8% latency / 1.3× efficiency (irregular gathers defeat
  bit-level early exit on SIMT hardware);
* ``use_fa3`` on top — FlashAttention-3 tiling raises that to ~14% latency /
  3.1× efficiency via memory-traffic reduction.

The anchoring constants are substitution artifacts documented in DESIGN.md;
every ratio against the GPU inherits the paper's measured baseline by
construction, while ratios among the ASIC designs remain fully model-driven.
"""

from __future__ import annotations

from typing import Optional

from repro.accelerators.base import AcceleratorModel, AttentionWorkload, CostReport
from repro.accelerators.dense_acc import DenseAccelerator
from repro.sim.tech import TechConfig

__all__ = ["GPUModel"]


class GPUModel(AcceleratorModel):
    name = "gpu"
    FEATURES = {
        "computation": "dense FP16/INT8 tensor cores",
        "memory": "FlashAttention-3 tiling",
        "predictor_free": "n/a",
        "tiling": "yes",
        "optimization_level": "value",
    }

    #: Fig. 19 anchors: dense ASIC is 4.0× more energy-efficient and 1.5×
    #: higher-throughput than the measured H100 on the paper's workloads.
    ASIC_ENERGY_GAIN = 4.0
    ASIC_THROUGHPUT_GAIN = 1.5

    #: Fig. 18(b) software-mode modifiers (measured on the H100).
    BUI_GF_LATENCY_GAIN = 1.0 / (1.0 - 0.08)
    BUI_GF_ENERGY_GAIN = 1.3
    FA3_LATENCY_GAIN = 1.0 / (1.0 - 0.14)
    FA3_ENERGY_GAIN = 3.1

    def __init__(
        self,
        tech: Optional[TechConfig] = None,
        use_fa3: bool = False,
        use_bui_gf: bool = False,
    ) -> None:
        super().__init__(tech) if tech is not None else super().__init__()
        self.use_fa3 = use_fa3
        self.use_bui_gf = use_bui_gf
        self._dense = DenseAccelerator(tech) if tech is not None else DenseAccelerator()

    def cost(self, workload: AttentionWorkload) -> CostReport:
        ref = self._dense.cost(workload)
        cycles = ref.cycles * self.ASIC_THROUGHPUT_GAIN
        energy_scale = self.ASIC_ENERGY_GAIN
        if self.use_bui_gf:
            cycles /= self.BUI_GF_LATENCY_GAIN
            energy_scale /= self.BUI_GF_ENERGY_GAIN
            if self.use_fa3:
                cycles = ref.cycles * self.ASIC_THROUGHPUT_GAIN / self.FA3_LATENCY_GAIN
                energy_scale = self.ASIC_ENERGY_GAIN / self.FA3_ENERGY_GAIN
        energy = {"gpu_dynamic": ref.total_energy_pj * energy_scale}
        return CostReport(
            name=self.name,
            cycles=cycles,
            energy_pj=energy,
            dram_bytes=ref.dram_bytes * (0.5 if self.use_fa3 else 1.0),
            executor_macs=ref.executor_macs,
            keep_fraction=ref.keep_fraction if not self.use_bui_gf else workload.oracle_keep,
            tech=self.tech,
        )
