"""Analytic models of the compared attention accelerators (§VI-A).

All designs are normalized to the paper's protocol: identical 28 nm tech
constants, identical peak INT8 compute, 352 KB SRAM, 256 GB/s HBM at
4 pJ/bit, 800 MHz.  Each model implements its published prediction/execution
scheme, so relative costs (predictor share, memory traffic, achieved
sparsity) track the paper:

* :mod:`dense_acc` — dense attention, no predictor.
* :mod:`sanger` — 4-bit MSB predictor + threshold mask, reconfigurable
  executor (stage-splitting reference).
* :mod:`spatten` — cascade token/head pruning guided by accumulated scores
  (predictor-free but accuracy-limited without retraining; top-k sort HW).
* :mod:`energon` — progressive mixed-precision filtering predictor.
* :mod:`dota` — low-rank score approximation predictor.
* :mod:`sofa` — log-domain differential predictor + cross-stage tiling.
* :mod:`bitwave` — bit-column sparsity baseline (Fig. 23a comparator).
* :mod:`gpu` — Nvidia H100 roofline (TensorRT-LLM + FlashAttention-3).
* :mod:`pade_model` — PADE itself expressed in the same analytic framework
  (for apples-to-apples long-sequence studies; the cycle simulator in
  :mod:`repro.sim` remains the source of truth for short sequences).
"""

from repro.accelerators.base import AttentionWorkload, AcceleratorModel, CostReport
from repro.accelerators.dense_acc import DenseAccelerator
from repro.accelerators.sanger import SangerModel
from repro.accelerators.spatten import SpAttenModel
from repro.accelerators.energon import EnergonModel
from repro.accelerators.dota import DotaModel
from repro.accelerators.sofa import SofaModel
from repro.accelerators.bitwave import BitWaveModel
from repro.accelerators.gpu import GPUModel
from repro.accelerators.pade_model import PadeAnalyticModel

ALL_MODELS = {
    "dense": DenseAccelerator,
    "sanger": SangerModel,
    "spatten": SpAttenModel,
    "energon": EnergonModel,
    "dota": DotaModel,
    "sofa": SofaModel,
    "bitwave": BitWaveModel,
    "gpu": GPUModel,
    "pade": PadeAnalyticModel,
}

__all__ = [
    "AttentionWorkload",
    "AcceleratorModel",
    "CostReport",
    "DenseAccelerator",
    "SangerModel",
    "SpAttenModel",
    "EnergonModel",
    "DotaModel",
    "SofaModel",
    "BitWaveModel",
    "GPUModel",
    "PadeAnalyticModel",
    "ALL_MODELS",
]
