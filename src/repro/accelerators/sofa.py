"""SOFA (MICRO'24): log-domain differential predictor + cross-stage tiling.

SOFA's predictor works in the log domain (shift-based, very cheap compute)
with top-k selection, and — uniquely among the stage-splitting designs — it
tiles across the prediction/execution stages, so its memory behaviour is the
best of the predictor-based group (45% computation / strong memory reduction
in Fig. 14).  It remains bound by the fundamental stage-splitting costs the
paper targets: the predictor must touch every K, and its work is not reused
by the executor.

The ``distribution_uniformity`` knob models the Fig. 26(a) finding: under
QAT's flatter distributions the log-domain estimate separates poorly, the
top-k must keep more, and the predictor becomes largely ineffective.
"""

from __future__ import annotations

import numpy as np

from repro.accelerators.base import AcceleratorModel, AttentionWorkload, CostReport

__all__ = ["SofaModel"]


class SofaModel(AcceleratorModel):
    name = "sofa"
    BLOCK_QUERIES = 32
    KEEP_INFLATION = 1.15
    KEEP_FLOOR = 0.03
    PRED_BITS = 3  # log-domain exponent stream ≈ 3 bits/element
    FEATURES = {
        "computation": "optimized (log-domain shifting)",
        "memory": "low (cross-stage tiling)",
        "predictor_free": "no",
        "tiling": "yes",
        "optimization_level": "value",
    }

    def __init__(self, tech=None, exec_bits: int = 8, distribution_uniformity: float = 0.0) -> None:
        super().__init__(tech) if tech is not None else super().__init__()
        self.exec_bits = exec_bits
        self.distribution_uniformity = distribution_uniformity

    def keep_fraction(self, workload: AttentionWorkload) -> float:
        inflation = self.KEEP_INFLATION * (1.0 + 2.5 * self.distribution_uniformity)
        return min(1.0, workload.oracle_keep * inflation + self.KEEP_FLOOR)

    def cost(self, workload: AttentionWorkload) -> CostReport:
        w = workload
        keep = self.keep_fraction(w)
        # Cross-stage tiling: K streams once per *tile group* instead of per
        # 8-query block.
        k_passes = self.kv_passes(w)

        pred_shift_ops = w.dense_pairs * w.head_dim  # shifts, not MACs
        pred_k_bytes = w.kv_bytes(self.PRED_BITS) * k_passes
        if w.decode:
            # Top-k needs the full exponent stream resident per row; beyond
            # the score-buffer capacity the selection falls back to
            # multi-round re-streaming — the long-sequence decoding blow-up
            # of Fig. 26(b).
            spill = max(1.0, w.seq_len / 4096.0) ** 0.5
            pred_k_bytes *= spill
        pred_compute = pred_shift_ops * self.tech.shift_pj + w.dense_pairs * np.log2(
            max(2.0, w.seq_len)
        ) / w.seq_len * self.tech.comparator_pj * 2  # top-k
        pred_memory = self.dram_energy(pred_k_bytes) + self.sram_energy(pred_k_bytes, pred_k_bytes)

        exec_macs = 2.0 * keep * w.dense_pairs * w.head_dim
        exec_k_bytes = w.kv_bytes(self.exec_bits) * k_passes * keep
        exec_v_bytes = w.kv_bytes(self.exec_bits) * k_passes * keep
        q_bytes = w.num_queries * w.head_dim * self.exec_bits / 8 * w.heads_layers
        out_bytes = w.num_queries * w.head_dim * 2 * w.heads_layers
        exec_bytes = exec_k_bytes + exec_v_bytes + q_bytes + out_bytes

        # Tiling lets prediction and execution pipeline within a tile group.
        pred_cycles = max(
            pred_shift_ops / self.PEAK_INT8_MACS_PER_CYCLE,
            self.dram_cycles(pred_k_bytes),
        )
        exec_cycles = max(
            self.compute_cycles(exec_macs, utilization=0.62),
            self.dram_cycles(exec_bytes),
        )
        cycles = max(pred_cycles, exec_cycles) + 0.15 * min(pred_cycles, exec_cycles)

        energy = {
            "predictor_compute": pred_compute,
            "predictor_memory": pred_memory,
            "compute": self.mac_energy(exec_macs, self.exec_bits),
            "softmax": self.softmax_energy(keep * w.dense_pairs),
            "sram": self.sram_for(exec_macs, exec_bytes),
            "dram": self.dram_energy(exec_bytes),
            "static": self.static_energy(cycles),
        }
        return CostReport(
            name=self.name,
            cycles=cycles,
            energy_pj=energy,
            dram_bytes=pred_k_bytes + exec_bytes,
            predictor_macs=pred_shift_ops,
            executor_macs=exec_macs,
            keep_fraction=keep,
            tech=self.tech,
        )
