"""Dense attention accelerator: no predictor, full QK^T + PV at INT8."""

from __future__ import annotations


from repro.accelerators.base import AcceleratorModel, AttentionWorkload, CostReport

__all__ = ["DenseAccelerator"]


class DenseAccelerator(AcceleratorModel):
    """Dense INT8 attention on the normalized substrate.

    Serves as the normalization baseline of Figs. 2/23(b) ("Dense
    Attention") and the no-sparse-modules reference of Figs. 16(a)/19.
    """

    name = "dense"
    BLOCK_QUERIES = 64
    FEATURES = {
        "computation": "dense",
        "memory": "none",
        "predictor_free": "yes (none needed)",
        "tiling": "no",
        "optimization_level": "value",
    }

    def __init__(self, tech=None, exec_bits: int = 8) -> None:
        super().__init__(tech) if tech is not None else super().__init__()
        self.exec_bits = exec_bits

    def cost(self, workload: AttentionWorkload) -> CostReport:
        w = workload
        macs = w.dense_macs
        k_passes = self.kv_passes(w)
        k_bytes = w.kv_bytes(self.exec_bits) * k_passes
        v_bytes = w.kv_bytes(self.exec_bits) * k_passes
        q_bytes = w.num_queries * w.head_dim * self.exec_bits / 8 * w.heads_layers
        out_bytes = w.num_queries * w.head_dim * 2 * w.heads_layers
        dram_bytes = k_bytes + v_bytes + q_bytes + out_bytes

        compute_cycles = self.compute_cycles(macs)
        cycles = max(compute_cycles, self.dram_cycles(dram_bytes))
        energy = {
            "compute": self.mac_energy(macs, self.exec_bits),
            "softmax": self.softmax_energy(w.dense_pairs),
            "sram": self.sram_for(macs, dram_bytes),
            "dram": self.dram_energy(dram_bytes),
            "static": self.static_energy(cycles),
        }
        return CostReport(
            name=self.name,
            cycles=cycles,
            energy_pj=energy,
            dram_bytes=dram_bytes,
            executor_macs=macs,
            keep_fraction=1.0,
            tech=self.tech,
        )
