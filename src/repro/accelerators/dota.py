"""DOTA (ASPLOS'22): low-rank approximation predictor.

DOTA estimates attention scores with learned low-rank projections
(``Q' = Q W_q``, ``K' = K W_k`` with rank r ≪ H) and executes the detected
strong attentions at full precision.  The projection shrinks predictor
*compute* but the projected K' must still be produced/fetched for every
token, and (per the paper's Fig. 14 discussion) the prediction bit-width
overhead remains — so memory reduction stays near the Sanger baseline.
"""

from __future__ import annotations


from repro.accelerators.base import AcceleratorModel, AttentionWorkload, CostReport

__all__ = ["DotaModel"]


class DotaModel(AcceleratorModel):
    name = "dota"
    BLOCK_QUERIES = 8
    KEEP_INFLATION = 1.45  # rank-truncated estimates are noisier than 4-bit MSB
    KEEP_FLOOR = 0.12
    RANK = 16
    PRED_BITS = 8  # low-rank operands kept at executor-like width
    FEATURES = {
        "computation": "optimized (low-rank approximation)",
        "memory": "none",
        "predictor_free": "no",
        "tiling": "no",
        "optimization_level": "value",
    }

    def __init__(self, tech=None, exec_bits: int = 8) -> None:
        super().__init__(tech) if tech is not None else super().__init__()
        self.exec_bits = exec_bits

    def cost(self, workload: AttentionWorkload) -> CostReport:
        w = workload
        keep = self.keep_fraction(w)
        rank_frac = self.RANK / w.head_dim
        k_passes = self.kv_passes(w)

        # Projection of Q and K + rank-r score estimation.
        proj_macs = (w.num_queries + w.seq_len) * w.head_dim * self.RANK * w.heads_layers
        score_macs = w.dense_pairs * self.RANK
        pred_macs = proj_macs + score_macs
        pred_k_bytes = w.kv_bytes(self.PRED_BITS) * k_passes * rank_frac + w.kv_bytes(
            self.PRED_BITS
        )  # K' stream per block + one full-K read to build projections
        pred_compute = self.mac_energy(pred_macs, self.PRED_BITS)
        pred_memory = self.dram_energy(pred_k_bytes) + self.sram_for(pred_macs, pred_k_bytes)

        exec_macs = 2.0 * keep * w.dense_pairs * w.head_dim
        exec_k_bytes = w.kv_bytes(self.exec_bits) * k_passes * keep
        exec_v_bytes = w.kv_bytes(self.exec_bits) * k_passes * keep
        q_bytes = w.num_queries * w.head_dim * self.exec_bits / 8 * w.heads_layers
        out_bytes = w.num_queries * w.head_dim * 2 * w.heads_layers
        exec_bytes = exec_k_bytes + exec_v_bytes + q_bytes + out_bytes

        pred_cycles = max(
            self.compute_cycles(pred_macs, utilization=0.85),
            self.dram_cycles(pred_k_bytes),
        )
        exec_cycles = max(
            self.compute_cycles(exec_macs, utilization=0.55),
            self.dram_cycles(exec_bytes),
        )
        cycles = pred_cycles + exec_cycles

        energy = {
            "predictor_compute": pred_compute,
            "predictor_memory": pred_memory,
            "compute": self.mac_energy(exec_macs, self.exec_bits),
            "softmax": self.softmax_energy(keep * w.dense_pairs),
            "sram": self.sram_for(exec_macs, exec_bytes),
            "dram": self.dram_energy(exec_bytes),
            "static": self.static_energy(cycles),
        }
        return CostReport(
            name=self.name,
            cycles=cycles,
            energy_pj=energy,
            dram_bytes=pred_k_bytes + exec_bytes,
            predictor_macs=pred_macs,
            executor_macs=exec_macs,
            keep_fraction=keep,
            tech=self.tech,
        )
