"""BitWave (HPCA'24): bit-column sparsity accelerator (Fig. 23a comparator).

BitWave exploits zero bit-columns via bit-flipping, but only *zero* bits —
it cannot turn dense-1 columns into work reductions the way bidirectional
sparsity does, so its per-lane workload variance is higher: lanes whose
operands have many effective bits straggle (intra-PE stall) and lanes with
different key statistics diverge (inter-PE stall), worsening as lanes scale.
This model mirrors the QK-PU lane simulation with one-sided costs.
"""

from __future__ import annotations

import numpy as np

from repro.accelerators.base import AcceleratorModel, AttentionWorkload, CostReport
from repro.quant.bitplane import BitPlanes
from repro.sim.pe import lane_task_costs, simulate_lane
from repro.sim.qkpu import QKPUResult
from repro.sim.tech import DEFAULT_TECH

__all__ = ["BitWaveModel", "simulate_bitwave_lanes"]


def simulate_bitwave_lanes(
    planes_processed: np.ndarray,
    key_planes: BitPlanes,
    lanes_per_row: int = 16,
    tech=DEFAULT_TECH,
) -> QKPUResult:
    """BitWave-style lane timing: one-sided bit sparsity, in-order issue."""
    planes_processed = np.atleast_2d(np.asarray(planes_processed, dtype=np.int64))
    num_rows, num_tokens = planes_processed.shape
    costs = lane_task_costs(
        key_planes.planes,
        subgroup=tech.gsat_subgroup,
        muxes=max(1, tech.gsat_subgroup // 2),
        bidirectional=False,  # only bit-0 sparsity
    )
    lane_stats = []
    finishes = []
    for row in range(num_rows):
        for lane in range(lanes_per_row):
            token_ids = np.arange(lane, num_tokens, lanes_per_row)
            work = [
                (int(t), costs[: planes_processed[row, t], t])
                for t in token_ids
                if planes_processed[row, t] > 0
            ]
            # BitWave streams planes with prefetch (no decision-dependent
            # fetches), but buffers only a couple of tokens — imbalance, not
            # exposed DRAM latency, is its bottleneck.
            stats = simulate_lane(
                work, dram_latency=12.0, scoreboard_entries=5, out_of_order=True
            )
            lane_stats.append(stats)
        finishes.append(max((s.finish_cycle for s in lane_stats[-lanes_per_row:]), default=0.0))
    return QKPUResult(cycles=max(finishes, default=0.0), lane_stats=lane_stats)


class BitWaveModel(AcceleratorModel):
    name = "bitwave"
    BLOCK_QUERIES = 16
    KEEP_INFLATION = 1.0  # dense execution; gains come from bit sparsity only
    FEATURES = {
        "computation": "optimized (bit-column sparsity)",
        "memory": "low (bit packing)",
        "predictor_free": "yes (no token sparsity)",
        "tiling": "no",
        "optimization_level": "bit",
    }

    #: average effective-bit fraction with one-sided (zero-bit) skipping on
    #: activation-like data (~0.5 density → half the bits are ones and ALL
    #: must be processed)
    ONE_SIDED_BIT_FRACTION = 0.52

    def cost(self, workload: AttentionWorkload) -> CostReport:
        w = workload
        bit_ops = w.dense_macs * 8 * self.ONE_SIDED_BIT_FRACTION
        k_passes = self.kv_passes(w)
        dram_bytes = (
            w.kv_bytes(8) * k_passes * 2
            + w.num_queries * w.head_dim * w.heads_layers
            + w.num_queries * w.head_dim * 2 * w.heads_layers
        )
        # One-sided sparsity → poor balance → low utilization at scale.
        cycles = max(
            bit_ops / (self.PEAK_INT8_MACS_PER_CYCLE * 8 * 0.55),
            self.dram_cycles(dram_bytes),
        )
        energy = {
            "compute": bit_ops * self.tech.bit_serial_add_pj / 8,
            "softmax": self.softmax_energy(w.dense_pairs),
            "sram": self.sram_for(w.dense_macs, dram_bytes),
            "dram": self.dram_energy(dram_bytes),
            "static": self.static_energy(cycles),
        }
        return CostReport(
            name=self.name,
            cycles=cycles,
            energy_pj=energy,
            dram_bytes=dram_bytes,
            executor_macs=w.dense_macs,
            keep_fraction=1.0,
            tech=self.tech,
        )
