"""PADE expressed in the analytic framework (long-sequence studies).

The cycle simulator (:mod:`repro.sim.accelerator`) is the source of truth at
simulatable sizes; this analytic twin extrapolates the same mechanisms —
early termination (``mean_planes``), bidirectional sparsity (½ the bit
adds), scoreboard result reuse (each plane fetched once), ISTA tiling
(K streamed once per 8-query block, only retained V fetched) — to the
100k/1M-token workloads of Figs. 15(c)/24/26.
"""

from __future__ import annotations


from repro.accelerators.base import AcceleratorModel, AttentionWorkload, CostReport

__all__ = ["PadeAnalyticModel"]


class PadeAnalyticModel(AcceleratorModel):
    name = "pade"
    BLOCK_QUERIES = 256
    KEEP_INFLATION = 1.05  # guard conservatism over the oracle keep set
    FEATURES = {
        "computation": "optimized (bit-serial early termination)",
        "memory": "optimized (bit-plane loads, result reuse)",
        "predictor_free": "yes",
        "tiling": "yes (ISTA)",
        "optimization_level": "bit",
    }

    UTILIZATION = 0.78  # paper's reported average with BS-OOE

    def __init__(self, tech=None, exec_bits: int = 8, result_reuse: bool = True) -> None:
        super().__init__(tech) if tech is not None else super().__init__()
        self.exec_bits = exec_bits
        self.result_reuse = result_reuse

    def cost(self, workload: AttentionWorkload) -> CostReport:
        w = workload
        t = self.tech
        keep = self.keep_fraction(w)
        bits = self.exec_bits
        mean_planes = min(w.mean_planes, bits)
        k_passes = self.kv_passes(w)

        # --- Fused QK: bit-serial with early termination ------------------
        plane_tasks = w.dense_pairs * mean_planes  # (pair, plane) units
        bit_adds = plane_tasks * w.head_dim * 0.5  # BS guarantees ≤ 50%
        qk_energy = bit_adds * t.bit_serial_add_pj + plane_tasks * t.shift_pj
        bui_energy = plane_tasks * t.comparator_pj + plane_tasks * 2 * t.scoreboard_access_pj
        lut_energy = w.num_queries * w.head_dim * 2 * t.bit_serial_add_pj * w.heads_layers

        plane_factor = mean_planes / bits
        if not self.result_reuse:
            # Without the scoreboard, round r refetches planes 0..r.
            plane_factor = mean_planes * (mean_planes + 1) / 2 / bits
        k_bytes = w.kv_bytes(bits) * k_passes * plane_factor

        # --- V phase: only retained vectors, RARS ≈ unique ---------------
        pv_macs = keep * w.dense_pairs * w.head_dim
        v_bytes = w.kv_bytes(bits) * k_passes * keep
        q_bytes = w.num_queries * w.head_dim * bits / 8 * w.heads_layers
        out_bytes = w.num_queries * w.head_dim * 2 * w.heads_layers
        dram_bytes = k_bytes + v_bytes + q_bytes + out_bytes

        # --- Timing --------------------------------------------------------
        # One lane covers 64 dims per cycle; wider heads take proportionally
        # more cycles per plane task.
        dims_factor = max(1.0, w.head_dim / t.lane_dims)
        lane_throughput = t.num_lanes * self.UTILIZATION  # plane tasks/cycle
        qk_cycles = plane_tasks * dims_factor / lane_throughput
        vpu_cycles = pv_macs / (t.vpu_rows * t.vpu_cols * 0.85)
        # OOE + staggered pipeline: phases and DRAM overlap.
        cycles = max(qk_cycles, vpu_cycles, self.dram_cycles(dram_bytes))

        energy = {
            "compute": qk_energy + self.mac_energy(pv_macs, bits),
            "bui": bui_energy + lut_energy,
            "softmax": self.softmax_energy(keep * w.dense_pairs),
            "sram": self.sram_energy(
                k_bytes + v_bytes + bit_adds / 16, dram_bytes
            ),
            "dram": self.dram_energy(dram_bytes, activation_rate=0.02),
            "static": self.static_energy(cycles),
        }
        return CostReport(
            name=self.name,
            cycles=cycles,
            energy_pj=energy,
            dram_bytes=dram_bytes,
            executor_macs=pv_macs + plane_tasks * w.head_dim / 8.0,
            keep_fraction=keep,
            tech=self.tech,
        )
