"""SpAtten (HPCA'21): cascade token & head pruning with top-k hardware.

SpAtten avoids a dedicated low-bit predictor by accumulating attention
probabilities across layers and pruning tokens/heads cumulatively (Table I:
"sparsity guided by preceding layer scores").  Without retraining that
guidance is stale, so at iso-accuracy it keeps far more tokens than an
oracle (the paper's Fig. 14 shows SpAtten with the lowest reduction);
fine-tuning (``finetuned=True``, the paper's SpAtten*) recovers most of it.
Its progressive quantization fetches MSBs first and LSBs only when needed,
which we model as a fractional-byte fetch.
"""

from __future__ import annotations

import numpy as np

from repro.accelerators.base import AcceleratorModel, AttentionWorkload, CostReport

__all__ = ["SpAttenModel"]


class SpAttenModel(AcceleratorModel):
    name = "spatten"
    BLOCK_QUERIES = 8
    KEEP_INFLATION = 2.4  # stale cross-layer guidance without retraining
    KEEP_FLOOR = 0.30
    KEEP_INFLATION_FINETUNED = 1.25
    KEEP_FLOOR_FINETUNED = 0.20
    FEATURES = {
        "computation": "optimized (cascade pruning)",
        "memory": "low (progressive quantization)",
        "predictor_free": "previous-layer scores (needs retrain)",
        "tiling": "no",
        "optimization_level": "multi-bit",
    }

    def __init__(self, tech=None, exec_bits: int = 8, finetuned: bool = False) -> None:
        super().__init__(tech) if tech is not None else super().__init__()
        self.exec_bits = exec_bits
        self.finetuned = finetuned
        if finetuned:
            self.name = "spatten*"

    def keep_fraction(self, workload: AttentionWorkload) -> float:
        if self.finetuned:
            inflation, floor = self.KEEP_INFLATION_FINETUNED, self.KEEP_FLOOR_FINETUNED
        else:
            inflation, floor = self.KEEP_INFLATION, self.KEEP_FLOOR
        return min(1.0, workload.oracle_keep * inflation + floor)

    def cost(self, workload: AttentionWorkload) -> CostReport:
        w = workload
        keep = self.keep_fraction(w)
        k_passes = self.kv_passes(w)

        # Cumulative-score bookkeeping + top-k engine stand in for the
        # predictor: O(S log S)-ish sort work per row, plus score buffers.
        sort_ops = w.dense_pairs * np.log2(max(2.0, w.seq_len)) / w.seq_len
        pred_compute = sort_ops * self.tech.comparator_pj * 4
        pred_memory = self.sram_energy(w.dense_pairs * 2 / w.seq_len * w.seq_len)

        # Execution over surviving tokens; progressive quantization fetches
        # ~60% of bytes on average (MSB half always, LSB half on demand).
        exec_macs = 2.0 * keep * w.dense_pairs * w.head_dim
        byte_frac = 0.6
        exec_k_bytes = w.kv_bytes(self.exec_bits) * k_passes * keep * byte_frac * 2
        exec_v_bytes = w.kv_bytes(self.exec_bits) * k_passes * keep
        q_bytes = w.num_queries * w.head_dim * self.exec_bits / 8 * w.heads_layers
        out_bytes = w.num_queries * w.head_dim * 2 * w.heads_layers
        exec_bytes = exec_k_bytes + exec_v_bytes + q_bytes + out_bytes

        cycles = max(
            self.compute_cycles(exec_macs, utilization=0.55),
            self.dram_cycles(exec_bytes),
        ) + sort_ops / self.PEAK_INT8_MACS_PER_CYCLE

        energy = {
            "predictor_compute": pred_compute,
            "predictor_memory": pred_memory,
            "compute": self.mac_energy(exec_macs, self.exec_bits),
            "softmax": self.softmax_energy(keep * w.dense_pairs),
            "sram": self.sram_for(exec_macs, exec_bytes),
            "dram": self.dram_energy(exec_bytes),
            "static": self.static_energy(cycles),
        }
        return CostReport(
            name=self.name,
            cycles=cycles,
            energy_pj=energy,
            dram_bytes=exec_bytes,
            predictor_macs=sort_ops,
            executor_macs=exec_macs,
            keep_fraction=keep,
            tech=self.tech,
        )
