"""Sanger (MICRO'21): 4-bit MSB predictor + threshold mask (stage-splitting).

The canonical stage-splitting design the paper dissects (Fig. 4a): the
predictor computes the *full* Q×K^T at 4 bits — fetching the entire K tensor
at 4-bit width, work unaffected by the sparsity it discovers — then the
executor re-fetches the retained K/V at executor precision and recomputes
from scratch (no reuse of predictor work).
"""

from __future__ import annotations


from repro.accelerators.base import AcceleratorModel, AttentionWorkload, CostReport

__all__ = ["SangerModel"]


class SangerModel(AcceleratorModel):
    name = "sanger"
    BLOCK_QUERIES = 8
    KEEP_INFLATION = 1.30
    KEEP_FLOOR = 0.10  # coarse 4-bit threshold keeps more than oracle
    FEATURES = {
        "computation": "optimized (4-bit MSB prediction)",
        "memory": "none",
        "predictor_free": "no",
        "tiling": "no",
        "optimization_level": "value",
    }

    def __init__(self, tech=None, exec_bits: int = 8, pred_bits: int = 4) -> None:
        super().__init__(tech) if tech is not None else super().__init__()
        self.exec_bits = exec_bits
        self.pred_bits = pred_bits

    def cost(self, workload: AttentionWorkload) -> CostReport:
        w = workload
        keep = self.keep_fraction(w)
        k_passes = self.kv_passes(w)

        # --- Predictor: full low-bit QK^T + full K fetch ------------------
        pred_macs = w.dense_pairs * w.head_dim
        pred_k_bytes = w.kv_bytes(self.pred_bits) * k_passes
        pred_compute = self.mac_energy(pred_macs, self.pred_bits)
        pred_memory = self.dram_energy(pred_k_bytes) + self.sram_for(pred_macs, pred_k_bytes)

        # --- Executor: retained pairs at full precision, K/V re-fetched ---
        exec_macs = 2.0 * keep * w.dense_pairs * w.head_dim
        exec_k_bytes = w.kv_bytes(self.exec_bits) * k_passes * keep
        exec_v_bytes = w.kv_bytes(self.exec_bits) * k_passes * keep
        q_bytes = w.num_queries * w.head_dim * self.exec_bits / 8 * w.heads_layers
        out_bytes = w.num_queries * w.head_dim * 2 * w.heads_layers
        exec_bytes = exec_k_bytes + exec_v_bytes + q_bytes + out_bytes

        dram_bytes = pred_k_bytes + exec_bytes
        # Stage splitting serializes predict → select → execute per block;
        # irregular retained sets cap executor utilization (Sanger's packing
        # recovers part of it).
        pred_cycles = max(
            self.compute_cycles(pred_macs * self.pred_bits / 8.0, utilization=0.85),
            self.dram_cycles(pred_k_bytes),
        )
        exec_cycles = max(
            self.compute_cycles(exec_macs, utilization=0.50),
            self.dram_cycles(exec_bytes),
        )
        cycles = pred_cycles + exec_cycles

        energy = {
            "predictor_compute": pred_compute,
            "predictor_memory": pred_memory,
            "compute": self.mac_energy(exec_macs, self.exec_bits),
            "softmax": self.softmax_energy(keep * w.dense_pairs),
            "sram": self.sram_for(exec_macs, exec_bytes),
            "dram": self.dram_energy(exec_bytes),
            "static": self.static_energy(cycles),
        }
        return CostReport(
            name=self.name,
            cycles=cycles,
            energy_pj=energy,
            dram_bytes=dram_bytes,
            predictor_macs=pred_macs,
            executor_macs=exec_macs,
            keep_fraction=keep,
            tech=self.tech,
        )
