"""KV-cache substrate for decode-phase simulation.

Autoregressive decoding appends one K/V row per step and re-reads the whole
cache each step; PADE's layout writes new K rows bit-plane-first (the GPU
performs the conversion during K generation, Fig. 24a).  The cache model
tracks footprint, append traffic, and per-step read traffic under PADE's
plane/retention filters — the quantities the Fig. 26(b) decoding study and
:meth:`repro.sim.accelerator.PadeAccelerator.run_decode` consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.tech import DEFAULT_TECH, TechConfig

__all__ = ["KVCache", "DecodeStepTraffic"]


@dataclass(frozen=True)
class DecodeStepTraffic:
    """DRAM traffic of one decode step for one (kv-)head."""

    k_bytes: float
    v_bytes: float
    append_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.k_bytes + self.v_bytes + self.append_bytes


@dataclass
class KVCache:
    """Per-head KV cache with bit-plane-aware accounting.

    Attributes
    ----------
    head_dim / bits:
        Row geometry; one K row stores ``bits`` planes of ``head_dim`` bits.
    length:
        Current number of cached tokens.
    """

    head_dim: int = 64
    bits: int = 8
    length: int = 0
    tech: TechConfig = field(default=DEFAULT_TECH, repr=False)
    appended_bytes: float = 0.0

    @property
    def row_bytes(self) -> float:
        return self.head_dim * self.bits / 8.0

    @property
    def plane_bytes(self) -> float:
        return self.head_dim / 8.0

    @property
    def footprint_bytes(self) -> float:
        return 2.0 * self.length * self.row_bytes  # K + V

    def append(self, tokens: int = 1) -> float:
        """Add K+V rows (both written once, K in bit-plane-first layout)."""
        nbytes = tokens * 2.0 * self.row_bytes
        self.length += tokens
        self.appended_bytes += nbytes
        return nbytes

    def step_traffic(
        self,
        mean_planes: float,
        keep_fraction: float,
        resident_fraction: float = 0.0,
    ) -> DecodeStepTraffic:
        """Read traffic of one decode step under PADE's filters.

        ``mean_planes`` planes of every candidate K row are fetched (early
        termination), only ``keep_fraction`` of V rows are fetched, and an
        optional ``resident_fraction`` of the cache (e.g. the recency window
        pinned in SRAM) is excluded from DRAM traffic.
        """
        if not 0 <= keep_fraction <= 1:
            raise ValueError(f"keep_fraction must be in [0, 1], got {keep_fraction}")
        planes = float(np.clip(mean_planes, 0.0, self.bits))
        dram_tokens = self.length * (1.0 - np.clip(resident_fraction, 0.0, 1.0))
        k_bytes = dram_tokens * self.plane_bytes * planes
        v_bytes = dram_tokens * self.row_bytes * keep_fraction
        return DecodeStepTraffic(
            k_bytes=float(k_bytes), v_bytes=float(v_bytes), append_bytes=2.0 * self.row_bytes
        )

    def dense_step_traffic(self) -> DecodeStepTraffic:
        """Dense baseline: full K and V every step."""
        return self.step_traffic(mean_planes=self.bits, keep_fraction=1.0)
