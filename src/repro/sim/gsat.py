"""Grouped lightweight sparsity ANDer tree (GSAT, paper §V-D, Fig. 11b).

A 64-input bit-serial dot product that naively selects query elements at
non-zero bit positions needs 32 64:1 multiplexers.  Because bidirectional
sparsity guarantees at most 50% effective bits in *any* window, splitting
the 64 dims into sub-groups of ``g`` means each sub-group selects at most
``g/2`` elements, and the ``i``-th selector only ever picks from a window of
``g/2 + 1`` candidates — so ``g/2`` small ``(g/2+1):1`` muxes per sub-group
suffice (4× 5:1 for ``g = 8``).  Smaller groups shrink muxes but multiply
subtractors and Q-sum generators; the DSE of Fig. 17(a) finds ``g = 8``
optimal — this module reproduces both the functional behaviour and that
cost curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.bs import bs_partial_dot
from repro.sim.tech import DEFAULT_TECH, TechConfig

__all__ = ["GSATConfig", "gsat_partial_dot", "gsat_cycles", "gsat_area_power"]


@dataclass(frozen=True)
class GSATConfig:
    """Shape of one GSAT instance."""

    dims: int = 64
    subgroup: int = 8
    muxes_per_subgroup: int | None = None  # defaults to subgroup // 2

    @property
    def num_subgroups(self) -> int:
        return self.dims // self.subgroup

    @property
    def muxes(self) -> int:
        return self.muxes_per_subgroup or max(1, self.subgroup // 2)


def gsat_partial_dot(
    q_row: np.ndarray, plane_bits: np.ndarray, config: GSATConfig = GSATConfig()
) -> int:
    """Functional GSAT: sub-group-wise bidirectional partial dot product.

    Exactly equals the monolithic ``sum q_j * k_j^b`` (tested invariant);
    the decomposition only changes the hardware cost, not the value.
    """
    q = np.asarray(q_row, dtype=np.int64)
    bits = np.asarray(plane_bits).astype(bool)
    if q.size != config.dims or bits.size != config.dims:
        raise ValueError(f"GSAT expects {config.dims}-dim inputs")
    total = 0
    for g in range(config.num_subgroups):
        sl = slice(g * config.subgroup, (g + 1) * config.subgroup)
        total += bs_partial_dot(q[sl], bits[sl])
    return total


def gsat_cycles(plane_bits: np.ndarray, config: GSATConfig = GSATConfig()) -> int:
    """Cycles to process one bit plane on one GSAT.

    Each sub-group has ``muxes`` selectors working in parallel, so a
    sub-group with ``e`` effective bits takes ``ceil(e / muxes)`` selection
    steps; sub-groups run in parallel, so the lane takes the max — the
    *intra-PE imbalance* of Fig. 23(a).
    """
    bits = np.asarray(plane_bits).astype(bool)
    worst = 1
    for g in range(config.num_subgroups):
        sub = bits[g * config.subgroup : (g + 1) * config.subgroup]
        ones = int(sub.sum())
        eff = min(ones, sub.size - ones)
        worst = max(worst, int(np.ceil(eff / config.muxes)) if eff else 1)
    return worst


#: Relative hardware cost constants (arbitrary units calibrated so the
#: Fig. 17a optimum lands at sub-group size 8 with the paper's curve shape).
_MUX_INPUT_COST = 1.30  # per mux input (area units)
_SUBTRACTOR_COST = 14.0  # per sub-group 0-mode subtractor
_QSUM_COST = 11.0  # per sub-group query-sum generator
_ADDER_TREE_COST = 2.2  # per accumulation node


def gsat_area_power(subgroup: int, dims: int = 64) -> Tuple[float, float]:
    """Relative (area, power) of one GSAT at a given sub-group size.

    Mux cost grows ~quadratically with the sub-group (``g/2`` muxes of
    ``g/2+1`` inputs each); subtractor + Q-sum overhead grows as the number
    of sub-groups shrinks the other way.
    """
    if dims % subgroup:
        raise ValueError(f"subgroup {subgroup} must divide dims {dims}")
    groups = dims // subgroup
    muxes = max(1, subgroup // 2)
    mux_inputs = muxes * (muxes + 1)
    mux_area = groups * mux_inputs * _MUX_INPUT_COST
    support_area = groups * (_SUBTRACTOR_COST + _QSUM_COST)
    tree_area = (dims - 1) * _ADDER_TREE_COST
    area = mux_area + support_area + tree_area
    # Power tracks area for combinational logic at fixed activity; muxes
    # toggle more than the mostly-idle subtractors.
    power = 1.15 * mux_area + 0.95 * support_area + tree_area
    return area, power


def gsat_energy_pj(effective_bits: int, tech: TechConfig = DEFAULT_TECH) -> float:
    """Energy of one plane's partial dot product (selection + accumulate)."""
    return effective_bits * tech.bit_serial_add_pj + tech.shift_pj
