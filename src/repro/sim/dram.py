"""HBM2 model: pseudo channels, row buffers, bursts, and data layouts.

PADE co-designs the DRAM layout with the access pattern (Fig. 22): K is
bank-interleaved along the *bit* dimension (each bank stores one bit plane)
so that streaming one plane of many consecutive keys hits the open row,
while Q/V are interleaved along the hidden dimension for contiguous 8-bit
reads.  Without that layout, fetching one bit plane of one key strides
through memory and pays a row activation almost every access — the behaviour
behind the "PADE w/o DL" bars of Fig. 23(b).

The model is transaction-level: a stream of ``num_accesses`` reads of
``bytes_per_access`` is characterized by its row-buffer hit rate, from which
cycles (max of bandwidth-limited and latency-limited), energy (4 pJ/bit +
activation energy) and activation counts follow.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

import numpy as np

from repro.sim.tech import DEFAULT_TECH, TechConfig

__all__ = ["DataLayout", "DramStats", "HBMModel"]


class DataLayout(Enum):
    """How a tensor is arranged across banks/rows (Fig. 22)."""

    BIT_PLANE_FIRST = "bit_plane_first"  # K with PADE's custom layout
    ROW_MAJOR = "row_major"  # element-contiguous (Q/V, or K without DL)


@dataclass
class DramStats:
    """Aggregate result of one or more access streams."""

    bytes_transferred: float = 0.0
    cycles: float = 0.0
    activations: float = 0.0
    energy_pj: float = 0.0
    accesses: int = 0

    def merge(self, other: "DramStats") -> "DramStats":
        return DramStats(
            bytes_transferred=self.bytes_transferred + other.bytes_transferred,
            cycles=self.cycles + other.cycles,
            activations=self.activations + other.activations,
            energy_pj=self.energy_pj + other.energy_pj,
            accesses=self.accesses + other.accesses,
        )

    @property
    def bandwidth_utilization(self) -> float:
        """Achieved fraction of peak bandwidth over the stream's duration."""
        if self.cycles <= 0:
            return 0.0
        peak = DEFAULT_TECH.hbm_bytes_per_cycle * self.cycles
        return min(1.0, self.bytes_transferred / peak)


class HBMModel:
    """Transaction-level HBM2 cost model.

    Parameters
    ----------
    tech:
        Technology constants (channels, per-channel bandwidth, tRC ...).
    """

    def __init__(self, tech: TechConfig = DEFAULT_TECH) -> None:
        self.tech = tech

    # ------------------------------------------------------------------
    # Row-buffer behaviour per layout/pattern
    # ------------------------------------------------------------------
    def hit_rate(
        self,
        layout: DataLayout,
        access_bytes: int,
        stride_bytes: Optional[int] = None,
    ) -> float:
        """Row-buffer hit probability of a stream.

        Sequential streams hit until they cross a row boundary; strided
        streams (bit-plane gathers without the custom layout) miss whenever
        the stride exceeds the row span.
        """
        row = self.tech.hbm_row_bytes
        if layout is DataLayout.BIT_PLANE_FIRST:
            # Planes of consecutive keys are contiguous: one miss per row.
            return max(0.0, 1.0 - access_bytes / row)
        stride = stride_bytes if stride_bytes is not None else access_bytes
        if stride >= row:
            return 0.0
        return max(0.0, 1.0 - stride / row)

    # ------------------------------------------------------------------
    # Stream costing
    # ------------------------------------------------------------------
    def stream(
        self,
        num_accesses: int,
        bytes_per_access: float,
        hit_rate: float,
        overlap_latency: bool = True,
    ) -> DramStats:
        """Cost a stream of accesses with a given row-buffer hit rate.

        ``overlap_latency`` models a pipelined memory controller: misses pay
        tRC but across ``hbm_channels`` banks in parallel, so the effective
        serialized latency is the per-channel share.  Without overlap (the
        naive bit-serial stall of Fig. 5d) every miss serializes fully.
        """
        t = self.tech
        total_bytes = num_accesses * bytes_per_access
        # Each access moves at least one burst.
        bursts = num_accesses * max(1.0, np.ceil(bytes_per_access / t.hbm_burst_bytes))
        transfer_cycles = bursts * t.hbm_burst_bytes / t.hbm_bytes_per_cycle
        misses = num_accesses * (1.0 - hit_rate)
        if overlap_latency:
            latency_cycles = misses * t.hbm_trc_cycles / t.hbm_channels
        else:
            latency_cycles = misses * t.hbm_trc_cycles
        cycles = max(transfer_cycles, latency_cycles)
        energy = total_bytes * 8 * t.hbm_pj_per_bit + misses * t.hbm_activation_energy_pj
        return DramStats(
            bytes_transferred=total_bytes,
            cycles=float(cycles),
            activations=float(misses),
            energy_pj=float(energy),
            accesses=num_accesses,
        )

    # ------------------------------------------------------------------
    # Tensor-specific convenience wrappers
    # ------------------------------------------------------------------
    def read_bit_planes(
        self, num_plane_reads: int, head_dim: int, custom_layout: bool = True
    ) -> DramStats:
        """Cost of fetching ``num_plane_reads`` single-key bit planes.

        One plane of one key is ``head_dim`` bits.  With the bit-plane-first
        layout (Fig. 22) planes of consecutive keys stream sequentially;
        without it each plane read gathers strided bits and pays activations.
        """
        plane_bytes = head_dim / 8.0
        layout = DataLayout.BIT_PLANE_FIRST if custom_layout else DataLayout.ROW_MAJOR
        stride = None if custom_layout else self.tech.operand_bits * head_dim // 8
        hr = self.hit_rate(layout, int(np.ceil(plane_bytes)), stride)
        return self.stream(num_plane_reads, plane_bytes, hr)

    def read_rows(self, num_rows: int, row_bytes: float, sequential: bool = True) -> DramStats:
        """Cost of fetching whole vectors (Q or V rows, or full K vectors)."""
        hr = self.hit_rate(DataLayout.ROW_MAJOR, int(np.ceil(row_bytes))) if sequential else 0.0
        return self.stream(num_rows, row_bytes, hr)

    def write_rows(self, num_rows: int, row_bytes: float) -> DramStats:
        """Cost of writing output rows (same bandwidth/energy model)."""
        hr = self.hit_rate(DataLayout.ROW_MAJOR, int(np.ceil(row_bytes)))
        return self.stream(num_rows, row_bytes, hr)
