"""On-chip SRAM buffers (Table III: 320 KB K/V + 32 KB Q).

The buffer model tracks occupancy, counts accesses, and converts them to
energy.  Capacity overflows do not raise — they return the number of bytes
that *spill*, which the accelerator model converts into extra DRAM traffic
(the tiling-difficulty mechanism of Fig. 5f: without ISTA, working sets that
exceed the buffer are re-fetched from DRAM).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.tech import DEFAULT_TECH, TechConfig

__all__ = ["SramBuffer"]


@dataclass
class SramBuffer:
    """A capacity-tracked scratchpad with access-energy accounting."""

    name: str
    capacity_bytes: int
    tech: TechConfig = field(default=DEFAULT_TECH, repr=False)
    occupied_bytes: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    spilled_bytes: float = 0.0

    def allocate(self, nbytes: float) -> float:
        """Reserve space; returns the bytes that did NOT fit (spill)."""
        free = self.capacity_bytes - self.occupied_bytes
        fit = min(nbytes, max(0.0, free))
        self.occupied_bytes += fit
        spill = nbytes - fit
        self.spilled_bytes += spill
        return spill

    def release(self, nbytes: float) -> None:
        """Free previously allocated space."""
        self.occupied_bytes = max(0.0, self.occupied_bytes - nbytes)

    def read(self, nbytes: float) -> None:
        self.bytes_read += nbytes

    def write(self, nbytes: float) -> None:
        self.bytes_written += nbytes

    @property
    def energy_pj(self) -> float:
        return (
            self.bytes_read * self.tech.sram_read_pj_per_byte
            + self.bytes_written * self.tech.sram_write_pj_per_byte
        )

    @property
    def utilization(self) -> float:
        return self.occupied_bytes / self.capacity_bytes if self.capacity_bytes else 0.0
