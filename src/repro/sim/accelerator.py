"""Full-accelerator simulation of PADE with ablation switches.

``PadeAccelerator.run_head`` simulates one attention head end to end:

1. the functional pipeline (quantize → BSF guarded filtering → ISTA) gives
   exact retention/plane statistics;
2. :func:`repro.sim.qkpu.simulate_qkpu` turns them into QK-phase timing with
   BS/OOE on or off;
3. the DRAM/SRAM models convert traffic into cycles and energy, honouring
   the bit-plane-first layout (Fig. 22) and the scoreboard's result reuse;
4. :func:`repro.sim.vpu.simulate_vpu` times the V phase with or without
   RARS.

Every paper ablation is a switch here: ``enable_sparsity`` (BUI-GF),
``enable_bs`` / ``enable_ooe`` (BS-OOE), ``enable_ista`` (tiling),
``enable_result_reuse`` (scoreboard), ``enable_rars``, ``custom_layout``
(DL).  Disabling everything yields the dense baseline ASIC of Fig. 16(a).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

import numpy as np

from repro.core.backend import get_backend
from repro.core.bui_gf import guard_in_int_units
from repro.core.config import PadeConfig
from repro.core.ista import ista_attention
from repro.quant.bitplane import decompose_bitplanes
from repro.quant.integer import quantize_symmetric
from repro.sim.dram import DramStats, HBMModel
from repro.sim.qkpu import simulate_qkpu
from repro.sim.sram import SramBuffer
from repro.sim.tech import DEFAULT_TECH, TechConfig
from repro.sim.vpu import simulate_vpu

__all__ = ["AcceleratorConfig", "SimReport", "PadeAccelerator"]


@dataclass(frozen=True)
class AcceleratorConfig:
    """Feature switches + algorithm config for one simulation."""

    pade: PadeConfig = field(default_factory=PadeConfig.standard)
    enable_sparsity: bool = True  # BUI-GF guarded filtering
    enable_bs: bool = True  # bidirectional bit sparsity
    enable_ooe: bool = True  # out-of-order bit-plane execution
    enable_ista: bool = True  # sparsity-tiled attention
    enable_result_reuse: bool = True  # scoreboard partial-score caching
    enable_rars: bool = True  # reuse-aware V scheduling
    custom_layout: bool = True  # bit-plane-first DRAM layout (DL)
    bit_serial: bool = True  # False = value-level INT8 QK (Fig. 18a)

    def dense_baseline(self) -> "AcceleratorConfig":
        """The no-sparse-modules baseline of Figs. 16(a)/19."""
        return replace(
            self,
            enable_sparsity=False,
            enable_bs=False,
            enable_ooe=False,
            enable_ista=False,
            enable_result_reuse=False,
            enable_rars=False,
            bit_serial=False,
        )


@dataclass
class SimReport:
    """Latency + energy + utilization summary of one simulated workload."""

    latency_cycles: float
    energy_breakdown_pj: Dict[str, float]
    dense_equivalent_ops: float
    sparsity: float = 0.0
    mean_planes: float = 0.0
    utilization: float = 1.0
    bw_utilization: float = 0.0
    dram_bytes: float = 0.0
    dram_activations: float = 0.0
    useful_fraction: float = 1.0
    intra_pe_stall_fraction: float = 0.0
    inter_pe_stall_fraction: float = 0.0
    v_reload_overhead: float = 0.0
    tech: TechConfig = field(default=DEFAULT_TECH, repr=False)

    @property
    def energy_pj(self) -> float:
        return float(sum(self.energy_breakdown_pj.values()))

    @property
    def latency_s(self) -> float:
        return self.latency_cycles * self.tech.cycle_time_s

    @property
    def throughput_gops(self) -> float:
        """Dense-equivalent GOPS (paper's convention: sparsity counts as
        useful work avoided, so the dense op count is the numerator)."""
        if self.latency_s <= 0:
            return 0.0
        return self.dense_equivalent_ops / self.latency_s / 1e9

    @property
    def gops_per_watt(self) -> float:
        if self.energy_pj <= 0:
            return 0.0
        return self.dense_equivalent_ops / (self.energy_pj * 1e-12) / 1e9

    def scaled(self, factor: float) -> "SimReport":
        """Scale latency/energy/traffic linearly (heads × layers extrapolation)."""
        return SimReport(
            latency_cycles=self.latency_cycles * factor,
            energy_breakdown_pj={k: v * factor for k, v in self.energy_breakdown_pj.items()},
            dense_equivalent_ops=self.dense_equivalent_ops * factor,
            sparsity=self.sparsity,
            mean_planes=self.mean_planes,
            utilization=self.utilization,
            bw_utilization=self.bw_utilization,
            dram_bytes=self.dram_bytes * factor,
            dram_activations=self.dram_activations * factor,
            useful_fraction=self.useful_fraction,
            intra_pe_stall_fraction=self.intra_pe_stall_fraction,
            inter_pe_stall_fraction=self.inter_pe_stall_fraction,
            v_reload_overhead=self.v_reload_overhead,
            tech=self.tech,
        )


class PadeAccelerator:
    """Cycle-approximate model of the PADE accelerator."""

    def __init__(
        self, config: Optional[AcceleratorConfig] = None, tech: TechConfig = DEFAULT_TECH
    ) -> None:
        self.config = config or AcceleratorConfig()
        self.tech = tech
        self.hbm = HBMModel(tech)

    # ------------------------------------------------------------------
    def run_head(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> SimReport:
        """Simulate one attention head (a block of queries vs S keys)."""
        cfg = self.config
        tech = self.tech
        q = np.atleast_2d(np.asarray(q, dtype=np.float64))
        num_queries, head_dim = q.shape
        num_keys = k.shape[0]
        bits = cfg.pade.bits

        q_int = quantize_symmetric(q, bits=bits)
        k_int = quantize_symmetric(k, bits=bits)
        key_planes = decompose_bitplanes(k_int.data, bits=bits)
        logit_scale = float(q_int.scale) * float(k_int.scale)
        if cfg.pade.scale_logits:
            logit_scale /= np.sqrt(head_dim)

        # --- Functional pass: retention + plane statistics ---------------
        kernel = get_backend(cfg.pade.backend)
        if cfg.enable_sparsity:
            guard = guard_in_int_units(cfg.pade.alpha, cfg.pade.radius, logit_scale)
            if cfg.enable_ista:
                func = ista_attention(
                    q_int.data, key_planes, np.asarray(v, dtype=np.float64),
                    guard, logit_scale,
                    tile_size=cfg.pade.tile_size,
                    interleave=cfg.pade.head_tail_interleave,
                    backend=kernel,
                )
                retained = func.retained
                rescale_ops = func.stats.rescale_vector_ops
                # Re-derive per-pair plane counts from a row-wise pass (the
                # ISTA pass shares them; loads differ only by window order).
                bsf = kernel.filter(q_int.data, key_planes, guard)
                planes = bsf.planes_processed
                effective_ops = bsf.effective_bit_ops
            else:
                bsf = kernel.filter(q_int.data, key_planes, guard)
                retained = bsf.retained
                planes = bsf.planes_processed
                effective_ops = bsf.effective_bit_ops
                rescale_ops = 0
        else:
            retained = np.ones((num_queries, num_keys), dtype=bool)
            planes = np.full((num_queries, num_keys), bits, dtype=np.int64)
            pc = key_planes.planes.sum(axis=2).astype(np.int64)
            eff = np.minimum(pc, head_dim - pc) if cfg.enable_bs else pc
            effective_ops = int(eff.sum()) * num_queries
            rescale_ops = 0

        sparsity = 1.0 - float(retained.sum()) / retained.size
        mean_planes = float(planes.mean())

        # --- QK phase timing ---------------------------------------------
        if cfg.bit_serial:
            qk = simulate_qkpu(
                planes,
                key_planes,
                tech=tech,
                bidirectional=cfg.enable_bs,
                out_of_order=cfg.enable_ooe,
                effective_bit_ops=effective_ops,
            )
            qk_cycles = qk.cycles
            qk_energy = qk.energy_pj
        else:
            # Value-level INT8: a lane computes a 64-dim MAC per cycle but
            # pays no bit-shift pipeline; retained pairs only when sparse.
            pairs = int(retained.sum()) if cfg.enable_sparsity else num_queries * num_keys
            qk_cycles = pairs / tech.num_lanes * (head_dim / tech.lane_dims)
            qk_energy = pairs * head_dim * tech.int8_mac_pj
            qk = None

        # --- DRAM traffic ---------------------------------------------------
        # Bit planes are broadcast to the 8 PE rows: one fetch serves every
        # query in the block, so the load count is the per-token max.
        if cfg.bit_serial:
            shared_planes = planes.max(axis=0)  # (S,)
            plane_loads = int(shared_planes.sum())
            if not cfg.enable_result_reuse:
                # Without the scoreboard, round r must re-fetch planes 0..r.
                tri = (shared_planes * (shared_planes + 1)) // 2
                plane_loads = int(tri.sum())
            k_dram = self.hbm.read_bit_planes(
                plane_loads, head_dim, custom_layout=cfg.custom_layout
            )
        else:
            k_dram = self.hbm.read_rows(num_keys, head_dim * bits / 8)
            plane_loads = num_keys * bits

        q_dram = self.hbm.read_rows(num_queries, head_dim * bits / 8)

        # --- V phase -------------------------------------------------------
        vpu = simulate_vpu(
            retained,
            head_dim,
            tech=tech,
            use_rars=cfg.enable_rars,
            rescale_vector_ops=rescale_ops,
        )
        if cfg.enable_ista:
            v_loads = vpu.v_vector_loads
        else:
            # Without tiling, V fetches are shared only within one PE-row
            # block of 8 queries (hardware broadcast); each block loads the
            # union of its rows' retained V vectors.
            v_loads = 0
            for start in range(0, num_queries, tech.pe_rows):
                block = retained[start : start + tech.pe_rows]
                v_loads += int(block.any(axis=0).sum())
        v_dram = self.hbm.read_rows(v_loads, head_dim * bits / 8)
        out_dram = self.hbm.write_rows(num_queries, head_dim * 2)  # FP16 out

        # Untiled spill: full K + score rows must stay resident; overflow of
        # the KV buffer is re-fetched once per query block of 8.
        spill_dram = DramStats()
        if not cfg.enable_ista:
            kv_buffer = SramBuffer("kv", tech.sram_kv_bytes, tech)
            working = num_keys * head_dim * bits / 8 + num_queries * num_keys * 4
            spill = kv_buffer.allocate(working)
            if spill > 0:
                blocks = max(1, num_queries // tech.pe_rows)
                spill_dram = self.hbm.read_rows(
                    int(spill / (head_dim * bits / 8)) * blocks, head_dim * bits / 8
                )

        dram = k_dram.merge(q_dram).merge(v_dram).merge(out_dram).merge(spill_dram)

        # --- SRAM traffic ----------------------------------------------------
        kv_sram = SramBuffer("kv", tech.sram_kv_bytes, tech)
        q_sram = SramBuffer("q", tech.sram_q_bytes, tech)
        kv_sram.write(k_dram.bytes_transferred + v_dram.bytes_transferred)
        # Each plane byte is read once per consuming PE row.
        if cfg.bit_serial:
            per_row_reads = float((planes * (head_dim / 8)).sum())
        else:
            per_row_reads = float(retained.sum()) * head_dim
        kv_sram.read(per_row_reads + v_loads * head_dim)
        q_sram.write(num_queries * head_dim)
        q_sram.read(num_queries * head_dim * bits)  # Q consumed per plane round

        # --- BUI support energy ---------------------------------------------
        bui_gen = num_queries * head_dim * tech.bit_serial_add_pj * 2  # pos/neg masses
        bui_gf = float(planes.sum()) * tech.comparator_pj

        energy = {
            "qk_compute": float(qk_energy),
            "v_compute": vpu.compute_energy_pj + vpu.apm_energy_pj,
            "sram": kv_sram.energy_pj + q_sram.energy_pj,
            "dram": dram.energy_pj,
            "bui": float(bui_gen + bui_gf),
            "scheduler": vpu.scheduler_energy_pj,
        }

        # --- Latency composition ---------------------------------------------
        # QK-PU and V-PU run as a staggered pipeline; DRAM streaming overlaps
        # compute when OOE is on, otherwise it serializes with the QK phase.
        if cfg.bit_serial or cfg.enable_ooe:
            # The bit-serial QK simulation already charges exposed per-plane
            # DRAM latency to the lanes; the dram term here is the bulk
            # streaming bandwidth bound.
            latency = max(qk_cycles, vpu.cycles, dram.cycles)
        else:
            latency = max(qk_cycles + dram.cycles, vpu.cycles)

        # Static power burns for the whole duration, stalls included — this
        # is why utilization gains (BS-OOE) translate into energy gains.
        energy["static"] = float(latency) * tech.cycle_time_s * tech.static_power_w * 1e12

        ops = 4.0 * num_queries * num_keys * head_dim  # dense MACs x2 (QK+PV), x2 ops/MAC

        report = SimReport(
            latency_cycles=float(latency),
            energy_breakdown_pj=energy,
            dense_equivalent_ops=ops,
            sparsity=sparsity,
            mean_planes=mean_planes,
            utilization=qk.utilization if qk is not None else 0.85,
            bw_utilization=min(1.0, dram.bytes_transferred / max(1e-9, latency * tech.hbm_bytes_per_cycle)),
            dram_bytes=dram.bytes_transferred,
            dram_activations=dram.activations,
            useful_fraction=qk.useful_fraction if qk is not None else 0.85,
            intra_pe_stall_fraction=qk.intra_pe_stall_fraction if qk is not None else 0.0,
            inter_pe_stall_fraction=qk.inter_pe_stall_fraction if qk is not None else 0.15,
            v_reload_overhead=vpu.reload_overhead,
            tech=tech,
        )
        return report

    # ------------------------------------------------------------------
    def run_decode(
        self,
        model,
        context_len: int,
        steps: int = 64,
        alpha: Optional[float] = None,
        resident_fraction: float = 0.0,
    ) -> SimReport:
        """Simulate autoregressive decoding over an existing context.

        Each step appends one token per KV head and streams the cache
        through the fused filter; per-step plane/keep statistics come from
        the functional pipeline (measured at a capped length, extrapolated
        by :func:`repro.eval.workloads.measure_pipeline_stats`).  Decoding
        has no query-side reuse, so this is the memory-dominated regime of
        Figs. 15(c)/26(b).
        """
        from repro.eval.workloads import measure_pipeline_stats
        from repro.sim.kv_cache import KVCache

        cfg = self.config
        tech = self.tech
        a = alpha if alpha is not None else cfg.pade.alpha
        stats = measure_pipeline_stats(model, context_len, alpha=a, bits=cfg.pade.bits)
        mean_planes = stats.mean_planes if cfg.enable_sparsity else float(cfg.pade.bits)
        keep = stats.keep_fraction if cfg.enable_sparsity else 1.0
        if not cfg.bit_serial:
            mean_planes = float(cfg.pade.bits)

        cache = KVCache(head_dim=model.head_dim, bits=cfg.pade.bits, length=context_len, tech=tech)
        heads_layers = model.num_kv_heads * model.num_layers

        k_bytes = v_bytes = append_bytes = 0.0
        for _ in range(steps):
            t = cache.step_traffic(mean_planes, keep, resident_fraction)
            k_bytes += t.k_bytes * heads_layers
            v_bytes += t.v_bytes * heads_layers
            append_bytes += t.append_bytes * heads_layers
            cache.append()

        plane_loads = k_bytes / cache.plane_bytes
        k_dram = self.hbm.read_bit_planes(
            int(plane_loads), model.head_dim, custom_layout=cfg.custom_layout
        )
        v_dram = self.hbm.read_rows(int(v_bytes / cache.row_bytes), cache.row_bytes)
        a_dram = self.hbm.write_rows(int(append_bytes / cache.row_bytes), cache.row_bytes)
        dram = k_dram.merge(v_dram).merge(a_dram)

        # Compute: bit adds for the streamed planes (BS halves), PV MACs for
        # retained rows; per-step query count is heads (one token per head).
        pairs = float(steps) * context_len * model.num_heads * model.num_layers
        bit_adds = pairs * mean_planes * model.head_dim * (0.5 if cfg.enable_bs else 1.0)
        pv_macs = keep * pairs * model.head_dim
        qk_cycles = pairs * mean_planes * max(1.0, model.head_dim / tech.lane_dims) / (
            tech.num_lanes * 0.78
        )
        vpu_cycles = pv_macs / (tech.vpu_rows * tech.vpu_cols * 0.85)
        if cfg.enable_ooe:
            latency = max(qk_cycles, vpu_cycles, dram.cycles)
        else:
            latency = qk_cycles + dram.cycles

        energy = {
            "qk_compute": bit_adds * tech.bit_serial_add_pj + pairs * mean_planes * tech.shift_pj,
            "v_compute": pv_macs * tech.int8_mac_pj + keep * pairs * tech.fp16_exp_pj,
            "sram": (k_bytes + v_bytes) * (tech.sram_read_pj_per_byte + tech.sram_write_pj_per_byte),
            "dram": dram.energy_pj,
            "bui": pairs * mean_planes * tech.comparator_pj,
            "scheduler": 0.0,
            "static": float(latency) * tech.cycle_time_s * tech.static_power_w * 1e12,
        }
        ops = 4.0 * pairs * model.head_dim
        return SimReport(
            latency_cycles=float(latency),
            energy_breakdown_pj=energy,
            dense_equivalent_ops=ops,
            sparsity=1.0 - keep,
            mean_planes=mean_planes,
            utilization=0.78,
            bw_utilization=min(1.0, dram.bytes_transferred / max(1e-9, latency * tech.hbm_bytes_per_cycle)),
            dram_bytes=dram.bytes_transferred,
            dram_activations=dram.activations,
            tech=tech,
        )

    # ------------------------------------------------------------------
    def run_model_attention(
        self,
        model,
        seq_len: int,
        profile=None,
        num_queries: int = 8,
        seq_cap: int = 1024,
        rng: Optional[np.random.Generator] = None,
    ) -> SimReport:
        """Simulate a model's full attention stack at a sequence length.

        A representative head is simulated at ``min(seq_len, seq_cap)`` keys
        and scaled to the full sequence length, head count, query count and
        layer count (traffic and work in attention scale linearly in each).
        """
        from repro.model.synthetic import PROFILE_PRESETS, synthesize_qkv

        rng = rng or np.random.default_rng(11)
        profile = profile or (
            PROFILE_PRESETS["cv"] if model.modality == "cv" else PROFILE_PRESETS["nlp"]
        )
        sim_keys = int(min(seq_len, seq_cap))
        q, k, v = synthesize_qkv(num_queries, sim_keys, model.head_dim, profile, rng)
        head = self.run_head(q, k, v)
        key_scale = seq_len / sim_keys
        query_scale = seq_len / num_queries
        factor = key_scale * query_scale * model.num_heads * model.num_layers
        return head.scaled(factor)
