"""Staggered-pipeline model: QK-PU ∥ V-PU, and GPU ∥ PADE (Fig. 24b).

Two levels of pipelining matter in PADE:

* **intra-accelerator** — the QK-PU filters tile ``t+1`` while the V-PU
  consumes tile ``t`` (§V-D: "the QK-PU and V-PU operate in a staggered
  pipeline", which is also what hides the BS scheduler's temporal-reuse
  latency);
* **system level** — the GPU computes QKV/FFN of sequence ``I1`` while PADE
  runs attention of ``I0`` (Fig. 24b's interleaved timeline).

Both are instances of a two-stage pipeline over a stream of work items;
this module models that generically and exposes the derived quantities the
paper quotes (steady-state throughput, bubble fraction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["PipelineResult", "two_stage_pipeline", "staggered_tiles", "system_interleave"]


@dataclass(frozen=True)
class PipelineResult:
    """Timing of a two-stage pipeline over N items."""

    makespan: float
    stage_busy: Tuple[float, float]
    item_finish: Tuple[float, ...]

    @property
    def bubbles(self) -> Tuple[float, float]:
        """Idle time per stage."""
        return (self.makespan - self.stage_busy[0], self.makespan - self.stage_busy[1])

    @property
    def throughput_gain(self) -> float:
        """Makespan of the serialized schedule over the pipelined one."""
        serial = self.stage_busy[0] + self.stage_busy[1]
        return serial / self.makespan if self.makespan else 1.0


def two_stage_pipeline(
    stage_a: Sequence[float], stage_b: Sequence[float]
) -> PipelineResult:
    """Classic two-stage pipeline recurrence.

    Item ``i`` enters stage B when both (a) its stage-A work finished and
    (b) stage B finished item ``i-1``; no buffering limit (the Score-FIFO /
    issuing FIFO between the units absorbs one tile).
    """
    if len(stage_a) != len(stage_b):
        raise ValueError("stages must process the same item stream")
    t_a = 0.0
    t_b = 0.0
    finishes: List[float] = []
    for a, b in zip(stage_a, stage_b):
        t_a += a
        t_b = max(t_b, t_a) + b
        finishes.append(t_b)
    return PipelineResult(
        makespan=t_b,
        stage_busy=(float(sum(stage_a)), float(sum(stage_b))),
        item_finish=tuple(finishes),
    )


def staggered_tiles(
    qk_cycles_per_tile: Sequence[float], vpu_cycles_per_tile: Sequence[float]
) -> PipelineResult:
    """QK-PU/V-PU staggering over ISTA tiles (per-tile granularity)."""
    return two_stage_pipeline(qk_cycles_per_tile, vpu_cycles_per_tile)


def system_interleave(
    gpu_time_per_seq: float, pade_time_per_seq: float, num_sequences: int
) -> PipelineResult:
    """GPU/PADE interleaving over a stream of sequences (Fig. 24b).

    Steady-state latency per sequence approaches ``max(gpu, pade)`` — the
    paper's "greatly improving the system throughput" mechanism.
    """
    return two_stage_pipeline(
        [gpu_time_per_seq] * num_sequences, [pade_time_per_seq] * num_sequences
    )
