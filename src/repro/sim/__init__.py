"""Cycle-approximate simulator of the PADE accelerator.

Components mirror the paper's architecture (Fig. 11):

* :mod:`repro.sim.tech` — 28 nm / 800 MHz technology and energy constants
  (Table III, §VI-A normalization protocol).
* :mod:`repro.sim.dram` — HBM2 pseudo-channel model with row-buffer
  behaviour and the bit-plane-first data layout (Fig. 22).
* :mod:`repro.sim.sram` — on-chip K/V/Q buffers.
* :mod:`repro.sim.gsat` — grouped lightweight sparsity ANDer tree
  (functional + area/power DSE, Fig. 17a).
* :mod:`repro.sim.scheduler` — BS scheduler with temporally reused priority
  encoder (Fig. 12).
* :mod:`repro.sim.pe` / :mod:`repro.sim.qkpu` — bit-wise PE lanes with
  scoreboards and the out-of-order QK processing unit.
* :mod:`repro.sim.rars` — reuse-aware reorder scheduler for V vectors
  (Fig. 13).
* :mod:`repro.sim.vpu` — systolic array + APM value processing unit.
* :mod:`repro.sim.accelerator` — the full-accelerator simulation entry
  point with ablation switches (Figs. 16a, 19, 23).
* :mod:`repro.sim.area` — area/power breakdown model (Fig. 20).
"""

from repro.sim.tech import TechConfig, DEFAULT_TECH
from repro.sim.dram import HBMModel, DramStats, DataLayout
from repro.sim.sram import SramBuffer
from repro.sim.gsat import GSATConfig, gsat_cycles, gsat_area_power
from repro.sim.scheduler import BSScheduler
from repro.sim.rars import rars_schedule, naive_schedule, ScheduleResult
from repro.sim.qkpu import QKPUResult, simulate_qkpu
from repro.sim.vpu import VPUResult, simulate_vpu
from repro.sim.accelerator import PadeAccelerator, AcceleratorConfig, SimReport
from repro.sim.area import area_breakdown, power_breakdown
from repro.sim.kv_cache import KVCache, DecodeStepTraffic
from repro.sim.layout import KBitPlaneLayout, RowMajorLayout, row_buffer_hit_rate
from repro.sim.trace import LaneTrace, render_gantt, trace_lane

__all__ = [
    "TechConfig",
    "DEFAULT_TECH",
    "HBMModel",
    "DramStats",
    "DataLayout",
    "SramBuffer",
    "GSATConfig",
    "gsat_cycles",
    "gsat_area_power",
    "BSScheduler",
    "rars_schedule",
    "naive_schedule",
    "ScheduleResult",
    "QKPUResult",
    "simulate_qkpu",
    "VPUResult",
    "simulate_vpu",
    "PadeAccelerator",
    "AcceleratorConfig",
    "SimReport",
    "area_breakdown",
    "power_breakdown",
    "KVCache",
    "DecodeStepTraffic",
    "KBitPlaneLayout",
    "RowMajorLayout",
    "row_buffer_hit_rate",
    "LaneTrace",
    "render_gantt",
    "trace_lane",
]
