"""Lane-activity trace recorder: the Fig. 8(c)-(e) timelines, testable.

The paper illustrates BS-OOE with per-PE timelines (compute / DRAM wait /
idle).  This module replays the same per-lane schedule as
:func:`repro.sim.pe.simulate_lane` while recording interval events, so the
timelines can be rendered as ASCII Gantt charts and asserted on in tests
(e.g. "with OOE, no lane idles while it has a ready task").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["Interval", "LaneTrace", "trace_lane", "render_gantt"]


@dataclass(frozen=True)
class Interval:
    """One activity span on a lane timeline."""

    start: float
    end: float
    kind: str  # "compute" | "wait" | "idle"
    token: int = -1
    plane: int = -1

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class LaneTrace:
    """All intervals of one lane, in time order."""

    intervals: List[Interval] = field(default_factory=list)

    def add(self, start: float, end: float, kind: str, token: int = -1, plane: int = -1) -> None:
        if end > start:
            self.intervals.append(Interval(start, end, kind, token, plane))

    @property
    def finish(self) -> float:
        return self.intervals[-1].end if self.intervals else 0.0

    def total(self, kind: str) -> float:
        return sum(i.duration for i in self.intervals if i.kind == kind)

    @property
    def utilization(self) -> float:
        return self.total("compute") / self.finish if self.finish else 1.0


def trace_lane(
    token_planes: Sequence[Tuple[int, np.ndarray]],
    dram_latency: float,
    scoreboard_entries: int = 32,
    out_of_order: bool = True,
) -> LaneTrace:
    """Replay one lane's schedule, recording intervals.

    Mirrors :func:`repro.sim.pe.simulate_lane` event-for-event; the paired
    test asserts the two agree on finish time and busy cycles.
    """
    trace = LaneTrace()
    if not token_planes:
        return trace

    if not out_of_order:
        t = 0.0
        for token, costs in token_planes:
            for plane_idx, cost in enumerate(costs):
                if plane_idx > 0:
                    trace.add(t, t + dram_latency, "wait", token, plane_idx)
                    t += dram_latency
                trace.add(t, t + float(cost), "compute", token, plane_idx)
                t += float(cost)
        return trace

    pending = list(token_planes)
    inflight: List[List] = []
    t = 0.0

    def admit() -> None:
        while pending and len(inflight) < scoreboard_entries:
            token, costs = pending.pop(0)
            inflight.append([t + dram_latency, token, 0, costs])

    admit()
    while inflight:
        ready = [item for item in inflight if item[0] <= t]
        if not ready:
            t_next = min(item[0] for item in inflight)
            trace.add(t, t_next, "wait")
            t = t_next
            ready = [item for item in inflight if item[0] <= t]
        item = min(ready, key=lambda it: it[0])
        _, token, plane_idx, costs = item
        cost = float(costs[plane_idx])
        trace.add(t, t + cost, "compute", token, plane_idx)
        t += cost
        if plane_idx + 1 < len(costs):
            item[0] = t + dram_latency
            item[2] = plane_idx + 1
        else:
            inflight.remove(item)
            admit()
    return trace


_GLYPH = {"compute": "#", "wait": ".", "idle": " "}


def render_gantt(traces: Sequence[LaneTrace], width: int = 72) -> str:
    """ASCII Gantt chart of several lanes ('#' compute, '.' DRAM wait)."""
    horizon = max((tr.finish for tr in traces), default=0.0)
    if horizon <= 0:
        return "(empty trace)"
    lines = []
    for idx, tr in enumerate(traces):
        row = [" "] * width
        for iv in tr.intervals:
            a = int(iv.start / horizon * (width - 1))
            b = max(a + 1, int(np.ceil(iv.end / horizon * (width - 1))))
            for c in range(a, min(b, width)):
                row[c] = _GLYPH.get(iv.kind, "?")
        lines.append(f"lane{idx:02d} |{''.join(row)}| util={tr.utilization:.0%}")
    return "\n".join(lines)
