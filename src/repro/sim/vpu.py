"""Value processing unit: 8×16 systolic array + APM + RARS (paper §V-A).

The V-PU consumes the retained scores ISTA hands over tile by tile: the APM
exponentiates scores (FP16), the output-stationary systolic array multiplies
probabilities with V rows, and the RARS scheduler orders V fetches to
minimize reloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sim.rars import (
    RARSSchedulerModel,
    ScheduleResult,
    naive_schedule,
    rars_schedule,
    requirements_from_mask,
)
from repro.sim.tech import DEFAULT_TECH, TechConfig

__all__ = ["VPUResult", "simulate_vpu"]


@dataclass
class VPUResult:
    """Timing/energy of the V phase for one query block."""

    cycles: float
    macs: int
    exp_ops: int
    v_vector_loads: int
    unique_v_vectors: int
    schedule: Optional[ScheduleResult]
    compute_energy_pj: float
    apm_energy_pj: float
    scheduler_energy_pj: float

    @property
    def energy_pj(self) -> float:
        return self.compute_energy_pj + self.apm_energy_pj + self.scheduler_energy_pj

    @property
    def reload_overhead(self) -> float:
        if self.v_vector_loads == 0:
            return 0.0
        return 1.0 - self.unique_v_vectors / self.v_vector_loads


def simulate_vpu(
    retained: np.ndarray,
    head_dim: int,
    tech: TechConfig = DEFAULT_TECH,
    use_rars: bool = True,
    rescale_vector_ops: int = 0,
    buffer_vectors: int = 8,
    row_rate: int = 2,
) -> VPUResult:
    """Simulate the V phase over a retained mask ``(P, S)``.

    Parameters
    ----------
    retained:
        Which V rows each query row needs (from the functional run).
    head_dim:
        V row width (MAC count per retained score).
    use_rars:
        Schedule V loads reuse-aware vs naive left-to-right (Fig. 13).
    rescale_vector_ops:
        Online-softmax max-update rescale work from ISTA's counters, charged
        to the array.
    """
    retained = np.atleast_2d(np.asarray(retained, dtype=bool))
    num_rows = retained.shape[0]
    requirements = requirements_from_mask(retained)
    scheduler = rars_schedule if use_rars else naive_schedule
    schedule = scheduler(requirements, buffer_vectors=buffer_vectors, row_rate=row_rate)

    retained_scores = int(retained.sum())
    macs = retained_scores * head_dim + rescale_vector_ops
    exp_ops = retained_scores

    throughput = tech.vpu_rows * tech.vpu_cols  # MACs per cycle
    pipeline_fill = tech.vpu_rows + tech.vpu_cols
    compute_cycles = macs / throughput + pipeline_fill
    apm_cycles = exp_ops / max(1, tech.lanes_per_row * tech.pe_rows)
    cycles = max(compute_cycles, apm_cycles)

    compute_energy = macs * tech.int8_mac_pj
    apm_energy = exp_ops * tech.fp16_exp_pj + rescale_vector_ops * tech.fp16_mac_pj
    sched_energy = RARSSchedulerModel(tech).schedule_energy_pj(schedule, num_rows)

    return VPUResult(
        cycles=float(cycles),
        macs=macs,
        exp_ops=exp_ops,
        v_vector_loads=schedule.total_loads,
        unique_v_vectors=schedule.unique_vectors,
        schedule=schedule,
        compute_energy_pj=float(compute_energy),
        apm_energy_pj=float(apm_energy),
        scheduler_energy_pj=float(sched_energy),
    )
