"""Bit-wise PE lane with scoreboard and decision unit (paper §V-C, Fig. 11b).

One lane owns a GSAT (64-dim × 8-bit × 1-bit dot product), a 32-entry
scoreboard caching partial scores of in-flight tokens, and a decision unit
applying BUI-GF and choosing the next bit plane to fetch.  The lane-level
timing model here is consumed by :mod:`repro.sim.qkpu`:

* a (token, plane) task takes ``cost`` cycles on the GSAT (sub-group
  imbalance under BS bounds this at ⌈(g/2)/muxes⌉);
* a surviving token's next plane needs a DRAM round trip; with out-of-order
  execution the lane processes other ready tokens meanwhile, bounded by the
  scoreboard capacity (in-flight tokens each hold one entry);
* without OOE the lane blocks until the requested plane arrives — the
  exposed-latency pathology of Fig. 5(d).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


__all__ = ["Scoreboard", "LaneStats", "simulate_lane", "lane_task_costs"]


@dataclass
class Scoreboard:
    """Partial-score cache: token id → (bit index, partial score).

    Mirrors the 32-entry × 45-bit structure of Fig. 11(b); the simulator
    uses it for capacity accounting and hit/miss statistics, and the
    functional layer guarantees the values it would hold are exact.
    """

    entries: int = 32
    table: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def occupancy(self) -> int:
        return len(self.table)

    @property
    def full(self) -> bool:
        return len(self.table) >= self.entries

    def lookup(self, token: int) -> Optional[Tuple[int, int]]:
        entry = self.table.get(token)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def update(self, token: int, bit_index: int, partial_score: int) -> bool:
        """Insert/refresh an entry; returns False when capacity blocks it."""
        if token not in self.table and self.full:
            return False
        self.table[token] = (bit_index, partial_score)
        return True

    def evict(self, token: int) -> None:
        if token in self.table:
            del self.table[token]
            self.evictions += 1


@dataclass
class LaneStats:
    """Timing outcome for one lane processing its token stream."""

    finish_cycle: float = 0.0
    busy_cycles: float = 0.0
    ideal_cycles: float = 0.0
    mem_stall_cycles: float = 0.0
    scoreboard_stall_cycles: float = 0.0
    tasks: int = 0

    @property
    def utilization(self) -> float:
        return self.busy_cycles / self.finish_cycle if self.finish_cycle else 1.0

    @property
    def intra_pe_stall(self) -> float:
        """Extra compute cycles from sub-group imbalance (actual − ideal)."""
        return max(0.0, self.busy_cycles - self.ideal_cycles)


def lane_task_costs(
    key_planes: np.ndarray,
    subgroup: int = 8,
    muxes: int = 4,
    bidirectional: bool = True,
) -> np.ndarray:
    """Per-(plane, token) GSAT cycles, shape ``(bits, S)``.

    ``key_planes`` is the raw plane array ``(bits, S, H)``.  A plane's cost
    is the worst sub-group's ⌈effective bits / muxes⌉ (intra-PE imbalance);
    bidirectional sparsity caps effective bits at ``g/2``, a plain design
    pays the raw popcount.
    """
    bits, num_tokens, head_dim = key_planes.shape
    groups = head_dim // subgroup
    reshaped = key_planes.reshape(bits, num_tokens, groups, subgroup).astype(np.int64)
    pc = reshaped.sum(axis=3)  # (bits, S, groups)
    eff = np.minimum(pc, subgroup - pc) if bidirectional else pc
    cost = np.ceil(eff / muxes).astype(np.int64)
    cost = np.maximum(cost, 1)
    return cost.max(axis=2)  # worst sub-group per (plane, token)


def simulate_lane(
    token_planes: Sequence[Tuple[int, np.ndarray]],
    dram_latency: float,
    scoreboard_entries: int = 32,
    out_of_order: bool = True,
) -> LaneStats:
    """Simulate one lane's schedule over its assigned tokens.

    Parameters
    ----------
    token_planes:
        Sequence of ``(token_id, costs)`` where ``costs`` lists the GSAT
        cycles of each plane that token actually consumes (length = planes
        processed before pruning/retention).
    dram_latency:
        Cycles from requesting a bit plane to it being ready on chip.
    scoreboard_entries:
        Max tokens concurrently in flight on this lane.
    out_of_order:
        Process other ready tokens while a plane is in transit (BS-OOE);
        ``False`` models the naive blocking design.
    """
    stats = LaneStats()
    if not token_planes:
        return stats
    # Ideal: one cycle per plane task (perfectly balanced sub-groups).
    stats.ideal_cycles = sum(float(len(c)) for _, c in token_planes)

    if not out_of_order:
        # In-order: the MSB plane of the next token is prefetched while the
        # current token computes (its address is known a priori), but every
        # *decision-dependent* continuation plane exposes the full DRAM
        # round trip — the Fig. 5(d) pathology BS-OOE removes.
        t = 0.0
        for _token, costs in token_planes:
            for plane_idx, cost in enumerate(costs):
                if plane_idx > 0:
                    t += dram_latency
                    stats.mem_stall_cycles += dram_latency
                t += float(cost)
                stats.busy_cycles += float(cost)
                stats.tasks += 1
        stats.finish_cycle = t
        return stats

    # Out-of-order: tokens admitted up to scoreboard capacity; the lane
    # always runs the earliest-ready in-flight token.
    pending = list(token_planes)
    inflight: List[List] = []  # [ready_time, token, plane_idx, costs]
    t = 0.0

    def admit() -> None:
        while pending and len(inflight) < scoreboard_entries:
            token, costs = pending.pop(0)
            inflight.append([t + dram_latency, token, 0, costs])

    admit()
    while inflight:
        ready = [item for item in inflight if item[0] <= t]
        if not ready:
            t_next = min(item[0] for item in inflight)
            if len(inflight) >= scoreboard_entries and pending:
                # More work exists but the scoreboard cannot admit it.
                stats.scoreboard_stall_cycles += t_next - t
            else:
                stats.mem_stall_cycles += t_next - t
            t = t_next
            ready = [item for item in inflight if item[0] <= t]
        item = min(ready, key=lambda it: it[0])
        _, token, plane_idx, costs = item
        cost = float(costs[plane_idx])
        t += cost
        stats.busy_cycles += cost
        stats.tasks += 1
        if plane_idx + 1 < len(costs):
            item[0] = t + dram_latency  # request next plane
            item[2] = plane_idx + 1
        else:
            inflight.remove(item)
            admit()
    stats.finish_cycle = t
    return stats
