"""QK processing unit: 8 rows × 16 bit-wise PE lanes with BS-OOE.

Each PE row owns one query; its 16 lanes stripe the key sequence
(token ``j`` → lane ``j mod 16``).  The unit's timing emerges from the
per-lane simulation of :mod:`repro.sim.pe` — rows run in parallel, a row
finishes when its slowest lane finishes (inter-PE imbalance), and the whole
QK phase finishes with its slowest row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.quant.bitplane import BitPlanes
from repro.sim.pe import LaneStats, lane_task_costs, simulate_lane
from repro.sim.tech import DEFAULT_TECH, TechConfig

__all__ = ["QKPUResult", "simulate_qkpu"]


@dataclass
class QKPUResult:
    """Aggregate timing/energy of the QK phase for one query block."""

    cycles: float
    lane_stats: List[LaneStats] = field(default_factory=list)
    compute_energy_pj: float = 0.0
    scoreboard_energy_pj: float = 0.0
    decision_energy_pj: float = 0.0
    bit_plane_loads: int = 0

    @property
    def utilization(self) -> float:
        """Mean fraction of lane time spent computing (Fig. 23a 'Useful')."""
        if not self.lane_stats or self.cycles <= 0:
            return 1.0
        return float(np.mean([s.busy_cycles for s in self.lane_stats])) / self.cycles

    @property
    def useful_fraction(self) -> float:
        if not self.lane_stats or self.cycles <= 0:
            return 1.0
        return float(np.sum([s.ideal_cycles for s in self.lane_stats])) / (
            self.cycles * len(self.lane_stats)
        )

    @property
    def intra_pe_stall_fraction(self) -> float:
        if not self.lane_stats or self.cycles <= 0:
            return 0.0
        return float(np.sum([s.intra_pe_stall for s in self.lane_stats])) / (
            self.cycles * len(self.lane_stats)
        )

    @property
    def inter_pe_stall_fraction(self) -> float:
        """Everything that is neither useful nor intra-PE: idle tails,
        memory stalls, and cross-lane imbalance."""
        return max(0.0, 1.0 - self.useful_fraction - self.intra_pe_stall_fraction)

    @property
    def energy_pj(self) -> float:
        return self.compute_energy_pj + self.scoreboard_energy_pj + self.decision_energy_pj


def simulate_qkpu(
    planes_processed: np.ndarray,
    key_planes: BitPlanes,
    tech: TechConfig = DEFAULT_TECH,
    lanes_per_row: Optional[int] = None,
    scoreboard_entries: Optional[int] = None,
    bidirectional: bool = True,
    out_of_order: bool = True,
    dram_latency_cycles: Optional[float] = None,
    effective_bit_ops: Optional[int] = None,
) -> QKPUResult:
    """Simulate the QK phase for a block of query rows.

    Parameters
    ----------
    planes_processed:
        ``(P, S)`` array from the functional BSF run: how many planes each
        (query, token) pair consumed before pruning/retention.
    key_planes:
        Bit planes of the key matrix (shared across query rows).
    bidirectional / out_of_order:
        Ablation switches for BS and OOE.
    dram_latency_cycles:
        Override for the per-plane fetch latency (defaults to a row-hit
        dominated round trip: burst transfer + controller overhead; misses
        are costed separately by the DRAM model at the accelerator level).
    effective_bit_ops:
        Total guarded additions (for compute energy); recomputed from plane
        popcounts when omitted.
    """
    planes_processed = np.atleast_2d(np.asarray(planes_processed, dtype=np.int64))
    num_rows, num_tokens = planes_processed.shape
    lanes = lanes_per_row or tech.lanes_per_row
    entries = scoreboard_entries or tech.scoreboard_entries
    if dram_latency_cycles is None:
        # Row-hit burst: transfer + fixed controller/queue overhead.
        dram_latency_cycles = 8.0

    costs = lane_task_costs(
        key_planes.planes,
        subgroup=tech.gsat_subgroup,
        muxes=max(1, tech.gsat_subgroup // 2),
        bidirectional=bidirectional,
    )  # (bits, S)

    lane_stats: List[LaneStats] = []
    row_finishes: List[float] = []
    for row in range(num_rows):
        row_lane_stats: List[LaneStats] = []
        for lane in range(lanes):
            token_ids = np.arange(lane, num_tokens, lanes)
            work = []
            for token in token_ids:
                np_planes = int(planes_processed[row, token])
                if np_planes > 0:
                    work.append((int(token), costs[:np_planes, token]))
            row_lane_stats.append(
                simulate_lane(
                    work,
                    dram_latency=dram_latency_cycles,
                    scoreboard_entries=entries,
                    out_of_order=out_of_order,
                )
            )
        row_finish = max((s.finish_cycle for s in row_lane_stats), default=0.0)
        # Lanes idle from their own finish to the row finish (inter-PE tail).
        row_finishes.append(row_finish)
        lane_stats.extend(row_lane_stats)

    cycles = max(row_finishes, default=0.0)

    # Energy accounting.
    if effective_bit_ops is None:
        # approximate: every token contributes its processed planes once per row
        pc = key_planes.planes.sum(axis=2).astype(np.int64)  # (bits, S)
        eff = np.minimum(pc, key_planes.value_shape[1] - pc) if bidirectional else pc
        total_eff = 0
        for row in range(num_rows):
            for token in range(num_tokens):
                total_eff += int(eff[: planes_processed[row, token], token].sum())
        effective_bit_ops = total_eff
    total_tasks = int(planes_processed.sum())
    compute = effective_bit_ops * tech.bit_serial_add_pj + total_tasks * tech.shift_pj
    scoreboard = total_tasks * 2 * tech.scoreboard_access_pj  # read + update
    decision = total_tasks * (tech.comparator_pj + tech.register_pj)

    return QKPUResult(
        cycles=float(cycles),
        lane_stats=lane_stats,
        compute_energy_pj=float(compute),
        scoreboard_energy_pj=float(scoreboard),
        decision_energy_pj=float(decision),
        bit_plane_loads=total_tasks,
    )
