"""DRAM/SRAM address mapping for the bit-plane-first layout (paper Fig. 22).

PADE's DRAM layout interleaves K along the *bit* dimension — bank ``b``
stores bit plane ``b`` of consecutive keys — so streaming one plane of many
keys walks sequentially through one bank's rows (row-buffer hits), while
Q/V interleave along the hidden dimension for contiguous byte reads.  This
module gives the exact address arithmetic the :mod:`repro.sim.dram` cost
model abstracts, so layout decisions can be unit-tested and visualized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List


from repro.sim.tech import DEFAULT_TECH, TechConfig

__all__ = ["Address", "KBitPlaneLayout", "RowMajorLayout", "row_buffer_hit_rate"]


@dataclass(frozen=True)
class Address:
    """A decoded DRAM address."""

    bank: int
    row: int
    column: int


class KBitPlaneLayout:
    """Bit-plane-first mapping for the K tensor.

    Plane ``r`` of token ``t`` (a ``head_dim``-bit string = ``head_dim/8``
    bytes) lives in bank ``r mod banks`` at byte offset
    ``t * head_dim/8`` within that bank — planes of consecutive tokens are
    contiguous inside one bank.
    """

    def __init__(self, head_dim: int = 64, bits: int = 8, tech: TechConfig = DEFAULT_TECH):
        self.head_dim = head_dim
        self.bits = bits
        self.tech = tech
        self.plane_bytes = head_dim // 8
        self.banks = tech.hbm_channels

    def locate(self, token: int, plane: int) -> Address:
        bank = plane % self.banks
        byte = token * self.plane_bytes
        row = byte // self.tech.hbm_row_bytes
        column = byte % self.tech.hbm_row_bytes
        return Address(bank=bank, row=row, column=column)

    def stream(self, tokens: Iterator[int], plane: int) -> List[Address]:
        return [self.locate(t, plane) for t in tokens]


class RowMajorLayout:
    """Element-contiguous mapping (Q/V, or K without the custom layout).

    Token ``t``'s full ``bits``-wide vector is contiguous; extracting a
    single bit plane of one token touches the token's whole row span.
    """

    def __init__(self, head_dim: int = 64, bits: int = 8, tech: TechConfig = DEFAULT_TECH):
        self.head_dim = head_dim
        self.bits = bits
        self.tech = tech
        self.token_bytes = head_dim * bits // 8
        self.banks = tech.hbm_channels

    def locate(self, token: int, plane: int = 0) -> Address:
        byte = token * self.token_bytes
        bank = (byte // self.tech.hbm_burst_bytes) % self.banks
        per_bank = byte // self.banks
        row = per_bank // self.tech.hbm_row_bytes
        column = per_bank % self.tech.hbm_row_bytes
        return Address(bank=bank, row=row, column=column)


def row_buffer_hit_rate(addresses: List[Address], banks: int | None = None) -> float:
    """Replay an address stream against per-bank open rows.

    Returns the fraction of accesses that hit the currently open row of
    their bank — the quantity the Fig. 23(b) bandwidth-utilization study
    turns on.
    """
    if not addresses:
        return 1.0
    open_rows: dict = {}
    hits = 0
    for a in addresses:
        if open_rows.get(a.bank) == a.row:
            hits += 1
        open_rows[a.bank] = a.row
    return hits / len(addresses)
