"""BS scheduler with a temporally reused priority encoder (paper Fig. 12).

The scheduler orchestrates the bit-serial dot product inside a PE lane:

1. *Bit pattern selection* — decide per plane whether 1-mode or 0-mode is
   cheaper (``BitCount-1`` + comparator + MUX in Fig. 12) and flip the
   column if needed.
2. *Index selection* — a priority encoder finds, within a sliding 5-bit
   window, the position of the first set bit; the bit is masked and the rest
   propagate to the next time step.  An all-zero window asserts ``V = 0`` to
   disable the lane's bit-serial multiplier for that slot.

Unlike BBS, which instantiates one encoder per selection slot, PADE
*temporally multiplexes a single encoder* across time steps — legal because
the QK-PU/V-PU pipeline is staggered, so the extra steps hide.  The reuse
removes 75% of the encoder area (1 instead of 4 per sub-group).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.sim.tech import DEFAULT_TECH, TechConfig

__all__ = ["EncoderStep", "BSScheduler"]


@dataclass(frozen=True)
class EncoderStep:
    """One priority-encoder time step: selected index (or disabled)."""

    index: Optional[int]  # position of the selected bit, None if window empty
    valid: bool


@dataclass
class BSScheduler:
    """Temporal-reuse BS scheduler for one sub-group.

    Parameters
    ----------
    window:
        Width of the encoder's sliding window (5 in the paper: the first
        selector picks among ``{k0..k4}``, the next among ``{k1..k5}`` ...).
    """

    window: int = 5
    tech: TechConfig = field(default=DEFAULT_TECH, repr=False)
    encoder_invocations: int = 0

    def choose_mode(self, plane_bits: np.ndarray) -> Tuple[bool, np.ndarray]:
        """Bit pattern selection: return (one_mode, column to encode)."""
        bits = np.asarray(plane_bits).astype(np.uint8)
        ones = int(bits.sum())
        one_mode = ones <= bits.size - ones
        column = bits if one_mode else (1 - bits)
        return one_mode, column

    def schedule(self, plane_bits: np.ndarray) -> Tuple[bool, List[EncoderStep]]:
        """Run the full selection sequence for one sub-group bit plane.

        Returns the chosen mode and one :class:`EncoderStep` per time step;
        the number of steps equals the number of selector slots (``ceil of
        effective bits over one encoder``) — with temporal reuse each step
        costs one encoder invocation instead of one encoder instance.
        """
        one_mode, column = self.choose_mode(plane_bits)
        work = column.copy()
        steps: List[EncoderStep] = []
        for t in range(work.size):
            window = work[t : t + self.window]
            self.encoder_invocations += 1
            set_positions = np.flatnonzero(window)
            if set_positions.size:
                idx = t + int(set_positions[0])
                work[idx] = 0
                steps.append(EncoderStep(index=idx, valid=True))
            else:
                steps.append(EncoderStep(index=None, valid=False))
            if not work.any():
                break
        return one_mode, steps

    def selected_indices(self, plane_bits: np.ndarray) -> Tuple[bool, List[int]]:
        """Mode + all selected indices (correctness-checked against the plan)."""
        one_mode, steps = self.schedule(plane_bits)
        return one_mode, [s.index for s in steps if s.valid]

    @staticmethod
    def encoder_area_saving(selectors: int = 4) -> float:
        """Area saving of temporal reuse vs parallel encoders (1 vs N)."""
        return 1.0 - 1.0 / selectors

    def energy_pj(self) -> float:
        """Encoder energy spent so far."""
        return self.encoder_invocations * self.tech.encoder_pj
