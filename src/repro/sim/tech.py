"""Technology constants: TSMC 28 nm @ 800 MHz, HBM2 @ 256 GB/s.

All energy numbers are per-operation estimates at 28 nm consistent with the
sources the paper cites (CACTI for SRAM, O'Connor et al. 4 pJ/bit for HBM,
standard-cell figures for MACs).  Absolute joules are *model inputs*, not
synthesis results — the evaluation compares designs under identical
constants, mirroring the paper's normalization protocol (§VI-A: same PE
area, 800 MHz, 352 KB SRAM, 256 GB/s @ 4 pJ/bit for every design).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TechConfig", "DEFAULT_TECH"]


@dataclass(frozen=True)
class TechConfig:
    """Shared technology/energy constants (28 nm unless noted)."""

    # --- Clocking ------------------------------------------------------
    frequency_hz: float = 800e6
    #: seconds per cycle
    @property
    def cycle_time_s(self) -> float:
        return 1.0 / self.frequency_hz

    # --- Off-chip memory (Table III) ------------------------------------
    hbm_channels: int = 16
    hbm_channel_gbps: float = 16.0  # GB/s per pseudo channel
    hbm_pj_per_bit: float = 4.0
    hbm_trc_ns: float = 50.0
    hbm_burst_bytes: int = 32  # BL=4 x 64 bit
    hbm_row_bytes: int = 1024  # row-buffer span per pseudo channel
    hbm_activation_energy_pj: float = 909.0  # per row activation (HBM2 class)

    @property
    def hbm_total_gbps(self) -> float:
        return self.hbm_channels * self.hbm_channel_gbps

    @property
    def hbm_bytes_per_cycle(self) -> float:
        return self.hbm_total_gbps * 1e9 / self.frequency_hz

    @property
    def hbm_trc_cycles(self) -> int:
        return int(round(self.hbm_trc_ns * 1e-9 * self.frequency_hz))

    # --- On-chip SRAM (CACTI-class per-byte access energies) ------------
    sram_kv_bytes: int = 320 * 1024
    sram_q_bytes: int = 32 * 1024
    sram_read_pj_per_byte: float = 0.60
    sram_write_pj_per_byte: float = 0.80

    # --- Compute energies (pJ per op at 28 nm) --------------------------
    int8_mac_pj: float = 0.30
    int16_mac_pj: float = 1.10
    int4_mult_pj: float = 0.08
    bit_serial_add_pj: float = 0.055  # one guarded 8-bit accumulate in GSAT
    shift_pj: float = 0.012  # bit-plane weighting shift
    fp16_exp_pj: float = 3.2  # APM exponentiation
    fp16_mac_pj: float = 1.5
    comparator_pj: float = 0.020  # decision-unit compare
    scoreboard_access_pj: float = 0.045  # 45-bit entry read/write
    register_pj: float = 0.010
    encoder_pj: float = 0.015  # priority-encoder step

    # --- Static power (leakage + clock tree, burns during stalls too) ----
    static_power_w: float = 0.08

    # --- Structural parameters (Table III) -------------------------------
    pe_rows: int = 8
    lanes_per_row: int = 16
    lane_dims: int = 64  # 64-dim x 8 bit x 1 bit GSAT per lane
    scoreboard_entries: int = 32
    vpu_rows: int = 8
    vpu_cols: int = 16
    operand_bits: int = 8
    gsat_subgroup: int = 8

    @property
    def num_lanes(self) -> int:
        return self.pe_rows * self.lanes_per_row


DEFAULT_TECH = TechConfig()
