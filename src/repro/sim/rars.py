"""Reuse-aware reorder scheduling (RARS) for V vectors (paper §V-E, Fig. 13).

After sparsification, each score row retains an irregular subset of V
vectors.  The V-PU keeps ``buffer_vectors`` V rows resident; each score row
can consume at most ``row_rate`` of them per round.  A naive left-to-right
order lets rows pull disjoint vectors, forcing evictions of still-needed
shared vectors that must be reloaded later.

RARS instead (1) prioritizes the V vectors shared by the most pending score
rows (V2/V3 in the paper's example, shared by S0/S1/S3) so every consumer
drains them while resident, and (2) evicts the vectors with the least
remaining demand — a ~30% memory-access reduction in the Fig. 13 example.

The hardware realization (Fig. 13c) is an FSM + bitmask-indexed ID buffers +
issuing FIFO; :class:`RARSSchedulerModel` accounts its bookkeeping cost.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

import numpy as np

from repro.sim.tech import DEFAULT_TECH, TechConfig

__all__ = ["ScheduleResult", "naive_schedule", "rars_schedule", "requirements_from_mask", "RARSSchedulerModel"]


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one block of score rows onto the V-PU."""

    rounds: List[List[int]]  # V indices loaded each round
    total_loads: int  # loads including reloads
    unique_vectors: int  # lower bound: each needed V loaded once

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def reload_overhead(self) -> float:
        """Fraction of loads that are redundant reloads."""
        if self.total_loads == 0:
            return 0.0
        return 1.0 - self.unique_vectors / self.total_loads


def _demand(pending: List[Set[int]]) -> Dict[int, int]:
    d: Dict[int, int] = {}
    for p in pending:
        for v in p:
            d[v] = d.get(v, 0) + 1
    return d


def _run_schedule(
    requirements: Sequence[Sequence[int]],
    buffer_vectors: int,
    row_rate: int,
    reuse_aware: bool,
) -> ScheduleResult:
    pending: List[Set[int]] = [set(r) for r in requirements]
    unique = len(set().union(*pending)) if pending else 0
    buffer: "OrderedDict[int, None]" = OrderedDict()  # resident Vs, LRU order
    rounds: List[List[int]] = []
    total_loads = 0

    while any(pending):
        demand = _demand(pending)
        if reuse_aware:
            # Shared-demand-first: everyone works on the most shared vectors.
            wanted: List[int] = sorted(demand, key=lambda v: (-demand[v], v))[:row_rate]
            # Rows left out add their own next vector (keeps progress even
            # with disjoint requirement sets).
            for p in pending:
                if p and not (p & set(wanted)) and len(wanted) < buffer_vectors:
                    wanted.append(min(p))
        else:
            # Left-to-right: each row asks for its lowest-index pending Vs.
            wanted = []
            for p in pending:
                for v in sorted(p)[:row_rate]:
                    if v not in wanted:
                        wanted.append(v)
            wanted = wanted[:buffer_vectors]

        loaded_this_round: List[int] = []
        for v in wanted:
            if v in buffer:
                buffer.move_to_end(v)
                continue
            if len(buffer) >= buffer_vectors:
                if reuse_aware:
                    # Evict the resident vector with the least remaining demand.
                    victim = min(buffer, key=lambda u: (demand.get(u, 0), -u))
                else:
                    victim = next(iter(buffer))  # LRU
                del buffer[victim]
            buffer[v] = None
            loaded_this_round.append(v)
            total_loads += 1
        rounds.append(loaded_this_round)

        # Rows consume up to row_rate resident vectors they still need,
        # preferring the round's wanted set.
        resident = list(buffer)
        for p in pending:
            usable = [v for v in wanted if v in p and v in buffer]
            extra = [v for v in resident if v in p and v not in usable]
            for v in (usable + extra)[:row_rate]:
                p.discard(v)

    return ScheduleResult(rounds=rounds, total_loads=total_loads, unique_vectors=unique)


def naive_schedule(
    requirements: Sequence[Sequence[int]],
    buffer_vectors: int = 4,
    row_rate: int = 2,
) -> ScheduleResult:
    """Left-to-right execution with LRU eviction (Fig. 13a/b)."""
    return _run_schedule(requirements, buffer_vectors, row_rate, reuse_aware=False)


def rars_schedule(
    requirements: Sequence[Sequence[int]],
    buffer_vectors: int = 4,
    row_rate: int = 2,
) -> ScheduleResult:
    """Reuse-aware order: shared-demand-first issue + demand-aware eviction."""
    return _run_schedule(requirements, buffer_vectors, row_rate, reuse_aware=True)


def requirements_from_mask(retained: np.ndarray) -> List[List[int]]:
    """Convert a ``(rows, S)`` retained mask into per-row V index lists."""
    retained = np.asarray(retained, dtype=bool)
    return [list(np.flatnonzero(row)) for row in retained]


@dataclass
class RARSSchedulerModel:
    """Bookkeeping cost of the hardware scheduler (FSM + ID buffers + FIFO)."""

    tech: TechConfig = field(default=DEFAULT_TECH, repr=False)

    def schedule_energy_pj(self, result: ScheduleResult, num_rows: int) -> float:
        """Energy of FSM decisions and ID-buffer traffic for one schedule."""
        fsm_steps = result.num_rounds * (num_rows + 1)
        id_buffer_accesses = result.total_loads + result.num_rounds
        return (
            fsm_steps * self.tech.register_pj
            + id_buffer_accesses * self.tech.scoreboard_access_pj
        )
