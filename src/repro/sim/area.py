"""Area and power breakdown of PADE (paper Fig. 20).

The paper reports 4.53 mm² / 591 mW at TSMC 28 nm, 800 MHz, with component
shares from Synopsys DC.  Offline we model the breakdown with the paper's
shares as the calibrated operating point and expose the structural scaling
knobs the DSE figures need (GSAT sub-group size, scoreboard entries, lane
count) — scaling a component scales its share accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim.gsat import gsat_area_power
from repro.sim.tech import DEFAULT_TECH, TechConfig

__all__ = ["TOTAL_AREA_MM2", "TOTAL_POWER_MW", "area_breakdown", "power_breakdown", "scaled_breakdown"]

TOTAL_AREA_MM2 = 4.53
TOTAL_POWER_MW = 591.0

#: Fig. 20(a) component shares (fractions of total area).
AREA_SHARES: Dict[str, float] = {
    "pe_lane": 0.341,
    "v_pu": 0.285,
    "on_chip_buffer": 0.230,
    "scoreboard": 0.037,
    "bui_gf_module": 0.029,
    "bs_rars_scheduler": 0.028,
    "decision_unit": 0.021,
    "bui_generator": 0.020,
    "others": 0.032,
}

#: Fig. 20(b) component shares (fractions of total power).
POWER_SHARES: Dict[str, float] = {
    "pe_lane": 0.416,
    "v_pu": 0.298,
    "on_chip_buffer": 0.143,
    "bui_gf_module": 0.062,
    "bui_generator": 0.059,
    "scoreboard": 0.033,
    "decision_unit": 0.016,
    "bs_rars_scheduler": 0.013,
    "others": 0.028,
}


def area_breakdown() -> Dict[str, float]:
    """Component areas in mm² at the paper's design point.

    The paper's figure labels sum to slightly over 100%; shares are
    renormalized so the components add up to the reported 4.53 mm².
    """
    total = sum(AREA_SHARES.values())
    return {name: share / total * TOTAL_AREA_MM2 for name, share in AREA_SHARES.items()}


def power_breakdown() -> Dict[str, float]:
    """Component powers in mW at the paper's design point (renormalized)."""
    total = sum(POWER_SHARES.values())
    return {name: share / total * TOTAL_POWER_MW for name, share in POWER_SHARES.items()}


@dataclass(frozen=True)
class DesignPoint:
    """Structural knobs that scale the breakdown away from the default."""

    gsat_subgroup: int = 8
    scoreboard_entries: int = 32
    num_lanes: int = 128


def scaled_breakdown(point: DesignPoint, tech: TechConfig = DEFAULT_TECH) -> Dict[str, float]:
    """Area breakdown (mm²) for a non-default design point.

    PE-lane area follows the GSAT DSE curve; scoreboard area scales linearly
    with entries; lane-count scales lanes, scoreboards, and decision units.
    Used by the Fig. 17 design-space exploration.
    """
    base = area_breakdown()
    ref_area, _ = gsat_area_power(tech.gsat_subgroup)
    new_area, _ = gsat_area_power(point.gsat_subgroup)
    lane_ratio = point.num_lanes / tech.num_lanes
    out = dict(base)
    out["pe_lane"] = base["pe_lane"] * (new_area / ref_area) * lane_ratio
    out["scoreboard"] = (
        base["scoreboard"] * (point.scoreboard_entries / tech.scoreboard_entries) * lane_ratio
    )
    out["decision_unit"] = base["decision_unit"] * lane_ratio
    return out


def overhead_summary() -> Dict[str, float]:
    """The paper's headline overhead claims, derivable from the shares.

    BUI support (generator + GF modules) ≈ 4.9% area / 12.1% power; stage
    fusion support (scoreboard + decision unit) ≈ 5.8% area / 4.9% power.
    """
    return {
        "bui_area_frac": AREA_SHARES["bui_generator"] + AREA_SHARES["bui_gf_module"],
        "bui_power_frac": POWER_SHARES["bui_generator"] + POWER_SHARES["bui_gf_module"],
        "fusion_area_frac": AREA_SHARES["scoreboard"] + AREA_SHARES["decision_unit"],
        "fusion_power_frac": POWER_SHARES["scoreboard"] + POWER_SHARES["decision_unit"],
    }
