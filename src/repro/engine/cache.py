"""Persistent multi-head bit-plane KV caches for the serving engine.

The per-call operator (:func:`repro.core.pade_attention.pade_attention`)
re-quantizes K and re-decomposes its bit planes on every invocation — fine
for one-shot figure generation, ruinous for decode serving where the same
cache is filtered thousands of times.  This module keeps the decomposed
planes *resident*: keys are quantized and decomposed exactly once when they
enter the cache (prefill bulk, decode appends), and every subsequent filter
round reads the stored planes directly.

Two storage strategies share one interface
(``planes/values/k_int/scales/length/prefill/append``):

* :class:`BitPlaneKVCache` — one dense, privately owned buffer per
  sequence, capacity doubling on growth.  Simple, but every request
  reserves up to 2x its live footprint and nothing bounds the *sum* of
  footprints across concurrent requests.
* :class:`PagedBitPlaneKVCache` — rows live in fixed-size token blocks
  allocated from a shared :class:`PlaneBlockPool` under a global token
  budget (the PagedAttention/vLLM memory shape).  Views are gathered
  through the cache's block table, so consumers — ``PadeEngine.attend``
  and both kernel backends — are untouched; allocation failure raises
  :class:`PoolExhausted`, the signal the continuous scheduler turns into
  preemption.

Two sharing mechanisms ride on the paged pool (both off by default):

* **Hash-based prefix sharing** — with ``prefix_sharing=True``, full
  prompt blocks are content-addressed by a chained key
  ``sha256(parent ‖ k_int_block ‖ v_block)`` rooted at a digest of the
  cache config *and the frozen per-head scales*.  Because the stored
  planes are a pure function of ``k_int``, a key match guarantees the
  shared block is byte-identical to what this request would have
  written, so retained sets are provably unchanged by sharing.  Matched
  blocks are attached by reference count instead of re-allocated and
  re-decomposed (pool budget *and* prefill compute saved).
* **Copy-on-write forking** — :meth:`PagedBitPlaneKVCache.fork` clones a
  cache onto the same ref-counted blocks (parallel sampling / beam
  forking); the first divergent ``append`` into a shared partial tail
  block copies it (:meth:`PlaneBlockPool.fork_block`) before writing.

With a :class:`TierConfig`, the pool becomes a **two-tier plane
memory**: under pressure, low-order bit planes of cold blocks are
*spilled* — moved byte-exact into a side store, their primary rows
zeroed — so the same plane budget keeps more sequences resident at
degraded precision instead of preempting one (the filter transparently
scores the partial reconstruction; spilled planes are restored
byte-identical on touch or by the scheduler's prefetch pass).  See
DESIGN.md §16.

Chunked prefill is supported at cache level by the
``begin_prefill`` / ``extend_prefill`` / ``finish_prefill`` triple:
scales are calibrated on the *full* prompt up front, so chunk-by-chunk
decomposition stays byte-identical to one-shot :meth:`prefill`.

Two serving-specific choices apply to both:

* **Frozen scales.**  Per-head quantization scales are calibrated on the
  prefill keys and frozen; decode appends are quantized with the same
  scale (clipping outliers).  This matches static-scale deployment and is
  what makes incremental decomposition sound — a rescale would invalidate
  every stored plane.
* **Head-major layout.**  Planes are stored as one ``(bits, H, S, D)``
  array so the head-batched kernel
  (:func:`repro.core.bsf_fast.bsf_filter_fast_heads`) can consume a round
  for all heads with a single einsum, no per-call stacking.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.quant.bitplane import BitPlanes, decompose_bitplanes
from repro.quant.integer import int_range

__all__ = [
    "quantize_heads",
    "chain_block_keys",
    "BitPlaneKVCache",
    "PlaneBlockPool",
    "PagedBitPlaneKVCache",
    "PoolExhausted",
    "TierConfig",
]


def chain_block_keys(
    k_int: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    scales: np.ndarray,
    *,
    bits: int,
    block_size: int,
    num_heads: int,
    head_dim: int,
    v_dim: int,
) -> List[bytes]:
    """Chained content keys of every *full* prompt block.

    The root digest covers the cache config and the frozen per-head
    scales, so two prompts only chain together when their quantized
    rows are byte-identical; each block key then folds in the block's
    ``k_int``, raw ``k`` and value rows on top of its parent's key.
    (Raw K participates because the baseline attention policies score
    against the float keys — a hit must be byte-identical for *every*
    consumer, not just the plane-reading PADE kernels.)

    Module-level so out-of-process consumers — the cluster router's
    prefix-affinity index — compute the exact keys a replica's
    :class:`PagedBitPlaneKVCache` will register, without holding a pool.
    """
    root = hashlib.sha256()
    root.update(repr((bits, block_size, num_heads, head_dim, v_dim)).encode())
    root.update(scales.tobytes())
    parent = root.digest()
    keys: List[bytes] = []
    bs = block_size
    for b in range(k_int.shape[1] // bs):
        h = hashlib.sha256(parent)
        h.update(np.ascontiguousarray(k_int[:, b * bs : (b + 1) * bs, :]).tobytes())
        h.update(np.ascontiguousarray(k[:, b * bs : (b + 1) * bs, :]).tobytes())
        h.update(np.ascontiguousarray(v[:, b * bs : (b + 1) * bs, :]).tobytes())
        parent = h.digest()
        keys.append(parent)
    return keys


def quantize_heads(
    k: np.ndarray, bits: int, scales: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric per-head quantization, vectorized over the head axis.

    ``k`` has shape ``(H, ...)``; the scale is computed (or applied) per
    head over all trailing axes.  Byte-identical to calling
    :func:`repro.quant.integer.quantize_symmetric` once per head — same
    max-abs scale resolution, same round-to-nearest-even, same clip —
    without the ``H × S`` Python-loop dispatch (regression-pinned by
    ``tests/test_paged_cache.py``).

    Returns ``(k_int, scales)`` with ``k_int`` int64 of ``k``'s shape and
    ``scales`` float64 of shape ``(H,)``.
    """
    k = np.asarray(k, dtype=np.float64)
    qmin, qmax = int_range(bits)
    if scales is None:
        flat = np.abs(k).reshape(k.shape[0], -1)
        # Zero-length sequences calibrate to the unit scale, matching the
        # scalar quantizer's empty-input fallback.
        max_abs = flat.max(axis=1) if flat.shape[1] else np.zeros(k.shape[0])
        # Floor at the smallest normal double: subnormal max_abs can make
        # the quotient underflow to a zero scale (see quant.integer).
        scales = np.where(
            max_abs > 0, np.maximum(max_abs / qmax, np.finfo(np.float64).tiny), 1.0
        )
    else:
        scales = np.asarray(scales, dtype=np.float64)
    expand = (slice(None),) + (None,) * (k.ndim - 1)
    q = np.rint(k / scales[expand])
    k_int = np.clip(q, qmin, qmax).astype(np.int64)
    return k_int, scales


def _check_prefill(cache, k: np.ndarray, v: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Shared prefill validation for both cache implementations."""
    if cache.length:
        raise RuntimeError("prefill() may only be called on an empty cache")
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if k.shape[:1] + k.shape[2:] != (cache.num_heads, cache.head_dim):
        raise ValueError(f"expected K shape ({cache.num_heads}, S, {cache.head_dim}), got {k.shape}")
    if v.shape != (cache.num_heads, k.shape[1], cache.v_dim):
        raise ValueError(f"expected V shape ({cache.num_heads}, {k.shape[1]}, {cache.v_dim}), got {v.shape}")
    return k, v


def _check_step(cache, k_step: np.ndarray, v_step: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Shared append validation for both cache implementations."""
    if cache._scales is None:
        raise RuntimeError("append() requires a prefilled cache")
    k_step = np.asarray(k_step, dtype=np.float64)
    v_step = np.asarray(v_step, dtype=np.float64)
    if k_step.shape != (cache.num_heads, cache.head_dim):
        raise ValueError(f"expected K step shape ({cache.num_heads}, {cache.head_dim}), got {k_step.shape}")
    if v_step.shape != (cache.num_heads, cache.v_dim):
        raise ValueError(f"expected V step shape ({cache.num_heads}, {cache.v_dim}), got {v_step.shape}")
    return k_step, v_step


class BitPlaneKVCache:
    """Appendable per-head Key bit planes + float Values for one sequence.

    Attributes
    ----------
    num_heads / head_dim / v_dim:
        Shapes of the cached tensors.
    bits:
        Operand bit width of the stored planes.
    rows_decomposed:
        Total (head, token) rows ever decomposed — the work a per-call
        pipeline would redo every step, counted once here.
    appends:
        Number of incremental ``append`` calls since prefill.
    """

    def __init__(self, num_heads: int, head_dim: int, v_dim: int, bits: int = 8) -> None:
        if num_heads < 1 or head_dim < 1 or v_dim < 1:
            raise ValueError("num_heads, head_dim and v_dim must be positive")
        self.num_heads = num_heads
        self.head_dim = head_dim
        self.v_dim = v_dim
        self.bits = bits
        self._length = 0
        self._capacity = 0
        self._planes: Optional[np.ndarray] = None  # (bits, H, cap, D) uint8
        self._k_int: Optional[np.ndarray] = None  # (H, cap, D) int64
        self._k: Optional[np.ndarray] = None  # (H, cap, D) float64 raw keys
        self._values: Optional[np.ndarray] = None  # (H, cap, Dv) float64
        self._scales: Optional[np.ndarray] = None  # (H,) frozen at prefill
        self.rows_decomposed = 0
        self.appends = 0
        self.policy_state = None  # per-request AttentionPolicy state

    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of cached tokens."""
        return self._length

    @property
    def scales(self) -> np.ndarray:
        """Frozen per-head K quantization scales (set by :meth:`prefill`)."""
        if self._scales is None:
            raise RuntimeError("cache is empty; call prefill() first")
        return self._scales

    @property
    def planes(self) -> BitPlanes:
        """View of the cached planes, value shape ``(H, length, D)``."""
        if self._planes is None:
            raise RuntimeError("cache is empty; call prefill() first")
        return BitPlanes(planes=self._planes[:, :, : self._length, :], bits=self.bits)

    @property
    def values(self) -> np.ndarray:
        """View of the cached V rows, shape ``(H, length, Dv)``."""
        if self._values is None:
            raise RuntimeError("cache is empty; call prefill() first")
        return self._values[:, : self._length, :]

    @property
    def k_int(self) -> np.ndarray:
        """View of the cached integer keys, shape ``(H, length, D)``."""
        if self._k_int is None:
            raise RuntimeError("cache is empty; call prefill() first")
        return self._k_int[:, : self._length, :]

    @property
    def k_float(self) -> np.ndarray:
        """View of the raw (pre-quantization) keys, shape ``(H, length, D)``.

        The software baseline policies score against the exact float keys
        the caller handed over — quantization is a PADE implementation
        detail, not part of their selection semantics.
        """
        if self._k is None:
            raise RuntimeError("cache is empty; call prefill() first")
        return self._k[:, : self._length, :]

    # ------------------------------------------------------------------
    def prefill(self, k: np.ndarray, v: np.ndarray) -> None:
        """Quantize, decompose and store the prompt keys/values.

        ``k`` has shape ``(H, S, D)`` and ``v`` shape ``(H, S, Dv)``.  May
        only be called once per cache; per-head scales are calibrated here
        and frozen for all later appends.
        """
        k, v = _check_prefill(self, k, v)
        seq_len = k.shape[1]
        k_int, scales = quantize_heads(k, bits=self.bits)  # (H, S, D)
        self._scales = scales
        bp = decompose_bitplanes(k_int, bits=self.bits)

        self._reserve(max(seq_len, 1))
        self._planes[:, :, :seq_len, :] = bp.planes
        self._k_int[:, :seq_len, :] = k_int
        self._k[:, :seq_len, :] = k
        self._values[:, :seq_len, :] = v
        self._length = seq_len
        self.rows_decomposed += self.num_heads * seq_len

    def append(self, k_step: np.ndarray, v_step: np.ndarray) -> None:
        """Add one token per head, decomposing only the new rows.

        ``k_step`` has shape ``(H, D)`` and ``v_step`` shape ``(H, Dv)``.
        Uses the frozen prefill scales, so the stored planes of earlier
        tokens stay valid untouched.
        """
        k_step, v_step = _check_step(self, k_step, v_step)
        self._reserve(self._length + 1)
        k_int, _ = quantize_heads(k_step, bits=self.bits, scales=self._scales)  # (H, D)
        bp = decompose_bitplanes(k_int, bits=self.bits)  # (bits, H, D)
        pos = self._length
        self._planes[:, :, pos, :] = bp.planes
        self._k_int[:, pos, :] = k_int
        self._k[:, pos, :] = k_step
        self._values[:, pos, :] = v_step
        self._length = pos + 1
        self.rows_decomposed += self.num_heads
        self.appends += 1

    # ------------------------------------------------------------------
    def _reserve(self, needed: int) -> None:
        if needed <= self._capacity:
            return
        new_cap = max(needed, max(1, self._capacity) * 2)
        planes = np.zeros((self.bits, self.num_heads, new_cap, self.head_dim), dtype=np.uint8)
        k_int = np.zeros((self.num_heads, new_cap, self.head_dim), dtype=np.int64)
        k = np.zeros((self.num_heads, new_cap, self.head_dim), dtype=np.float64)
        values = np.zeros((self.num_heads, new_cap, self.v_dim), dtype=np.float64)
        if self._length:
            planes[:, :, : self._length, :] = self._planes[:, :, : self._length, :]
            k_int[:, : self._length, :] = self._k_int[:, : self._length, :]
            k[:, : self._length, :] = self._k[:, : self._length, :]
            values[:, : self._length, :] = self._values[:, : self._length, :]
        self._planes = planes
        self._k_int = k_int
        self._k = k
        self._values = values
        self._capacity = new_cap


@dataclass(frozen=True)
class TierConfig:
    """Policy knobs for the two-tier (primary / spill) plane memory.

    ``min_resident_planes`` is the floor of the spill ladder: the sign
    plane plus at least one magnitude plane must stay in the primary
    tier, so a degraded block still yields a usable (if coarse) partial
    reconstruction — the score error of a block at residency ``r`` is
    bounded by ``unknown_weight_sum(bits, r) * scale * sum|q|`` per head
    (DESIGN.md §16).  ``restore_blocks_per_round`` caps how many spilled
    blocks the scheduler's prefetch pass restores per round (0 disables
    prefetch; writers still restore on touch).
    """

    min_resident_planes: int = 2
    restore_blocks_per_round: int = 4

    def __post_init__(self) -> None:
        if self.min_resident_planes < 1:
            raise ValueError("min_resident_planes must be >= 1")
        if self.restore_blocks_per_round < 0:
            raise ValueError("restore_blocks_per_round must be >= 0")

    def ladder(self, bits: int) -> List[int]:
        """Target residencies of the spill ladder, shallow to deep.

        Halves the plane count per level down to the floor — for 8-bit
        operands with the default floor this is ``[4, 2]``: shed half
        the planes of a cold block first, halve again only under
        continued pressure, preempt only when even the floor cannot
        make room.
        """
        if self.min_resident_planes >= bits:
            raise ValueError(
                f"min_resident_planes {self.min_resident_planes} leaves no "
                f"spillable planes at {bits}-bit operands"
            )
        levels: List[int] = []
        level = bits // 2
        while level > self.min_resident_planes:
            levels.append(level)
            level //= 2
        levels.append(self.min_resident_planes)
        return levels


class PoolExhausted(RuntimeError):
    """A block allocation would exceed the pool's global token budget.

    The continuous scheduler catches this to trigger preemption; anything
    else letting it propagate means the budget cannot even hold the
    requesting sequence alone.
    """


class PlaneBlockPool:
    """Fixed-size token blocks of plane/k_int/value rows under one budget.

    The pool owns three backing stores shaped for ``num_blocks × block_size``
    token rows (planes ``(bits, H, rows, D)`` uint8, integer keys
    ``(H, rows, D)`` int64, values ``(H, rows, Dv)`` float64) and hands out
    block indices.  Block ``b`` owns physical rows
    ``[b * block_size, (b + 1) * block_size)``; a
    :class:`PagedBitPlaneKVCache` maps its logical token positions onto
    those rows through its block table.

    ``token_budget`` is rounded *down* to a whole number of blocks — the
    pool never over-commits the budget it was given.

    Blocks are *ref-counted*: :meth:`allocate` hands out a block with one
    reference, :meth:`share` adds references (prefix hits, cache forks),
    and :meth:`release` drops one reference per call — the block returns
    to the free list only when the last reference is gone.  Full prompt
    blocks may additionally be *registered* under a content key
    (:meth:`register_prefix`), making them discoverable by later
    requests with the same prompt prefix; registration is removed when
    the block is freed or forked, so the index never points at stale or
    mutable content.
    """

    def __init__(
        self,
        num_heads: int,
        head_dim: int,
        v_dim: int,
        bits: int = 8,
        block_size: int = 16,
        token_budget: int = 4096,
        tiering: Optional[TierConfig] = None,
        plane_budget_blocks: Optional[int] = None,
    ) -> None:
        if num_heads < 1 or head_dim < 1 or v_dim < 1:
            raise ValueError("num_heads, head_dim and v_dim must be positive")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        if token_budget < block_size:
            raise ValueError(f"token_budget {token_budget} below one block ({block_size} tokens)")
        self.num_heads = num_heads
        self.head_dim = head_dim
        self.v_dim = v_dim
        self.bits = bits
        self.block_size = block_size
        self.num_blocks = token_budget // block_size
        rows = self.num_blocks * block_size
        self._planes = np.zeros((bits, num_heads, rows, head_dim), dtype=np.uint8)
        self._k_int = np.zeros((num_heads, rows, head_dim), dtype=np.int64)
        self._k = np.zeros((num_heads, rows, head_dim), dtype=np.float64)
        self._values = np.zeros((num_heads, rows, v_dim), dtype=np.float64)
        # LIFO free list seeded so the first allocations come out 0, 1, 2...
        self._free: List[int] = list(range(self.num_blocks - 1, -1, -1))
        self._allocated: set = set()
        self._refcounts: Dict[int, int] = {}
        self._prefix_index: Dict[bytes, int] = {}  # content key -> block
        self._block_key: Dict[int, bytes] = {}  # block -> content key
        # Content-derived per-block policy state (e.g. Quest page summaries):
        # entries are pure functions of the block's frozen rows, so sharers
        # may reuse them; invalidated when the block frees or is forked.
        self.block_meta: Dict[int, Dict[str, object]] = {}
        self.peak_used_blocks = 0  # high-water mark of concurrently live blocks
        self.allocations = 0  # cumulative allocate() grants
        self.prefix_shares = 0  # cumulative share() grants
        self.forks = 0  # cumulative copy-on-write block copies
        # Eviction notifications for the cluster router's affinity index:
        # chain keys whose registered block was freed or forked since the
        # last drain.  Bounded — an undrained backlog only means a router
        # entry goes stale until its next miss, never unbounded memory.
        self._evicted_keys: Deque[bytes] = deque(maxlen=4096)
        # --- two-tier plane memory (None = flat pool, byte-identical to
        # the pre-tiering behavior; see TierConfig / DESIGN.md §16) -----
        self.tiering = tiering
        if tiering is not None:
            if tiering.min_resident_planes >= bits:
                raise ValueError(
                    f"min_resident_planes {tiering.min_resident_planes} leaves "
                    f"no spillable planes at {bits}-bit operands"
                )
            budget_blocks = self.num_blocks if plane_budget_blocks is None else int(plane_budget_blocks)
            if budget_blocks < 1:
                raise ValueError("plane_budget_blocks must be >= 1")
            self.plane_budget_blocks = min(budget_blocks, self.num_blocks)
        else:
            self.plane_budget_blocks = self.num_blocks
        self._resident: Dict[int, int] = {}  # block -> planes in primary tier
        self._spill_store: Dict[int, np.ndarray] = {}  # block -> planes[r:bits) bytes
        self._plane_units_used = 0  # sum of residencies of live blocks
        self._touch_clock = 0
        self._last_touch: Dict[int, int] = {}
        self._protected: set = set()  # blocks the scheduler pinned this round
        self.spill_events = 0  # cumulative spill_block() calls
        self.restore_events = 0  # cumulative restore_block() calls that moved planes
        self.spilled_plane_bytes = 0  # modeled packed bytes moved to the spill tier
        self.restored_plane_bytes = 0  # modeled packed bytes moved back
        self._tier_plane_writes = 0  # (plane, key) rows spilled, for the DRAM model
        self._tier_plane_reads = 0  # (plane, key) rows restored

    # ------------------------------------------------------------------
    @property
    def token_budget(self) -> int:
        """Total token rows the pool can hold (budget rounded to blocks)."""
        return self.num_blocks * self.block_size

    @property
    def free_block_count(self) -> int:
        return len(self._free)

    @property
    def used_block_count(self) -> int:
        return len(self._allocated)

    @property
    def free_tokens(self) -> int:
        return self.free_block_count * self.block_size

    @property
    def used_tokens(self) -> int:
        """Token rows reserved by live block tables (block granularity)."""
        return self.used_block_count * self.block_size

    @property
    def occupancy(self) -> float:
        """Fraction of the token budget currently reserved."""
        return self.used_block_count / self.num_blocks

    @property
    def bytes_per_block(self) -> int:
        """Backing-store bytes one block occupies (planes + k_int + k + values)."""
        h, d, dv = self.num_heads, self.head_dim, self.v_dim
        per_row = self.bits * h * d + h * d * 8 + h * d * 8 + h * dv * 8
        return self.block_size * per_row

    # ------------------------------------------------------------------
    # Two-tier accounting.  The primary tier's capacity is denominated in
    # *plane units*: one unit = one bit plane of one block.  A fully
    # resident block consumes ``bits`` units; spilling planes frees units
    # the allocator can hand to new blocks — that is the whole point of
    # tiering: the same plane budget admits more sequences at degraded
    # precision instead of preempting one.
    @property
    def plane_capacity_units(self) -> int:
        """Primary-tier capacity in plane units (budget blocks × bits)."""
        return self.plane_budget_blocks * self.bits

    @property
    def plane_units_used(self) -> int:
        """Plane units held by live blocks (residency-weighted)."""
        return self._plane_units_used

    @property
    def plane_units_free(self) -> int:
        return self.plane_capacity_units - self._plane_units_used

    @property
    def degraded_block_count(self) -> int:
        """Live blocks with at least one plane in the spill tier."""
        return len(self._spill_store)

    def _plane_block_bytes(self, num_planes: int) -> int:
        """Modeled packed bytes of ``num_planes`` planes of one block."""
        row_bytes = (self.head_dim + 7) // 8  # one plane of one key, packed
        return num_planes * self.block_size * self.num_heads * row_bytes

    # ------------------------------------------------------------------
    def allocate(self) -> int:
        """Take one free block (refcount 1); :class:`PoolExhausted` when full.

        Under tiering the primary tier must also have ``bits`` plane
        units free — a fresh block is always written at full precision.
        The scheduler turns this failure into the spill ladder before
        falling back to preemption.
        """
        if not self._free:
            raise PoolExhausted(
                f"pool exhausted: all {self.num_blocks} blocks "
                f"({self.token_budget} tokens) in use"
            )
        if self.tiering is not None and self._plane_units_used + self.bits > self.plane_capacity_units:
            raise PoolExhausted(
                f"plane budget exhausted: {self._plane_units_used}/"
                f"{self.plane_capacity_units} units in the primary tier"
            )
        block = self._free.pop()
        self._allocated.add(block)
        self._refcounts[block] = 1
        self.allocations += 1
        self.peak_used_blocks = max(self.peak_used_blocks, len(self._allocated))
        if self.tiering is not None:
            self._resident[block] = self.bits
            self._plane_units_used += self.bits
            self._touch(block)
        return block

    def allocate_many(self, count: int) -> List[int]:
        """Take ``count`` blocks atomically: all of them or none.

        The free-list check happens before any block is claimed, so a
        failed compound allocation can never leak a partial set — the
        pool is byte-for-byte as it was before the call.
        """
        if count > len(self._free):
            raise PoolExhausted(
                f"allocation of {count} blocks exceeds the {len(self._free)} free "
                f"({self.num_blocks} total, {self.token_budget} tokens)"
            )
        if self.tiering is not None and self._plane_units_used + count * self.bits > self.plane_capacity_units:
            raise PoolExhausted(
                f"allocation of {count} blocks exceeds the primary tier's "
                f"{self.plane_units_free} free plane units"
            )
        return [self.allocate() for _ in range(count)]

    def share(self, block: int) -> int:
        """Add one reference to an allocated block (prefix hit / fork)."""
        if block not in self._allocated:
            raise ValueError(f"block {block} is not allocated")
        self._refcounts[block] += 1
        self.prefix_shares += 1
        if self.tiering is not None:
            self._touch(block)
        return block

    def ref_count(self, block: int) -> int:
        """Live references to ``block`` (0 if free)."""
        return self._refcounts.get(block, 0)

    def release(self, blocks) -> None:
        """Drop one reference per block; free those reaching zero.

        Releasing a block that is not allocated raises ``ValueError``
        (the double-free guard — a block freed by its last holder leaves
        ``_allocated`` immediately, so a stale second release is loud).
        """
        for block in blocks:
            if block not in self._allocated:
                raise ValueError(f"block {block} is not allocated")
            self._decref(block)

    def _decref(self, block: int) -> None:
        self._refcounts[block] -= 1
        if self._refcounts[block] == 0:
            self._unregister(block)
            self.block_meta.pop(block, None)
            del self._refcounts[block]
            self._allocated.remove(block)
            self._free.append(block)
            if self.tiering is not None:
                self._plane_units_used -= self._resident.pop(block)
                self._spill_store.pop(block, None)
                self._last_touch.pop(block, None)
                self._protected.discard(block)

    # ------------------------------------------------------------------
    def register_prefix(self, key: bytes, block: int) -> bool:
        """Publish ``block`` under content ``key`` for later prefix hits.

        First writer wins: if ``key`` is already registered (two requests
        raced the same prompt), the existing entry is kept and ``False``
        is returned — the caller's block simply stays private.
        """
        if block not in self._allocated:
            raise ValueError(f"block {block} is not allocated")
        if key in self._prefix_index:
            return False
        self._prefix_index[key] = block
        self._block_key[block] = key
        return True

    def lookup_prefix(self, key: bytes) -> Optional[int]:
        """Find the live block registered under ``key`` (None on miss)."""
        return self._prefix_index.get(key)

    def is_registered(self, block: int) -> bool:
        return block in self._block_key

    def _unregister(self, block: int) -> None:
        key = self._block_key.pop(block, None)
        if key is not None and self._prefix_index.get(key) == block:
            del self._prefix_index[key]
            self._evicted_keys.append(key)

    def drain_evicted_prefix_keys(self) -> List[bytes]:
        """Chain keys dropped from the prefix index since the last drain.

        The serving front-end forwards these to the cluster router so a
        replica whose pool freed a prefix stops attracting affinity
        routes for it (the router mirrors the pool's index instead of
        growing forever).
        """
        keys = list(self._evicted_keys)
        self._evicted_keys.clear()
        return keys

    def fork_block(self, block: int, rows_used: int) -> int:
        """Make ``block`` privately writable (copy-on-write).

        If this caller holds the only reference, the block is simply
        unregistered (its content is about to diverge from the published
        key) and returned unchanged.  Otherwise a fresh block is
        allocated — *before* any mutation, so :class:`PoolExhausted`
        leaves everything untouched — the first ``rows_used`` rows are
        copied, and the shared block loses one reference.
        """
        if block not in self._allocated:
            raise ValueError(f"block {block} is not allocated")
        # The caller is about to write into the result: spilled planes
        # must come home first, or a later restore would clobber the
        # fresh rows with stale spill-tier bytes.
        self.ensure_resident(block)
        if self._refcounts[block] == 1:
            self._unregister(block)
            self.block_meta.pop(block, None)  # content is about to diverge
            return block
        fresh = self.allocate()
        src = self.rows_of(block)[:rows_used]
        dst = self.rows_of(fresh)[:rows_used]
        self._planes[:, :, dst, :] = self._planes[:, :, src, :]
        self._k_int[:, dst, :] = self._k_int[:, src, :]
        self._k[:, dst, :] = self._k[:, src, :]
        self._values[:, dst, :] = self._values[:, src, :]
        self._decref(block)
        self.forks += 1
        return fresh

    def rows_of(self, block: int) -> np.ndarray:
        """Physical row indices owned by ``block``."""
        start = block * self.block_size
        return np.arange(start, start + self.block_size)

    # ------------------------------------------------------------------
    # Plane-granular spill / restore (the two-tier extension).  Spilled
    # planes are *moved*, byte-exact, into a per-block side store and
    # their primary rows zeroed — so every consumer of the gathered
    # planes (both kernel backends, fused and per-request) transparently
    # scores a partial reconstruction with the unknown low-order planes
    # contributing zero, exactly the ``partial_reconstruct`` semantics of
    # ``quant/bitplane`` (error bound: ``unknown_weight_sum(bits, r)``).
    # Restore copies the bytes back, so a round-trip is the identity.
    def _require_tiering(self) -> TierConfig:
        if self.tiering is None:
            raise RuntimeError("pool was built without tiering (TierConfig)")
        return self.tiering

    def _touch(self, block: int) -> None:
        self._touch_clock += 1
        self._last_touch[block] = self._touch_clock

    def touch(self, blocks) -> None:
        """Mark blocks recently used (spill victims are chosen cold-first)."""
        if self.tiering is None:
            return
        for block in blocks:
            self._touch(block)

    def set_protected(self, blocks) -> None:
        """Pin blocks against spilling for the current round.

        The scheduler pins every active sequence's write tail plus its
        sink/recent attention window each round, so the protected
        positions of :func:`protection_mask` are never degraded — the
        divergence bound only ever applies to prunable middle context.
        """
        if self.tiering is None:
            return
        self._protected = {b for b in blocks if b in self._allocated}

    def resident_planes(self, block: int) -> int:
        """Planes of ``block`` in the primary tier (``bits`` when flat)."""
        if self.tiering is None:
            return self.bits
        return self._resident[block]

    def spill_candidates(self) -> List[int]:
        """Live blocks eligible for (deeper) spilling, coldest first."""
        tc = self._require_tiering()
        eligible = [
            b
            for b in self._allocated
            if b not in self._protected and self._resident[b] > tc.min_resident_planes
        ]
        eligible.sort(key=lambda b: (self._last_touch.get(b, 0), b))
        return eligible

    def spill_block(self, block: int, target_planes: int) -> int:
        """Move planes ``[target_planes, resident)`` of ``block`` to the
        spill tier; returns the number of planes moved (plane units freed).
        """
        tc = self._require_tiering()
        if block not in self._allocated:
            raise ValueError(f"block {block} is not allocated")
        current = self._resident[block]
        if target_planes < tc.min_resident_planes:
            raise ValueError(
                f"target {target_planes} below the residency floor "
                f"{tc.min_resident_planes}"
            )
        if target_planes >= current:
            return 0
        start = block * self.block_size
        rows = slice(start, start + self.block_size)
        chunk = self._planes[target_planes:current, :, rows, :].copy()
        store = self._spill_store.get(block)
        self._spill_store[block] = (
            chunk if store is None else np.concatenate([chunk, store], axis=0)
        )
        self._planes[target_planes:current, :, rows, :] = 0
        self._resident[block] = target_planes
        moved = current - target_planes
        self._plane_units_used -= moved
        self.spill_events += 1
        self.spilled_plane_bytes += self._plane_block_bytes(moved)
        self._tier_plane_writes += moved * self.block_size * self.num_heads
        return moved

    def restore_block(self, block: int, target_planes: Optional[int] = None) -> int:
        """Bring planes of ``block`` back from the spill tier, byte-exact.

        Restores up to ``target_planes`` residency (full precision when
        omitted); returns the number of planes moved.  Restore never
        raises for capacity — the backing rows physically exist — so a
        transient overshoot of the plane budget is possible; the
        scheduler's pressure ladder spills colder blocks to pay it back.
        """
        self._require_tiering()
        if block not in self._allocated:
            raise ValueError(f"block {block} is not allocated")
        current = self._resident[block]
        target = self.bits if target_planes is None else int(target_planes)
        if target <= current:
            return 0
        store = self._spill_store[block]
        moved = target - current
        start = block * self.block_size
        rows = slice(start, start + self.block_size)
        self._planes[current:target, :, rows, :] = store[:moved]
        if moved == store.shape[0]:
            del self._spill_store[block]
        else:
            self._spill_store[block] = store[moved:].copy()
        self._resident[block] = target
        self._plane_units_used += moved
        self.restore_events += 1
        self.restored_plane_bytes += self._plane_block_bytes(moved)
        self._tier_plane_reads += moved * self.block_size * self.num_heads
        self._touch(block)
        return moved

    def ensure_resident(self, block: int) -> int:
        """Restore ``block`` to full precision if degraded (no-op when flat)."""
        if self.tiering is None or self._resident.get(block, self.bits) == self.bits:
            return 0
        return self.restore_block(block)

    def degraded_blocks(self) -> List[int]:
        """Blocks with spilled planes, least-recently-touched first."""
        if self.tiering is None:
            return []
        out = sorted(
            self._spill_store, key=lambda b: (self._last_touch.get(b, 0), b)
        )
        return out

    def resident_plane_histogram(self) -> Dict[int, int]:
        """Live-block count per residency level (``{bits: n}`` when flat)."""
        hist: Dict[int, int] = {}
        if self.tiering is None:
            if self._allocated:
                hist[self.bits] = len(self._allocated)
            return hist
        for block in self._allocated:
            level = self._resident[block]
            hist[level] = hist.get(level, 0) + 1
        return hist

    def tier_dram_stats(self):
        """Modeled DRAM cost of the tier traffic so far.

        Returns ``{"spill": DramStats, "restore": DramStats}`` from the
        bit-plane-first HBM layout model — one plane of one key per
        access, the same custom layout the accelerator's filter reads
        use (``sim/dram``).  Lazy import keeps the engine package free of
        a hard ``sim`` dependency for non-tiered serving.
        """
        from repro.sim.dram import HBMModel

        model = HBMModel()
        return {
            "spill": model.read_bit_planes(self._tier_plane_writes, self.head_dim),
            "restore": model.read_bit_planes(self._tier_plane_reads, self.head_dim),
        }


class PagedBitPlaneKVCache:
    """Block-table bit-plane cache over a shared :class:`PlaneBlockPool`.

    Presents exactly the :class:`BitPlaneKVCache` interface —
    ``planes/values/k_int/scales/length/prefill/append`` plus the
    ``rows_decomposed``/``appends`` counters — so ``PadeEngine.attend`` and
    both kernel backends consume it unchanged.  The views are *gathers*
    through the block table rather than slices of a private buffer, which
    is the price of sharing: any number of sequences interleave allocation
    from one pool, and :meth:`release` returns a sequence's blocks for
    immediate reuse (completion or preemption).

    Raises :class:`PoolExhausted` from ``prefill``/``append`` *before*
    mutating any state, so a failed allocation is always safe to retry
    after the scheduler frees blocks.  (``prefill`` with sharing enabled
    may transiently take prefix references, but it releases them before
    re-raising — pool state is net unchanged on failure.)

    With ``prefix_sharing=True``, full prompt blocks whose chained
    content key is already registered in the pool are *attached* (shared,
    ref-counted) instead of allocated and re-decomposed; blocks this
    cache writes itself are registered for later requests.  Sharing is
    invisible to every consumer: a hit block is byte-identical to what
    this cache would have written (the key covers config, frozen scales,
    ``k_int`` and values), so gathers — and therefore retained sets —
    are unchanged.
    """

    def __init__(self, pool: PlaneBlockPool, prefix_sharing: bool = False) -> None:
        self.pool = pool
        self.prefix_sharing = bool(prefix_sharing)
        self.num_heads = pool.num_heads
        self.head_dim = pool.head_dim
        self.v_dim = pool.v_dim
        self.bits = pool.bits
        self._blocks: List[int] = []
        self._length = 0
        self._scales: Optional[np.ndarray] = None
        self.rows_decomposed = 0
        self.appends = 0
        self.prefix_hit_blocks = 0  # full prompt blocks attached from the index
        self.prefix_miss_blocks = 0  # shareable full prompt blocks written fresh
        self._prefill_target = 0  # prompt length once begin_prefill ran
        self._block_keys: List[bytes] = []  # chain keys of full prompt blocks
        self._next_register = 0  # first full prompt block not yet registered
        self._pending_k_int: Optional[np.ndarray] = None  # (H, S, D) during prefill
        self._pending_k: Optional[np.ndarray] = None  # (H, S, D) raw, during prefill
        self._pending_v: Optional[np.ndarray] = None  # (H, S, Dv) during prefill
        self.policy_state = None  # per-request AttentionPolicy state

    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of cached tokens."""
        return self._length

    @property
    def block_table(self) -> Tuple[int, ...]:
        """Pool block indices backing this sequence, in token order."""
        return tuple(self._blocks)

    @property
    def tokens_reserved(self) -> int:
        """Token rows this cache holds in the pool (block granularity)."""
        return len(self._blocks) * self.pool.block_size

    @property
    def scales(self) -> np.ndarray:
        """Frozen per-head K quantization scales (set by :meth:`prefill`)."""
        if self._scales is None:
            raise RuntimeError("cache is empty; call prefill() first")
        return self._scales

    @property
    def prefill_remaining(self) -> int:
        """Prompt tokens still to be written by :meth:`extend_prefill`."""
        if self._pending_k_int is None:
            return 0
        return self._prefill_target - self._length

    def _row_index(self) -> np.ndarray:
        """Physical pool rows of tokens ``0 .. length-1``, in order."""
        if not self._blocks:
            return np.empty(0, dtype=np.int64)
        bs = self.pool.block_size
        table = np.asarray(self._blocks, dtype=np.int64)
        rows = (table[:, None] * bs + np.arange(bs, dtype=np.int64)[None, :]).reshape(-1)
        return rows[: self._length]

    def _rows_for(self, start: int, end: int) -> np.ndarray:
        """Physical pool rows of token positions ``start .. end-1``."""
        bs = self.pool.block_size
        pos = np.arange(start, end, dtype=np.int64)
        table = np.asarray(self._blocks, dtype=np.int64)
        return table[pos // bs] * bs + pos % bs

    @property
    def planes(self) -> BitPlanes:
        """Gathered planes of this sequence, value shape ``(H, length, D)``."""
        if self._scales is None:
            raise RuntimeError("cache is empty; call prefill() first")
        gathered = self.pool._planes[:, :, self._row_index(), :]
        return BitPlanes(planes=gathered, bits=self.bits)

    @property
    def values(self) -> np.ndarray:
        """Gathered V rows, shape ``(H, length, Dv)``."""
        if self._scales is None:
            raise RuntimeError("cache is empty; call prefill() first")
        return self.pool._values[:, self._row_index(), :]

    @property
    def k_int(self) -> np.ndarray:
        """Gathered integer keys, shape ``(H, length, D)``."""
        if self._scales is None:
            raise RuntimeError("cache is empty; call prefill() first")
        return self.pool._k_int[:, self._row_index(), :]

    @property
    def k_float(self) -> np.ndarray:
        """Gathered raw (pre-quantization) keys, shape ``(H, length, D)``."""
        if self._scales is None:
            raise RuntimeError("cache is empty; call prefill() first")
        return self.pool._k[:, self._row_index(), :]

    # ------------------------------------------------------------------
    def _chain_keys(
        self, k_int: np.ndarray, k: np.ndarray, v: np.ndarray, scales: np.ndarray
    ) -> List[bytes]:
        """Chained content keys of every *full* prompt block.

        Delegates to the module-level :func:`chain_block_keys` so any
        out-of-process consumer (the cluster router's affinity index)
        computes byte-identical keys from the same prompt tensors.
        """
        return chain_block_keys(
            k_int,
            k,
            v,
            scales,
            bits=self.bits,
            block_size=self.pool.block_size,
            num_heads=self.num_heads,
            head_dim=self.head_dim,
            v_dim=self.v_dim,
        )

    def begin_prefill(self, k: np.ndarray, v: np.ndarray) -> int:
        """Calibrate scales on the full prompt and attach shared prefix blocks.

        Quantizes the whole prompt up front (so chunked decomposition is
        byte-identical to one-shot :meth:`prefill`), looks the leading
        full blocks up in the pool's prefix index, and attaches every hit
        by reference.  Returns the number of tokens already resident;
        the rest are written by :meth:`extend_prefill`.
        """
        k, v = _check_prefill(self, k, v)
        seq_len = k.shape[1]
        k_int, scales = quantize_heads(k, bits=self.bits)
        hits: List[int] = []
        keys: List[bytes] = []
        if self.prefix_sharing:
            keys = self._chain_keys(k_int, k, v, scales)
            for key in keys:
                block = self.pool.lookup_prefix(key)
                if block is None:
                    break
                hits.append(block)
        self._blocks = [self.pool.share(b) for b in hits]
        self._scales = scales
        self._length = len(hits) * self.pool.block_size
        self._prefill_target = seq_len
        self._block_keys = keys
        self._next_register = len(hits)
        self._pending_k_int = k_int
        self._pending_k = k
        self._pending_v = v
        self.prefix_hit_blocks += len(hits)
        self.prefix_miss_blocks += len(keys) - len(hits)
        return self._length

    def extend_prefill(self, max_tokens: Optional[int] = None) -> int:
        """Decompose and write up to ``max_tokens`` more prompt rows.

        Blocks for the chunk are claimed atomically before any write
        (:meth:`PlaneBlockPool.allocate_many`), so :class:`PoolExhausted`
        leaves both the cache and the pool exactly as they were — the
        scheduler preempts a victim and retries the same chunk.  Returns
        the number of tokens *written* — the compute actually spent, the
        quantity a round token budget should be charged for; full prompt
        blocks completed by the chunk are registered in the prefix index
        (sharing mode only).

        Sharing probes are *late-binding*: at every block-aligned
        position the prefix index is re-checked before writing, so a
        request admitted in the same round as its donor — before the
        donor had written anything — still attaches the donor's blocks
        as they appear, chunk by chunk.  Attached blocks are free: they
        advance the prefill without counting against ``max_tokens``.
        """
        if self._pending_k_int is None:
            raise RuntimeError("no prefill in progress; call begin_prefill() first")
        if self.prefix_sharing:
            bs_probe = self.pool.block_size
            while (
                self._length % bs_probe == 0
                and self._length // bs_probe < len(self._block_keys)
                and len(self._blocks) == self._length // bs_probe
            ):
                idx = self._length // bs_probe
                block = self.pool.lookup_prefix(self._block_keys[idx])
                if block is None:
                    break
                self._blocks.append(self.pool.share(block))
                self._length += bs_probe
                self.prefix_hit_blocks += 1
                self.prefix_miss_blocks -= 1  # begin_prefill counted it a miss
                self._next_register = idx + 1
        remaining = self._prefill_target - self._length
        take = remaining if max_tokens is None else min(int(max_tokens), remaining)
        if take <= 0:
            return 0
        bs = self.pool.block_size
        start = self._length
        end = start + take
        prior_blocks = len(self._blocks)
        needed = -(-end // bs) - prior_blocks
        if needed > 0:
            self._blocks.extend(self.pool.allocate_many(needed))
        # A chunk resuming inside an existing partial tail block writes
        # into it: spilled planes must be restored first so the side
        # store never holds stale bytes for freshly written rows.
        if start // bs < prior_blocks:
            self.pool.ensure_resident(self._blocks[start // bs])
        k_int = self._pending_k_int[:, start:end, :]
        bp = decompose_bitplanes(k_int, bits=self.bits)
        rows = self._rows_for(start, end)
        self.pool._planes[:, :, rows, :] = bp.planes
        self.pool._k_int[:, rows, :] = k_int
        self.pool._k[:, rows, :] = self._pending_k[:, start:end, :]
        self.pool._values[:, rows, :] = self._pending_v[:, start:end, :]
        self._length = end
        self.rows_decomposed += self.num_heads * take
        if self.prefix_sharing:
            for i in range(self._next_register, min(end // bs, len(self._block_keys))):
                self.pool.register_prefix(self._block_keys[i], self._blocks[i])
                self._next_register = i + 1
        return take

    def finish_prefill(self) -> None:
        """Seal the prompt: drop staging buffers, enable ``append``."""
        if self._pending_k_int is None:
            raise RuntimeError("no prefill in progress")
        if self._length < self._prefill_target:
            raise RuntimeError(
                f"prefill incomplete: {self._length}/{self._prefill_target} tokens resident"
            )
        self._pending_k_int = None
        self._pending_k = None
        self._pending_v = None

    def prefill(self, k: np.ndarray, v: np.ndarray) -> None:
        """Quantize, decompose and scatter the prompt into pool blocks.

        One-shot path: prefix hits attach shared blocks, the rest is
        claimed atomically before any write.  On :class:`PoolExhausted`
        any prefix references taken are released before re-raising, so
        the pool is net untouched and the call is safe to retry after the
        scheduler frees blocks.
        """
        hits, misses = self.prefix_hit_blocks, self.prefix_miss_blocks
        self.begin_prefill(k, v)
        try:
            self.extend_prefill()
        except PoolExhausted:
            # Free the partially attached prefix references before
            # re-raising — a failed admission must not squat on the pool —
            # and roll back the hit/miss counters of the aborted attempt.
            self.release()
            self.prefix_hit_blocks, self.prefix_miss_blocks = hits, misses
            raise
        self.finish_prefill()

    def _ensure_tail_private(self) -> None:
        """Copy-on-write guard: make the tail block safe to write into.

        A tail shared with a forked sibling (refcount > 1) — or still
        published in the prefix index — is forked/unregistered before the
        first divergent write, so sharers and index entries never observe
        a mutation.  May raise :class:`PoolExhausted` (pre-mutation).
        """
        tail = self._blocks[-1]
        if self.pool.ref_count(tail) == 1 and not self.pool.is_registered(tail):
            return
        rows_used = self._length - (len(self._blocks) - 1) * self.pool.block_size
        self._blocks[-1] = self.pool.fork_block(tail, rows_used)

    def append(self, k_step: np.ndarray, v_step: np.ndarray) -> None:
        """Add one token per head, growing the block table on demand.

        A new block (if the tail block is full) is allocated — or a
        shared tail is copy-on-write forked — before any state changes;
        on :class:`PoolExhausted` the cache is exactly as it was, so the
        scheduler can preempt a victim and retry.
        """
        k_step, v_step = _check_step(self, k_step, v_step)
        if self._pending_k_int is not None:
            raise RuntimeError("append() during an unfinished chunked prefill")
        bs = self.pool.block_size
        if self._length == len(self._blocks) * bs:
            self._blocks.append(self.pool.allocate())
        else:
            self._ensure_tail_private()
            # The write below lands in an existing block: degraded planes
            # must come home first (see PlaneBlockPool.spill_block).
            self.pool.ensure_resident(self._blocks[-1])
        k_int, _ = quantize_heads(k_step, bits=self.bits, scales=self._scales)
        bp = decompose_bitplanes(k_int, bits=self.bits)  # (bits, H, D)
        pos = self._length
        row = self._blocks[pos // bs] * bs + pos % bs
        self.pool._planes[:, :, row, :] = bp.planes
        self.pool._k_int[:, row, :] = k_int
        self.pool._k[:, row, :] = k_step
        self.pool._values[:, row, :] = v_step
        self._length = pos + 1
        self.rows_decomposed += self.num_heads
        self.appends += 1

    def fork(self) -> "PagedBitPlaneKVCache":
        """Clone this cache onto the same ref-counted blocks (zero copy).

        The clone shares every block — including a partial tail — and the
        frozen scales; the first divergent :meth:`append` on either side
        copy-on-write forks the tail, so both sequences stay byte-exact.
        Forking mid-prefill is rejected (the staging buffers are not
        shareable).
        """
        if self._scales is None:
            raise RuntimeError("cannot fork an empty cache")
        if self._pending_k_int is not None:
            raise RuntimeError("cannot fork during an unfinished chunked prefill")
        clone = PagedBitPlaneKVCache(self.pool, prefix_sharing=self.prefix_sharing)
        clone._blocks = [self.pool.share(b) for b in self._blocks]
        clone._length = self._length
        clone._scales = self._scales.copy()
        clone._prefill_target = self._prefill_target
        clone._block_keys = list(self._block_keys)
        clone._next_register = len(clone._block_keys)  # clone registers nothing
        return clone

    def release(self) -> None:
        """Drop this cache's block references and reset to the empty state.

        Shared blocks merely lose one reference; privately held blocks
        return to the pool.  After release the cache may be prefilled
        again — the path a preempted request takes on re-admission.
        """
        self.pool.release(self._blocks)
        self._blocks = []
        self._length = 0
        self._scales = None
        self._prefill_target = 0
        self._block_keys = []
        self._next_register = 0
        self._pending_k_int = None
        self._pending_k = None
        self._pending_v = None
        self.policy_state = None
