"""Persistent multi-head bit-plane KV cache for the serving engine.

The per-call operator (:func:`repro.core.pade_attention.pade_attention`)
re-quantizes K and re-decomposes its bit planes on every invocation — fine
for one-shot figure generation, ruinous for decode serving where the same
cache is filtered thousands of times.  This module keeps the decomposed
planes *resident*: keys are quantized and decomposed exactly once when they
enter the cache (prefill bulk, decode appends), and every subsequent filter
round reads the stored planes directly.

Two serving-specific choices:

* **Frozen scales.**  Per-head quantization scales are calibrated on the
  prefill keys and frozen; decode appends are quantized with the same
  scale (clipping outliers).  This matches static-scale deployment and is
  what makes incremental decomposition sound — a rescale would invalidate
  every stored plane.
* **Head-major layout.**  Planes are stored as one ``(bits, H, S, D)``
  array so the head-batched kernel
  (:func:`repro.core.bsf_fast.bsf_filter_fast_heads`) can consume a round
  for all heads with a single einsum, no per-call stacking.

Capacity grows by doubling, so a decode loop's per-step append cost is
amortized O(1) rows.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.quant.bitplane import BitPlanes, decompose_bitplanes
from repro.quant.integer import quantize_symmetric

__all__ = ["BitPlaneKVCache"]


class BitPlaneKVCache:
    """Appendable per-head Key bit planes + float Values for one sequence.

    Attributes
    ----------
    num_heads / head_dim / v_dim:
        Shapes of the cached tensors.
    bits:
        Operand bit width of the stored planes.
    rows_decomposed:
        Total (head, token) rows ever decomposed — the work a per-call
        pipeline would redo every step, counted once here.
    appends:
        Number of incremental ``append`` calls since prefill.
    """

    def __init__(self, num_heads: int, head_dim: int, v_dim: int, bits: int = 8) -> None:
        if num_heads < 1 or head_dim < 1 or v_dim < 1:
            raise ValueError("num_heads, head_dim and v_dim must be positive")
        self.num_heads = num_heads
        self.head_dim = head_dim
        self.v_dim = v_dim
        self.bits = bits
        self._length = 0
        self._capacity = 0
        self._planes: Optional[np.ndarray] = None  # (bits, H, cap, D) uint8
        self._k_int: Optional[np.ndarray] = None  # (H, cap, D) int64
        self._values: Optional[np.ndarray] = None  # (H, cap, Dv) float64
        self._scales: Optional[np.ndarray] = None  # (H,) frozen at prefill
        self.rows_decomposed = 0
        self.appends = 0

    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of cached tokens."""
        return self._length

    @property
    def scales(self) -> np.ndarray:
        """Frozen per-head K quantization scales (set by :meth:`prefill`)."""
        if self._scales is None:
            raise RuntimeError("cache is empty; call prefill() first")
        return self._scales

    @property
    def planes(self) -> BitPlanes:
        """View of the cached planes, value shape ``(H, length, D)``."""
        if self._planes is None:
            raise RuntimeError("cache is empty; call prefill() first")
        return BitPlanes(planes=self._planes[:, :, : self._length, :], bits=self.bits)

    @property
    def values(self) -> np.ndarray:
        """View of the cached V rows, shape ``(H, length, Dv)``."""
        if self._values is None:
            raise RuntimeError("cache is empty; call prefill() first")
        return self._values[:, : self._length, :]

    @property
    def k_int(self) -> np.ndarray:
        """View of the cached integer keys, shape ``(H, length, D)``."""
        if self._k_int is None:
            raise RuntimeError("cache is empty; call prefill() first")
        return self._k_int[:, : self._length, :]

    # ------------------------------------------------------------------
    def prefill(self, k: np.ndarray, v: np.ndarray) -> None:
        """Quantize, decompose and store the prompt keys/values.

        ``k`` has shape ``(H, S, D)`` and ``v`` shape ``(H, S, Dv)``.  May
        only be called once per cache; per-head scales are calibrated here
        and frozen for all later appends.
        """
        if self._length:
            raise RuntimeError("prefill() may only be called on an empty cache")
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        if k.shape[:1] + k.shape[2:] != (self.num_heads, self.head_dim):
            raise ValueError(f"expected K shape ({self.num_heads}, S, {self.head_dim}), got {k.shape}")
        if v.shape != (self.num_heads, k.shape[1], self.v_dim):
            raise ValueError(f"expected V shape ({self.num_heads}, {k.shape[1]}, {self.v_dim}), got {v.shape}")
        seq_len = k.shape[1]
        quantized = [quantize_symmetric(k[h], bits=self.bits) for h in range(self.num_heads)]
        self._scales = np.array([float(qh.scale) for qh in quantized])
        k_int = np.stack([qh.data for qh in quantized])  # (H, S, D)
        bp = decompose_bitplanes(k_int, bits=self.bits)

        self._reserve(max(seq_len, 1))
        self._planes[:, :, :seq_len, :] = bp.planes
        self._k_int[:, :seq_len, :] = k_int
        self._values[:, :seq_len, :] = v
        self._length = seq_len
        self.rows_decomposed += self.num_heads * seq_len

    def append(self, k_step: np.ndarray, v_step: np.ndarray) -> None:
        """Add one token per head, decomposing only the new rows.

        ``k_step`` has shape ``(H, D)`` and ``v_step`` shape ``(H, Dv)``.
        Uses the frozen prefill scales, so the stored planes of earlier
        tokens stay valid untouched.
        """
        if self._scales is None:
            raise RuntimeError("append() requires a prefilled cache")
        k_step = np.asarray(k_step, dtype=np.float64)
        v_step = np.asarray(v_step, dtype=np.float64)
        if k_step.shape != (self.num_heads, self.head_dim):
            raise ValueError(f"expected K step shape ({self.num_heads}, {self.head_dim}), got {k_step.shape}")
        if v_step.shape != (self.num_heads, self.v_dim):
            raise ValueError(f"expected V step shape ({self.num_heads}, {self.v_dim}), got {v_step.shape}")
        self._reserve(self._length + 1)
        k_int = np.stack(
            [
                quantize_symmetric(k_step[h], bits=self.bits, scale=self._scales[h]).data
                for h in range(self.num_heads)
            ]
        )  # (H, D)
        bp = decompose_bitplanes(k_int, bits=self.bits)  # (bits, H, D)
        pos = self._length
        self._planes[:, :, pos, :] = bp.planes
        self._k_int[:, pos, :] = k_int
        self._values[:, pos, :] = v_step
        self._length = pos + 1
        self.rows_decomposed += self.num_heads
        self.appends += 1

    # ------------------------------------------------------------------
    def _reserve(self, needed: int) -> None:
        if needed <= self._capacity:
            return
        new_cap = max(needed, max(1, self._capacity) * 2)
        planes = np.zeros((self.bits, self.num_heads, new_cap, self.head_dim), dtype=np.uint8)
        k_int = np.zeros((self.num_heads, new_cap, self.head_dim), dtype=np.int64)
        values = np.zeros((self.num_heads, new_cap, self.v_dim), dtype=np.float64)
        if self._length:
            planes[:, :, : self._length, :] = self._planes[:, :, : self._length, :]
            k_int[:, : self._length, :] = self._k_int[:, : self._length, :]
            values[:, : self._length, :] = self._values[:, : self._length, :]
        self._planes = planes
        self._k_int = k_int
        self._values = values
        self._capacity = new_cap
