"""Persistent multi-head bit-plane KV caches for the serving engine.

The per-call operator (:func:`repro.core.pade_attention.pade_attention`)
re-quantizes K and re-decomposes its bit planes on every invocation — fine
for one-shot figure generation, ruinous for decode serving where the same
cache is filtered thousands of times.  This module keeps the decomposed
planes *resident*: keys are quantized and decomposed exactly once when they
enter the cache (prefill bulk, decode appends), and every subsequent filter
round reads the stored planes directly.

Two storage strategies share one interface
(``planes/values/k_int/scales/length/prefill/append``):

* :class:`BitPlaneKVCache` — one dense, privately owned buffer per
  sequence, capacity doubling on growth.  Simple, but every request
  reserves up to 2x its live footprint and nothing bounds the *sum* of
  footprints across concurrent requests.
* :class:`PagedBitPlaneKVCache` — rows live in fixed-size token blocks
  allocated from a shared :class:`PlaneBlockPool` under a global token
  budget (the PagedAttention/vLLM memory shape).  Views are gathered
  through the cache's block table, so consumers — ``PadeEngine.attend``
  and both kernel backends — are untouched; allocation failure raises
  :class:`PoolExhausted`, the signal the continuous scheduler turns into
  preemption.

Two serving-specific choices apply to both:

* **Frozen scales.**  Per-head quantization scales are calibrated on the
  prefill keys and frozen; decode appends are quantized with the same
  scale (clipping outliers).  This matches static-scale deployment and is
  what makes incremental decomposition sound — a rescale would invalidate
  every stored plane.
* **Head-major layout.**  Planes are stored as one ``(bits, H, S, D)``
  array so the head-batched kernel
  (:func:`repro.core.bsf_fast.bsf_filter_fast_heads`) can consume a round
  for all heads with a single einsum, no per-call stacking.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.quant.bitplane import BitPlanes, decompose_bitplanes
from repro.quant.integer import int_range

__all__ = [
    "quantize_heads",
    "BitPlaneKVCache",
    "PlaneBlockPool",
    "PagedBitPlaneKVCache",
    "PoolExhausted",
]


def quantize_heads(
    k: np.ndarray, bits: int, scales: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric per-head quantization, vectorized over the head axis.

    ``k`` has shape ``(H, ...)``; the scale is computed (or applied) per
    head over all trailing axes.  Byte-identical to calling
    :func:`repro.quant.integer.quantize_symmetric` once per head — same
    max-abs scale resolution, same round-to-nearest-even, same clip —
    without the ``H × S`` Python-loop dispatch (regression-pinned by
    ``tests/test_paged_cache.py``).

    Returns ``(k_int, scales)`` with ``k_int`` int64 of ``k``'s shape and
    ``scales`` float64 of shape ``(H,)``.
    """
    k = np.asarray(k, dtype=np.float64)
    qmin, qmax = int_range(bits)
    if scales is None:
        max_abs = np.max(np.abs(k).reshape(k.shape[0], -1), axis=1)
        scales = np.where(max_abs > 0, max_abs / qmax, 1.0)
    else:
        scales = np.asarray(scales, dtype=np.float64)
    expand = (slice(None),) + (None,) * (k.ndim - 1)
    q = np.rint(k / scales[expand])
    k_int = np.clip(q, qmin, qmax).astype(np.int64)
    return k_int, scales


def _check_prefill(cache, k: np.ndarray, v: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Shared prefill validation for both cache implementations."""
    if cache.length:
        raise RuntimeError("prefill() may only be called on an empty cache")
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if k.shape[:1] + k.shape[2:] != (cache.num_heads, cache.head_dim):
        raise ValueError(f"expected K shape ({cache.num_heads}, S, {cache.head_dim}), got {k.shape}")
    if v.shape != (cache.num_heads, k.shape[1], cache.v_dim):
        raise ValueError(f"expected V shape ({cache.num_heads}, {k.shape[1]}, {cache.v_dim}), got {v.shape}")
    return k, v


def _check_step(cache, k_step: np.ndarray, v_step: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Shared append validation for both cache implementations."""
    if cache._scales is None:
        raise RuntimeError("append() requires a prefilled cache")
    k_step = np.asarray(k_step, dtype=np.float64)
    v_step = np.asarray(v_step, dtype=np.float64)
    if k_step.shape != (cache.num_heads, cache.head_dim):
        raise ValueError(f"expected K step shape ({cache.num_heads}, {cache.head_dim}), got {k_step.shape}")
    if v_step.shape != (cache.num_heads, cache.v_dim):
        raise ValueError(f"expected V step shape ({cache.num_heads}, {cache.v_dim}), got {v_step.shape}")
    return k_step, v_step


class BitPlaneKVCache:
    """Appendable per-head Key bit planes + float Values for one sequence.

    Attributes
    ----------
    num_heads / head_dim / v_dim:
        Shapes of the cached tensors.
    bits:
        Operand bit width of the stored planes.
    rows_decomposed:
        Total (head, token) rows ever decomposed — the work a per-call
        pipeline would redo every step, counted once here.
    appends:
        Number of incremental ``append`` calls since prefill.
    """

    def __init__(self, num_heads: int, head_dim: int, v_dim: int, bits: int = 8) -> None:
        if num_heads < 1 or head_dim < 1 or v_dim < 1:
            raise ValueError("num_heads, head_dim and v_dim must be positive")
        self.num_heads = num_heads
        self.head_dim = head_dim
        self.v_dim = v_dim
        self.bits = bits
        self._length = 0
        self._capacity = 0
        self._planes: Optional[np.ndarray] = None  # (bits, H, cap, D) uint8
        self._k_int: Optional[np.ndarray] = None  # (H, cap, D) int64
        self._values: Optional[np.ndarray] = None  # (H, cap, Dv) float64
        self._scales: Optional[np.ndarray] = None  # (H,) frozen at prefill
        self.rows_decomposed = 0
        self.appends = 0

    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of cached tokens."""
        return self._length

    @property
    def scales(self) -> np.ndarray:
        """Frozen per-head K quantization scales (set by :meth:`prefill`)."""
        if self._scales is None:
            raise RuntimeError("cache is empty; call prefill() first")
        return self._scales

    @property
    def planes(self) -> BitPlanes:
        """View of the cached planes, value shape ``(H, length, D)``."""
        if self._planes is None:
            raise RuntimeError("cache is empty; call prefill() first")
        return BitPlanes(planes=self._planes[:, :, : self._length, :], bits=self.bits)

    @property
    def values(self) -> np.ndarray:
        """View of the cached V rows, shape ``(H, length, Dv)``."""
        if self._values is None:
            raise RuntimeError("cache is empty; call prefill() first")
        return self._values[:, : self._length, :]

    @property
    def k_int(self) -> np.ndarray:
        """View of the cached integer keys, shape ``(H, length, D)``."""
        if self._k_int is None:
            raise RuntimeError("cache is empty; call prefill() first")
        return self._k_int[:, : self._length, :]

    # ------------------------------------------------------------------
    def prefill(self, k: np.ndarray, v: np.ndarray) -> None:
        """Quantize, decompose and store the prompt keys/values.

        ``k`` has shape ``(H, S, D)`` and ``v`` shape ``(H, S, Dv)``.  May
        only be called once per cache; per-head scales are calibrated here
        and frozen for all later appends.
        """
        k, v = _check_prefill(self, k, v)
        seq_len = k.shape[1]
        k_int, scales = quantize_heads(k, bits=self.bits)  # (H, S, D)
        self._scales = scales
        bp = decompose_bitplanes(k_int, bits=self.bits)

        self._reserve(max(seq_len, 1))
        self._planes[:, :, :seq_len, :] = bp.planes
        self._k_int[:, :seq_len, :] = k_int
        self._values[:, :seq_len, :] = v
        self._length = seq_len
        self.rows_decomposed += self.num_heads * seq_len

    def append(self, k_step: np.ndarray, v_step: np.ndarray) -> None:
        """Add one token per head, decomposing only the new rows.

        ``k_step`` has shape ``(H, D)`` and ``v_step`` shape ``(H, Dv)``.
        Uses the frozen prefill scales, so the stored planes of earlier
        tokens stay valid untouched.
        """
        k_step, v_step = _check_step(self, k_step, v_step)
        self._reserve(self._length + 1)
        k_int, _ = quantize_heads(k_step, bits=self.bits, scales=self._scales)  # (H, D)
        bp = decompose_bitplanes(k_int, bits=self.bits)  # (bits, H, D)
        pos = self._length
        self._planes[:, :, pos, :] = bp.planes
        self._k_int[:, pos, :] = k_int
        self._values[:, pos, :] = v_step
        self._length = pos + 1
        self.rows_decomposed += self.num_heads
        self.appends += 1

    # ------------------------------------------------------------------
    def _reserve(self, needed: int) -> None:
        if needed <= self._capacity:
            return
        new_cap = max(needed, max(1, self._capacity) * 2)
        planes = np.zeros((self.bits, self.num_heads, new_cap, self.head_dim), dtype=np.uint8)
        k_int = np.zeros((self.num_heads, new_cap, self.head_dim), dtype=np.int64)
        values = np.zeros((self.num_heads, new_cap, self.v_dim), dtype=np.float64)
        if self._length:
            planes[:, :, : self._length, :] = self._planes[:, :, : self._length, :]
            k_int[:, : self._length, :] = self._k_int[:, : self._length, :]
            values[:, : self._length, :] = self._values[:, : self._length, :]
        self._planes = planes
        self._k_int = k_int
        self._values = values
        self._capacity = new_cap


class PoolExhausted(RuntimeError):
    """A block allocation would exceed the pool's global token budget.

    The continuous scheduler catches this to trigger preemption; anything
    else letting it propagate means the budget cannot even hold the
    requesting sequence alone.
    """


class PlaneBlockPool:
    """Fixed-size token blocks of plane/k_int/value rows under one budget.

    The pool owns three backing stores shaped for ``num_blocks × block_size``
    token rows (planes ``(bits, H, rows, D)`` uint8, integer keys
    ``(H, rows, D)`` int64, values ``(H, rows, Dv)`` float64) and hands out
    block indices.  Block ``b`` owns physical rows
    ``[b * block_size, (b + 1) * block_size)``; a
    :class:`PagedBitPlaneKVCache` maps its logical token positions onto
    those rows through its block table.

    ``token_budget`` is rounded *down* to a whole number of blocks — the
    pool never over-commits the budget it was given.
    """

    def __init__(
        self,
        num_heads: int,
        head_dim: int,
        v_dim: int,
        bits: int = 8,
        block_size: int = 16,
        token_budget: int = 4096,
    ) -> None:
        if num_heads < 1 or head_dim < 1 or v_dim < 1:
            raise ValueError("num_heads, head_dim and v_dim must be positive")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        if token_budget < block_size:
            raise ValueError(f"token_budget {token_budget} below one block ({block_size} tokens)")
        self.num_heads = num_heads
        self.head_dim = head_dim
        self.v_dim = v_dim
        self.bits = bits
        self.block_size = block_size
        self.num_blocks = token_budget // block_size
        rows = self.num_blocks * block_size
        self._planes = np.zeros((bits, num_heads, rows, head_dim), dtype=np.uint8)
        self._k_int = np.zeros((num_heads, rows, head_dim), dtype=np.int64)
        self._values = np.zeros((num_heads, rows, v_dim), dtype=np.float64)
        # LIFO free list seeded so the first allocations come out 0, 1, 2...
        self._free: List[int] = list(range(self.num_blocks - 1, -1, -1))
        self._allocated: set = set()

    # ------------------------------------------------------------------
    @property
    def token_budget(self) -> int:
        """Total token rows the pool can hold (budget rounded to blocks)."""
        return self.num_blocks * self.block_size

    @property
    def free_block_count(self) -> int:
        return len(self._free)

    @property
    def used_block_count(self) -> int:
        return len(self._allocated)

    @property
    def free_tokens(self) -> int:
        return self.free_block_count * self.block_size

    @property
    def used_tokens(self) -> int:
        """Token rows reserved by live block tables (block granularity)."""
        return self.used_block_count * self.block_size

    @property
    def occupancy(self) -> float:
        """Fraction of the token budget currently reserved."""
        return self.used_block_count / self.num_blocks

    # ------------------------------------------------------------------
    def allocate(self) -> int:
        """Take one free block; raises :class:`PoolExhausted` when full."""
        if not self._free:
            raise PoolExhausted(
                f"pool exhausted: all {self.num_blocks} blocks "
                f"({self.token_budget} tokens) in use"
            )
        block = self._free.pop()
        self._allocated.add(block)
        return block

    def release(self, blocks) -> None:
        """Return blocks to the free list (double frees are rejected)."""
        for block in blocks:
            if block not in self._allocated:
                raise ValueError(f"block {block} is not allocated")
            self._allocated.remove(block)
            self._free.append(block)

    def rows_of(self, block: int) -> np.ndarray:
        """Physical row indices owned by ``block``."""
        start = block * self.block_size
        return np.arange(start, start + self.block_size)


class PagedBitPlaneKVCache:
    """Block-table bit-plane cache over a shared :class:`PlaneBlockPool`.

    Presents exactly the :class:`BitPlaneKVCache` interface —
    ``planes/values/k_int/scales/length/prefill/append`` plus the
    ``rows_decomposed``/``appends`` counters — so ``PadeEngine.attend`` and
    both kernel backends consume it unchanged.  The views are *gathers*
    through the block table rather than slices of a private buffer, which
    is the price of sharing: any number of sequences interleave allocation
    from one pool, and :meth:`release` returns a sequence's blocks for
    immediate reuse (completion or preemption).

    Raises :class:`PoolExhausted` from ``prefill``/``append`` *before*
    mutating any state, so a failed allocation is always safe to retry
    after the scheduler frees blocks.
    """

    def __init__(self, pool: PlaneBlockPool) -> None:
        self.pool = pool
        self.num_heads = pool.num_heads
        self.head_dim = pool.head_dim
        self.v_dim = pool.v_dim
        self.bits = pool.bits
        self._blocks: List[int] = []
        self._length = 0
        self._scales: Optional[np.ndarray] = None
        self.rows_decomposed = 0
        self.appends = 0

    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of cached tokens."""
        return self._length

    @property
    def block_table(self) -> Tuple[int, ...]:
        """Pool block indices backing this sequence, in token order."""
        return tuple(self._blocks)

    @property
    def tokens_reserved(self) -> int:
        """Token rows this cache holds in the pool (block granularity)."""
        return len(self._blocks) * self.pool.block_size

    @property
    def scales(self) -> np.ndarray:
        """Frozen per-head K quantization scales (set by :meth:`prefill`)."""
        if self._scales is None:
            raise RuntimeError("cache is empty; call prefill() first")
        return self._scales

    def _row_index(self) -> np.ndarray:
        """Physical pool rows of tokens ``0 .. length-1``, in order."""
        if not self._blocks:
            return np.empty(0, dtype=np.int64)
        bs = self.pool.block_size
        table = np.asarray(self._blocks, dtype=np.int64)
        rows = (table[:, None] * bs + np.arange(bs, dtype=np.int64)[None, :]).reshape(-1)
        return rows[: self._length]

    @property
    def planes(self) -> BitPlanes:
        """Gathered planes of this sequence, value shape ``(H, length, D)``."""
        if self._scales is None:
            raise RuntimeError("cache is empty; call prefill() first")
        gathered = self.pool._planes[:, :, self._row_index(), :]
        return BitPlanes(planes=gathered, bits=self.bits)

    @property
    def values(self) -> np.ndarray:
        """Gathered V rows, shape ``(H, length, Dv)``."""
        if self._scales is None:
            raise RuntimeError("cache is empty; call prefill() first")
        return self.pool._values[:, self._row_index(), :]

    @property
    def k_int(self) -> np.ndarray:
        """Gathered integer keys, shape ``(H, length, D)``."""
        if self._scales is None:
            raise RuntimeError("cache is empty; call prefill() first")
        return self.pool._k_int[:, self._row_index(), :]

    # ------------------------------------------------------------------
    def prefill(self, k: np.ndarray, v: np.ndarray) -> None:
        """Quantize, decompose and scatter the prompt into pool blocks.

        Allocation happens before any write: either every block the prompt
        needs is claimed, or :class:`PoolExhausted` is raised with the pool
        untouched.
        """
        k, v = _check_prefill(self, k, v)
        seq_len = k.shape[1]
        bs = self.pool.block_size
        needed = max(1, -(-seq_len // bs))
        if needed > self.pool.free_block_count:
            raise PoolExhausted(
                f"prefill of {seq_len} tokens needs {needed} blocks; "
                f"pool has {self.pool.free_block_count} free"
            )
        k_int, scales = quantize_heads(k, bits=self.bits)
        bp = decompose_bitplanes(k_int, bits=self.bits)
        self._blocks = [self.pool.allocate() for _ in range(needed)]
        self._scales = scales
        self._length = seq_len
        rows = self._row_index()
        self.pool._planes[:, :, rows, :] = bp.planes
        self.pool._k_int[:, rows, :] = k_int
        self.pool._values[:, rows, :] = v
        self.rows_decomposed += self.num_heads * seq_len

    def append(self, k_step: np.ndarray, v_step: np.ndarray) -> None:
        """Add one token per head, growing the block table on demand.

        A new block (if the tail block is full) is allocated before any
        state changes; on :class:`PoolExhausted` the cache is exactly as it
        was, so the scheduler can preempt a victim and retry.
        """
        k_step, v_step = _check_step(self, k_step, v_step)
        bs = self.pool.block_size
        if self._length == len(self._blocks) * bs:
            self._blocks.append(self.pool.allocate())
        k_int, _ = quantize_heads(k_step, bits=self.bits, scales=self._scales)
        bp = decompose_bitplanes(k_int, bits=self.bits)  # (bits, H, D)
        pos = self._length
        row = self._blocks[pos // bs] * bs + pos % bs
        self.pool._planes[:, :, row, :] = bp.planes
        self.pool._k_int[:, row, :] = k_int
        self.pool._values[:, row, :] = v_step
        self._length = pos + 1
        self.rows_decomposed += self.num_heads
        self.appends += 1

    def release(self) -> None:
        """Return every block to the pool and reset to the empty state.

        After release the cache may be prefilled again — the path a
        preempted request takes on re-admission.
        """
        self.pool.release(self._blocks)
        self._blocks = []
        self._length = 0
        self._scales = None
