"""`PadeEngine` — batched multi-head serving layer over the fused filter.

Where :func:`repro.core.pade_attention.pade_attention` is a one-shot,
single-head operator (quantize → decompose → filter → attend, everything
rebuilt per call), the engine is the layer a serving stack talks to:

* **multi-head, multi-layer**: attention runs with per-head quantization
  scales and guards; :meth:`PadeEngine.new_model_caches` shapes one cache
  per layer from a model preset
  (:class:`repro.model.configs.ModelConfig`), so one engine serves a
  whole stack;
* **persistent bit-plane cache**: Key planes are decomposed once at
  prefill (:class:`repro.engine.cache.BitPlaneKVCache`) and extended
  incrementally each decode step, never rebuilt;
* **head-batched fast path**: each filter round covers all heads with one
  einsum via ``KernelBackend.filter_heads`` (the ``"fast"`` backend
  dispatches :func:`repro.core.bsf_fast.bsf_filter_fast_heads`);
* **request scheduling**: :meth:`PadeEngine.submit` /
  :meth:`PadeEngine.run` batch prefill admission and decode rounds across
  concurrent requests in lockstep; :meth:`PadeEngine.serve` runs the
  continuous-batching path — arrival-aware admission every round over a
  paged block pool with a global token budget and preemption under
  pressure (see :mod:`repro.engine.scheduler`);
* **pluggable attention policy**: ``PadeEngine(policy=...)`` serves any
  registered :class:`~repro.attention.policy.AttentionPolicy` — the PADE
  bit-plane filter (default) or the converted software baselines (Quest,
  H2O, StreamingLLM, MInference, double sparsity, top-k oracle) — through
  the same caches and schedulers, so serving metrics are apples-to-apples
  across methods.

The engine's retained sets are backend-invariant: running the same
workload under ``"reference"`` and ``"fast"`` produces byte-identical
retention (asserted by ``benchmarks/bench_engine.py`` and the engine
tests), so backend choice is purely a throughput knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.attention.policy import AttentionPolicy, resolve_policy
from repro.core.backend import KernelBackend, get_backend
from repro.core.bui_gf import guard_in_int_units
from repro.core.config import PadeConfig
from repro.core.pade_attention import causal_allowed, protection_mask
from repro.engine.cache import BitPlaneKVCache
from repro.quant.integer import int_range, quantize_symmetric

__all__ = ["EngineStats", "EngineAttentionResult", "PadeEngine"]


@dataclass
class EngineStats:
    """Aggregate counters over everything an engine instance has served."""

    prefill_tokens: int = 0
    decode_steps: int = 0
    filter_calls: int = 0
    bit_plane_loads: int = 0
    effective_bit_ops: int = 0
    naive_bit_ops: int = 0
    retained_keys: int = 0
    candidate_keys: int = 0
    rows_decomposed: int = 0  # quantize+decompose work actually performed
    rows_reused: int = 0  # cache hits a per-call pipeline would re-decompose
    policy_calls: int = 0  # attention calls routed through the policy
    policy_prediction_cost: float = 0.0  # summed per-call predictor overhead
    policy_execution_cost: float = 0.0  # summed per-call retained fractions
    batched_rounds: int = 0  # fused cross-request filter dispatches
    fused_rows: int = 0  # valid (head, query, key) cells in fused lattices
    fused_padded_rows: int = 0  # padded lattice cells those dispatches spanned

    @property
    def sparsity(self) -> float:
        if self.candidate_keys == 0:
            return 0.0
        return 1.0 - self.retained_keys / self.candidate_keys

    @property
    def decomposition_reuse(self) -> float:
        """Fraction of consumed K rows served from the plane cache."""
        total = self.rows_decomposed + self.rows_reused
        return self.rows_reused / total if total else 0.0

    @property
    def mean_prediction_cost(self) -> float:
        """Mean per-call predictor overhead (fraction of a dense pass)."""
        return self.policy_prediction_cost / self.policy_calls if self.policy_calls else 0.0

    @property
    def mean_execution_cost(self) -> float:
        """Mean per-call retained fraction (sparse execution cost)."""
        return self.policy_execution_cost / self.policy_calls if self.policy_calls else 0.0

    @property
    def mean_sparsity_level(self) -> float:
        """Paper Fig. 15 currency: (prediction + execution) / dense cost."""
        return self.mean_prediction_cost + self.mean_execution_cost

    @property
    def batch_efficiency(self) -> float:
        """Fraction of the fused decode lattice holding real keys.

        1.0 means every padded ``(request, head, query, key)`` cell the
        fused dispatches allocated was a live key — i.e. the active set
        was perfectly rectangular; lower values quantify the padding
        overhead ragged sequence lengths impose on the batched round.
        """
        return self.fused_rows / self.fused_padded_rows if self.fused_padded_rows else 0.0


@dataclass(frozen=True)
class EngineAttentionResult:
    """One engine attention call: all heads of one layer, one query block.

    ``output`` has shape ``(H, P, Dv)``, ``retained`` and ``scores``
    shape ``(H, P, S)``; ``logit_scales`` / ``guards`` are the per-head
    integer-unit parameters the filter actually used (ones/zeros for the
    software baseline policies, whose scores are plain float logits);
    ``candidate_keys`` counts the (head, query, key) pairs the masks made
    eligible.  ``prediction_cost`` / ``execution_cost`` are the paper's
    Fig. 15 cost split for this call — predictor overhead and retained
    fraction, each as a fraction of a dense pass.
    """

    output: np.ndarray
    retained: np.ndarray
    scores: np.ndarray
    logit_scales: np.ndarray
    guards: np.ndarray
    candidate_keys: int
    prediction_cost: float = 0.0
    execution_cost: float = 0.0

    @property
    def sparsity(self) -> float:
        """Fraction of *candidate* pairs pruned (disallowed pairs — e.g.
        causally masked — are never candidates, matching
        :class:`~repro.core.bsf.BSFResult` semantics)."""
        if self.candidate_keys == 0:
            return 0.0
        return 1.0 - float(self.retained.sum()) / self.candidate_keys


class PadeEngine:
    """Batched multi-head PADE attention with a resident bit-plane cache.

    Parameters
    ----------
    config:
        Algorithm parameters (bits, alpha, radius, sink/recency
        protection).  ``config.backend`` participates in backend
        resolution unless ``backend`` is passed explicitly.
    backend:
        Kernel backend name or instance; overrides ``config.backend``.
    max_active:
        Decode-round batch width of the scheduler — how many requests may
        be in flight at once (see :meth:`run`).
    policy:
        Attention policy served by this engine: a registry name
        (``"pade"``, ``"quest"``, ``"h2o"``, ``"streaming-llm"``,
        ``"topk-oracle"``, ``"double-sparsity"``, ``"minference"``), an
        :class:`~repro.attention.policy.AttentionPolicy` instance, or
        ``None`` for the default PADE bit-plane filter.
    """

    def __init__(
        self,
        config: Optional[PadeConfig] = None,
        backend: Optional[Union[str, KernelBackend]] = None,
        max_active: int = 8,
        policy: Union[None, str, AttentionPolicy] = None,
    ) -> None:
        self.config = config or PadeConfig.standard()
        self.kernel: KernelBackend = get_backend(
            backend if backend is not None else self.config.backend
        )
        self.policy: AttentionPolicy = resolve_policy(policy)
        self.stats = EngineStats()
        if max_active < 1:
            raise ValueError("max_active must be >= 1")
        from repro.engine.scheduler import EngineScheduler

        self._scheduler = EngineScheduler(self, max_active=max_active)
        self._last_serve = None

    # ------------------------------------------------------------------
    # Low-level per-layer operations
    # ------------------------------------------------------------------
    def new_cache(self, num_heads: int, head_dim: int, v_dim: int) -> BitPlaneKVCache:
        """Create an empty cache shaped for one layer of this engine."""
        return BitPlaneKVCache(num_heads, head_dim, v_dim, bits=self.config.bits)

    def new_model_caches(self, model, v_dim: Optional[int] = None) -> List[BitPlaneKVCache]:
        """One empty cache per layer of a model preset.

        ``model`` is a :class:`repro.model.configs.ModelConfig` or preset
        name; caches are shaped for the model's KV heads (GQA models cache
        ``num_kv_heads``, not ``num_heads``).  Prefill/decode each layer's
        cache with that layer's K/V to serve the whole stack from one
        engine.
        """
        from repro.model.configs import get_model

        cfg = get_model(model) if isinstance(model, str) else model
        dim = cfg.head_dim if v_dim is None else v_dim
        return [
            self.new_cache(cfg.num_kv_heads, cfg.head_dim, dim)
            for _ in range(cfg.num_layers)
        ]

    def attend(
        self,
        cache: BitPlaneKVCache,
        q: np.ndarray,
        query_offset: Optional[int] = None,
    ) -> EngineAttentionResult:
        """Attend a query block against the cached keys for every head.

        ``q`` has shape ``(H, P, D)``.  ``query_offset`` positions the
        block inside the sequence for causal/recency masks; it defaults to
        ``length - P`` (the trailing block, i.e. the prefill/decode case).
        """
        q_int, logit_scales, guards, allowed, protect = self._attend_params(
            cache, q, query_offset
        )
        res = self.kernel.filter_heads(
            q_int, cache.planes, guards, allowed=allowed, protect=protect
        )
        return self._finish_attend(cache, res, logit_scales, guards, allowed)

    def attend_batch(
        self,
        caches,
        qs,
    ) -> List[EngineAttentionResult]:
        """Attend one query block per request in a single fused filter call.

        The batched analogue of :meth:`attend` for a decode round: per
        request the quantization, guards and causal/protection masks are
        prepared exactly as :meth:`attend` prepares them, the bit planes
        are gathered from each request's cache (paged caches gather via
        their block tables here), then **one**
        ``KernelBackend.filter_heads_batch`` call covers the whole ragged
        active set and the outputs/retained sets/stats are scattered back
        per request.  Result-identical to calling :meth:`attend` per
        request in order — including every per-request ``EngineStats``
        counter — by DESIGN.md §13; the only extra accounting is the
        ``batched_rounds`` / ``fused_rows`` occupancy counters on the
        fused path.  Backends that predate ``filter_heads_batch`` fall
        back to a per-request ``filter_heads`` loop transparently.
        """
        if len(caches) != len(qs):
            raise ValueError("attend_batch needs one query block per cache")
        if not caches:
            return []
        params = self._attend_params_batch(caches, qs)
        q_ints = [p[0] for p in params]
        guards_list = [p[2] for p in params]
        alloweds = [p[3] for p in params]
        protects = [p[4] for p in params]
        key_planes = [cache.planes for cache in caches]

        fused = getattr(self.kernel, "filter_heads_batch", None)
        if fused is not None:
            results = fused(
                q_ints, key_planes, guards_list, alloweds=alloweds, protects=protects
            )
            seq_lens = [cache.length for cache in caches]
            cells_per_key = q_ints[0].shape[0] * q_ints[0].shape[1]
            self.stats.batched_rounds += 1
            self.stats.fused_rows += cells_per_key * sum(seq_lens)
            self.stats.fused_padded_rows += cells_per_key * len(caches) * max(seq_lens)
        else:
            results = [
                self.kernel.filter_heads(
                    q_ints[i], key_planes[i], guards_list[i],
                    allowed=alloweds[i], protect=protects[i],
                )
                for i in range(len(caches))
            ]
        return self._finish_attend_batch(caches, results, params)

    def _attend_params_batch(self, caches, qs):
        """Filter inputs for a whole decode round, one tuple per request.

        Bit-identical to calling :meth:`_attend_params` per request: the
        quantization and guard arithmetic below is the same sequence of
        IEEE-754 double operations, merely broadcast over the (request,
        head) axes — ``max |q|`` folds, the ``max_abs / qmax`` divisions,
        ``rint``/``clip`` and the ``alpha * radius / scale`` guards are
        all elementwise, so batching cannot change a single bit.
        Heterogeneous query shapes (not a decode round) fall back to the
        per-request helper.
        """
        cfg = self.config
        qs_np = [np.asarray(q, dtype=np.float64) for q in qs]
        if len({q.shape for q in qs_np}) != 1:
            return [self._attend_params(cache, q) for cache, q in zip(caches, qs_np)]
        q_all = np.stack(qs_np)  # (R, Hh, P, D)
        _, num_heads, num_queries, head_dim = q_all.shape
        for cache in caches:
            if num_heads != cache.num_heads or head_dim != cache.head_dim:
                raise ValueError(
                    f"expected queries ({cache.num_heads}, P, {cache.head_dim}), "
                    f"got {q_all.shape[1:]}"
                )
        qmin, qmax = int_range(cfg.bits)
        max_abs = np.abs(q_all).max(axis=(2, 3))  # (R, Hh)
        # Same subnormal-underflow floor as quantize_symmetric — the two
        # paths must stay bit-identical.
        q_scales = np.where(
            max_abs > 0, np.maximum(max_abs / qmax, np.finfo(np.float64).tiny), 1.0
        )
        q_int = np.clip(
            np.rint(q_all / q_scales[:, :, None, None]), qmin, qmax
        ).astype(np.int64)
        logit_scales = q_scales * np.stack([cache.scales for cache in caches])
        if cfg.scale_logits:
            logit_scales = logit_scales / np.sqrt(head_dim)
        if np.isinf(cfg.radius):
            guards = np.full_like(logit_scales, np.inf)
        else:
            with np.errstate(divide="ignore", invalid="ignore"):
                guards = np.where(
                    logit_scales <= 0, np.inf, (cfg.alpha * cfg.radius) / logit_scales
                )
        params = []
        for i, cache in enumerate(caches):
            seq_len = cache.length
            offset = seq_len - num_queries
            allowed = causal_allowed(num_queries, seq_len, offset) if cfg.causal else None
            protect = protection_mask(
                num_queries, seq_len, cfg.sink_tokens, cfg.recent_tokens, offset
            )
            params.append((q_int[i], logit_scales[i], guards[i], allowed, protect))
        return params

    def _finish_attend_batch(self, caches, results, params):
        """Fold a round of filter results through softmax/V, batched.

        The request-independent elementwise stages (logit scaling, the
        masked ``-inf`` fill, row max, ``exp``, the guarded divide) run
        on one padded ``(R, Hh, P, S_max)`` lattice; the softmax
        *denominators* and the probability·V einsums stay per-request on
        the real ``S_i`` slices so every pairwise summation tree is the
        one :meth:`_finish_attend` would build — outputs match the
        per-request path byte for byte, not just numerically.
        """
        seq_lens = [cache.length for cache in caches]
        s_max = max(seq_lens)
        num_requests = len(caches)
        num_heads, num_queries = results[0].retained.shape[:2]
        retained_pad = np.zeros((num_requests, num_heads, num_queries, s_max), dtype=bool)
        scores_pad = np.zeros((num_requests, num_heads, num_queries, s_max))
        for i, res in enumerate(results):
            retained_pad[i, :, :, : seq_lens[i]] = res.retained
            scores_pad[i, :, :, : seq_lens[i]] = res.scores
        scale_mat = np.stack([p[1] for p in params])  # (R, Hh)
        logits = scores_pad * scale_mat[:, :, None, None]
        logits = np.where(retained_pad, logits, -np.inf)
        row_max = logits.max(axis=3, keepdims=True)
        row_max = np.where(np.isfinite(row_max), row_max, 0.0)
        probs = np.exp(logits - row_max)
        denom = np.empty((num_requests, num_heads, num_queries, 1))
        for i, s in enumerate(seq_lens):
            denom[i] = probs[i, :, :, :s].sum(axis=2, keepdims=True)
        probs = np.divide(probs, denom, out=np.zeros_like(probs), where=denom > 0)
        retained_counts = retained_pad.sum(axis=(1, 2, 3))

        out = []
        for i, (cache, res) in enumerate(zip(caches, results)):
            _, logit_scales, guards, allowed, _ = params[i]
            output = np.einsum(
                "hps,hsd->hpd", probs[i, :, :, : seq_lens[i]], cache.values
            )
            candidates = (
                int(np.broadcast_to(allowed, res.retained.shape).sum())
                if allowed is not None
                else res.retained.size
            )
            self.stats.filter_calls += 1
            self.stats.bit_plane_loads += res.bit_plane_loads
            self.stats.effective_bit_ops += res.effective_bit_ops
            self.stats.naive_bit_ops += res.naive_bit_ops
            self.stats.retained_keys += int(retained_counts[i])
            self.stats.candidate_keys += candidates
            out.append(
                EngineAttentionResult(
                    output=output,
                    retained=res.retained,
                    scores=res.scores,
                    logit_scales=logit_scales,
                    guards=guards,
                    candidate_keys=candidates,
                    prediction_cost=0.0,
                    execution_cost=(
                        float(retained_counts[i]) / candidates if candidates else 0.0
                    ),
                )
            )
        return out

    def _attend_params(
        self,
        cache: BitPlaneKVCache,
        q: np.ndarray,
        query_offset: Optional[int] = None,
    ):
        """Per-request filter inputs: ``(q_int, logit_scales, guards,
        allowed, protect)`` — shared verbatim by :meth:`attend` and
        :meth:`attend_batch` so the two paths cannot drift."""
        cfg = self.config
        q = np.asarray(q, dtype=np.float64)
        if q.ndim != 3 or q.shape[0] != cache.num_heads or q.shape[2] != cache.head_dim:
            raise ValueError(
                f"expected queries ({cache.num_heads}, P, {cache.head_dim}), got {q.shape}"
            )
        num_heads, num_queries, head_dim = q.shape
        seq_len = cache.length
        offset = seq_len - num_queries if query_offset is None else query_offset

        q_quant = [quantize_symmetric(q[h], bits=cfg.bits) for h in range(num_heads)]
        q_int = np.stack([qh.data for qh in q_quant])
        q_scales = np.array([float(qh.scale) for qh in q_quant])
        logit_scales = q_scales * cache.scales
        if cfg.scale_logits:
            logit_scales = logit_scales / np.sqrt(head_dim)
        guards = np.array(
            [guard_in_int_units(cfg.alpha, cfg.radius, float(s)) for s in logit_scales]
        )

        allowed = causal_allowed(num_queries, seq_len, offset) if cfg.causal else None
        protect = protection_mask(
            num_queries, seq_len, cfg.sink_tokens, cfg.recent_tokens, offset
        )
        return q_int, logit_scales, guards, allowed, protect

    def _finish_attend(
        self,
        cache: BitPlaneKVCache,
        res,
        logit_scales: np.ndarray,
        guards: np.ndarray,
        allowed,
    ) -> EngineAttentionResult:
        """Fold one filter result through softmax/V and the stats counters."""
        # Retained scores are exact integer Q·K products; fold them through
        # a masked softmax and the cached V rows.
        logits = res.scores.astype(np.float64) * logit_scales[:, None, None]
        logits = np.where(res.retained, logits, -np.inf)
        row_max = logits.max(axis=2, keepdims=True)
        row_max = np.where(np.isfinite(row_max), row_max, 0.0)
        probs = np.exp(logits - row_max)
        denom = probs.sum(axis=2, keepdims=True)
        probs = np.divide(probs, denom, out=np.zeros_like(probs), where=denom > 0)
        output = np.einsum("hps,hsd->hpd", probs, cache.values)

        candidates = (
            int(np.broadcast_to(allowed, res.retained.shape).sum())
            if allowed is not None
            else res.retained.size
        )
        self.stats.filter_calls += 1
        self.stats.bit_plane_loads += res.bit_plane_loads
        self.stats.effective_bit_ops += res.effective_bit_ops
        self.stats.naive_bit_ops += res.naive_bit_ops
        self.stats.retained_keys += int(res.retained.sum())
        self.stats.candidate_keys += candidates
        return EngineAttentionResult(
            output=output,
            retained=res.retained,
            scores=res.scores,
            logit_scales=logit_scales,
            guards=guards,
            candidate_keys=candidates,
            # PADE has no separate predictor: the bound evaluation is the
            # execution's first bit planes, so the whole cost is execution.
            prediction_cost=0.0,
            execution_cost=(
                float(res.retained.sum()) / candidates if candidates else 0.0
            ),
        )

    def prefill(
        self,
        cache: BitPlaneKVCache,
        k: np.ndarray,
        v: np.ndarray,
        q: Optional[np.ndarray] = None,
        total_tokens: Optional[int] = None,
    ) -> Optional[EngineAttentionResult]:
        """Populate a cache from prompt K/V and optionally attend ``q``.

        This is the only place the bulk decomposition cost is paid; every
        later :meth:`decode_step` reuses the stored planes.  The attend —
        and all later decode steps on this cache — route through the
        engine's :class:`~repro.attention.policy.AttentionPolicy`, whose
        per-request state is created here (``total_tokens``, the final
        context length when known, anchors budget-style policies exactly
        like the full sequence anchors their one-shot forms).
        """
        before = cache.rows_decomposed
        cache.prefill(k, v)
        self.stats.prefill_tokens += cache.length
        self.stats.rows_decomposed += cache.rows_decomposed - before
        cache.policy_state = self.policy.new_state(cache, total_tokens=total_tokens)
        if q is None:
            return None
        return self.policy.prefill(self, cache, np.asarray(q, dtype=np.float64))

    def prefill_begin(self, cache, k: np.ndarray, v: np.ndarray) -> int:
        """Start a chunked prefill: calibrate scales, attach prefix hits.

        Paged caches only.  Returns the tokens already resident (shared
        prefix blocks attached by reference — zero decompose cost); the
        remainder is fed through :meth:`prefill_extend` and sealed by
        :meth:`prefill_finish`.  The chunk boundaries never change the
        stored bytes: scales come from the full prompt, so the planes are
        identical to a one-shot :meth:`prefill`.
        """
        return cache.begin_prefill(k, v)

    def prefill_extend(self, cache, max_tokens: Optional[int] = None) -> int:
        """Write up to ``max_tokens`` more prompt rows of a chunked prefill."""
        before = cache.rows_decomposed
        written = cache.extend_prefill(max_tokens)
        self.stats.rows_decomposed += cache.rows_decomposed - before
        return written

    def prefill_finish(
        self,
        cache,
        q: Optional[np.ndarray] = None,
        total_tokens: Optional[int] = None,
    ):
        """Seal a chunked prefill and optionally attend the prompt queries."""
        cache.finish_prefill()
        self.stats.prefill_tokens += cache.length
        cache.policy_state = self.policy.new_state(cache, total_tokens=total_tokens)
        if q is None:
            return None
        return self.policy.prefill(self, cache, np.asarray(q, dtype=np.float64))

    def decode_step(
        self,
        cache: BitPlaneKVCache,
        q: np.ndarray,
        k_step: np.ndarray,
        v_step: np.ndarray,
    ) -> EngineAttentionResult:
        """One autoregressive step: extend the cache, attend the new query.

        ``q`` / ``k_step`` have shape ``(H, D)`` and ``v_step`` ``(H, Dv)``
        — one token per head.  Only the appended token is decomposed; the
        other ``H × (S-1)`` rows come straight from the plane cache (the
        reuse a per-call pipeline forfeits).  Selection and attend route
        through the engine's policy (the default :class:`PadePolicy` is
        byte-identical to calling :meth:`attend` directly).
        """
        self.decode_append(cache, k_step, v_step)
        return self.decode_attend(cache, q)

    def decode_append(
        self, cache: BitPlaneKVCache, k_step: np.ndarray, v_step: np.ndarray
    ) -> None:
        """Extend the cache by one token and bill the decompose stats.

        The append half of :meth:`decode_step`, split out so a batched
        round can append every active request before filtering any of
        them.  Paged caches raise
        :class:`~repro.engine.cache.PoolExhausted` *before* mutating
        anything, and this method touches the stats only after the append
        succeeds, so a failed append leaves both cache and counters
        untouched — the scheduler's preempt-and-retry relies on that.
        """
        cache.append(k_step, v_step)
        self.stats.decode_steps += 1
        self.stats.rows_decomposed += cache.num_heads
        self.stats.rows_reused += cache.num_heads * (cache.length - 1)

    def decode_attend(self, cache: BitPlaneKVCache, q: np.ndarray) -> EngineAttentionResult:
        """Attend one already-appended decode query through the policy."""
        return self.policy.decode_step(self, cache, np.asarray(q, dtype=np.float64))

    def decode_attend_batch(self, caches, qs) -> List[EngineAttentionResult]:
        """Attend one decode query per request in a single fused round.

        Routes through the policy's ``decode_step_batch`` when it
        declares :attr:`supports_batched_decode` (PADE does), otherwise
        falls back to a per-request :meth:`decode_attend` loop — either
        way the results are identical to the loop, per request, in order.
        """
        if self.supports_batched_decode and len(caches) > 1:
            return self.policy.decode_step_batch(self, caches, qs)
        return [self.decode_attend(cache, q) for cache, q in zip(caches, qs)]

    def decode_step_batch(self, steps) -> List[EngineAttentionResult]:
        """One fused autoregressive step over several requests.

        ``steps`` is a sequence of ``(cache, q, k_step, v_step)`` tuples
        as :meth:`decode_step` takes them.  Every cache is appended first
        (in order — pool allocation order is what the per-request loop
        produces), then one :meth:`decode_attend_batch` covers the whole
        set.  Filters never allocate pool blocks and caches are
        request-private, so the append/filter reordering is
        result-identical to interleaved per-request
        :meth:`decode_step` calls (DESIGN.md §13).
        """
        for cache, _, k_step, v_step in steps:
            self.decode_append(cache, k_step, v_step)
        return self.decode_attend_batch(
            [s[0] for s in steps], [s[1] for s in steps]
        )

    @property
    def supports_batched_decode(self) -> bool:
        """True when the active policy can serve fused decode rounds."""
        return bool(getattr(self.policy, "supports_batched_decode", False))

    # ------------------------------------------------------------------
    # Request-level scheduling (delegates to the schedulers)
    # ------------------------------------------------------------------
    def submit(self, request) -> None:
        """Queue an :class:`~repro.engine.scheduler.EngineRequest`."""
        self._scheduler.submit(request)

    def run(self):
        """Serve every queued request to completion (batched rounds).

        Returns ``{request_id: RequestResult}``; see
        :class:`repro.engine.scheduler.EngineScheduler` for the admission
        and round-robin policy.
        """
        return self._scheduler.run()

    @property
    def schedule_trace(self):
        """Chronological ``(event, request_ids)`` log of the last run."""
        return self._scheduler.trace

    def serve(
        self,
        requests,
        max_active: Optional[int] = None,
        token_budget: int = 4096,
        block_size: int = 16,
        policy="fcfs",
        admission: str = "continuous",
        prefix_sharing: bool = False,
        chunk_tokens: int = 0,
        round_token_budget: int = 0,
        tenant_weights=None,
        batched_decode: bool = True,
        tiering=None,
        draft_policy="streaming-llm",
        spec_accept_tol: float = 0.05,
    ):
        """Serve ``requests`` with continuous batching over a paged pool.

        Arrival-aware admission at every decode-round boundary, KV rows in
        fixed-size blocks under ``token_budget``, preemption under memory
        pressure — see :class:`repro.engine.scheduler.ContinuousScheduler`
        for the policy knobs.  ``policy`` picks the scheduling policy
        (``fcfs`` / ``shortest-prompt`` / ``priority`` / ``edf`` /
        ``fair``, or a :class:`~repro.engine.scheduler.SchedulingPolicy`
        instance) and ``tenant_weights`` the fair-share weights the
        ``fair`` policy divides service by.  ``prefix_sharing`` turns on
        hash-based copy-on-write prompt-prefix sharing across requests;
        ``round_token_budget`` activates the prefill cost model (a prompt
        occupies rounds in proportion to its length) and ``chunk_tokens``
        splits those prompts into chunks interleaved with decode rounds.
        ``batched_decode`` (default on) fuses each decode round's filter
        across the whole active set when the policy supports it — results
        are byte-identical to the per-request loop either way.
        ``tiering`` (``True`` or a :class:`~repro.engine.cache.TierConfig`)
        arms the two-tier plane memory: under pool pressure, low-order
        bit planes of cold blocks spill to a secondary tier and
        preemption becomes the last resort (PADE policy only; DESIGN.md
        §16).  ``draft_policy`` / ``spec_accept_tol`` configure the
        draft-verify speculative mode for requests submitted with
        ``speculative=True`` (DESIGN.md §17): the named draftable policy
        proposes ``draft_tokens``-token blocks over a COW fork anchor
        and this engine's PADE policy verifies them, accepting the
        leading run within the relative-L2 tolerance.
        Returns ``{request_id: RequestResult}`` with per-request timing
        (arrival/admit/first-token/finish) populated — aborted requests
        (deadline missed, queueing bound exceeded, cancelled) report
        ``status="aborted"``; the scheduler of the last call stays
        inspectable via :attr:`last_serve` (trace, timed events, pool
        occupancy timeline, prefix-cache counters, tenant service).
        """
        from repro.engine.scheduler import ContinuousScheduler

        scheduler = ContinuousScheduler(
            self,
            max_active=self._scheduler.max_active if max_active is None else max_active,
            token_budget=token_budget,
            block_size=block_size,
            policy=policy,
            admission=admission,
            prefix_sharing=prefix_sharing,
            chunk_tokens=chunk_tokens,
            round_token_budget=round_token_budget,
            tenant_weights=tenant_weights,
            batched_decode=batched_decode,
            tiering=tiering,
            draft_policy=draft_policy,
            spec_accept_tol=spec_accept_tol,
        )
        for request in requests:
            scheduler.submit(request)
        self._last_serve = scheduler
        return scheduler.run()

    @property
    def last_serve(self):
        """The :class:`ContinuousScheduler` of the most recent :meth:`serve`."""
        if self._last_serve is None:
            raise RuntimeError("serve() has not been called on this engine")
        return self._last_serve
