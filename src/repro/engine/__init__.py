"""Batched multi-head serving layer for PADE sparse attention.

* :mod:`repro.engine.cache` — persistent per-head bit-plane KV caches:
  the dense per-sequence :class:`BitPlaneKVCache` and the paged
  :class:`PagedBitPlaneKVCache` over a shared :class:`PlaneBlockPool`
  (fixed-size token blocks under a global budget; same interface, so the
  attention path is storage-agnostic).  The pool ref-counts blocks:
  content-hashed prompt-prefix sharing (``prefix_sharing=True``) and
  zero-copy cache forks with copy-on-write tails ride on top, and the
  ``begin/extend/finish_prefill`` triple supports chunked prefill with
  byte-identical results to one-shot prefill.
* :mod:`repro.engine.engine` — :class:`PadeEngine`: multi-head attention
  over model presets with per-head guards, a head-batched filter round
  (one einsum covers all heads), and aggregate serving statistics.
* :mod:`repro.engine.scheduler` — :class:`EngineScheduler` (lockstep FIFO
  baseline) and :class:`ContinuousScheduler` (arrival-aware iteration-level
  batching with pluggable :class:`SchedulingPolicy` admission — ``fcfs`` /
  ``shortest-prompt`` / ``priority`` / ``edf`` / ``fair`` — SLO-aware
  preemption victim selection, deadline/cancellation aborts, and
  budget-pressure preemption).

Quickstart (synthetic single-layer decode)::

    from repro.engine import EngineRequest, PadeEngine
    engine = PadeEngine(backend="fast")
    engine.submit(EngineRequest("req0", k, v, decode_q=q, decode_k=dk, decode_v=dv))
    results = engine.run()
    out = results["req0"].decode_outputs        # (H, T, Dv)

Continuous batching under a token budget::

    results = engine.serve(requests, token_budget=4096, policy="fcfs")
    results["req0"].first_token_time            # decode-round units
    engine.last_serve.occupancy                 # pool occupancy timeline

Prefix sharing + chunked prefill::

    results = engine.serve(requests, token_budget=4096, prefix_sharing=True,
                           round_token_budget=64, chunk_tokens=48)
    engine.last_serve.prefix_hit_blocks         # blocks served from the index
"""

from repro.engine.cache import (
    BitPlaneKVCache,
    PagedBitPlaneKVCache,
    PlaneBlockPool,
    PoolExhausted,
)
from repro.engine.engine import EngineAttentionResult, EngineStats, PadeEngine
from repro.engine.scheduler import (
    SCHEDULER_POLICY_REGISTRY,
    SCHEDULING_POLICIES,
    ContinuousScheduler,
    EdfPolicy,
    EngineRequest,
    EngineScheduler,
    FairPolicy,
    FcfsPolicy,
    PriorityPolicy,
    RequestResult,
    SchedulingPolicy,
    ShortestPromptPolicy,
    resolve_scheduling_policy,
)

__all__ = [
    "BitPlaneKVCache",
    "PagedBitPlaneKVCache",
    "PlaneBlockPool",
    "PoolExhausted",
    "PadeEngine",
    "EngineAttentionResult",
    "EngineStats",
    "EngineRequest",
    "EngineScheduler",
    "ContinuousScheduler",
    "RequestResult",
    "SchedulingPolicy",
    "FcfsPolicy",
    "ShortestPromptPolicy",
    "PriorityPolicy",
    "EdfPolicy",
    "FairPolicy",
    "SCHEDULER_POLICY_REGISTRY",
    "SCHEDULING_POLICIES",
    "resolve_scheduling_policy",
]
