"""Batched multi-head serving layer for PADE sparse attention.

* :mod:`repro.engine.cache` — persistent per-head bit-plane KV cache
  (decompose once at prefill, extend incrementally each decode step).
* :mod:`repro.engine.engine` — :class:`PadeEngine`: multi-head attention
  over model presets with per-head guards, a head-batched filter round
  (one einsum covers all heads), and aggregate serving statistics.
* :mod:`repro.engine.scheduler` — request admission + lockstep decode
  rounds batching concurrent requests.

Quickstart (synthetic single-layer decode)::

    from repro.engine import EngineRequest, PadeEngine
    engine = PadeEngine(backend="fast")
    engine.submit(EngineRequest("req0", k, v, decode_q=q, decode_k=dk, decode_v=dv))
    results = engine.run()
    out = results["req0"].decode_outputs        # (H, T, Dv)
"""

from repro.engine.cache import BitPlaneKVCache
from repro.engine.engine import EngineAttentionResult, EngineStats, PadeEngine
from repro.engine.scheduler import EngineRequest, EngineScheduler, RequestResult

__all__ = [
    "BitPlaneKVCache",
    "PadeEngine",
    "EngineAttentionResult",
    "EngineStats",
    "EngineRequest",
    "EngineScheduler",
    "RequestResult",
]
