"""Request-level scheduling for :class:`repro.engine.engine.PadeEngine`.

Serving traffic arrives as *requests*: a prompt to prefill, then a stream
of decode steps.  Two schedulers batch them:

* :class:`EngineScheduler` — the original lockstep layer: FIFO admission
  while slots are free, every request owns a private dense
  :class:`~repro.engine.cache.BitPlaneKVCache`, no notion of time or
  memory pressure.  Kept as the uncontended baseline.
* :class:`ContinuousScheduler` — iteration-level (continuous) batching
  over a shared :class:`~repro.engine.cache.PlaneBlockPool`: requests
  carry arrival times, admission happens at *every* decode-round boundary
  under a pluggable policy (``fcfs`` / ``shortest-prompt``), KV rows live
  in fixed-size blocks under a global token budget, and budget pressure
  preempts the youngest request (its blocks are freed; it re-prefills
  from scratch on re-admission, so its retained sets are identical to an
  uncontended run).

Since the offline substrate has no real model producing Q/K/V on the fly,
a request carries its decode-step tensors up front (synthesized or
replayed); the engine consumes them step by step exactly as a model
runtime would hand them over.  Time is measured in decode rounds: each
round boundary advances the clock by one unit, and arrival times are
expressed on the same axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.cache import PagedBitPlaneKVCache, PlaneBlockPool, PoolExhausted

__all__ = [
    "EngineRequest",
    "RequestResult",
    "EngineScheduler",
    "ContinuousScheduler",
    "SCHEDULING_POLICIES",
]


@dataclass(frozen=True)
class EngineRequest:
    """One serving request: prompt K/V (+ optional prompt queries) and the
    per-step decode tensors.

    Shapes: ``k``/``v`` are ``(H, S, D)`` / ``(H, S, Dv)``;
    ``q_prompt`` is ``(H, P, D)`` or ``None``; the decode streams are
    ``(H, T, D)`` / ``(H, T, D)`` / ``(H, T, Dv)`` with a shared step
    count ``T`` (``None`` for prefill-only requests).  ``arrival_time``
    is in decode-round units; the lockstep scheduler ignores it, the
    continuous scheduler never admits a request before it.
    """

    request_id: str
    k: np.ndarray
    v: np.ndarray
    q_prompt: Optional[np.ndarray] = None
    decode_q: Optional[np.ndarray] = None
    decode_k: Optional[np.ndarray] = None
    decode_v: Optional[np.ndarray] = None
    arrival_time: float = 0.0

    @property
    def decode_steps(self) -> int:
        return 0 if self.decode_q is None else self.decode_q.shape[1]

    @property
    def prompt_tokens(self) -> int:
        return int(np.asarray(self.k).shape[1])

    @property
    def total_tokens(self) -> int:
        """Peak KV footprint of this request: prompt plus every decode step."""
        return self.prompt_tokens + self.decode_steps

    def __post_init__(self) -> None:
        streams = (self.decode_q, self.decode_k, self.decode_v)
        present = [s for s in streams if s is not None]
        if present and len(present) != 3:
            raise ValueError("decode_q/decode_k/decode_v must be provided together")
        if present and len({s.shape[1] for s in present}) != 1:
            raise ValueError("decode streams must share the same step count")
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be >= 0")


@dataclass
class RequestResult:
    """Everything the engine produced for one completed request.

    The timing fields are populated by :class:`ContinuousScheduler` (the
    lockstep scheduler leaves them at their defaults): all are in
    decode-round units on the same clock as ``EngineRequest.arrival_time``.
    ``first_token_time`` is when the first decode token (or, for
    prefill-only requests, the prefill output) became available.
    """

    request_id: str
    prefill_output: Optional[np.ndarray]  # (H, P, Dv) or None
    decode_outputs: np.ndarray  # (H, T, Dv), T may be 0
    retained_history: List[np.ndarray] = field(default_factory=list)  # per step (H, S_t)
    final_length: int = 0
    arrival_time: float = 0.0
    admit_time: float = 0.0
    first_token_time: Optional[float] = None
    finish_time: float = 0.0
    prompt_tokens: int = 0
    preemptions: int = 0

    @property
    def steps(self) -> int:
        return len(self.retained_history)

    def retained_bytes(self) -> bytes:
        """Canonical byte encoding of every step's retained-token set.

        Used to assert backend invariance: two runs retain byte-identical
        token sets iff these encodings compare equal.
        """
        return b"".join(np.packbits(r.astype(np.uint8)).tobytes() for r in self.retained_history)


@dataclass
class _RequestState:
    request: EngineRequest
    cache: object
    admit_index: int = 0
    prefill_output: Optional[np.ndarray] = None
    outputs: List[np.ndarray] = field(default_factory=list)
    retained_history: List[np.ndarray] = field(default_factory=list)
    next_step: int = 0

    @property
    def prefilling(self) -> bool:
        """True while a chunked prefill still owes prompt tokens."""
        return getattr(self.cache, "prefill_remaining", 0) > 0

    @property
    def done(self) -> bool:
        return not self.prefilling and self.next_step >= self.request.decode_steps

    def reset(self) -> None:
        """Discard all progress (preemption restarts the request)."""
        self.prefill_output = None
        self.outputs = []
        self.retained_history = []
        self.next_step = 0


class EngineScheduler:
    """FIFO admission + lockstep decode rounds over one engine."""

    def __init__(self, engine, max_active: int = 8) -> None:
        self.engine = engine
        self.max_active = max_active
        self.queued: List[EngineRequest] = []
        self.active: List[_RequestState] = []
        self.trace: List[Tuple[str, Tuple[str, ...]]] = []

    # ------------------------------------------------------------------
    def submit(self, request: EngineRequest) -> None:
        in_flight = [r.request_id for r in self.queued]
        in_flight += [s.request.request_id for s in self.active]
        if request.request_id in in_flight:
            raise ValueError(f"request id {request.request_id!r} already queued")
        self.queued.append(request)

    def _admit(self) -> None:
        while self.queued and len(self.active) < self.max_active:
            request = self.queued.pop(0)
            num_heads, _, head_dim = np.asarray(request.k).shape
            v_dim = np.asarray(request.v).shape[2]
            cache = self.engine.new_cache(num_heads, head_dim, v_dim)
            res = self.engine.prefill(
                cache,
                request.k,
                request.v,
                q=request.q_prompt,
                total_tokens=request.total_tokens,
            )
            state = _RequestState(request=request, cache=cache)
            if res is not None:
                state.prefill_output = res.output
            self.active.append(state)
            self.trace.append(("prefill", (request.request_id,)))

    def _decode_round(self) -> None:
        round_ids = []
        for state in self.active:
            if state.done:
                continue
            t = state.next_step
            req = state.request
            res = self.engine.decode_step(
                state.cache, req.decode_q[:, t, :], req.decode_k[:, t, :], req.decode_v[:, t, :]
            )
            state.outputs.append(res.output[:, 0, :])
            state.retained_history.append(res.retained[:, 0, :])
            state.next_step = t + 1
            round_ids.append(req.request_id)
        if round_ids:
            self.trace.append(("decode_round", tuple(round_ids)))

    def _collect(self, results: Dict[str, RequestResult]) -> None:
        still_active = []
        for state in self.active:
            if not state.done:
                still_active.append(state)
                continue
            req = state.request
            if state.outputs:
                decode_outputs = np.stack(state.outputs, axis=1)  # (H, T, Dv)
            else:
                num_heads = np.asarray(req.k).shape[0]
                v_dim = np.asarray(req.v).shape[2]
                decode_outputs = np.zeros((num_heads, 0, v_dim))
            results[req.request_id] = RequestResult(
                request_id=req.request_id,
                prefill_output=state.prefill_output,
                decode_outputs=decode_outputs,
                retained_history=state.retained_history,
                final_length=state.cache.length,
                prompt_tokens=req.prompt_tokens,
            )
            self.trace.append(("finish", (req.request_id,)))
        self.active = still_active

    # ------------------------------------------------------------------
    def run(self) -> Dict[str, RequestResult]:
        """Serve all queued requests to completion; returns per-id results."""
        self.trace = []
        results: Dict[str, RequestResult] = {}
        while self.queued or self.active:
            self._admit()
            self._decode_round()
            self._collect(results)
        return results


#: Admission orderings the continuous scheduler understands.
SCHEDULING_POLICIES = ("fcfs", "shortest-prompt")


@dataclass
class _Timing:
    """Per-request clock marks that survive preemption/restart.

    ``admit_time`` and ``first_token_time`` keep their *first* values
    across a preemption: decode replay is deterministic (same request
    tensors, same retained sets), so tokens streamed before eviction stay
    valid and TTFT measures when the first of them actually left the
    engine.  The eviction stall is not hidden — it lands in TPOT and
    ``finish_time``, which only the final (successful) pass sets.
    """

    arrival_time: float
    admit_time: Optional[float] = None
    first_token_time: Optional[float] = None
    preemptions: int = 0


class ContinuousScheduler:
    """Iteration-level batching over a shared paged bit-plane pool.

    Every loop iteration is one decode round (one clock unit):

    1. **admission** — queued requests whose ``arrival_time`` has passed
       are considered in policy order (``fcfs``: arrival then submission;
       ``shortest-prompt``: prompt length first).  A request is admitted
       while a slot is free (< ``max_active``) and the pool can hold its
       prompt *plus* one headroom block per unfinished active request (so
       admitting it cannot immediately preempt the running batch).
       Admission prefills into a :class:`PagedBitPlaneKVCache` drawn from
       the shared pool.
    2. **decode round** — every active request advances one step.  If an
       append needs a block and the pool is exhausted, the *youngest*
       active request (latest admission) is preempted: its blocks are
       released and it rejoins the queue to re-prefill from scratch later.
       Restart-from-scratch keeps retained sets bit-identical to an
       uncontended run — the cache contents depend only on the request's
       own tensors, never on who shared the pool.
    3. **completion** — finished requests release their blocks and report
       timing (arrival/admit/first-token/finish) alongside their outputs.

    The pool is created lazily from the first admitted request's shapes;
    all requests in one run must share ``(H, D, Dv)`` (one model).  With
    every arrival at 0, the ``fcfs`` policy and an uncontended pool, the
    event trace reduces exactly to :class:`EngineScheduler`'s.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.engine.PadeEngine` to serve on.
    max_active:
        Decode-round batch width.
    token_budget:
        Global KV budget in tokens, rounded down to whole blocks.
    block_size:
        Tokens per pool block.
    policy:
        Admission ordering, one of :data:`SCHEDULING_POLICIES`.
    admission:
        ``"continuous"`` admits at every round boundary; ``"drain"`` only
        when the active set is empty — the static-batching baseline the
        serving benchmark compares against.
    prefix_sharing:
        Content-hash prompt-prefix sharing across requests: full prompt
        blocks with a registered chain key are attached by reference
        (copy-on-write) instead of re-allocated and re-decomposed.
        Retained sets are unchanged — a hit block is byte-identical to
        what the request would have written itself.
    round_token_budget:
        Tokens one decode round can process (0 = legacy instant-prefill
        timing).  When set, a prompt's *missed* tokens cost rounds:
        without chunking the oldest prefill owns whole rounds exclusively
        (decode stalls — the motivation for chunked prefill); with
        ``chunk_tokens`` set, decode runs first every round and the
        leftover budget is split over prefilling requests in admission
        order, at most ``chunk_tokens`` each.
    chunk_tokens:
        Per-request, per-round prefill chunk size (requires
        ``round_token_budget``); 0 keeps prefills unchunked.
    """

    def __init__(
        self,
        engine,
        max_active: int = 8,
        token_budget: int = 4096,
        block_size: int = 16,
        policy: str = "fcfs",
        admission: str = "continuous",
        prefix_sharing: bool = False,
        chunk_tokens: int = 0,
        round_token_budget: int = 0,
    ) -> None:
        if policy not in SCHEDULING_POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {SCHEDULING_POLICIES}")
        if admission not in ("continuous", "drain"):
            raise ValueError(f"admission must be 'continuous' or 'drain', got {admission!r}")
        if max_active < 1:
            raise ValueError("max_active must be >= 1")
        if chunk_tokens < 0 or round_token_budget < 0:
            raise ValueError("chunk_tokens and round_token_budget must be >= 0")
        if chunk_tokens and not round_token_budget:
            raise ValueError("chunk_tokens requires round_token_budget (the per-round split)")
        self.engine = engine
        self.max_active = max_active
        self.token_budget = token_budget
        self.block_size = block_size
        self.policy = policy
        self.admission = admission
        self.prefix_sharing = bool(prefix_sharing)
        self.chunk_tokens = int(chunk_tokens)
        self.round_token_budget = int(round_token_budget)
        self.pool: Optional[PlaneBlockPool] = None
        # Bounded-footprint policies (H2O's eviction budget, StreamingLLM's
        # sink+window) switch admission to charged-footprint accounting:
        # each request is charged its policy's peak resident tokens against
        # the token budget instead of its dense context.  See run().
        policy = getattr(engine, "policy", None)
        self._charged = policy is not None and not policy.dense_footprint
        self._pool_token_budget = token_budget
        self.time = 0.0
        self.pending: List[Tuple[int, EngineRequest]] = []  # (submit order, request)
        self.active: List[_RequestState] = []
        self.trace: List[Tuple[str, Tuple[str, ...]]] = []
        self.events: List[Tuple[float, str, Tuple[str, ...]]] = []  # timed trace
        self.occupancy: List[Tuple[float, int, int]] = []  # (time, used tokens, active)
        self.prefix_hit_blocks = 0  # prompt blocks attached from the prefix index
        self.prefix_miss_blocks = 0  # shareable prompt blocks written fresh
        self.chunk_stall_rounds = 0  # rounds where a prefill got zero budget
        self.decode_blocked_rounds = 0  # rounds an exclusive prefill stalled decode
        self._timings: Dict[str, _Timing] = {}
        self._submit_seq = 0
        self._admit_seq = 0

    @property
    def _budgeted(self) -> bool:
        """True when the round-token prefill cost model is active."""
        return self.round_token_budget > 0

    # ------------------------------------------------------------------
    def submit(self, request: EngineRequest) -> None:
        in_flight = [r.request_id for _, r in self.pending]
        in_flight += [s.request.request_id for s in self.active]
        if request.request_id in in_flight:
            raise ValueError(f"request id {request.request_id!r} already queued")
        self.pending.append((self._submit_seq, request))
        self._submit_seq += 1
        self._timings.setdefault(request.request_id, _Timing(arrival_time=request.arrival_time))

    # ------------------------------------------------------------------
    def _record(self, event: str, ids: Tuple[str, ...]) -> None:
        self.trace.append((event, ids))
        self.events.append((self.time, event, ids))

    def _policy_key(self, entry: Tuple[int, EngineRequest]):
        order, req = entry
        if self.policy == "shortest-prompt":
            return (req.prompt_tokens, req.arrival_time, order)
        return (req.arrival_time, order)

    def _ensure_pool(self, request: EngineRequest) -> PlaneBlockPool:
        num_heads, _, head_dim = np.asarray(request.k).shape
        v_dim = np.asarray(request.v).shape[2]
        if self.pool is None:
            self.pool = PlaneBlockPool(
                num_heads,
                head_dim,
                v_dim,
                bits=self.engine.config.bits,
                block_size=self.block_size,
                token_budget=self._pool_token_budget,
            )
        elif (self.pool.num_heads, self.pool.head_dim, self.pool.v_dim) != (
            num_heads,
            head_dim,
            v_dim,
        ):
            raise ValueError(
                f"request {request.request_id!r} shape ({num_heads}, {head_dim}, {v_dim}) "
                f"does not match the pool's ({self.pool.num_heads}, "
                f"{self.pool.head_dim}, {self.pool.v_dim})"
            )
        return self.pool

    def _charge_tokens(self, req: EngineRequest) -> int:
        """Tokens this request is charged against the budget (policy view)."""
        policy = getattr(self.engine, "policy", None)
        if policy is None:
            return req.total_tokens
        return min(
            req.total_tokens,
            policy.cache_footprint(req.prompt_tokens, req.decode_steps),
        )

    def _charge_blocks(self, req: EngineRequest) -> int:
        return max(1, -(-self._charge_tokens(req) // self.block_size))

    def _check_footprints(self) -> None:
        num_blocks = self.token_budget // self.block_size
        for _, req in self.pending:
            charge = self._charge_tokens(req)
            needed = max(1, -(-charge // self.block_size))
            if needed > num_blocks:
                raise ValueError(
                    f"request {req.request_id!r} needs {charge} tokens "
                    f"({needed} blocks); the budget holds only {num_blocks} blocks "
                    f"of {self.block_size} — it could never be served"
                )

    # ------------------------------------------------------------------
    def _admit(self) -> None:
        if self.admission == "drain" and self.active:
            return
        while len(self.active) < self.max_active:
            arrived = [e for e in self.pending if e[1].arrival_time <= self.time]
            if not arrived:
                return
            entry = min(arrived, key=self._policy_key)
            request = entry[1]
            pool = self._ensure_pool(request)
            if self._charged:
                # Charged-footprint admission: the request reserves its
                # policy's peak resident tokens for its whole lifetime, so
                # no headroom is needed — a bounded policy never grows past
                # its charge, which is exactly why it packs more concurrent
                # requests into the same budget than a dense one.
                budget_blocks = self.token_budget // self.block_size
                used = sum(
                    self._charge_blocks(s.request) for s in self.active if not s.done
                )
                if budget_blocks - used < self._charge_blocks(request):
                    return
            else:
                blocks_needed = max(1, -(-request.prompt_tokens // pool.block_size))
                # One headroom block per unfinished active request keeps this
                # admission from forcing a preemption in the very next round.
                # (Worst case: prefix hits only lower the real demand.)
                headroom = sum(1 for s in self.active if not s.done)
                if pool.free_block_count < blocks_needed + headroom:
                    return
            self.pending.remove(entry)
            cache = PagedBitPlaneKVCache(pool, prefix_sharing=self.prefix_sharing)
            state = _RequestState(request=request, cache=cache, admit_index=self._admit_seq)
            self._admit_seq += 1
            timing = self._timings[request.request_id]
            if timing.admit_time is None:
                timing.admit_time = self.time
            if self._budgeted:
                # Bookkeeping only: shared prefix blocks attach for free,
                # the missed tokens are paid for round by round.
                self.engine.prefill_begin(cache, request.k, request.v)
                self.active.append(state)
                self._record("admit", (request.request_id,))
                if not state.prefilling:  # full prefix hit: nothing left to pay
                    self._finish_prefill(state)
            else:
                res = self.engine.prefill(
                    cache,
                    request.k,
                    request.v,
                    q=request.q_prompt,
                    total_tokens=request.total_tokens,
                )
                if res is not None:
                    state.prefill_output = res.output
                self.active.append(state)
                self._account_prefix(cache)
                if request.decode_steps == 0 and timing.first_token_time is None:
                    # Prefill-only: the prompt output is the first (and last) token.
                    timing.first_token_time = self.time + 1.0
                self._record("prefill", (request.request_id,))

    def _account_prefix(self, cache) -> None:
        self.prefix_hit_blocks += cache.prefix_hit_blocks
        self.prefix_miss_blocks += cache.prefix_miss_blocks

    def _finish_prefill(self, state: _RequestState) -> None:
        """Seal a budgeted prefill: prompt-query attend + timing marks."""
        request = state.request
        res = self.engine.prefill_finish(
            state.cache, q=request.q_prompt, total_tokens=request.total_tokens
        )
        if res is not None:
            state.prefill_output = res.output
        # Counted at completion so late-binding hits (blocks attached
        # chunk by chunk as a concurrent donor registers them) are seen.
        self._account_prefix(state.cache)
        timing = self._timings[request.request_id]
        if request.decode_steps == 0 and timing.first_token_time is None:
            timing.first_token_time = self.time + 1.0
        self._record("prefill", (request.request_id,))

    def _preempt_youngest(self) -> None:
        # Never evict a finished-but-uncollected request: its blocks are
        # freed by _collect at the end of this round anyway, and a
        # preemption would discard fully computed outputs just to redo
        # them.  The raiser itself is never done, so candidates exist.
        candidates = [s for s in self.active if not s.done]
        victim = max(candidates, key=lambda s: s.admit_index)
        self.active.remove(victim)
        victim.cache.release()
        victim.reset()
        self._timings[victim.request.request_id].preemptions += 1
        self.pending.append((self._submit_seq, victim.request))
        self._submit_seq += 1
        self._record("preempt", (victim.request.request_id,))

    def _decode_round(self) -> int:
        round_ids = []
        i = 0
        while i < len(self.active):
            state = self.active[i]
            if state.done or state.prefilling:
                i += 1
                continue
            t = state.next_step
            req = state.request
            try:
                res = self.engine.decode_step(
                    state.cache,
                    req.decode_q[:, t, :],
                    req.decode_k[:, t, :],
                    req.decode_v[:, t, :],
                )
            except PoolExhausted:
                if len(self.active) == 1:
                    # Defensive: _check_footprints guarantees a lone
                    # request's blocks always fit, so this only fires if
                    # something else squats on the pool.
                    raise RuntimeError(
                        f"token budget {self.token_budget} cannot hold request "
                        f"{req.request_id!r} alone; raise --budget or shrink the request"
                    )
                # The youngest active request is always the list tail, so it
                # has not decoded yet this round — preempting it discards no
                # work.  Retry slot i (if the victim was this request, i now
                # falls off the end and the round is over).
                self._preempt_youngest()
                continue
            state.outputs.append(res.output[:, 0, :])
            state.retained_history.append(res.retained[:, 0, :])
            state.next_step = t + 1
            if t == 0:
                timing = self._timings[req.request_id]
                if timing.first_token_time is None:
                    timing.first_token_time = self.time + 1.0
            round_ids.append(req.request_id)
            i += 1
        if round_ids:
            self._record("decode_round", tuple(round_ids))
        return len(round_ids)

    # ------------------------------------------------------------------
    def _extend_with_preemption(self, state: _RequestState, tokens: int) -> int:
        """Feed ``tokens`` prompt tokens to one prefilling request.

        :class:`PoolExhausted` preempts the youngest active request and
        retries, exactly like the decode path; if the victim turns out to
        be ``state`` itself, the chunk is abandoned (the request is back
        in the queue, its blocks freed).
        """
        while True:
            try:
                written = self.engine.prefill_extend(state.cache, tokens)
                break
            except PoolExhausted:
                if len(self.active) == 1:
                    raise RuntimeError(
                        f"token budget {self.token_budget} cannot hold request "
                        f"{state.request.request_id!r} alone; raise --budget or "
                        f"shrink the request"
                    ) from None
                self._preempt_youngest()
                if state not in self.active:
                    return 0
        if not state.prefilling:
            self._finish_prefill(state)
        return written

    def _prefill_round(self, decode_tokens: int) -> None:
        """Spend this round's leftover token budget on pending prefills.

        Unchunked: the oldest prefill owns the whole round (decode was
        already skipped by the caller).  Chunked: prefilling requests are
        served in admission order from the budget decode left over, at
        most ``chunk_tokens`` each — so a short prompt makes progress
        every round instead of queueing behind a long one.
        """
        prefilling = [s for s in self.active if s.prefilling]
        if not prefilling:
            return
        prefilling.sort(key=lambda s: s.admit_index)
        if not self.chunk_tokens:
            self._extend_with_preemption(prefilling[0], self.round_token_budget)
            return
        budget_left = self.round_token_budget - decode_tokens
        for state in prefilling:
            if state not in self.active:  # preempted by an earlier extend
                continue
            if budget_left <= 0:
                self.chunk_stall_rounds += 1
                break
            take = min(self.chunk_tokens, budget_left)
            budget_left -= self._extend_with_preemption(state, take)

    def _collect(self, results: Dict[str, RequestResult]) -> None:
        still_active = []
        for state in self.active:
            if not state.done:
                still_active.append(state)
                continue
            req = state.request
            if state.outputs:
                decode_outputs = np.stack(state.outputs, axis=1)  # (H, T, Dv)
            else:
                num_heads = np.asarray(req.k).shape[0]
                v_dim = np.asarray(req.v).shape[2]
                decode_outputs = np.zeros((num_heads, 0, v_dim))
            timing = self._timings[req.request_id]
            results[req.request_id] = RequestResult(
                request_id=req.request_id,
                prefill_output=state.prefill_output,
                decode_outputs=decode_outputs,
                retained_history=state.retained_history,
                final_length=state.cache.length,
                arrival_time=timing.arrival_time,
                admit_time=timing.admit_time if timing.admit_time is not None else 0.0,
                first_token_time=timing.first_token_time,
                finish_time=self.time,
                prompt_tokens=req.prompt_tokens,
                preemptions=timing.preemptions,
            )
            state.cache.release()
            self._record("finish", (req.request_id,))
        self.active = still_active

    # ------------------------------------------------------------------
    def run(self) -> Dict[str, RequestResult]:
        """Serve every submitted request to completion; returns per-id results."""
        self.time = 0.0
        self.trace = []
        self.events = []
        self.occupancy = []
        self._check_footprints()
        if self._charged:
            # The simulation keeps every key resident so retained sets stay
            # exactly reproducible (H2O's accumulated scores read the full
            # distribution), while *admission* is charged the policy's
            # bounded footprint — so the physical backing store is sized to
            # the worst case and the token budget lives on as the
            # accounting ceiling, the capacity a bounded-cache deployment
            # would actually provision.
            bs = self.block_size
            physical = sum(
                max(1, -(-req.total_tokens // bs)) for _, req in self.pending
            ) * bs
            self._pool_token_budget = max(self.token_budget, physical)
        results: Dict[str, RequestResult] = {}
        while self.pending or self.active:
            if not self.active and self.pending:
                # Idle: fast-forward the clock to the next arrival.
                next_arrival = min(r.arrival_time for _, r in self.pending)
                if next_arrival > self.time:
                    self.time = float(next_arrival)
            self._admit()
            decode_tokens = 0
            exclusive = (
                self._budgeted
                and not self.chunk_tokens
                and any(s.prefilling for s in self.active)
            )
            if exclusive:
                # Unchunked prefill hogs the engine: decode stalls — the
                # degradation chunked prefill exists to remove.
                if any(not s.done and not s.prefilling for s in self.active):
                    self.decode_blocked_rounds += 1
            else:
                decode_tokens = self._decode_round()
            if self._budgeted:
                self._prefill_round(decode_tokens)
            self.time += 1.0
            if self._charged:
                # Charged accounting: what the budget ceiling actually sees.
                used = sum(self._charge_blocks(s.request) for s in self.active)
                used *= self.block_size
            else:
                used = self.pool.used_tokens if self.pool is not None else 0
            self.occupancy.append((self.time, used, len(self.active)))
            self._collect(results)
        return results
