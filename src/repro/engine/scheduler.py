"""Request-level scheduling for :class:`repro.engine.engine.PadeEngine`.

Serving traffic arrives as *requests*: a prompt to prefill, then a stream
of decode steps.  The scheduler batches them the way the hardware model
wants to see them:

* **admission** — queued requests are admitted in arrival order while
  fewer than ``max_active`` are in flight; admission performs the one-time
  prefill (bulk quantize + plane decomposition).
* **decode rounds** — every active request advances one decode step per
  round, so cache appends stay in lockstep and each request's heads are
  batched through one ``filter_heads`` call per round.
* **completion** — a request finishes when its decode stream is
  exhausted; its slot is refilled at the next round boundary.

Since the offline substrate has no real model producing Q/K/V on the fly,
a request carries its decode-step tensors up front (synthesized or
replayed); the engine consumes them step by step exactly as a model
runtime would hand them over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["EngineRequest", "RequestResult", "EngineScheduler"]


@dataclass(frozen=True)
class EngineRequest:
    """One serving request: prompt K/V (+ optional prompt queries) and the
    per-step decode tensors.

    Shapes: ``k``/``v`` are ``(H, S, D)`` / ``(H, S, Dv)``;
    ``q_prompt`` is ``(H, P, D)`` or ``None``; the decode streams are
    ``(H, T, D)`` / ``(H, T, D)`` / ``(H, T, Dv)`` with a shared step
    count ``T`` (``None`` for prefill-only requests).
    """

    request_id: str
    k: np.ndarray
    v: np.ndarray
    q_prompt: Optional[np.ndarray] = None
    decode_q: Optional[np.ndarray] = None
    decode_k: Optional[np.ndarray] = None
    decode_v: Optional[np.ndarray] = None

    @property
    def decode_steps(self) -> int:
        return 0 if self.decode_q is None else self.decode_q.shape[1]

    def __post_init__(self) -> None:
        streams = (self.decode_q, self.decode_k, self.decode_v)
        present = [s for s in streams if s is not None]
        if present and len(present) != 3:
            raise ValueError("decode_q/decode_k/decode_v must be provided together")
        if present and len({s.shape[1] for s in present}) != 1:
            raise ValueError("decode streams must share the same step count")


@dataclass
class RequestResult:
    """Everything the engine produced for one completed request."""

    request_id: str
    prefill_output: Optional[np.ndarray]  # (H, P, Dv) or None
    decode_outputs: np.ndarray  # (H, T, Dv), T may be 0
    retained_history: List[np.ndarray] = field(default_factory=list)  # per step (H, S_t)
    final_length: int = 0

    @property
    def steps(self) -> int:
        return len(self.retained_history)

    def retained_bytes(self) -> bytes:
        """Canonical byte encoding of every step's retained-token set.

        Used to assert backend invariance: two runs retain byte-identical
        token sets iff these encodings compare equal.
        """
        return b"".join(np.packbits(r.astype(np.uint8)).tobytes() for r in self.retained_history)


@dataclass
class _RequestState:
    request: EngineRequest
    cache: object
    prefill_output: Optional[np.ndarray] = None
    outputs: List[np.ndarray] = field(default_factory=list)
    retained_history: List[np.ndarray] = field(default_factory=list)
    next_step: int = 0

    @property
    def done(self) -> bool:
        return self.next_step >= self.request.decode_steps


class EngineScheduler:
    """FIFO admission + lockstep decode rounds over one engine."""

    def __init__(self, engine, max_active: int = 8) -> None:
        self.engine = engine
        self.max_active = max_active
        self.queued: List[EngineRequest] = []
        self.active: List[_RequestState] = []
        self.trace: List[Tuple[str, Tuple[str, ...]]] = []

    # ------------------------------------------------------------------
    def submit(self, request: EngineRequest) -> None:
        in_flight = [r.request_id for r in self.queued]
        in_flight += [s.request.request_id for s in self.active]
        if request.request_id in in_flight:
            raise ValueError(f"request id {request.request_id!r} already queued")
        self.queued.append(request)

    def _admit(self) -> None:
        while self.queued and len(self.active) < self.max_active:
            request = self.queued.pop(0)
            num_heads, _, head_dim = np.asarray(request.k).shape
            v_dim = np.asarray(request.v).shape[2]
            cache = self.engine.new_cache(num_heads, head_dim, v_dim)
            res = self.engine.prefill(cache, request.k, request.v, q=request.q_prompt)
            state = _RequestState(request=request, cache=cache)
            if res is not None:
                state.prefill_output = res.output
            self.active.append(state)
            self.trace.append(("prefill", (request.request_id,)))

    def _decode_round(self) -> None:
        round_ids = []
        for state in self.active:
            if state.done:
                continue
            t = state.next_step
            req = state.request
            res = self.engine.decode_step(
                state.cache, req.decode_q[:, t, :], req.decode_k[:, t, :], req.decode_v[:, t, :]
            )
            state.outputs.append(res.output[:, 0, :])
            state.retained_history.append(res.retained[:, 0, :])
            state.next_step = t + 1
            round_ids.append(req.request_id)
        if round_ids:
            self.trace.append(("decode_round", tuple(round_ids)))

    def _collect(self, results: Dict[str, RequestResult]) -> None:
        still_active = []
        for state in self.active:
            if not state.done:
                still_active.append(state)
                continue
            req = state.request
            if state.outputs:
                decode_outputs = np.stack(state.outputs, axis=1)  # (H, T, Dv)
            else:
                num_heads = np.asarray(req.k).shape[0]
                v_dim = np.asarray(req.v).shape[2]
                decode_outputs = np.zeros((num_heads, 0, v_dim))
            results[req.request_id] = RequestResult(
                request_id=req.request_id,
                prefill_output=state.prefill_output,
                decode_outputs=decode_outputs,
                retained_history=state.retained_history,
                final_length=state.cache.length,
            )
            self.trace.append(("finish", (req.request_id,)))
        self.active = still_active

    # ------------------------------------------------------------------
    def run(self) -> Dict[str, RequestResult]:
        """Serve all queued requests to completion; returns per-id results."""
        self.trace = []
        results: Dict[str, RequestResult] = {}
        while self.queued or self.active:
            self._admit()
            self._decode_round()
            self._collect(results)
        return results
