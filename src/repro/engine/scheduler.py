"""Request-level scheduling for :class:`repro.engine.engine.PadeEngine`.

Serving traffic arrives as *requests*: a prompt to prefill, then a stream
of decode steps.  Two schedulers batch them:

* :class:`EngineScheduler` — the original lockstep layer: FIFO admission
  while slots are free, every request owns a private dense
  :class:`~repro.engine.cache.BitPlaneKVCache`, no notion of time or
  memory pressure.  Kept as the uncontended baseline.
* :class:`ContinuousScheduler` — iteration-level (continuous) batching
  over a shared :class:`~repro.engine.cache.PlaneBlockPool`: requests
  carry arrival times, admission happens at *every* decode-round boundary
  under a pluggable :class:`SchedulingPolicy` (``fcfs`` /
  ``shortest-prompt`` / ``priority`` / ``edf`` / ``fair``), KV rows live
  in fixed-size blocks under a global token budget, and budget pressure
  preempts a policy-chosen victim (its blocks are freed; it re-prefills
  from scratch on re-admission, so its retained sets are identical to an
  uncontended run).

Multi-tenant SLO serving rides on three request attributes: ``tenant``
(the traffic source, the unit of fairness accounting), ``priority``
(the service class — higher is more urgent), and ``deadline_ms`` /
``max_queue_ms`` (completion / queueing SLOs on the scheduler clock; the
"ms" suffix marks them as wall-clock quantities once rounds are
calibrated to a hardware round latency, exactly like every other timing
in :mod:`repro.eval.serving_metrics`).  A request whose deadline passes,
whose queueing bound expires, or that is cancelled via
:meth:`ContinuousScheduler.cancel` is *aborted*: its pool blocks and
prefix references are released immediately and its
:class:`RequestResult` reports ``status="aborted"`` with the reason.

Since the offline substrate has no real model producing Q/K/V on the fly,
a request carries its decode-step tensors up front (synthesized or
replayed); the engine consumes them step by step exactly as a model
runtime would hand them over.  Time is measured in decode rounds: each
round boundary advances the clock by one unit, and arrival times are
expressed on the same axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.cache import (
    PagedBitPlaneKVCache,
    PlaneBlockPool,
    PoolExhausted,
    TierConfig,
)

__all__ = [
    "EngineRequest",
    "RequestResult",
    "deadline_was_missed",
    "EngineScheduler",
    "ContinuousScheduler",
    "SchedulingPolicy",
    "FcfsPolicy",
    "ShortestPromptPolicy",
    "PriorityPolicy",
    "EdfPolicy",
    "FairPolicy",
    "SCHEDULER_POLICY_REGISTRY",
    "SCHEDULING_POLICIES",
    "resolve_scheduling_policy",
]


@dataclass(frozen=True)
class EngineRequest:
    """One serving request: prompt K/V (+ optional prompt queries) and the
    per-step decode tensors.

    Shapes: ``k``/``v`` are ``(H, S, D)`` / ``(H, S, Dv)``;
    ``q_prompt`` is ``(H, P, D)`` or ``None``; the decode streams are
    ``(H, T, D)`` / ``(H, T, D)`` / ``(H, T, Dv)`` with a shared step
    count ``T`` (``None`` for prefill-only requests).  ``arrival_time``
    is in decode-round units; the lockstep scheduler ignores it, the
    continuous scheduler never admits a request before it.

    The SLO attributes are all optional and ignored by the lockstep
    scheduler: ``tenant`` names the traffic source (fairness accounting
    unit), ``priority`` the service class (higher = more urgent, used by
    the ``priority`` policy and by preemption victim selection),
    ``deadline_ms`` a completion SLO relative to arrival, and
    ``max_queue_ms`` a bound on time spent waiting for admission — both
    on the scheduler clock (decode rounds until calibrated).
    """

    request_id: str
    k: np.ndarray
    v: np.ndarray
    q_prompt: Optional[np.ndarray] = None
    decode_q: Optional[np.ndarray] = None
    decode_k: Optional[np.ndarray] = None
    decode_v: Optional[np.ndarray] = None
    arrival_time: float = 0.0
    tenant: str = "default"
    priority: int = 0
    deadline_ms: Optional[float] = None
    max_queue_ms: Optional[float] = None
    # Parallel sampling (n-best): per extra lineage decode streams of
    # shape (n-1, H, T, D) / (n-1, H, T, D) / (n-1, H, T, Dv).  The
    # primary decode_q/k/v stream is lineage 0; lineages share the
    # prefilled prompt via copy-on-write cache forks.
    sample_decode_q: Optional[np.ndarray] = None
    sample_decode_k: Optional[np.ndarray] = None
    sample_decode_v: Optional[np.ndarray] = None
    # Draft-verify speculative decoding: a cheap draft policy proposes
    # up to ``draft_tokens`` outputs per round and the engine's verifier
    # accepts a leading run of them at the round boundary (rollback to a
    # pre-round fork point on reject).
    speculative: bool = False
    draft_tokens: int = 4

    @property
    def decode_steps(self) -> int:
        return 0 if self.decode_q is None else self.decode_q.shape[1]

    @property
    def prompt_tokens(self) -> int:
        return int(np.asarray(self.k).shape[1])

    @property
    def total_tokens(self) -> int:
        """Peak KV footprint of one lineage: prompt plus every decode step."""
        return self.prompt_tokens + self.decode_steps

    @property
    def n_samples(self) -> int:
        """Decode lineages served for this request (1 = plain decoding)."""
        if self.sample_decode_q is None:
            return 1
        return 1 + int(self.sample_decode_q.shape[0])

    @property
    def footprint_tokens(self) -> int:
        """Worst-case token rows across all lineages, before COW sharing.

        The shared prompt is counted once; every lineage (primary
        included) adds its own decode growth.  Block-level COW slack
        (the forked partial tail each divergent lineage privatizes) is
        charged by the scheduler, which knows the block size.
        """
        return self.prompt_tokens + self.n_samples * self.decode_steps

    def __post_init__(self) -> None:
        streams = (self.decode_q, self.decode_k, self.decode_v)
        present = [s for s in streams if s is not None]
        if present and len(present) != 3:
            raise ValueError("decode_q/decode_k/decode_v must be provided together")
        if present and len({s.shape[1] for s in present}) != 1:
            raise ValueError("decode streams must share the same step count")
        samples = (self.sample_decode_q, self.sample_decode_k, self.sample_decode_v)
        sample_present = [s for s in samples if s is not None]
        if sample_present and len(sample_present) != 3:
            raise ValueError(
                "sample_decode_q/sample_decode_k/sample_decode_v must be "
                "provided together"
            )
        if sample_present:
            if len(present) != 3:
                raise ValueError("parallel sampling requires primary decode streams")
            if len({s.shape[0] for s in sample_present}) != 1:
                raise ValueError("sample decode streams must share the lineage count")
            if len({s.shape[2] for s in sample_present}) != 1 or (
                sample_present[0].shape[2] != self.decode_steps
            ):
                raise ValueError(
                    "sample decode streams must match the primary step count"
                )
        if self.speculative:
            if len(present) != 3:
                raise ValueError("speculative decoding requires decode streams")
            if sample_present:
                raise ValueError(
                    "speculative decoding and parallel sampling are mutually "
                    "exclusive on one request"
                )
            if self.draft_tokens < 1:
                raise ValueError("draft_tokens must be >= 1")
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be >= 0")
        if self.priority < 0:
            raise ValueError("priority must be >= 0")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be > 0 when set")
        if self.max_queue_ms is not None and self.max_queue_ms < 0:
            raise ValueError("max_queue_ms must be >= 0 when set")

    @property
    def deadline_at(self) -> Optional[float]:
        """Absolute completion deadline on the scheduler clock (or None)."""
        if self.deadline_ms is None:
            return None
        return self.arrival_time + self.deadline_ms


def deadline_was_missed(
    deadline_ms: Optional[float],
    status: str,
    abort_reason: Optional[str],
    arrival_time: float,
    finish_time: float,
) -> bool:
    """The one SLO-miss predicate, shared by :class:`RequestResult` and
    :class:`repro.eval.serving_metrics.RequestTiming`.

    A completion SLO was set and not met: the request was aborted by the
    *scheduler* (deadline or queue-timeout — the user never got the full
    answer in time), or it finished later than ``arrival + deadline_ms``.
    A voluntary client cancellation is not a scheduling failure and does
    not count as a miss.
    """
    if deadline_ms is None:
        return False
    if status == "aborted":
        return abort_reason != "cancelled"
    return (finish_time - arrival_time) > deadline_ms


@dataclass
class RequestResult:
    """Everything the engine produced for one completed request.

    The timing fields are populated by :class:`ContinuousScheduler` (the
    lockstep scheduler leaves them at their defaults): all are in
    decode-round units on the same clock as ``EngineRequest.arrival_time``.
    ``first_token_time`` is when the first decode token (or, for
    prefill-only requests, the prefill output) became available.

    ``status`` is ``"ok"`` for a served request and ``"aborted"`` for one
    the scheduler gave up on (``abort_reason`` one of ``"deadline"``,
    ``"queue-timeout"``, ``"cancelled"``); an aborted request keeps
    whatever outputs it produced before the abort, and its pool blocks
    were released the moment it was aborted.  ``admit_time`` is ``None``
    for a request that was never admitted (aborted while queued).
    """

    request_id: str
    prefill_output: Optional[np.ndarray]  # (H, P, Dv) or None
    decode_outputs: np.ndarray  # (H, T, Dv), T may be 0
    retained_history: List[np.ndarray] = field(default_factory=list)  # per step (H, S_t)
    # Parallel sampling: one (H, T, Dv) output stack and one retained
    # history per *extra* lineage (lineage 0 is decode_outputs above).
    sample_outputs: List[np.ndarray] = field(default_factory=list)
    sample_retained: List[List[np.ndarray]] = field(default_factory=list)
    final_length: int = 0
    arrival_time: float = 0.0
    admit_time: Optional[float] = None
    first_token_time: Optional[float] = None
    finish_time: float = 0.0
    prompt_tokens: int = 0
    preemptions: int = 0
    tenant: str = "default"
    priority: int = 0
    deadline_ms: Optional[float] = None
    status: str = "ok"
    abort_reason: Optional[str] = None

    @property
    def steps(self) -> int:
        return len(self.retained_history)

    @property
    def aborted(self) -> bool:
        return self.status == "aborted"

    @property
    def deadline_missed(self) -> bool:
        """True when a completion SLO was set and not met (see
        :func:`deadline_was_missed`)."""
        return deadline_was_missed(
            self.deadline_ms, self.status, self.abort_reason,
            self.arrival_time, self.finish_time,
        )

    def retained_bytes(self) -> bytes:
        """Canonical byte encoding of every step's retained-token set.

        Used to assert backend invariance: two runs retain byte-identical
        token sets iff these encodings compare equal.  Sample-lineage
        histories are folded in after the primary stream, so parallel
        sampling determinism is pinned by the same comparison.
        """
        histories = [self.retained_history] + list(self.sample_retained)
        return b"".join(
            np.packbits(r.astype(np.uint8)).tobytes()
            for hist in histories
            for r in hist
        )


def _stack_decode_outputs(req: EngineRequest, outputs: List[np.ndarray]) -> np.ndarray:
    """Stack per-step decode outputs into ``(H, T, Dv)`` (``T`` may be 0).

    Shared by both schedulers' result assembly so the empty-decode shape
    convention cannot drift between them again.
    """
    if outputs:
        return np.stack(outputs, axis=1)
    num_heads = np.asarray(req.k).shape[0]
    v_dim = np.asarray(req.v).shape[2]
    return np.zeros((num_heads, 0, v_dim))


@dataclass
class _Lineage:
    """One extra decode lineage of a parallel-sampling request.

    Holds the forked copy-on-write cache plus this lineage's own decode
    streams and bookkeeping — the same fields ``_RequestState`` exposes
    for the primary lineage, so a decode round treats both uniformly.
    """

    cache: object
    decode_q: np.ndarray
    decode_k: np.ndarray
    decode_v: np.ndarray
    outputs: List[np.ndarray] = field(default_factory=list)
    retained_history: List[np.ndarray] = field(default_factory=list)
    next_step: int = 0


@dataclass
class _RequestState:
    request: EngineRequest
    cache: object
    admit_index: int = 0
    prefill_output: Optional[np.ndarray] = None
    outputs: List[np.ndarray] = field(default_factory=list)
    retained_history: List[np.ndarray] = field(default_factory=list)
    next_step: int = 0
    service_charged: float = 0.0  # tenant-service tokens billed this attempt
    # Parallel sampling: one forked lineage per extra sample stream,
    # created when the prefill completes (fork shares all blocks).
    sample_lineages: Optional[List[_Lineage]] = None
    # Speculative decoding: the pre-round fork point rollback returns to,
    # plus the draft policy's per-request state (survives rollback).
    spec_anchor: object = None
    draft_state: object = None

    # The primary lineage's decode streams, so a decode round can treat
    # ``_RequestState`` and ``_Lineage`` as the same duck type.
    @property
    def decode_q(self) -> np.ndarray:
        return self.request.decode_q

    @property
    def decode_k(self) -> np.ndarray:
        return self.request.decode_k

    @property
    def decode_v(self) -> np.ndarray:
        return self.request.decode_v

    @property
    def prefilling(self) -> bool:
        """True while a chunked prefill still owes prompt tokens."""
        return getattr(self.cache, "prefill_remaining", 0) > 0

    @property
    def done(self) -> bool:
        if self.prefilling or self.next_step < self.request.decode_steps:
            return False
        if self.sample_lineages:
            steps = self.request.decode_steps
            return all(lin.next_step >= steps for lin in self.sample_lineages)
        return True

    def decode_units(self) -> List[object]:
        """Every decode lineage of this request, primary first."""
        if self.sample_lineages:
            return [self, *self.sample_lineages]
        return [self]

    def reset(self) -> None:
        """Discard all progress (preemption restarts the request)."""
        self.prefill_output = None
        self.outputs = []
        self.retained_history = []
        self.next_step = 0
        self.service_charged = 0.0
        self.sample_lineages = None
        self.spec_anchor = None
        self.draft_state = None


class EngineScheduler:
    """FIFO admission + lockstep decode rounds over one engine."""

    def __init__(self, engine, max_active: int = 8) -> None:
        self.engine = engine
        self.max_active = max_active
        self.queued: List[EngineRequest] = []
        self.active: List[_RequestState] = []
        self.trace: List[Tuple[str, Tuple[str, ...]]] = []

    # ------------------------------------------------------------------
    def submit(self, request: EngineRequest) -> None:
        in_flight = [r.request_id for r in self.queued]
        in_flight += [s.request.request_id for s in self.active]
        if request.request_id in in_flight:
            raise ValueError(f"request id {request.request_id!r} already queued")
        self.queued.append(request)

    def _admit(self) -> None:
        while self.queued and len(self.active) < self.max_active:
            request = self.queued.pop(0)
            num_heads, _, head_dim = np.asarray(request.k).shape
            v_dim = np.asarray(request.v).shape[2]
            cache = self.engine.new_cache(num_heads, head_dim, v_dim)
            res = self.engine.prefill(
                cache,
                request.k,
                request.v,
                q=request.q_prompt,
                total_tokens=request.total_tokens,
            )
            state = _RequestState(request=request, cache=cache)
            if res is not None:
                state.prefill_output = res.output
            self.active.append(state)
            self.trace.append(("prefill", (request.request_id,)))

    def _decode_round(self) -> int:
        """One lockstep round: every unfinished request advances one step.

        Returns the number of requests that advanced (the same signature
        as :meth:`ContinuousScheduler._decode_round`).  The whole round
        goes through :meth:`~repro.engine.engine.PadeEngine.decode_step_batch`,
        so a batch-capable policy serves it as one fused filter call; the
        engine falls back to the per-request loop otherwise, with
        byte-identical results either way.
        """
        todo = [s for s in self.active if not s.done]
        if not todo:
            return 0
        steps = [
            (
                s.cache,
                s.request.decode_q[:, s.next_step, :],
                s.request.decode_k[:, s.next_step, :],
                s.request.decode_v[:, s.next_step, :],
            )
            for s in todo
        ]
        results = self.engine.decode_step_batch(steps)
        round_ids = []
        for state, res in zip(todo, results):
            state.outputs.append(res.output[:, 0, :])
            state.retained_history.append(res.retained[:, 0, :])
            state.next_step += 1
            round_ids.append(state.request.request_id)
        self.trace.append(("decode_round", tuple(round_ids)))
        return len(round_ids)

    def _collect(self, results: Dict[str, RequestResult]) -> None:
        still_active = []
        for state in self.active:
            if not state.done:
                still_active.append(state)
                continue
            req = state.request
            decode_outputs = _stack_decode_outputs(req, state.outputs)
            results[req.request_id] = RequestResult(
                request_id=req.request_id,
                prefill_output=state.prefill_output,
                decode_outputs=decode_outputs,
                retained_history=state.retained_history,
                final_length=state.cache.length,
                prompt_tokens=req.prompt_tokens,
            )
            self.trace.append(("finish", (req.request_id,)))
        self.active = still_active

    # ------------------------------------------------------------------
    def run(self) -> Dict[str, RequestResult]:
        """Serve all queued requests to completion; returns per-id results."""
        self.trace = []
        results: Dict[str, RequestResult] = {}
        while self.queued or self.active:
            self._admit()
            self._decode_round()
            self._collect(results)
        return results


class SchedulingPolicy:
    """Pluggable admission ordering + preemption victim selection.

    The continuous scheduler consults its policy at two decision points:

    * :meth:`admission_key` — queued-but-arrived requests are admitted in
      ascending key order, recomputed at every round boundary (keys may
      depend on the clock, e.g. aging, or on scheduler state, e.g.
      per-tenant service).  Ties must always break on the submission
      ``order`` so replays are deterministic.
    * :meth:`select_victim` — under pool pressure, which active request
      loses its blocks.  The base rule is the PR-2 invariant (youngest
      admission first: it has made the least progress, so restarting it
      wastes the least work); SLO-aware policies use
      :meth:`priority_victim` instead — evict the lowest priority class
      first, inside a class prefer a request whose deadline survives a
      restart over one the eviction would doom, then youngest.  A
      deadline-endangered request is therefore never chosen while a
      lower class (or a safe peer) is available.
    """

    name: str = "base"

    def admission_key(self, scheduler: "ContinuousScheduler", entry):
        order, req = entry
        return (req.arrival_time, order)

    def select_victim(self, scheduler: "ContinuousScheduler", candidates):
        return max(candidates, key=lambda s: s.admit_index)

    # -- shared helpers -------------------------------------------------
    @staticmethod
    def deadline_endangered(scheduler: "ContinuousScheduler", state) -> bool:
        """Would restarting ``state`` now plausibly miss its deadline?

        A preempted request restarts from scratch, so it needs at least
        its full decode run plus a re-prefill before its absolute
        deadline.  The re-prefill cost follows the scheduler's timing
        model: one round under legacy instant prefill, ``ceil(prompt /
        per-round tokens)`` rounds under the round-token budget (the
        chunk size when chunking, the whole round budget otherwise).
        Still an optimistic bound — queueing delay after the restart is
        unknowable here — so "endangered" errs toward sparing the
        request.  No deadline = never endangered.
        """
        deadline = state.request.deadline_at
        if deadline is None:
            return False
        if scheduler.round_token_budget:
            per_round = scheduler.chunk_tokens or scheduler.round_token_budget
            reprefill = -(-state.request.prompt_tokens // per_round)
        else:
            reprefill = 1
        # Restart-from-scratch: every decode step is redone, regardless of
        # how far this attempt got.
        remaining = state.request.decode_steps + reprefill
        return (deadline - scheduler.time) <= remaining

    def priority_victim(self, scheduler: "ContinuousScheduler", candidates):
        def key(state):
            endangered = self.deadline_endangered(scheduler, state)
            return (state.request.priority, 1 if endangered else 0, -state.admit_index)

        return min(candidates, key=key)


class FcfsPolicy(SchedulingPolicy):
    """Arrival order, submission order on ties (the PR-2 baseline)."""

    name = "fcfs"


class ShortestPromptPolicy(SchedulingPolicy):
    """Shortest prompt first (cheap admission), arrival on ties."""

    name = "shortest-prompt"

    def admission_key(self, scheduler, entry):
        order, req = entry
        return (req.prompt_tokens, req.arrival_time, order)


class PriorityPolicy(SchedulingPolicy):
    """Strict priority classes with linear aging against starvation.

    A request's effective priority is ``priority + waited / aging_rounds``
    — every ``aging_rounds`` rounds spent queued promote it by one class,
    so a steady stream of high-class traffic cannot starve a low-class
    request forever.  ``aging_rounds=0`` disables aging (pure strict
    classes).  Preemption is priority-aware (:meth:`priority_victim`).
    """

    name = "priority"

    def __init__(self, aging_rounds: float = 32.0) -> None:
        if aging_rounds < 0:
            raise ValueError("aging_rounds must be >= 0")
        self.aging_rounds = float(aging_rounds)

    def admission_key(self, scheduler, entry):
        order, req = entry
        waited = max(0.0, scheduler.time - req.arrival_time)
        aged = req.priority + (waited / self.aging_rounds if self.aging_rounds else 0.0)
        return (-aged, req.arrival_time, order)

    def select_victim(self, scheduler, candidates):
        return self.priority_victim(scheduler, candidates)


class EdfPolicy(SchedulingPolicy):
    """Earliest absolute deadline first; deadline-free requests queue
    FCFS behind every deadlined one.  Preemption is priority-aware."""

    name = "edf"

    def admission_key(self, scheduler, entry):
        order, req = entry
        deadline = req.deadline_at
        return (np.inf if deadline is None else deadline, req.arrival_time, order)

    def select_victim(self, scheduler, candidates):
        return self.priority_victim(scheduler, candidates)


class FairPolicy(SchedulingPolicy):
    """Per-tenant weighted fair queueing over delivered tokens.

    The scheduler accounts every token it serves (prompt tokens written
    at prefill, one per decode step) to the request's tenant; admission
    always picks the arrived request of the tenant with the least
    *normalized* service ``served_tokens / weight`` (weights from
    ``ContinuousScheduler(tenant_weights=...)``, default 1.0 — a tenant
    with weight 2 is entitled to twice the tokens).  An adversarial
    tenant flooding the queue therefore cannot starve the others: its
    own service balloons and every other tenant wins admission first.
    Preemption is priority-aware.
    """

    name = "fair"

    def admission_key(self, scheduler, entry):
        order, req = entry
        return (scheduler.normalized_service(req.tenant), req.arrival_time, order)

    def select_victim(self, scheduler, candidates):
        return self.priority_victim(scheduler, candidates)


#: name -> policy class; instantiate (or pass an instance) to customize.
SCHEDULER_POLICY_REGISTRY = {
    "fcfs": FcfsPolicy,
    "shortest-prompt": ShortestPromptPolicy,
    "priority": PriorityPolicy,
    "edf": EdfPolicy,
    "fair": FairPolicy,
}

#: Admission orderings the continuous scheduler understands.
SCHEDULING_POLICIES = tuple(SCHEDULER_POLICY_REGISTRY)


def resolve_scheduling_policy(policy) -> SchedulingPolicy:
    """Turn a registry name or :class:`SchedulingPolicy` into an instance."""
    if isinstance(policy, SchedulingPolicy):
        return policy
    if policy in SCHEDULER_POLICY_REGISTRY:
        return SCHEDULER_POLICY_REGISTRY[policy]()
    raise ValueError(f"unknown policy {policy!r}; choose from {SCHEDULING_POLICIES}")


@dataclass
class _Timing:
    """Per-request clock marks that survive preemption/restart.

    ``admit_time`` and ``first_token_time`` keep their *first* values
    across a preemption: decode replay is deterministic (same request
    tensors, same retained sets), so tokens streamed before eviction stay
    valid and TTFT measures when the first of them actually left the
    engine.  The eviction stall is not hidden — it lands in TPOT and
    ``finish_time``, which only the final (successful) pass sets.
    """

    arrival_time: float
    admit_time: Optional[float] = None
    first_token_time: Optional[float] = None
    preemptions: int = 0
    # When the current wait for admission started: arrival at first, the
    # preemption instant after a restart — the clock max_queue_ms runs on.
    enqueued_at: float = 0.0

    def __post_init__(self) -> None:
        self.enqueued_at = self.arrival_time


class ContinuousScheduler:
    """Iteration-level batching over a shared paged bit-plane pool.

    Every loop iteration is one decode round (one clock unit):

    1. **admission** — queued requests whose ``arrival_time`` has passed
       are considered in policy order (see :class:`SchedulingPolicy`:
       ``fcfs`` arrival order, ``shortest-prompt`` prompt length,
       ``priority`` strict classes with aging, ``edf`` earliest deadline,
       ``fair`` least-served tenant).  Before admission, requests whose
       SLO already expired (completion deadline passed, or
       ``max_queue_ms`` exceeded while queued) and cancelled requests
       are *aborted* — reported immediately, blocks freed, never
       admitted.  A request is admitted
       while a slot is free (< ``max_active``) and the pool can hold its
       prompt *plus* one headroom block per unfinished active request (so
       admitting it cannot immediately preempt the running batch).
       Admission prefills into a :class:`PagedBitPlaneKVCache` drawn from
       the shared pool.
    2. **decode round** — every active request advances one step.  If an
       append needs a block and the pool is exhausted, the policy picks a
       preemption victim (base policies: the *youngest* admission;
       SLO-aware policies: lowest priority class first, never a
       deadline-endangered request while a safer choice exists): its
       blocks are released and it rejoins the queue to re-prefill from
       scratch later.  Restart-from-scratch keeps retained sets
       bit-identical to an uncontended run — the cache contents depend
       only on the request's own tensors, never on who shared the pool.
       Active requests whose deadline passes mid-flight are aborted at
       the next round boundary, freeing their blocks (and any partially
       attached prefix references) immediately.
    3. **completion** — finished requests release their blocks and report
       timing (arrival/admit/first-token/finish) alongside their outputs.

    The pool is created lazily from the first admitted request's shapes;
    all requests in one run must share ``(H, D, Dv)`` (one model).  With
    every arrival at 0, the ``fcfs`` policy and an uncontended pool, the
    event trace reduces exactly to :class:`EngineScheduler`'s.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.engine.PadeEngine` to serve on.
    max_active:
        Decode-round batch width.
    token_budget:
        Global KV budget in tokens, rounded down to whole blocks.
    block_size:
        Tokens per pool block.
    policy:
        Admission ordering + victim selection: a name from
        :data:`SCHEDULING_POLICIES` or a :class:`SchedulingPolicy`
        instance (e.g. ``PriorityPolicy(aging_rounds=16)``).
    tenant_weights:
        Per-tenant fair-share weights for the ``fair`` policy (default
        1.0 each); ignored by the other policies.
    admission:
        ``"continuous"`` admits at every round boundary; ``"drain"`` only
        when the active set is empty — the static-batching baseline the
        serving benchmark compares against.
    prefix_sharing:
        Content-hash prompt-prefix sharing across requests: full prompt
        blocks with a registered chain key are attached by reference
        (copy-on-write) instead of re-allocated and re-decomposed.
        Retained sets are unchanged — a hit block is byte-identical to
        what the request would have written itself.
    round_token_budget:
        Tokens one decode round can process (0 = legacy instant-prefill
        timing).  When set, a prompt's *missed* tokens cost rounds:
        without chunking the oldest prefill owns whole rounds exclusively
        (decode stalls — the motivation for chunked prefill); with
        ``chunk_tokens`` set, decode runs first every round and the
        leftover budget is split over prefilling requests in admission
        order, at most ``chunk_tokens`` each.
    chunk_tokens:
        Per-request, per-round prefill chunk size (requires
        ``round_token_budget``); 0 keeps prefills unchunked.
    batched_decode:
        Fuse each decode round's filter across the whole active set
        (default on).  Only engaged when the engine's attention policy
        declares ``supports_batched_decode`` (PADE does; the software
        baselines fall back to the per-request loop).  Results — outputs,
        retained sets, timings, traces, preemption decisions — are
        byte-identical to the per-request loop either way (DESIGN.md
        §13), so this is purely a throughput knob.
    tiering:
        Two-tier plane memory (DESIGN.md §16): ``True`` / a
        :class:`~repro.engine.cache.TierConfig` arms the spill ladder —
        under pool pressure, low-order bit planes of cold unprotected
        blocks are spilled to the secondary tier (spill → deeper spill)
        and preemption fires only when even fully-spilled state cannot
        make room.  Spilled planes are prefetched back each round within
        ``restore_blocks_per_round``; restore traffic is charged against
        the round token budget when one is set.  Requires the plane-
        consuming ``pade`` attention policy — the software baselines
        score on float keys and would not observe the degradation, so
        tiering them would cheat the budget.  ``None``/``False`` (the
        default) is byte-identical to the pre-tiering scheduler.
    draft_policy:
        The cheap draft for speculative requests (DESIGN.md §17): a name
        or instance of a policy declaring ``draftable`` (``streaming-llm``,
        ``topk-oracle``).  Resolved lazily — only when a speculative
        request is actually submitted, which also requires the engine to
        serve the ``pade`` verifier policy.
    spec_accept_tol:
        Relative L2 tolerance for accepting a draft token: a draft
        output within ``tol * ||verify||`` of the verifier's output for
        the same position is accepted; the first reject ends the
        accepted run (the verifier's own output is emitted there).
    """

    def __init__(
        self,
        engine,
        max_active: int = 8,
        token_budget: int = 4096,
        block_size: int = 16,
        policy="fcfs",
        admission: str = "continuous",
        prefix_sharing: bool = False,
        chunk_tokens: int = 0,
        round_token_budget: int = 0,
        tenant_weights: Optional[Dict[str, float]] = None,
        batched_decode: bool = True,
        tiering=None,
        draft_policy="streaming-llm",
        spec_accept_tol: float = 0.05,
    ) -> None:
        self.policy_obj = resolve_scheduling_policy(policy)
        if admission not in ("continuous", "drain"):
            raise ValueError(f"admission must be 'continuous' or 'drain', got {admission!r}")
        if max_active < 1:
            raise ValueError("max_active must be >= 1")
        if chunk_tokens < 0 or round_token_budget < 0:
            raise ValueError("chunk_tokens and round_token_budget must be >= 0")
        if spec_accept_tol < 0:
            raise ValueError("spec_accept_tol must be >= 0")
        if chunk_tokens and not round_token_budget:
            raise ValueError("chunk_tokens requires round_token_budget (the per-round split)")
        if tiering:
            self.tiering = tiering if isinstance(tiering, TierConfig) else TierConfig()
            attn_name = getattr(getattr(engine, "policy", None), "name", None)
            if attn_name != "pade":
                raise ValueError(
                    f"tiering requires the plane-consuming 'pade' attention policy "
                    f"(got {attn_name!r}): baseline policies score on float keys, "
                    f"so spilled planes would free budget without degrading them"
                )
        else:
            self.tiering = None
        self.engine = engine
        self.max_active = max_active
        self.token_budget = token_budget
        self.block_size = block_size
        self.policy = self.policy_obj.name
        self.admission = admission
        self.prefix_sharing = bool(prefix_sharing)
        self.chunk_tokens = int(chunk_tokens)
        self.round_token_budget = int(round_token_budget)
        self.batched_decode = bool(batched_decode)
        self.tenant_weights: Dict[str, float] = dict(tenant_weights or {})
        self.pool: Optional[PlaneBlockPool] = None
        # Bounded-footprint attention policies (H2O's eviction budget,
        # StreamingLLM's sink+window) switch admission to charged-footprint
        # accounting: each request is charged its policy's peak resident
        # tokens against the token budget instead of its dense context.
        attn_policy = getattr(engine, "policy", None)
        self._charged = attn_policy is not None and not attn_policy.dense_footprint
        # Charged mode keeps every key physically resident (retained sets
        # must stay exactly reproducible) while *admission* is billed the
        # policy's bounded footprint; the physical backing store is sized
        # to the dense worst case of everything submitted so far, and the
        # token budget lives on as the accounting ceiling — the capacity a
        # bounded-cache deployment would actually provision.  Accumulated
        # in :meth:`submit` so incremental (async) submission sizes the
        # pool the same way a batch submit does.
        self._physical_tokens = 0
        self.time = 0.0
        self.pending: List[Tuple[int, EngineRequest]] = []  # (submit order, request)
        self.active: List[_RequestState] = []
        self.trace: List[Tuple[str, Tuple[str, ...]]] = []
        self.events: List[Tuple[float, str, Tuple[str, ...]]] = []  # timed trace
        self.occupancy: List[Tuple[float, int, int]] = []  # (time, used tokens, active)
        self.prefix_hit_blocks = 0  # prompt blocks attached from the prefix index
        self.prefix_miss_blocks = 0  # shareable prompt blocks written fresh
        self.chunk_stall_rounds = 0  # rounds where a prefill got zero budget
        self.decode_blocked_rounds = 0  # rounds an exclusive prefill stalled decode
        self.spill_reliefs = 0  # PoolExhausted events resolved by spilling (no preempt)
        self.tier_prefetch_restores = 0  # blocks restored by the per-round prefetch pass
        self.degraded_tokens = 0  # decode tokens produced while any block was degraded
        self.decoded_tokens = 0  # all decode tokens this scheduler produced
        # Speculative decoding counters (DESIGN.md §17): rounds, tokens the
        # draft proposed, tokens the verifier accepted, tokens emitted
        # (accepted run + the verifier's bonus token at a reject).
        self.draft_policy_name = (
            draft_policy if isinstance(draft_policy, str) else draft_policy.name
        )
        self._draft_policy_arg = draft_policy
        self._draft_policy = None  # resolved on the first speculative request
        self.spec_accept_tol = float(spec_accept_tol)
        self.spec_rounds = 0
        self.spec_drafted_tokens = 0
        self.spec_accepted_tokens = 0
        self.spec_emitted_tokens = 0
        self.spec_rollbacks = 0  # rounds that rewound to the fork point
        # Parallel-sampling pool amplification: unique blocks the whole
        # lineage set held at completion vs what n independent caches of
        # the primary lineage's size would have held.
        self.parallel_requests = 0
        self.parallel_unique_blocks = 0
        self.parallel_single_blocks = 0
        self.parallel_replicated_blocks = 0
        self.planes_hist: Dict[int, int] = {}  # residency level -> block-round samples
        self.tier_hist_rounds = 0  # rounds the histogram was sampled over
        self.tenant_service: Dict[str, float] = {}  # tenant -> tokens served
        self._cancelled: set = set()  # request ids to abort at the next boundary
        self._timings: Dict[str, _Timing] = {}
        self._submit_seq = 0
        self._admit_seq = 0
        self._results: Dict[str, RequestResult] = {}
        # Per-token streaming hook for the async front-end: called as
        # ``token_sink(request_id, step_index, output)`` the moment a
        # decode step's output is flushed.  Replay after a preemption
        # recomputes byte-identical tokens; the high-water marks in
        # ``_streamed`` keep them from being streamed twice.
        self.token_sink = None
        self._streamed: Dict[str, int] = {}

    @property
    def _budgeted(self) -> bool:
        """True when the round-token prefill cost model is active."""
        return self.round_token_budget > 0

    # ------------------------------------------------------------------
    def submit(self, request: EngineRequest) -> None:
        in_flight = [r.request_id for _, r in self.pending]
        in_flight += [s.request.request_id for s in self.active]
        if request.request_id in in_flight:
            raise ValueError(f"request id {request.request_id!r} already queued")
        if request.speculative:
            # The verifier is the engine's own policy: accept/reject is
            # only meaningful when it is the plane-consuming PADE filter
            # (the draft is a *different*, cheaper selection over the
            # same pool; a baseline verifying a baseline proves nothing).
            attn_name = getattr(getattr(self.engine, "policy", None), "name", None)
            if attn_name != "pade":
                raise ValueError(
                    f"speculative decoding requires the 'pade' verifier policy "
                    f"(engine serves {attn_name!r})"
                )
            self._resolve_draft()
        if request.n_samples > 1:
            # Lineage caches are COW forks, and a fork carries blocks
            # only — not the donor's policy_state.  Stateless PADE
            # decodes each lineage correctly; a stateful baseline (H2O
            # accumulators) would silently restart its statistics per
            # fork, so parallel sampling is PADE-only.
            attn_name = getattr(getattr(self.engine, "policy", None), "name", None)
            if attn_name != "pade":
                raise ValueError(
                    f"parallel sampling requires the 'pade' attention policy "
                    f"(engine serves {attn_name!r})"
                )
        self.pending.append((self._submit_seq, request))
        self._submit_seq += 1
        if self._charged or self.tiering is not None:
            # Tiered mode reuses the charged-footprint oversizing: the
            # backing store is sized to the dense worst case while the
            # token budget lives on as the primary tier's plane-unit
            # ceiling — spilled planes free accounting units, and the
            # physical rows to admit into always exist.
            bs = self.block_size
            self._physical_tokens += self._dense_blocks(request) * bs
        self._timings.setdefault(request.request_id, _Timing(arrival_time=request.arrival_time))

    def _resolve_draft(self):
        """Instantiate the draft policy on first speculative use."""
        if self._draft_policy is None:
            from repro.attention.policy import resolve_draft_policy

            self._draft_policy = resolve_draft_policy(self._draft_policy_arg)
            self.draft_policy_name = self._draft_policy.name
        return self._draft_policy

    def fits_budget(self, request: EngineRequest) -> bool:
        """Whether ``request`` could ever be served under the token budget.

        The same predicate :meth:`_check_footprints` enforces at run
        start; the async front-end uses it to reject an oversized
        submission with an error reply instead of a crashed engine loop.
        """
        return self._charge_blocks(request) <= self.token_budget // self.block_size

    def load_stats(self) -> Dict[str, float]:
        """Lightweight load snapshot for routers and monitors.

        The cluster front-end polls this through the ``stats`` protocol
        message to drive least-loaded routing and drain detection; every
        field is a plain number so the snapshot serializes as-is.
        """
        pool = self.pool
        used = pool.used_block_count if pool is not None else 0
        total = pool.num_blocks if pool is not None else self.token_budget // self.block_size
        return {
            "time": float(self.time),
            "pending": len(self.pending),
            "active": len(self.active),
            "in_flight": len(self.pending) + len(self.active),
            "used_blocks": int(used),
            "total_blocks": int(total),
            "completed": len(self._results),
            "prefix_hit_blocks": int(self.prefix_hit_blocks),
            "prefix_miss_blocks": int(self.prefix_miss_blocks),
        }

    def cancel(self, request_id: str) -> None:
        """Mark a request for abort at the next round boundary.

        Safe at any point of the request's life: queued requests are
        dropped before admission, active ones release their blocks (and
        any partially attached prefix references) without finishing.
        Unknown ids are remembered too, so a cancel racing a submit wins.
        A cancel landing after the request already finished its work is
        too late — the result stands.  Pending cancellations are
        consumed by the run they take effect in (and cleared when a run
        ends), so an id reused by a later batch starts clean.
        """
        self._cancelled.add(request_id)

    # ------------------------------------------------------------------
    def normalized_service(self, tenant: str) -> float:
        """Tokens served to ``tenant`` divided by its fair-share weight."""
        weight = self.tenant_weights.get(tenant, 1.0)
        if weight <= 0:
            raise ValueError(f"tenant weight for {tenant!r} must be > 0")
        return self.tenant_service.get(tenant, 0.0) / weight

    def _charge_service(self, state: _RequestState, tokens: float) -> None:
        """Bill ``tokens`` of service to the request's tenant.

        The per-attempt total is remembered on the state so a preemption
        can roll it back (:meth:`_preempt_one`) — fair queueing accounts
        *delivered* tokens, and a preempted attempt delivers nothing.
        """
        if tokens:
            tenant = state.request.tenant
            self.tenant_service[tenant] = (
                self.tenant_service.get(tenant, 0.0) + float(tokens)
            )
            state.service_charged += float(tokens)

    # ------------------------------------------------------------------
    def _record(self, event: str, ids: Tuple[str, ...]) -> None:
        self.trace.append((event, ids))
        self.events.append((self.time, event, ids))

    def _ensure_pool(self, request: EngineRequest) -> PlaneBlockPool:
        num_heads, _, head_dim = np.asarray(request.k).shape
        v_dim = np.asarray(request.v).shape[2]
        if self.pool is None:
            oversized = self._charged or self.tiering is not None
            self.pool = PlaneBlockPool(
                num_heads,
                head_dim,
                v_dim,
                bits=self.engine.config.bits,
                block_size=self.block_size,
                token_budget=(
                    max(self.token_budget, self._physical_tokens)
                    if oversized
                    else self.token_budget
                ),
                tiering=self.tiering,
                plane_budget_blocks=self.token_budget // self.block_size,
            )
        elif (self.pool.num_heads, self.pool.head_dim, self.pool.v_dim) != (
            num_heads,
            head_dim,
            v_dim,
        ):
            raise ValueError(
                f"request {request.request_id!r} shape ({num_heads}, {head_dim}, {v_dim}) "
                f"does not match the pool's ({self.pool.num_heads}, "
                f"{self.pool.head_dim}, {self.pool.v_dim})"
            )
        return self.pool

    def _dense_blocks(self, req: EngineRequest) -> int:
        """Worst-case pool blocks across all lineages (COW divergence paid).

        The full prompt blocks are shared by every lineage and counted
        once; each lineage then privatizes at most one forked partial
        tail and grows it by its own decode steps.  A speculative
        request additionally holds the rollback anchor's tail alongside
        the working tail for the length of one draft round.
        """
        bs = self.block_size
        shared = req.prompt_tokens // bs
        tail = req.prompt_tokens - shared * bs
        per_lineage = -(-(tail + req.decode_steps) // bs) if (tail or req.decode_steps) else 0
        blocks = shared + req.n_samples * per_lineage
        if req.speculative:
            blocks += 1
        return max(1, blocks)

    def _charge_tokens(self, req: EngineRequest) -> int:
        """Tokens this request is charged against the budget (policy view).

        Charged-footprint (bounded) policies admit on the *deduplicated*
        charged set of a parallel-sampling request: the shared prompt
        footprint is charged once, and each extra lineage adds only its
        private decode growth plus one block of copy-on-write slack —
        charging every forked child its full footprint would spuriously
        exhaust the budget for blocks that are physically shared.
        """
        policy = getattr(self.engine, "policy", None)
        if req.n_samples == 1 and not req.speculative:
            # Plain request: the exact legacy accounting, unchanged.
            if policy is None:
                return req.total_tokens
            return min(
                req.total_tokens,
                policy.cache_footprint(req.prompt_tokens, req.decode_steps),
            )
        dense = self._dense_blocks(req) * self.block_size
        if policy is None:
            return dense
        charge = policy.cache_footprint(req.prompt_tokens, req.decode_steps)
        charge += (req.n_samples - 1) * (req.decode_steps + self.block_size)
        return min(dense, charge)

    def _charge_blocks(self, req: EngineRequest) -> int:
        return max(1, -(-self._charge_tokens(req) // self.block_size))

    def _check_footprints(self) -> None:
        num_blocks = self.token_budget // self.block_size
        for _, req in self.pending:
            charge = self._charge_tokens(req)
            needed = max(1, -(-charge // self.block_size))
            if needed > num_blocks:
                raise ValueError(
                    f"request {req.request_id!r} needs {charge} tokens "
                    f"({needed} blocks); the budget holds only {num_blocks} blocks "
                    f"of {self.block_size} — it could never be served"
                )

    # ------------------------------------------------------------------
    def _admit(self) -> None:
        if self.admission == "drain" and self.active:
            return
        while len(self.active) < self.max_active:
            arrived = [e for e in self.pending if e[1].arrival_time <= self.time]
            if not arrived:
                return
            entry = min(arrived, key=lambda e: self.policy_obj.admission_key(self, e))
            request = entry[1]
            pool = self._ensure_pool(request)
            if self._charged:
                # Charged-footprint admission: the request reserves its
                # policy's peak resident tokens for its whole lifetime, so
                # no headroom is needed — a bounded policy never grows past
                # its charge, which is exactly why it packs more concurrent
                # requests into the same budget than a dense one.
                budget_blocks = self.token_budget // self.block_size
                used = sum(
                    self._charge_blocks(s.request) for s in self.active if not s.done
                )
                if budget_blocks - used < self._charge_blocks(request):
                    return
            elif self.tiering is not None:
                blocks_needed = max(1, -(-request.prompt_tokens // pool.block_size))
                headroom = sum(1 for s in self.active if not s.done)
                # Tiered admission counts plane units, not physical blocks
                # (the backing store is oversized): a deficit triggers the
                # spill ladder *before* declining — admitting at degraded
                # precision instead of queueing is the whole TTFT win.
                units_needed = (blocks_needed + headroom) * pool.bits
                if pool.plane_units_free < units_needed and not self._relieve_pressure(
                    units_needed, blocks_needed
                ):
                    return
            else:
                blocks_needed = max(1, -(-request.prompt_tokens // pool.block_size))
                # One headroom block per unfinished active request keeps this
                # admission from forcing a preemption in the very next round.
                # (Worst case: prefix hits only lower the real demand.)
                headroom = sum(1 for s in self.active if not s.done)
                if pool.free_block_count < blocks_needed + headroom:
                    return
            self.pending.remove(entry)
            cache = PagedBitPlaneKVCache(pool, prefix_sharing=self.prefix_sharing)
            state = _RequestState(request=request, cache=cache, admit_index=self._admit_seq)
            self._admit_seq += 1
            timing = self._timings[request.request_id]
            if timing.admit_time is None:
                timing.admit_time = self.time
            if self._budgeted:
                # Bookkeeping only: shared prefix blocks attach for free,
                # the missed tokens are paid for round by round.
                self.engine.prefill_begin(cache, request.k, request.v)
                self.active.append(state)
                self._record("admit", (request.request_id,))
                if not state.prefilling:  # full prefix hit: nothing left to pay
                    self._finish_prefill(state)
            else:
                res = self.engine.prefill(
                    cache,
                    request.k,
                    request.v,
                    q=request.q_prompt,
                    total_tokens=request.total_tokens,
                )
                if res is not None:
                    state.prefill_output = res.output
                self.active.append(state)
                self._account_prefix(cache)
                # Bill only the prompt tokens actually *written* —
                # prefix-hit blocks attached by reference cost the pool
                # nothing, exactly as the chunked path accounts them.
                written = request.prompt_tokens - (
                    cache.prefix_hit_blocks * self.block_size
                )
                self._charge_service(state, max(0, written))
                if request.decode_steps == 0 and timing.first_token_time is None:
                    # Prefill-only: the prompt output is the first (and last) token.
                    timing.first_token_time = self.time + 1.0
                self._record("prefill", (request.request_id,))
                self._setup_lineages(state)

    def _account_prefix(self, cache) -> None:
        self.prefix_hit_blocks += cache.prefix_hit_blocks
        self.prefix_miss_blocks += cache.prefix_miss_blocks

    def _finish_prefill(self, state: _RequestState) -> None:
        """Seal a budgeted prefill: prompt-query attend + timing marks."""
        request = state.request
        res = self.engine.prefill_finish(
            state.cache, q=request.q_prompt, total_tokens=request.total_tokens
        )
        if res is not None:
            state.prefill_output = res.output
        # Counted at completion so late-binding hits (blocks attached
        # chunk by chunk as a concurrent donor registers them) are seen.
        self._account_prefix(state.cache)
        timing = self._timings[request.request_id]
        if request.decode_steps == 0 and timing.first_token_time is None:
            timing.first_token_time = self.time + 1.0
        self._record("prefill", (request.request_id,))
        self._setup_lineages(state)

    def _setup_lineages(self, state: _RequestState) -> None:
        """Arm the request's serving mode once its prompt is resident.

        Parallel sampling: fork one copy-on-write cache per extra sample
        stream — zero allocation (every block is shared by reference),
        so this can never raise; divergence is paid block by block when
        a lineage first appends into the shared tail.  Speculative
        decoding: create the draft policy's per-request state and hang
        it on the cache (the PADE verifier keeps no per-request state,
        so the slot is free).
        """
        req = state.request
        if req.n_samples > 1 and state.sample_lineages is None:
            lineages = []
            for s in range(req.n_samples - 1):
                clone = state.cache.fork()
                clone.policy_state = self.engine.policy.new_state(
                    clone, total_tokens=req.total_tokens
                )
                lineages.append(
                    _Lineage(
                        cache=clone,
                        decode_q=req.sample_decode_q[s],
                        decode_k=req.sample_decode_k[s],
                        decode_v=req.sample_decode_v[s],
                    )
                )
            state.sample_lineages = lineages
            self._record("fork", (req.request_id,))
        if req.speculative and state.draft_state is None:
            state.draft_state = self._resolve_draft().new_state(
                state.cache, total_tokens=req.total_tokens
            )
            state.cache.policy_state = state.draft_state

    def _release_request(self, state: _RequestState) -> None:
        """Free every cache this request holds: all lineages + anchor."""
        state.cache.release()
        if state.sample_lineages:
            for lin in state.sample_lineages:
                lin.cache.release()
        state.sample_lineages = None
        if state.spec_anchor is not None:
            state.spec_anchor.release()
            state.spec_anchor = None
        state.draft_state = None

    def _live_caches(self, state: _RequestState):
        """Every cache ``state`` currently holds blocks through."""
        yield state.cache
        if state.sample_lineages:
            for lin in state.sample_lineages:
                yield lin.cache
        if state.spec_anchor is not None:
            yield state.spec_anchor

    def _preempt_one(self) -> None:
        # Never evict a finished-but-uncollected request: its blocks are
        # freed by _collect at the end of this round anyway, and a
        # preemption would discard fully computed outputs just to redo
        # them.  The raiser itself is never done, so candidates exist.
        candidates = [s for s in self.active if not s.done]
        victim = self.policy_obj.select_victim(self, candidates)
        self.active.remove(victim)
        self._release_request(victim)
        # Un-bill the discarded attempt: fair queueing accounts delivered
        # tokens, and everything this attempt produced is thrown away
        # (the replay will be billed when it actually delivers).
        if victim.service_charged:
            tenant = victim.request.tenant
            self.tenant_service[tenant] = max(
                0.0, self.tenant_service.get(tenant, 0.0) - victim.service_charged
            )
        victim.reset()
        timing = self._timings[victim.request.request_id]
        timing.preemptions += 1
        timing.enqueued_at = self.time  # max_queue_ms clock restarts here
        self.pending.append((self._submit_seq, victim.request))
        self._submit_seq += 1
        self._record("preempt", (victim.request.request_id,))

    # ------------------------------------------------------------------
    # Two-tier pressure ladder (DESIGN.md §16).
    def _relieve_pressure(
        self, units_needed: Optional[int] = None, blocks_needed: int = 1, avoid=()
    ) -> bool:
        """Walk the spill ladder until ``units_needed`` plane units are free.

        Spills cold, unprotected blocks level by level (half residency,
        then the floor) and returns ``True`` once the primary tier has
        room; ``False`` means even fully-spilled state cannot make room —
        the caller falls back to preemption.  ``avoid`` lists blocks the
        caller is about to write into (a write target must stay resident,
        so spilling it would just bounce back).  Physical exhaustion
        (fewer than ``blocks_needed`` free backing blocks) is not
        spillable and fails fast.
        """
        pool = self.pool
        if pool is None or pool.tiering is None:
            return False
        if pool.free_block_count < blocks_needed:
            return False
        needed = pool.bits if units_needed is None else int(units_needed)
        avoid = set(avoid)
        if pool.plane_units_free >= needed:
            return True
        for level in pool.tiering.ladder(pool.bits):
            for block in pool.spill_candidates():
                if block in avoid or pool.resident_planes(block) <= level:
                    continue
                pool.spill_block(block, level)
                if pool.plane_units_free >= needed:
                    self.spill_reliefs += 1
                    return True
        return False

    def _tier_protect(self) -> None:
        """Pin every active sequence's unspillable blocks for this round.

        Protected: the write tail (spilling it would bounce straight
        back on the next append) plus the blocks covering the engine's
        sink/recent attention window — so the positions
        :func:`~repro.attention.masks.protection_mask` guarantees are
        retained are never scored from degraded planes, and the
        divergence bound only ever applies to prunable middle context.
        """
        pool = self.pool
        if pool is None or pool.tiering is None:
            return
        cfg = self.engine.config
        sink = getattr(cfg, "sink_tokens", 0)
        recent = getattr(cfg, "recent_tokens", 0)
        bs = self.block_size
        protected: set = set()
        for state in self.active:
            if state.done:
                continue
            # Every live cache of the request: forked sample lineages and
            # the speculative rollback anchor have write tails and
            # sink/recent windows of their own.
            for cache in self._live_caches(state):
                blocks = cache.block_table
                if not blocks:
                    continue
                protected.add(blocks[-1])
                if sink:
                    protected.update(blocks[: -(-min(sink, cache.length) // bs)])
                if recent:
                    protected.update(blocks[max(0, cache.length - recent) // bs :])
        pool.set_protected(protected)

    def _tier_round(self) -> int:
        """Per-round tier maintenance; returns the restore token charge.

        Re-pins protected blocks (fresh admissions included), then
        prefetches spilled planes back — coldest degraded block first,
        up to ``restore_blocks_per_round`` and never past the primary
        tier's capacity — so a block is restored *before* its request
        next decodes, not on the blocking path of a write.  Restore
        traffic is charged in round-token equivalents (one block's worth
        of planes = one block of tokens) against the round budget when
        one is set.
        """
        pool = self.pool
        if pool is None or pool.tiering is None:
            return 0
        self._tier_protect()
        budget = pool.tiering.restore_blocks_per_round
        restore_cost = 0
        restored = 0
        for block in pool.degraded_blocks():
            if restored >= budget:
                break
            missing = pool.bits - pool.resident_planes(block)
            if pool.plane_units_free < missing:
                break  # pressure is still on; do not overshoot the tier
            moved = pool.restore_block(block)
            restore_cost += -(-moved * self.block_size // pool.bits)
            restored += 1
            self.tier_prefetch_restores += 1
        for level, count in pool.resident_plane_histogram().items():
            self.planes_hist[level] = self.planes_hist.get(level, 0) + count
        self.tier_hist_rounds += 1
        return restore_cost

    def drain_evicted_prefix_keys(self) -> List[bytes]:
        """Prefix chain keys the pool dropped since the last drain.

        Forwarded by the serving front-end to the cluster router so its
        affinity index mirrors pool evictions (see
        :meth:`~repro.engine.cache.PlaneBlockPool.drain_evicted_prefix_keys`).
        """
        return [] if self.pool is None else self.pool.drain_evicted_prefix_keys()

    def _decode_round(self) -> int:
        """One decode round over the active set; returns steps advanced.

        With ``batched_decode`` on (and a batch-capable attention policy)
        the round runs append-all-then-filter-once: each request's new
        K/V token is appended in active-set order, the appended-but-
        unfiltered requests accumulate in ``pending``, and one fused
        :meth:`~repro.engine.engine.PadeEngine.decode_attend_batch`
        flushes them together.  The reordering is result-identical to the
        interleaved per-request loop because filters never allocate pool
        blocks and caches are request-private (DESIGN.md §13) — so every
        append sees the exact pool state the loop would give it, and
        :class:`PoolExhausted` fires at the same token either way.

        When an append does exhaust the pool, the pending work is flushed
        *before* the preemption: the victim selection must see the same
        done-flags the per-request loop would (a request that just
        finished its last step is never evicted), and the already-decoded
        requests' first-token marks and service charges must land exactly
        as if they had been filtered one at a time.  With batching off,
        ``pending`` is flushed after every append — byte for byte the
        legacy interleaved loop.
        """
        round_ids: List[str] = []
        pending: List[Tuple[_RequestState, object]] = []
        batching = self.batched_decode and getattr(
            self.engine, "supports_batched_decode", False
        )
        i = 0
        while i < len(self.active):
            state = self.active[i]
            if state.done or state.prefilling:
                i += 1
                continue
            req = state.request
            if req.speculative:
                # A speculative round runs the verifier once over the
                # whole draft block; flush the fused batch first so the
                # trace order matches the per-request loop.
                self._flush_decode(pending, round_ids)
                self._spec_round(state, round_ids)
                if state in self.active:
                    i = self.active.index(state) + 1
                # else: the element now at slot i is the next one due.
                continue
            evicted = False
            units = state.decode_units()
            j = 0
            while j < len(units):
                unit = units[j]
                if unit.next_step >= req.decode_steps:
                    j += 1
                    continue
                t = unit.next_step
                try:
                    self.engine.decode_append(
                        unit.cache, unit.decode_k[:, t, :], unit.decode_v[:, t, :]
                    )
                except PoolExhausted:
                    # Flush before preempting (see docstring): victim
                    # selection, trace order and timing marks must match the
                    # per-request loop exactly.  (Flushing before a *spill*
                    # keeps the same equivalence: already-appended requests
                    # filter against pre-spill planes in both modes.)
                    self._flush_decode(pending, round_ids)
                    tail = unit.cache.block_table[-1:]  # the append's write target
                    if self._relieve_pressure(avoid=tail):
                        self._record("spill", (req.request_id,))
                        continue
                    if len(self.active) == 1:
                        # Defensive: _check_footprints guarantees a lone
                        # request's blocks always fit, so this only fires if
                        # something else squats on the pool.
                        raise RuntimeError(
                            f"token budget {self.token_budget} cannot hold request "
                            f"{req.request_id!r} alone; raise --budget or shrink the request"
                        )
                    # Policy-chosen victim: may sit anywhere in the active
                    # list (SLO-aware policies evict the lowest class, not
                    # necessarily the tail), so preempt and retry the same
                    # lineage unit; if the raiser itself was evicted, every
                    # lineage died with it.
                    self._preempt_one()
                    if state not in self.active:
                        evicted = True
                        break
                    continue
                pending.append((state, unit))
                if not batching:
                    self._flush_decode(pending, round_ids)
                j += 1
            if evicted:
                # The element now at slot i is the next one due.
                continue
            i = self.active.index(state) + 1
        self._flush_decode(pending, round_ids)
        if round_ids:
            self._record("decode_round", tuple(round_ids))
        return len(round_ids)

    def _flush_decode(
        self,
        pending: List[Tuple[_RequestState, object]],
        round_ids: List[str],
    ) -> None:
        """Filter the appended-but-unfiltered steps and record results.

        One unit in ``pending`` routes through the plain policy
        ``decode_step`` (no fusion overhead); more than one becomes a
        single fused cross-request filter call when the policy supports
        it.  Either way the per-unit bookkeeping below is identical.

        Each entry is a ``(state, unit)`` pair where ``unit`` is either
        the state itself (the primary lineage) or one of its forked
        :class:`_Lineage` siblings.  Streaming and first-token timing
        belong to the primary only — sibling samples are delivered in
        the final result, not on the token stream.
        """
        if not pending:
            return
        results = self.engine.decode_attend_batch(
            [unit.cache for _, unit in pending],
            [unit.decode_q[:, unit.next_step, :] for _, unit in pending],
        )
        tiered = self.pool is not None and self.pool.tiering is not None
        for (state, unit), res in zip(pending, results):
            t = unit.next_step
            unit.outputs.append(res.output[:, 0, :])
            unit.retained_history.append(res.retained[:, 0, :])
            unit.next_step = t + 1
            self.decoded_tokens += 1
            if tiered and any(
                self.pool.resident_planes(b) < self.pool.bits
                for b in unit.cache.block_table
            ):
                # This token was scored against partial-plane keys: the
                # accuracy-vs-pressure quantity the serving report tracks.
                self.degraded_tokens += 1
            primary = unit is state
            if primary and self.token_sink is not None:
                rid = state.request.request_id
                # A post-preemption replay recomputes byte-identical
                # tokens; only steps past the high-water mark stream.
                if t >= self._streamed.get(rid, 0):
                    self._streamed[rid] = t + 1
                    self.token_sink(rid, t, res.output[:, 0, :])
            self._charge_service(state, 1.0)
            if primary and t == 0:
                timing = self._timings[state.request.request_id]
                if timing.first_token_time is None:
                    timing.first_token_time = self.time + 1.0
            round_ids.append(state.request.request_id)
        pending.clear()

    # -- speculative decoding ------------------------------------------
    def _append_with_relief(
        self, state: _RequestState, k_step: np.ndarray, v_step: np.ndarray
    ) -> bool:
        """Append one token to ``state.cache``, walking the relief ladder.

        Mirrors the decode loop's ``PoolExhausted`` handling: spill first
        (keeping the append's write target resident), preempt as a last
        resort.  Returns ``False`` when the victim turned out to be
        ``state`` itself — everything it held (working cache, lineages,
        speculative anchor) was released and it is back in the queue.
        """
        while True:
            try:
                self.engine.decode_append(state.cache, k_step, v_step)
                return True
            except PoolExhausted:
                tail = state.cache.block_table[-1:]
                if self._relieve_pressure(avoid=tail):
                    self._record("spill", (state.request.request_id,))
                    continue
                if len(self.active) == 1:
                    raise RuntimeError(
                        f"token budget {self.token_budget} cannot hold request "
                        f"{state.request.request_id!r} alone; raise --budget or "
                        f"shrink the request"
                    ) from None
                self._preempt_one()
                if state not in self.active:
                    return False

    def _spec_rollback(self, state: _RequestState) -> None:
        """Rewind a rejected draft block to the pre-round fork point.

        The working cache (holding the speculated tail) drops its
        references; the anchor fork becomes the live cache again and the
        draft's per-request policy state is re-attached to it, so the
        next draft pass sees exactly the state it saw at the round
        boundary.
        """
        anchor = state.spec_anchor
        state.spec_anchor = None
        state.cache.release()
        state.cache = anchor
        anchor.policy_state = state.draft_state

    def _spec_round(self, state: _RequestState, round_ids: List[str]) -> None:
        """One draft-verify cycle for a speculative request (DESIGN.md §17).

        Fork the cache at the round boundary (the rollback anchor), let
        the cheap draft policy append and score up to ``draft_tokens``
        tokens, then verify the whole block with one PADE attend over
        the appended queries — query ``j`` sits at position
        ``base_len + j``, exactly where decode step ``t0 + j`` would, so
        causal offsets line up automatically.  The leading run of draft
        outputs within ``spec_accept_tol`` relative L2 of the verifier's
        is accepted; the verifier's own output is emitted at the first
        reject (the bonus token), so a round always advances at least
        one step.  On a reject the cache rewinds to the anchor and the
        emitted prefix is re-appended — the modeled re-quantize cost of
        rollback.
        """
        req = state.request
        draft = self._resolve_draft()
        rid = req.request_id
        t0 = state.next_step
        gamma = min(max(1, int(req.draft_tokens)), req.decode_steps - t0)
        base_len = state.cache.length
        state.spec_anchor = state.cache.fork()
        draft_outs: List[np.ndarray] = []
        for j in range(gamma):
            step = t0 + j
            if not self._append_with_relief(
                state, req.decode_k[:, step, :], req.decode_v[:, step, :]
            ):
                return  # evicted: anchor and working cache already freed
            # engine=None: the draft pass is bookkept as part of the
            # speculative round, not as standalone decode-step stats.
            dres = draft.decode_step(None, state.cache, req.decode_q[:, step, :])
            draft_outs.append(dres.output[:, 0, :])
        vres = self.engine.policy.prefill(
            self.engine, state.cache, req.decode_q[:, t0 : t0 + gamma, :]
        )
        accepted = 0
        for j in range(gamma):
            verify = vres.output[:, j, :]
            err = float(np.linalg.norm(draft_outs[j] - verify))
            if err <= self.spec_accept_tol * (float(np.linalg.norm(verify)) + 1e-12):
                accepted += 1
            else:
                break
        emitted = gamma if accepted == gamma else accepted + 1
        self.spec_rounds += 1
        self.spec_drafted_tokens += gamma
        self.spec_accepted_tokens += accepted
        self.spec_emitted_tokens += emitted
        tiered = self.pool is not None and self.pool.tiering is not None
        degraded = tiered and any(
            self.pool.resident_planes(b) < self.pool.bits
            for b in state.cache.block_table
        )
        timing = self._timings[rid]
        for j in range(emitted):
            t = t0 + j
            out = vres.output[:, j, :]
            state.outputs.append(out)
            # Query j only sees keys up to its own position; clip the
            # padded retained row back to the causal prefix.
            state.retained_history.append(
                vres.retained[:, j, : base_len + j + 1].copy()
            )
            self.decoded_tokens += 1
            if degraded:
                self.degraded_tokens += 1
            if self.token_sink is not None and t >= self._streamed.get(rid, 0):
                self._streamed[rid] = t + 1
                self.token_sink(rid, t, out)
            self._charge_service(state, 1.0)
            if t == 0 and timing.first_token_time is None:
                timing.first_token_time = self.time + 1.0
            round_ids.append(rid)
        state.next_step = t0 + emitted
        if emitted == gamma:
            # Full acceptance: the working cache is already correct; the
            # anchor just drops its shared references.
            anchor = state.spec_anchor
            state.spec_anchor = None
            anchor.release()
        else:
            self.spec_rollbacks += 1
            self._spec_rollback(state)
            # Replay the accepted prefix onto the anchor; the rejected
            # draft tail vanished with the working cache.
            for j in range(emitted):
                step = t0 + j
                if not self._append_with_relief(
                    state, req.decode_k[:, step, :], req.decode_v[:, step, :]
                ):
                    return
        self._record("spec", (rid,))

    # ------------------------------------------------------------------
    def _extend_with_preemption(self, state: _RequestState, tokens: int) -> int:
        """Feed ``tokens`` prompt tokens to one prefilling request.

        :class:`PoolExhausted` preempts the youngest active request and
        retries, exactly like the decode path; if the victim turns out to
        be ``state`` itself, the chunk is abandoned (the request is back
        in the queue, its blocks freed).
        """
        while True:
            try:
                written = self.engine.prefill_extend(state.cache, tokens)
                break
            except PoolExhausted:
                # Spill ladder first (the chunk resumes inside its tail
                # block, so that write target must stay resident);
                # preemption only when even fully-spilled state is full.
                # The chunk may need several blocks at once, so relief
                # must free the whole chunk's worth before the retry —
                # anything less would loop on the same exhaustion.
                cache = state.cache
                remaining = cache.prefill_remaining
                take = remaining if tokens is None else min(int(tokens), remaining)
                end = cache.length + take
                chunk_blocks = max(
                    1, -(-end // self.block_size) - len(cache.block_table)
                )
                tail = cache.block_table[-1:]
                if self._relieve_pressure(
                    chunk_blocks * (self.pool.bits if self.pool else 8),
                    chunk_blocks,
                    avoid=tail,
                ):
                    self._record("spill", (state.request.request_id,))
                    continue
                if len(self.active) == 1:
                    raise RuntimeError(
                        f"token budget {self.token_budget} cannot hold request "
                        f"{state.request.request_id!r} alone; raise --budget or "
                        f"shrink the request"
                    ) from None
                self._preempt_one()
                if state not in self.active:
                    return 0
        self._charge_service(state, written)
        if not state.prefilling:
            self._finish_prefill(state)
        return written

    def _prefill_round(self, decode_tokens: int) -> None:
        """Spend this round's leftover token budget on pending prefills.

        Unchunked: the oldest prefill owns the whole round (decode was
        already skipped by the caller).  Chunked: prefilling requests are
        served in admission order from the budget decode left over, at
        most ``chunk_tokens`` each — so a short prompt makes progress
        every round instead of queueing behind a long one.
        """
        prefilling = [s for s in self.active if s.prefilling]
        if not prefilling:
            return
        prefilling.sort(key=lambda s: s.admit_index)
        if not self.chunk_tokens:
            self._extend_with_preemption(prefilling[0], self.round_token_budget)
            return
        budget_left = self.round_token_budget - decode_tokens
        for state in prefilling:
            if state not in self.active:  # preempted by an earlier extend
                continue
            if budget_left <= 0:
                self.chunk_stall_rounds += 1
                break
            take = min(self.chunk_tokens, budget_left)
            budget_left -= self._extend_with_preemption(state, take)

    def _build_result(
        self,
        req: EngineRequest,
        state: Optional[_RequestState],
        status: str = "ok",
        abort_reason: Optional[str] = None,
    ) -> RequestResult:
        """Assemble a :class:`RequestResult` from whatever was produced.

        ``state`` is ``None`` for requests aborted while still queued —
        they report empty outputs; an aborted active request keeps the
        tokens it streamed before the abort.
        """
        decode_outputs = _stack_decode_outputs(
            req, state.outputs if state is not None else []
        )
        lineages = state.sample_lineages if state is not None else None
        sample_outputs = (
            [_stack_decode_outputs(req, lin.outputs) for lin in lineages]
            if lineages
            else []
        )
        sample_retained = (
            [lin.retained_history for lin in lineages] if lineages else []
        )
        timing = self._timings[req.request_id]
        return RequestResult(
            request_id=req.request_id,
            prefill_output=state.prefill_output if state is not None else None,
            decode_outputs=decode_outputs,
            sample_outputs=sample_outputs,
            sample_retained=sample_retained,
            retained_history=state.retained_history if state is not None else [],
            final_length=state.cache.length if state is not None else 0,
            arrival_time=timing.arrival_time,
            admit_time=timing.admit_time,
            first_token_time=timing.first_token_time,
            # Clamped for pre-arrival cancellations: a request aborted
            # before it ever arrived ends, at the earliest, on arrival.
            finish_time=max(self.time, timing.arrival_time),
            prompt_tokens=req.prompt_tokens,
            preemptions=timing.preemptions,
            tenant=req.tenant,
            priority=req.priority,
            deadline_ms=req.deadline_ms,
            status=status,
            abort_reason=abort_reason,
        )

    def _abort_reason(self, req: EngineRequest, queued: bool) -> Optional[str]:
        """Why ``req`` must be aborted right now (None = keep serving).

        Checked at round boundaries.  The deadline test is ``>=`` because
        anything still unfinished at the boundary can only produce output
        at ``time + 1`` or later — strictly past the deadline.
        ``max_queue_ms`` bounds time spent *waiting for admission*: its
        clock starts at arrival and restarts when a preemption re-queues
        the request, so an admitted-then-preempted request is not
        penalized for the rounds it already ran.
        """
        if req.request_id in self._cancelled:
            return "cancelled"
        deadline = req.deadline_at
        if deadline is not None and self.time >= deadline:
            return "deadline"
        if queued and req.max_queue_ms is not None:
            waited = self.time - self._timings[req.request_id].enqueued_at
            if waited > req.max_queue_ms:
                return "queue-timeout"
        return None

    def _expire(self, results: Dict[str, RequestResult]) -> None:
        """Abort cancelled / SLO-expired requests, queued or active.

        Runs before admission every round: an aborted request frees its
        pool blocks — including staging buffers and partially attached
        prefix references of an in-flight chunked prefill — immediately,
        so the capacity goes to requests that can still meet their SLOs.
        Requests that already finished their work are left for
        ``_collect`` (their tokens are computed; discarding them helps
        nobody).
        """
        kept_pending = []
        for entry in self.pending:
            _, req = entry
            reason = self._abort_reason(req, queued=True)
            if reason is None:
                kept_pending.append(entry)
                continue
            results[req.request_id] = self._build_result(
                req, None, status="aborted", abort_reason=reason
            )
            self._cancelled.discard(req.request_id)
            self._record("abort", (req.request_id,))
        self.pending = kept_pending
        still_active = []
        for state in self.active:
            reason = None if state.done else self._abort_reason(state.request, queued=False)
            if reason is None:
                still_active.append(state)
                continue
            req = state.request
            results[req.request_id] = self._build_result(
                req, state, status="aborted", abort_reason=reason
            )
            self._release_request(state)
            self._cancelled.discard(req.request_id)
            self._record("abort", (req.request_id,))
        self.active = still_active

    def _collect(self, results: Dict[str, RequestResult]) -> None:
        still_active = []
        for state in self.active:
            if not state.done:
                still_active.append(state)
                continue
            req = state.request
            if state.sample_lineages:
                # Pool amplification accounting at the moment of maximal
                # divergence: unique physical blocks across every lineage
                # vs what n independent caches would have held.
                tables = set(state.cache.block_table)
                for lineage in state.sample_lineages:
                    tables.update(lineage.cache.block_table)
                self.parallel_requests += 1
                self.parallel_unique_blocks += len(tables)
                self.parallel_single_blocks += len(state.cache.block_table)
                self.parallel_replicated_blocks += (
                    len(state.cache.block_table) * req.n_samples
                )
            results[req.request_id] = self._build_result(req, state)
            self._release_request(state)
            self._cancelled.discard(req.request_id)  # finished first: too late
            self._record("finish", (req.request_id,))
        self.active = still_active

    # ------------------------------------------------------------------
    def _used_tokens(self) -> int:
        """Tokens the budget ceiling currently sees (charged or physical)."""
        if self._charged:
            # Charged accounting: what the budget ceiling actually sees.
            used = sum(self._charge_blocks(s.request) for s in self.active)
            return used * self.block_size
        if self.pool is not None and self.pool.tiering is not None:
            # Tiered accounting: residency-weighted primary-tier usage
            # in token equivalents (a half-spilled block counts half),
            # so occupancy stays meaningful against the token budget
            # even though the backing store is oversized.
            return self.pool.plane_units_used * self.block_size // self.pool.bits
        return self.pool.used_tokens if self.pool is not None else 0

    def start(self) -> Dict[str, RequestResult]:
        """Begin a run: reset per-run state and validate footprints.

        Returns the *live* results dict that :meth:`step` fills in —
        callers driving the scheduler round by round (the async
        front-end) read completed entries out of it between steps.
        """
        self.time = 0.0
        self.trace = []
        self.events = []
        self.occupancy = []
        self.tenant_service = {}
        self._streamed = {}
        self._check_footprints()
        self._results = {}
        return self._results

    def step(self) -> bool:
        """Execute one decode round (one clock unit).

        Returns ``False`` without advancing the clock when both the
        queue and the active set are empty; the caller may keep
        submitting and stepping afterwards.  This is the *one* round
        implementation — :meth:`run` and the async front-end both drive
        it, so an async serve over loopback replays the exact schedule
        the in-process path produces.
        """
        if not (self.pending or self.active):
            return False
        results = self._results
        if not self.active and self.pending:
            # Idle: fast-forward the clock to the next arrival.
            next_arrival = min(r.arrival_time for _, r in self.pending)
            if next_arrival > self.time:
                if self.occupancy:
                    # Sample the idle gap so time-weighted occupancy
                    # means do not over-weight busy periods: this sample
                    # covers (previous sample, next_arrival] at the idle
                    # usage level with an empty active set.
                    self.occupancy.append(
                        (float(next_arrival), self._used_tokens(), 0)
                    )
                self.time = float(next_arrival)
        self._expire(results)
        # Pin the running batch's write tails and sink/recent windows
        # before admission — an admission-triggered spill must never
        # degrade them.
        self._tier_protect()
        self._admit()
        # Re-pin (fresh admissions included) and prefetch spilled planes
        # back before anyone decodes; the restore traffic is charged
        # against this round's token budget below.
        restore_tokens = self._tier_round()
        decode_tokens = 0
        exclusive = (
            self._budgeted
            and not self.chunk_tokens
            and any(s.prefilling for s in self.active)
        )
        if exclusive:
            # Unchunked prefill hogs the engine: decode stalls — the
            # degradation chunked prefill exists to remove.
            if any(not s.done and not s.prefilling for s in self.active):
                self.decode_blocked_rounds += 1
        else:
            decode_tokens = self._decode_round()
        if self._budgeted:
            self._prefill_round(decode_tokens + restore_tokens)
        self.time += 1.0
        self.occupancy.append((self.time, self._used_tokens(), len(self.active)))
        self._collect(results)
        return True

    def finish(self) -> Dict[str, RequestResult]:
        """End a run and return every result produced so far.

        Unconsumed cancellations (ids this run never saw) die with it:
        a later batch reusing an id must not inherit a stale cancel.
        """
        self._cancelled.clear()
        return self._results

    def run(self) -> Dict[str, RequestResult]:
        """Serve every submitted request to completion; returns per-id results."""
        self.start()
        while self.step():
            pass
        return self.finish()
