"""Reference attention implementations and software sparse-attention baselines."""

from repro.attention.dense import dense_attention, attention_scores, softmax
from repro.attention.flash import flash_attention
from repro.attention.masks import causal_mask, window_mask, sink_recent_mask
from repro.attention.policy import (
    AttentionPolicy,
    BaselineAttentionPolicy,
    PadePolicy,
    POLICY_REGISTRY,
    available_policies,
    get_policy,
    register_policy,
)

__all__ = [
    "dense_attention",
    "attention_scores",
    "softmax",
    "flash_attention",
    "causal_mask",
    "window_mask",
    "sink_recent_mask",
    "AttentionPolicy",
    "BaselineAttentionPolicy",
    "PadePolicy",
    "POLICY_REGISTRY",
    "available_policies",
    "get_policy",
    "register_policy",
]
