"""DTATrans-style dynamic token-bitwidth allocation (TCAD'22 comparator).

DTATrans leverages the *previous layer's* attention distribution to assign
per-token bit-widths in the current layer: important tokens compute at full
precision, weak ones at reduced precision, the weakest are dropped.  Like
SpAtten it is predictor-free but guidance-stale — the paper's Fig. 15 shows
both needing an accuracy-compensation fine-tune to match PADE.

The functional model: tokens are ranked by the previous layer's importance;
the top band runs at 8 bits, the middle band at 4 bits (adding quantization
noise to their logits), the rest are pruned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.attention.dense import attention_scores, softmax
from repro.attention.masks import causal_mask

__all__ = ["DTATransResult", "dtatrans_layer", "dtatrans_stack"]


@dataclass(frozen=True)
class DTATransResult:
    """One layer's allocation outcome."""

    output: np.ndarray
    full_precision: np.ndarray  # (S,) bool — 8-bit tokens
    low_precision: np.ndarray  # (S,) bool — 4-bit tokens
    pruned: np.ndarray  # (S,) bool
    lost_mass: float


def _quantize_logits(logits: np.ndarray, bits: int) -> np.ndarray:
    """Emulate computing scores with a ``bits``-wide token representation."""
    if logits.size == 0:
        return logits
    span = float(np.max(np.abs(logits))) or 1.0
    step = span / (2 ** (bits - 1) - 1)
    return np.round(logits / step) * step


def dtatrans_layer(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    guidance: Optional[np.ndarray],
    keep_fraction: float,
    low_bits: int = 4,
    query_offset: Optional[int] = None,
) -> Tuple[DTATransResult, np.ndarray]:
    """Run one layer; returns the result and this layer's true importances.

    ``guidance`` is the previous layer's per-token importance (None for the
    first layer = everything full precision).  The keep budget is split
    half/half between the 8-bit and 4-bit bands.
    """
    q = np.atleast_2d(np.asarray(q, dtype=np.float64))
    num_keys = k.shape[0]
    offset = num_keys - q.shape[0] if query_offset is None else query_offset
    logits = attention_scores(q, k)
    causal = causal_mask(q.shape[0], num_keys, offset)
    probs_true = softmax(np.where(causal, logits, -np.inf), axis=-1)
    importance_now = probs_true.sum(axis=0)

    if guidance is None:
        full = np.ones(num_keys, dtype=bool)
        low = np.zeros(num_keys, dtype=bool)
    else:
        budget = max(2, int(round(keep_fraction * num_keys)))
        order = np.argsort(guidance)[::-1]
        full = np.zeros(num_keys, dtype=bool)
        low = np.zeros(num_keys, dtype=bool)
        full[order[: budget // 2]] = True
        low[order[budget // 2 : budget]] = True
    pruned = ~(full | low)

    adjusted = logits.copy()
    adjusted[:, low] = _quantize_logits(logits[:, low], low_bits)
    adjusted = np.where(causal & ~pruned[None, :], adjusted, -np.inf)
    weights = softmax(adjusted, axis=-1)
    output = weights @ np.asarray(v, dtype=np.float64)
    lost = float(np.where(pruned[None, :], probs_true, 0.0).sum(axis=-1).mean())
    return (
        DTATransResult(output=output, full_precision=full, low_precision=low,
                       pruned=pruned, lost_mass=lost),
        importance_now,
    )


def dtatrans_stack(
    layer_qkv: List[tuple], keep_fraction: float, low_bits: int = 4
) -> List[DTATransResult]:
    """Run a stack of layers with previous-layer guidance chaining."""
    guidance: Optional[np.ndarray] = None
    results: List[DTATransResult] = []
    for q, k, v in layer_qkv:
        res, guidance = dtatrans_layer(q, k, v, guidance, keep_fraction, low_bits)
        results.append(res)
    return results
