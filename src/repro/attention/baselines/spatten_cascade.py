"""SpAtten-style cascade token pruning (functional baseline).

SpAtten (HPCA'21) avoids a dedicated predictor by accumulating attention
probabilities *across layers*: tokens whose cumulative importance falls
below a threshold are pruned for all subsequent layers (cascade).  Without
retraining, the guidance is stale — a token unimportant in early layers may
matter later — which is exactly why the paper's Fig. 15 shows SpAtten (and
DTATrans) needing fine-tuning to match PADE.

This functional implementation runs a stack of synthetic layers, carries the
cumulative scores forward, prunes bottom tokens layer by layer, and reports
the attention mass the cascade loses versus per-layer oracles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.attention.dense import attention_scores, softmax
from repro.attention.masks import causal_mask

__all__ = ["CascadeResult", "spatten_cascade"]


@dataclass(frozen=True)
class CascadeResult:
    """Per-layer retained sets and lost-mass accounting."""

    retained_per_layer: List[np.ndarray]  # (S,) bool per layer
    lost_mass_per_layer: List[float]
    cumulative_scores: np.ndarray

    @property
    def mean_keep(self) -> float:
        return float(np.mean([r.mean() for r in self.retained_per_layer]))

    @property
    def mean_lost_mass(self) -> float:
        return float(np.mean(self.lost_mass_per_layer))


def spatten_cascade(
    layer_qkv: List[tuple],
    keep_fraction: float,
    query_offset: Optional[int] = None,
    stale_layers: int = 1,
) -> CascadeResult:
    """Run cascade pruning over a stack of per-layer (Q, K, V) triples.

    Parameters
    ----------
    layer_qkv:
        One (Q, K, V) triple per layer (same key count each layer).
    keep_fraction:
        Token budget per layer (the cascade only shrinks the set).
    stale_layers:
        How many layers behind the guidance runs (1 = previous layer's
        scores decide this layer's pruning, the SpAtten scheme).
    """
    num_keys = layer_qkv[0][1].shape[0]
    cumulative = np.zeros(num_keys)
    active = np.ones(num_keys, dtype=bool)
    budget = max(1, int(round(keep_fraction * num_keys)))

    retained_layers: List[np.ndarray] = []
    lost_masses: List[float] = []
    score_history: List[np.ndarray] = []

    for layer_idx, (q, k, v) in enumerate(layer_qkv):
        q = np.atleast_2d(q)
        offset = num_keys - q.shape[0] if query_offset is None else query_offset
        logits = attention_scores(q, k)
        causal = causal_mask(q.shape[0], num_keys, offset)
        probs = softmax(np.where(causal, logits, -np.inf), axis=-1)
        token_importance = probs.sum(axis=0)
        score_history.append(token_importance)

        if layer_idx >= stale_layers:
            # Prune using the *cumulative* importance up to `stale_layers`
            # behind — the cascade can only remove tokens, never restore.
            guidance = cumulative
            candidates = np.flatnonzero(active)
            if candidates.size > budget:
                order = candidates[np.argsort(guidance[candidates])[::-1]]
                keep_idx = order[:budget]
                new_active = np.zeros(num_keys, dtype=bool)
                new_active[keep_idx] = True
                active = new_active

        retained_layers.append(active.copy())
        lost_masses.append(float(np.where(active, 0.0, probs).sum(axis=-1).mean()))
        cumulative = cumulative + token_importance

    return CascadeResult(
        retained_per_layer=retained_layers,
        lost_mass_per_layer=lost_masses,
        cumulative_scores=cumulative,
    )
