"""Software-only sparse attention baselines (paper Fig. 15a/b comparators).

Each baseline returns a retained-key mask plus a cost model (the "sparsity
level" of Fig. 15 — prediction cost + execution cost relative to dense), so
the accuracy-vs-sparsity study can place every method on the same axes:

* :mod:`streaming_llm` — static sinks + recency window (StreamingLLM).
* :mod:`minference`   — dynamic pattern selection over a fixed pattern menu.
* :mod:`double_sparsity` — channel-subset score estimation + top-k.
* :mod:`topk_oracle`  — exact-score top-k (the accuracy upper bound).
"""

from repro.attention.baselines.base import SparseAttentionResult, sparse_attention_from_mask
from repro.attention.baselines.streaming_llm import streaming_llm_attention
from repro.attention.baselines.minference import minference_attention
from repro.attention.baselines.double_sparsity import double_sparsity_attention
from repro.attention.baselines.topk_oracle import topk_oracle_attention
from repro.attention.baselines.spatten_cascade import CascadeResult, spatten_cascade
from repro.attention.baselines.h2o import H2OState, h2o_decode
from repro.attention.baselines.quest import quest_attention, build_page_summaries
from repro.attention.baselines.dtatrans import DTATransResult, dtatrans_layer, dtatrans_stack

__all__ = [
    "SparseAttentionResult",
    "sparse_attention_from_mask",
    "streaming_llm_attention",
    "minference_attention",
    "double_sparsity_attention",
    "topk_oracle_attention",
    "CascadeResult",
    "spatten_cascade",
    "H2OState",
    "h2o_decode",
    "quest_attention",
    "build_page_summaries",
    "DTATransResult",
    "dtatrans_layer",
    "dtatrans_stack",
]
