"""Software-only sparse attention baselines (paper Fig. 15a/b comparators).

Each baseline returns a retained-key mask plus a cost model (the "sparsity
level" of Fig. 15 — prediction cost + execution cost relative to dense), so
the accuracy-vs-sparsity study can place every method on the same axes:

* :mod:`streaming_llm` — static sinks + recency window (StreamingLLM).
* :mod:`minference`   — dynamic pattern selection over a fixed pattern menu.
* :mod:`double_sparsity` — channel-subset score estimation + token top-k.
* :mod:`topk_oracle`  — exact-score top-k (the accuracy upper bound).
* :mod:`quest`        — page-granular bound-based selection (Quest).
* :mod:`h2o`          — accumulated-score cache eviction (Heavy-Hitter Oracle).
* :mod:`spatten_cascade` — cross-layer cascade token pruning (SpAtten).
* :mod:`dtatrans`     — layer-stack pruning with score recovery (DTATrans).

Two call surfaces per method:

* the legacy **one-shot functions** below (full-sequence, single head) —
  thin wrappers over the incremental cores, discoverable through
  :data:`BASELINE_REGISTRY` / :func:`get_baseline`;
* the incremental **serving policies** (``*Policy`` classes) registered
  in :data:`repro.attention.policy.POLICY_REGISTRY`, which the
  policy-agnostic engine runs with continuous batching, paged caching,
  preemption and prefix sharing.
"""

from typing import Callable, Dict, List

from repro.attention.baselines.base import SparseAttentionResult, sparse_attention_from_mask
from repro.attention.baselines.streaming_llm import (
    StreamingLLMPolicy,
    streaming_llm_attention,
)
from repro.attention.baselines.minference import MInferencePolicy, minference_attention
from repro.attention.baselines.double_sparsity import (
    DoubleSparsityPolicy,
    double_sparsity_attention,
)
from repro.attention.baselines.topk_oracle import TopKOraclePolicy, topk_oracle_attention
from repro.attention.baselines.spatten_cascade import CascadeResult, spatten_cascade
from repro.attention.baselines.h2o import H2OPolicy, H2OState, h2o_decode
from repro.attention.baselines.quest import (
    QuestPolicy,
    build_page_summaries,
    quest_attention,
)
from repro.attention.baselines.dtatrans import DTATransResult, dtatrans_layer, dtatrans_stack

__all__ = [
    "SparseAttentionResult",
    "sparse_attention_from_mask",
    "streaming_llm_attention",
    "minference_attention",
    "double_sparsity_attention",
    "topk_oracle_attention",
    "CascadeResult",
    "spatten_cascade",
    "H2OState",
    "h2o_decode",
    "quest_attention",
    "build_page_summaries",
    "DTATransResult",
    "dtatrans_layer",
    "dtatrans_stack",
    "StreamingLLMPolicy",
    "MInferencePolicy",
    "DoubleSparsityPolicy",
    "TopKOraclePolicy",
    "QuestPolicy",
    "H2OPolicy",
    "BASELINE_REGISTRY",
    "get_baseline",
    "available_baselines",
]

#: name -> legacy one-shot baseline entry point.  The mask-producing
#: methods share the ``(q, k, v, keep_fraction, ...)`` signature;
#: ``h2o`` / ``spatten_cascade`` / ``dtatrans`` keep their native
#: decode-loop / layer-stack signatures.
BASELINE_REGISTRY: Dict[str, Callable] = {
    "streaming_llm": streaming_llm_attention,
    "minference": minference_attention,
    "double_sparsity": double_sparsity_attention,
    "topk_oracle": topk_oracle_attention,
    "quest": quest_attention,
    "h2o": h2o_decode,
    "spatten_cascade": spatten_cascade,
    "dtatrans": dtatrans_stack,
}


def get_baseline(name: str) -> Callable:
    """Look up a legacy one-shot baseline by registry name."""
    if name not in BASELINE_REGISTRY:
        raise ValueError(
            f"unknown baseline {name!r}; choose from {available_baselines()}"
        )
    return BASELINE_REGISTRY[name]


def available_baselines() -> List[str]:
    """Sorted names of the registered one-shot baselines."""
    return sorted(BASELINE_REGISTRY)
