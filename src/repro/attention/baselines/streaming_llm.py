"""StreamingLLM baseline: static attention sinks + recency window.

Xiao et al.'s StreamingLLM keeps the first few "sink" tokens and a sliding
recency window, with no input-dependent selection.  The paper (Fig. 15)
observes it performs worst among the compared methods because the static
pattern cannot capture input-dependent heavy hitters — exactly the behaviour
this implementation exhibits on the synthetic workloads with off-pattern
heavy hitters.

There is no predictor, so prediction cost is zero; the sparsity level is the
kept fraction alone.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attention.baselines.base import SparseAttentionResult, sparse_attention_from_mask
from repro.attention.masks import causal_mask, sink_recent_mask

__all__ = ["streaming_llm_attention", "streaming_llm_budget_to_window"]


def streaming_llm_budget_to_window(
    num_keys: int, keep_fraction: float, sink_tokens: int = 4
) -> int:
    """Window width that spends a keep-fraction budget after the sinks."""
    budget = max(1, int(round(keep_fraction * num_keys)) - sink_tokens)
    return budget


def streaming_llm_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    keep_fraction: float,
    sink_tokens: int = 4,
    query_offset: Optional[int] = None,
    scale: Optional[float] = None,
) -> SparseAttentionResult:
    """Sparse attention with the StreamingLLM sink+window pattern.

    ``keep_fraction`` is the key budget per query (the Fig. 15 x-axis);
    it is split between ``sink_tokens`` sinks and a recency window.
    """
    q = np.atleast_2d(np.asarray(q, dtype=np.float64))
    num_queries, num_keys = q.shape[0], np.asarray(k).shape[0]
    offset = num_keys - num_queries if query_offset is None else query_offset
    window = streaming_llm_budget_to_window(num_keys, keep_fraction, sink_tokens)
    keep = sink_recent_mask(num_queries, num_keys, sink_tokens, window, offset)
    keep &= causal_mask(num_queries, num_keys, offset)
    return sparse_attention_from_mask(q, k, v, keep, prediction_cost=0.0, scale=scale)
