"""StreamingLLM baseline: static attention sinks + recency window.

Xiao et al.'s StreamingLLM keeps the first few "sink" tokens and a sliding
recency window, with no input-dependent selection.  The paper (Fig. 15)
observes it performs worst among the compared methods because the static
pattern cannot capture input-dependent heavy hitters — exactly the behaviour
this implementation exhibits on the synthetic workloads with off-pattern
heavy hitters.

There is no predictor, so prediction cost is zero; the sparsity level is the
kept fraction alone.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attention.baselines.base import SparseAttentionResult, sparse_attention_from_mask
from repro.attention.masks import sink_recent_mask
from repro.attention.policy import BaselineAttentionPolicy, register_policy

__all__ = [
    "streaming_llm_attention",
    "streaming_llm_budget_to_window",
    "StreamingLLMPolicy",
]


def streaming_llm_budget_to_window(
    num_keys: int, keep_fraction: float, sink_tokens: int = 4
) -> int:
    """Window width that spends a keep-fraction budget after the sinks."""
    budget = max(1, int(round(keep_fraction * num_keys)) - sink_tokens)
    return budget


@register_policy
class StreamingLLMPolicy(BaselineAttentionPolicy):
    """Incremental sink+window selection (StreamingLLM served statefully).

    The pattern is purely positional, so the incremental conversion is
    stateless: every query keeps the ``sink_tokens`` head of the context
    plus a recency window whose width spends the remaining key budget.
    Because only the sinks and the window ever need to be resident, the
    cache footprint is *bounded* — the continuous scheduler charges
    admission for ``sinks + window`` tokens instead of the full context,
    so StreamingLLM packs more concurrent requests into the same pool
    budget than any dense-footprint policy.
    """

    name = "streaming-llm"
    dense_footprint = False
    # Purely positional selection: no per-request state absorbs the
    # speculated queries, so rollback to a fork anchor is sound.
    draftable = True

    def __init__(self, keep_fraction: float = 0.25, sink_tokens: int = 4) -> None:
        self.keep_fraction = float(keep_fraction)
        self.sink_tokens = int(sink_tokens)

    def cache_footprint(self, prompt_tokens: int, decode_steps: int) -> int:
        total = prompt_tokens + decode_steps
        window = streaming_llm_budget_to_window(
            total, self.keep_fraction, self.sink_tokens
        )
        return min(total, self.sink_tokens + window)

    def head_row_mask(self, state, head, q_row, k_visible) -> np.ndarray:
        visible = k_visible.shape[0]
        window = streaming_llm_budget_to_window(
            state.budget_context(visible), self.keep_fraction, self.sink_tokens
        )
        return sink_recent_mask(
            1, visible, self.sink_tokens, window, query_offset=visible - 1
        )[0]


def streaming_llm_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    keep_fraction: float,
    sink_tokens: int = 4,
    query_offset: Optional[int] = None,
    scale: Optional[float] = None,
) -> SparseAttentionResult:
    """Sparse attention with the StreamingLLM sink+window pattern.

    ``keep_fraction`` is the key budget per query (the Fig. 15 x-axis);
    it is split between ``sink_tokens`` sinks and a recency window.
    Thin wrapper over :class:`StreamingLLMPolicy` — the mask is
    assembled row by row from the same incremental selection the
    serving engine runs.
    """
    q = np.atleast_2d(np.asarray(q, dtype=np.float64))
    policy = StreamingLLMPolicy(keep_fraction, sink_tokens)
    keep = policy.one_shot_mask(q, k, query_offset)
    return sparse_attention_from_mask(q, k, v, keep, prediction_cost=0.0, scale=scale)
