"""H2O-style heavy-hitter oracle cache eviction (additional comparator).

H2O (Heavy-Hitter Oracle) keeps a fixed KV budget during decoding: at each
step the tokens with the lowest *accumulated* attention scores are evicted
(plus a protected recency window).  Unlike the cascade (SpAtten) this uses
the *current* head's scores, so its guidance is fresh — but eviction is
irreversible, so a token that becomes important after eviction is lost.

Included as an extra point for the Fig. 15 accuracy study: H2O sits between
DoubleSparsity (re-selects every step) and StreamingLLM (static).

The incremental :class:`H2OPolicy` serves the same eviction loop through
the policy-agnostic engine; :func:`h2o_decode` is a thin single-head
wrapper over the shared step core.  Decode steps are *self-inclusive*
(a step attends its own just-appended token, matching the engine's
decode semantics); the eviction bookkeeping is otherwise unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.attention.dense import attention_scores, softmax
from repro.attention.policy import BaselineAttentionPolicy, register_policy

__all__ = ["H2OState", "h2o_decode", "H2OPolicy"]


@dataclass
class H2OState:
    """Decoding state: which cache slots remain + accumulated importance."""

    alive: np.ndarray  # (S,) bool
    accumulated: np.ndarray  # (S,) float

    @property
    def cache_size(self) -> int:
        return int(self.alive.sum())


def h2o_budget(budget_fraction: float, num_keys: int, recent_tokens: int) -> int:
    """Token budget the eviction loop maintains (recency window floor)."""
    return max(recent_tokens + 1, int(round(budget_fraction * num_keys)))


def _h2o_step(
    alive: np.ndarray,
    accumulated: np.ndarray,
    q_row: np.ndarray,
    k_visible: np.ndarray,
    budget: int,
    recent_tokens: int,
    scale: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """One self-inclusive H2O decode step over ``visible`` keys.

    Marks the newest token alive, scores the query densely (the "oracle"
    part — accumulation sees the unmasked distribution), then evicts the
    lowest-accumulated tokens outside the recency window down to
    ``budget``.  Returns ``(retained_row, logits, lost_mass)`` where
    ``retained_row`` is the alive set the output must be computed over
    (pre-eviction, including the new token) and ``logits`` the dense
    scores already paid for — callers reuse them for the masked output.
    """
    visible = k_visible.shape[0]
    alive[visible - 1] = True
    logits = attention_scores(q_row, k_visible, scale)[0]
    probs_full = softmax(logits[None, :])[0]
    retained = alive[:visible].copy()
    lost = float(probs_full[~retained].sum())

    accumulated[:visible] += probs_full
    alive_idx = np.flatnonzero(alive[:visible])
    if alive_idx.size > budget:
        protected = alive_idx >= visible - recent_tokens
        evictable = alive_idx[~protected]
        excess = alive_idx.size - budget
        if excess > 0 and evictable.size:
            order = evictable[np.argsort(accumulated[evictable])]
            alive[order[:excess]] = False
    return retained, logits, lost


@register_policy
class H2OPolicy(BaselineAttentionPolicy):
    """Incremental heavy-hitter eviction served through the engine.

    Per-request state (per-head alive sets + accumulated attention
    mass) is *query-derived*, so it lives in ``cache.policy_state``
    only: preemption releases the cache, the state dies with it, and
    the restarted request replays its deterministic decode stream to
    bit-identical retained sets.  The bounded eviction budget makes the
    cache footprint sub-dense — the continuous scheduler charges
    admission for ``budget`` tokens, so H2O packs more concurrent
    requests into the same pool budget than dense-footprint PADE.
    """

    name = "h2o"
    dense_footprint = False

    def __init__(self, budget_fraction: float = 0.25, recent_tokens: int = 16) -> None:
        self.budget_fraction = float(budget_fraction)
        self.recent_tokens = int(recent_tokens)

    def cache_footprint(self, prompt_tokens: int, decode_steps: int) -> int:
        total = prompt_tokens + decode_steps
        return min(total, h2o_budget(self.budget_fraction, total, self.recent_tokens))

    def new_state(self, cache, total_tokens=None):
        state = super().new_state(cache, total_tokens)
        length = cache.length
        state.per_head["alive"] = [
            np.ones(length, dtype=bool) for _ in range(cache.num_heads)
        ]
        state.per_head["accumulated"] = [
            np.zeros(length) for _ in range(cache.num_heads)
        ]
        state.per_head["lost"] = [[] for _ in range(cache.num_heads)]
        return state

    def prediction_cost(self, state, num_queries: int, num_keys: int) -> float:
        # Decode accumulation scores every visible key densely; the
        # prompt pass has no bookkeeping to pay for.
        return 1.0 if num_queries == 1 else 0.0

    def head_prefill_mask(self, state, head, q_rows, k, offset) -> np.ndarray:
        # Every prompt token is alive at prefill; eviction (and score
        # accumulation) is decode-only, exactly like the legacy loop.
        return np.ones((q_rows.shape[0], k.shape[0]), dtype=bool)

    def _grow(self, arr: np.ndarray, length: int) -> np.ndarray:
        if arr.shape[0] >= length:
            return arr
        fresh = np.zeros(length, dtype=arr.dtype)
        fresh[: arr.shape[0]] = arr
        return fresh

    def head_decode_mask(self, state, head, q_row, k) -> np.ndarray:
        visible = k.shape[0]
        per = state.per_head
        per["alive"][head] = alive = self._grow(per["alive"][head], visible)
        per["accumulated"][head] = acc = self._grow(per["accumulated"][head], visible)
        budget = h2o_budget(
            self.budget_fraction, state.budget_context(visible), self.recent_tokens
        )
        retained, _, lost = _h2o_step(
            alive, acc, q_row, k, budget, self.recent_tokens
        )
        per["lost"][head].append(lost)
        return retained


def h2o_decode(
    q_steps: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    budget_fraction: float,
    recent_tokens: int = 16,
    scale: Optional[float] = None,
) -> tuple:
    """Run H2O eviction over a sequence of decode queries.

    Thin single-head wrapper over the incremental step core shared with
    :class:`H2OPolicy`.

    Parameters
    ----------
    q_steps:
        Decode queries, shape ``(T, H)`` — step ``t`` attends keys
        ``[0, S0 + t + 1)`` where ``S0 = S - T`` (the prompt length);
        the step's own token is visible, as in engine decoding.
    k / v:
        Full K/V including the decoded positions, shape ``(S, H)``.
    budget_fraction:
        Cache budget as a fraction of the full context.
    recent_tokens:
        Recency window never evicted.

    Returns ``(outputs, lost_mass_per_step, state)``.
    """
    q_steps = np.atleast_2d(np.asarray(q_steps, dtype=np.float64))
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    num_steps = q_steps.shape[0]
    num_keys = k.shape[0]
    prompt = num_keys - num_steps
    budget = h2o_budget(budget_fraction, num_keys, recent_tokens)

    state = H2OState(alive=np.zeros(num_keys, dtype=bool), accumulated=np.zeros(num_keys))
    state.alive[:prompt] = True
    outputs = np.zeros((num_steps, v.shape[1]))
    lost: List[float] = []

    for t in range(num_steps):
        visible = prompt + t + 1
        retained, logits, lost_t = _h2o_step(
            state.alive, state.accumulated, q_steps[t], k[:visible],
            budget, recent_tokens, scale,
        )
        masked = np.where(retained, logits, -np.inf)
        probs = softmax(masked[None, :])[0]
        outputs[t] = probs @ v[:visible]
        lost.append(lost_t)
    return outputs, lost, state
