"""H2O-style heavy-hitter oracle cache eviction (additional comparator).

H2O (Heavy-Hitter Oracle) keeps a fixed KV budget during decoding: at each
step the tokens with the lowest *accumulated* attention scores are evicted
(plus a protected recency window).  Unlike the cascade (SpAtten) this uses
the *current* head's scores, so its guidance is fresh — but eviction is
irreversible, so a token that becomes important after eviction is lost.

Included as an extra point for the Fig. 15 accuracy study: H2O sits between
DoubleSparsity (re-selects every step) and StreamingLLM (static).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.attention.dense import attention_scores, softmax

__all__ = ["H2OState", "h2o_decode"]


@dataclass
class H2OState:
    """Decoding state: which cache slots remain + accumulated importance."""

    alive: np.ndarray  # (S,) bool
    accumulated: np.ndarray  # (S,) float

    @property
    def cache_size(self) -> int:
        return int(self.alive.sum())


def h2o_decode(
    q_steps: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    budget_fraction: float,
    recent_tokens: int = 16,
    scale: Optional[float] = None,
) -> tuple:
    """Run H2O eviction over a sequence of decode queries.

    Parameters
    ----------
    q_steps:
        Decode queries, shape ``(T, H)`` — step ``t`` attends keys
        ``[0, S0 + t)`` where ``S0 = S - T`` (the prompt length).
    k / v:
        Full K/V including the decoded positions, shape ``(S, H)``.
    budget_fraction:
        Cache budget as a fraction of the full context.
    recent_tokens:
        Recency window never evicted.

    Returns ``(outputs, lost_mass_per_step, state)``.
    """
    q_steps = np.atleast_2d(np.asarray(q_steps, dtype=np.float64))
    num_steps = q_steps.shape[0]
    num_keys = k.shape[0]
    prompt = num_keys - num_steps
    if scale is None:
        scale = 1.0 / np.sqrt(q_steps.shape[1])
    budget = max(recent_tokens + 1, int(round(budget_fraction * num_keys)))

    state = H2OState(alive=np.zeros(num_keys, dtype=bool), accumulated=np.zeros(num_keys))
    state.alive[:prompt] = True
    outputs = np.zeros((num_steps, v.shape[1]))
    lost: List[float] = []

    for t in range(num_steps):
        visible = prompt + t
        state.alive[prompt + t - 1 if t > 0 else prompt - 1] = True  # newly decoded token
        logits = attention_scores(q_steps[t : t + 1], k[:visible], scale)[0]
        probs_full = softmax(logits[None, :])[0]

        mask = state.alive[:visible]
        masked = np.where(mask, logits, -np.inf)
        probs = softmax(masked[None, :])[0]
        outputs[t] = probs @ v[:visible]
        lost.append(float(probs_full[~mask].sum()))

        state.accumulated[:visible] += probs_full
        # Evict down to budget, protecting the recency window.
        alive_idx = np.flatnonzero(state.alive[:visible])
        if alive_idx.size > budget:
            protected = alive_idx >= visible - recent_tokens
            evictable = alive_idx[~protected]
            excess = alive_idx.size - budget
            if excess > 0 and evictable.size:
                order = evictable[np.argsort(state.accumulated[evictable])]
                state.alive[order[:excess]] = False
    return outputs, lost, state
