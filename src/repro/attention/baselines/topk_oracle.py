"""Exact-score top-k oracle: the accuracy upper bound at a given budget.

No real method can beat selecting the true top-k scores per query; the
accuracy-vs-sparsity study uses this as the reference curve against which
PADE and the software baselines are placed.  Its "prediction" is a full
dense score pass, so its sparsity level is >= 1 — it is an accuracy oracle,
not an efficiency point.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attention.baselines.base import SparseAttentionResult, sparse_attention_from_mask
from repro.attention.dense import attention_scores
from repro.attention.masks import causal_mask

__all__ = ["topk_oracle_attention", "topk_mask"]


def topk_mask(
    logits: np.ndarray, budget: int, causal: Optional[np.ndarray] = None
) -> np.ndarray:
    """Keep-mask of the ``budget`` highest logits per row."""
    masked = logits if causal is None else np.where(causal, logits, -np.inf)
    keep = np.zeros(masked.shape, dtype=bool)
    for i in range(masked.shape[0]):
        finite = np.isfinite(masked[i])
        take = min(budget, int(finite.sum()))
        if take > 0:
            top = np.argpartition(masked[i], -take)[-take:]
            keep[i, top] = True
    if causal is not None:
        keep &= causal
    return keep


def topk_oracle_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    keep_fraction: float,
    query_offset: Optional[int] = None,
    scale: Optional[float] = None,
) -> SparseAttentionResult:
    """Attention over the true top-k keys per query."""
    q = np.atleast_2d(np.asarray(q, dtype=np.float64))
    k = np.asarray(k, dtype=np.float64)
    num_queries, num_keys = q.shape[0], k.shape[0]
    offset = num_keys - num_queries if query_offset is None else query_offset
    budget = max(1, int(round(keep_fraction * num_keys)))
    logits = attention_scores(q, k, scale)
    causal = causal_mask(num_queries, num_keys, offset)
    keep = topk_mask(logits, budget, causal)
    return sparse_attention_from_mask(q, k, v, keep, prediction_cost=1.0, scale=scale)
