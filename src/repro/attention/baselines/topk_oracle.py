"""Exact-score top-k oracle: the accuracy upper bound at a given budget.

No real method can beat selecting the true top-k scores per query; the
accuracy-vs-sparsity study uses this as the reference curve against which
PADE and the software baselines are placed.  Its "prediction" is a full
dense score pass, so its sparsity level is >= 1 — it is an accuracy oracle,
not an efficiency point.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attention.baselines.base import SparseAttentionResult, sparse_attention_from_mask
from repro.attention.dense import attention_scores
from repro.attention.masks import causal_mask
from repro.attention.policy import BaselineAttentionPolicy, register_policy

__all__ = ["topk_oracle_attention", "topk_mask", "TopKOraclePolicy"]


def topk_mask(
    logits: np.ndarray, budget: int, causal: Optional[np.ndarray] = None
) -> np.ndarray:
    """Keep-mask of the ``budget`` highest logits per row."""
    masked = logits if causal is None else np.where(causal, logits, -np.inf)
    keep = np.zeros(masked.shape, dtype=bool)
    for i in range(masked.shape[0]):
        finite = np.isfinite(masked[i])
        take = min(budget, int(finite.sum()))
        if take > 0:
            top = np.argpartition(masked[i], -take)[-take:]
            keep[i, top] = True
    if causal is not None:
        keep &= causal
    return keep


@register_policy
class TopKOraclePolicy(BaselineAttentionPolicy):
    """Incremental exact top-k selection (the accuracy upper bound).

    Every decode step scores the query against all resident keys and
    keeps the true top ``round(keep_fraction * total)`` — prediction
    cost is a full dense pass (1.0), which is why the oracle is an
    accuracy reference, not an efficiency point.
    """

    name = "topk-oracle"
    # A pure function of the query and the *current* resident keys: no
    # state survives a rolled-back draft block, so it is a sound draft.
    draftable = True

    def __init__(self, keep_fraction: float = 0.25) -> None:
        self.keep_fraction = float(keep_fraction)

    def prediction_cost(self, state, num_queries: int, num_keys: int) -> float:
        return 1.0

    def head_row_mask(self, state, head, q_row, k_visible) -> np.ndarray:
        visible = k_visible.shape[0]
        budget = max(1, int(round(self.keep_fraction * state.budget_context(visible))))
        logits = attention_scores(q_row, k_visible)[0]
        keep = np.zeros(visible, dtype=bool)
        take = min(budget, visible)
        if take > 0:
            keep[np.argpartition(logits, -take)[-take:]] = True
        return keep


def topk_oracle_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    keep_fraction: float,
    query_offset: Optional[int] = None,
    scale: Optional[float] = None,
) -> SparseAttentionResult:
    """Attention over the true top-k keys per query.

    Thin wrapper over :class:`TopKOraclePolicy`: each query row runs the
    same incremental top-k selection over its causally visible prefix.
    """
    q = np.atleast_2d(np.asarray(q, dtype=np.float64))
    policy = TopKOraclePolicy(keep_fraction)
    keep = policy.one_shot_mask(q, k, query_offset)
    return sparse_attention_from_mask(q, k, v, keep, prediction_cost=1.0, scale=scale)
