"""Shared result type and helpers for software sparse-attention baselines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.attention.dense import dense_attention

__all__ = ["SparseAttentionResult", "sparse_attention_from_mask"]


@dataclass(frozen=True)
class SparseAttentionResult:
    """Output + retained mask + normalized cost for a sparse method.

    ``sparsity_level`` follows the paper's Fig. 15 definition: the ratio of
    the method's total compute (prediction + sparse execution) to dense
    execution — 1 means dense cost, 1/8 means an 8× reduction.
    """

    output: np.ndarray
    retained: np.ndarray
    prediction_cost: float
    execution_cost: float

    @property
    def sparsity_level(self) -> float:
        return self.prediction_cost + self.execution_cost

    @property
    def keep_fraction(self) -> float:
        return float(np.mean(self.retained))


def sparse_attention_from_mask(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    keep: np.ndarray,
    prediction_cost: float,
    scale: Optional[float] = None,
) -> SparseAttentionResult:
    """Execute attention over a retained mask and account its cost.

    Execution cost is the retained fraction (sparse QK + PV work relative to
    dense); prediction cost is supplied by the specific method's model.
    """
    out = dense_attention(q, k, v, mask=keep, scale=scale)
    return SparseAttentionResult(
        output=out,
        retained=np.asarray(keep, dtype=bool),
        prediction_cost=float(prediction_cost),
        execution_cost=float(np.mean(keep)),
    )
