"""Quest-style page-granular dynamic selection (additional comparator).

Quest partitions the KV cache into fixed-size *pages* and keeps per-page
min/max channel summaries; at decode time it upper-bounds each page's best
possible score from the summaries and fetches only the top pages.  It is a
coarse-granularity cousin of PADE's bound-based filtering: sound bounds, but
at page granularity the bound slack forces fetching whole pages for single
heavy hitters.

Included as an extra comparator: its *selection* is bound-driven like
BUI-GF, so comparing the two isolates the value of bit-level granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.attention.baselines.base import SparseAttentionResult, sparse_attention_from_mask
from repro.attention.policy import BaselineAttentionPolicy, register_policy

__all__ = ["PageSummaries", "build_page_summaries", "quest_attention", "QuestPolicy"]


@dataclass(frozen=True)
class PageSummaries:
    """Per-page elementwise min/max of K."""

    k_min: np.ndarray  # (pages, H)
    k_max: np.ndarray  # (pages, H)
    page_size: int

    @property
    def num_pages(self) -> int:
        return self.k_min.shape[0]


def build_page_summaries(k: np.ndarray, page_size: int = 16) -> PageSummaries:
    """Offline pass: fold K into per-page channel extrema."""
    k = np.asarray(k, dtype=np.float64)
    num_keys = k.shape[0]
    pages = int(np.ceil(num_keys / page_size))
    k_min = np.full((pages, k.shape[1]), np.inf)
    k_max = np.full((pages, k.shape[1]), -np.inf)
    for p in range(pages):
        chunk = k[p * page_size : (p + 1) * page_size]
        k_min[p] = chunk.min(axis=0)
        k_max[p] = chunk.max(axis=0)
    return PageSummaries(k_min=k_min, k_max=k_max, page_size=page_size)


def page_score_upper_bound(q_row: np.ndarray, summaries: PageSummaries) -> np.ndarray:
    """Sound per-page upper bound: positive q picks k_max, negative k_min."""
    q = np.asarray(q_row, dtype=np.float64)
    pos = np.where(q > 0, q, 0.0)
    neg = np.where(q < 0, q, 0.0)
    return summaries.k_max @ pos + summaries.k_min @ neg


@register_policy
class QuestPolicy(BaselineAttentionPolicy):
    """Incremental page-granular selection with per-block summaries.

    Pages snap to the paged pool's block size when the cache is a
    :class:`~repro.engine.cache.PagedBitPlaneKVCache`, and each full
    block's min/max summary is stored in ``pool.block_meta`` keyed by
    the *pool block* — a pure function of the block's frozen rows, so
    prefix-shared blocks reuse one summary, a copy-on-write fork
    invalidates it, and a freed (preempted) block drops it.  The
    growing partial tail page is summarized on the fly each step.

    Selection per query ranks only the causally *visible* pages (a page
    that does not exist yet cannot be fetched) and keeps the top
    ``round(keep_fraction * visible_pages)`` of them — bound slack at
    page granularity still forces whole-page fetches for single heavy
    hitters, the comparison point against PADE's bit-level bounds.
    """

    name = "quest"

    def __init__(self, keep_fraction: float = 0.25, page_size: int = 16) -> None:
        self.keep_fraction = float(keep_fraction)
        self.page_size = int(page_size)

    def new_state(self, cache, total_tokens=None):
        state = super().new_state(cache, total_tokens)
        pool = getattr(cache, "pool", None)
        state.per_head["page_size"] = pool.block_size if pool is not None else self.page_size
        state.per_head["cache"] = cache
        state.per_head["summaries"] = {}  # (head, page) -> (k_min, k_max), dense caches
        return state

    def prediction_cost(self, state, num_queries: int, num_keys: int) -> float:
        pages = -(-num_keys // state.per_head["page_size"])
        return 2.0 * pages / max(1, num_keys)

    def _full_page_summary(self, state, head: int, page: int, k_visible: np.ndarray):
        """Min/max of a *full* page, shared through pool block meta when paged."""
        ps = state.per_head["page_size"]
        cache = state.per_head["cache"]
        pool = getattr(cache, "pool", None)
        if pool is not None:
            block = cache.block_table[page]
            meta = pool.block_meta.setdefault(block, {})
            if "quest" not in meta:
                rows = pool.rows_of(block)
                chunk = pool._k[:, rows, :]  # (H, ps, D)
                meta["quest"] = (chunk.min(axis=1), chunk.max(axis=1))
            k_min, k_max = meta["quest"]
            return k_min[head], k_max[head]
        cached = state.per_head["summaries"]
        if (head, page) not in cached:
            chunk = k_visible[page * ps : (page + 1) * ps]
            cached[(head, page)] = (chunk.min(axis=0), chunk.max(axis=0))
        return cached[(head, page)]

    def head_row_mask(self, state, head, q_row, k_visible) -> np.ndarray:
        ps = state.per_head["page_size"]
        visible = k_visible.shape[0]
        full_pages = visible // ps
        vis_pages = -(-visible // ps)
        pos = np.where(q_row > 0, q_row, 0.0)
        neg = np.where(q_row < 0, q_row, 0.0)
        bounds = np.empty(vis_pages)
        for p in range(full_pages):
            k_min, k_max = self._full_page_summary(state, head, p, k_visible)
            bounds[p] = k_max @ pos + k_min @ neg
        if vis_pages > full_pages:  # growing partial tail page
            tail = k_visible[full_pages * ps :]
            bounds[full_pages] = tail.max(axis=0) @ pos + tail.min(axis=0) @ neg
        page_budget = max(1, int(round(self.keep_fraction * vis_pages)))
        keep = np.zeros(visible, dtype=bool)
        for p in np.argsort(bounds)[::-1][:page_budget]:
            keep[p * ps : (p + 1) * ps] = True
        return keep


def quest_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    keep_fraction: float,
    page_size: int = 16,
    query_offset: Optional[int] = None,
    scale: Optional[float] = None,
) -> SparseAttentionResult:
    """Sparse attention fetching only the top-bounded pages per query.

    Thin wrapper over :class:`QuestPolicy`: every query row ranks the
    pages of its causally visible prefix (partial tail page summarized
    over the visible rows only) — the same selection the serving engine
    runs step by step.

    Prediction cost: the summary dot products (2 channels per page vs S
    keys) — cheap, the page slack is the real price.
    """
    q = np.atleast_2d(np.asarray(q, dtype=np.float64))
    k = np.asarray(k, dtype=np.float64)
    num_keys = k.shape[0]
    policy = QuestPolicy(keep_fraction, page_size)
    keep = policy.one_shot_mask(q, k, query_offset)
    num_pages = -(-num_keys // page_size)
    prediction_cost = 2.0 * num_pages / max(1, num_keys)
    return sparse_attention_from_mask(q, k, v, keep, prediction_cost, scale=scale)


def page_bound_soundness(q_row: np.ndarray, k: np.ndarray, page_size: int = 16) -> Tuple[float, bool]:
    """Check the bound dominates every true in-page score (test helper)."""
    summaries = build_page_summaries(k, page_size)
    bounds = page_score_upper_bound(q_row, summaries)
    scores = k @ np.asarray(q_row, dtype=np.float64)
    ok = True
    slack = []
    for p in range(summaries.num_pages):
        chunk = scores[p * page_size : (p + 1) * page_size]
        if chunk.size:
            ok &= bool(bounds[p] >= chunk.max() - 1e-9)
            slack.append(float(bounds[p] - chunk.max()))
    return float(np.mean(slack)), ok
