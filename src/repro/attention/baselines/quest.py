"""Quest-style page-granular dynamic selection (additional comparator).

Quest partitions the KV cache into fixed-size *pages* and keeps per-page
min/max channel summaries; at decode time it upper-bounds each page's best
possible score from the summaries and fetches only the top pages.  It is a
coarse-granularity cousin of PADE's bound-based filtering: sound bounds, but
at page granularity the bound slack forces fetching whole pages for single
heavy hitters.

Included as an extra comparator: its *selection* is bound-driven like
BUI-GF, so comparing the two isolates the value of bit-level granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.attention.baselines.base import SparseAttentionResult, sparse_attention_from_mask
from repro.attention.masks import causal_mask

__all__ = ["PageSummaries", "build_page_summaries", "quest_attention"]


@dataclass(frozen=True)
class PageSummaries:
    """Per-page elementwise min/max of K."""

    k_min: np.ndarray  # (pages, H)
    k_max: np.ndarray  # (pages, H)
    page_size: int

    @property
    def num_pages(self) -> int:
        return self.k_min.shape[0]


def build_page_summaries(k: np.ndarray, page_size: int = 16) -> PageSummaries:
    """Offline pass: fold K into per-page channel extrema."""
    k = np.asarray(k, dtype=np.float64)
    num_keys = k.shape[0]
    pages = int(np.ceil(num_keys / page_size))
    k_min = np.full((pages, k.shape[1]), np.inf)
    k_max = np.full((pages, k.shape[1]), -np.inf)
    for p in range(pages):
        chunk = k[p * page_size : (p + 1) * page_size]
        k_min[p] = chunk.min(axis=0)
        k_max[p] = chunk.max(axis=0)
    return PageSummaries(k_min=k_min, k_max=k_max, page_size=page_size)


def page_score_upper_bound(q_row: np.ndarray, summaries: PageSummaries) -> np.ndarray:
    """Sound per-page upper bound: positive q picks k_max, negative k_min."""
    q = np.asarray(q_row, dtype=np.float64)
    pos = np.where(q > 0, q, 0.0)
    neg = np.where(q < 0, q, 0.0)
    return summaries.k_max @ pos + summaries.k_min @ neg


def quest_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    keep_fraction: float,
    page_size: int = 16,
    query_offset: Optional[int] = None,
    scale: Optional[float] = None,
) -> SparseAttentionResult:
    """Sparse attention fetching only the top-bounded pages per query."""
    q = np.atleast_2d(np.asarray(q, dtype=np.float64))
    k = np.asarray(k, dtype=np.float64)
    num_queries, num_keys = q.shape[0], k.shape[0]
    offset = num_keys - num_queries if query_offset is None else query_offset
    summaries = build_page_summaries(k, page_size)
    page_budget = max(1, int(round(keep_fraction * summaries.num_pages)))

    keep = np.zeros((num_queries, num_keys), dtype=bool)
    for i in range(num_queries):
        bounds = page_score_upper_bound(q[i], summaries)
        top_pages = np.argsort(bounds)[::-1][:page_budget]
        for p in top_pages:
            keep[i, p * page_size : (p + 1) * page_size] = True
    keep &= causal_mask(num_queries, num_keys, offset)

    # Prediction cost: the summary dot products (2 channels per page vs S
    # keys) — cheap, the page slack is the real price.
    prediction_cost = 2.0 * summaries.num_pages / max(1, num_keys)
    return sparse_attention_from_mask(q, k, v, keep, prediction_cost, scale=scale)


def page_bound_soundness(q_row: np.ndarray, k: np.ndarray, page_size: int = 16) -> Tuple[float, bool]:
    """Check the bound dominates every true in-page score (test helper)."""
    summaries = build_page_summaries(k, page_size)
    bounds = page_score_upper_bound(q_row, summaries)
    scores = k @ np.asarray(q_row, dtype=np.float64)
    ok = True
    slack = []
    for p in range(summaries.num_pages):
        chunk = scores[p * page_size : (p + 1) * page_size]
        if chunk.size:
            ok &= bool(bounds[p] >= chunk.max() - 1e-9)
            slack.append(float(bounds[p] - chunk.max()))
    return float(np.mean(slack)), ok
