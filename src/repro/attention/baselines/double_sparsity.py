"""DoubleSparsity-style baseline: channel-subset estimation + token top-k.

Yang et al.'s Double Sparsity estimates attention scores using only the
highest-magnitude *channels* of Q/K (offline-calibrated), then keeps the
top-k tokens per query.  The estimation is cheap but its computation and
memory traffic cannot be reused by the precise execution step — the paper's
core criticism of stage-splitting predictors — so its prediction cost scales
with the channel fraction regardless of achieved token sparsity.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attention.baselines.base import SparseAttentionResult, sparse_attention_from_mask
from repro.attention.masks import causal_mask

__all__ = ["double_sparsity_attention", "select_heavy_channels"]


def select_heavy_channels(k: np.ndarray, channel_fraction: float) -> np.ndarray:
    """Offline channel calibration: indices of the largest-energy channels."""
    k = np.asarray(k, dtype=np.float64)
    energy = (k * k).sum(axis=0)
    num = max(1, int(round(channel_fraction * k.shape[1])))
    return np.sort(np.argsort(energy)[::-1][:num])


def double_sparsity_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    keep_fraction: float,
    channel_fraction: float = 0.25,
    query_offset: Optional[int] = None,
    scale: Optional[float] = None,
) -> SparseAttentionResult:
    """Sparse attention with channel-sparse score estimation + top-k tokens."""
    q = np.atleast_2d(np.asarray(q, dtype=np.float64))
    k = np.asarray(k, dtype=np.float64)
    num_queries, num_keys = q.shape[0], k.shape[0]
    offset = num_keys - num_queries if query_offset is None else query_offset
    budget = max(1, int(round(keep_fraction * num_keys)))

    channels = select_heavy_channels(k, channel_fraction)
    est = q[:, channels] @ k[:, channels].T  # channel-subset score estimate
    causal = causal_mask(num_queries, num_keys, offset)
    est = np.where(causal, est, -np.inf)

    keep = np.zeros((num_queries, num_keys), dtype=bool)
    for i in range(num_queries):
        visible = int(causal[i].sum())
        take = min(budget, visible)
        if take > 0:
            top = np.argpartition(est[i], -take)[-take:]
            keep[i, top] = True
    keep &= causal

    prediction_cost = channel_fraction  # estimation touches that share of QK work
    return sparse_attention_from_mask(q, k, v, keep, prediction_cost, scale=scale)
